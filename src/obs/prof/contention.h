// Per-site contention histograms: who are the threads actually
// fighting over?
//
// Metrics already count outcomes (scored, shed, hit, stale); this plane
// counts *waiting*: how often a thread blocked at a named
// synchronization site and for how long.  Sites are registered once
// (find-or-create by name, mutex-guarded) and recorded lock-free —
// record_block/record_event touch only relaxed atomics, cheap enough
// to leave in hot paths permanently.
//
// The serving tier instruments three sites out of the box:
//   serve.queue.push_block   producer blocked on a full BoundedQueue
//   serve.queue.pop_wait     worker parked on an empty BoundedQueue
//   serve.registry.publish_lock  publisher waited for the swap mutex
//   serve.cache.insert_cas   VerdictCache insert lost the slot CAS
//
// Rendered by /contentionz as one text block per site: event counts
// plus a log2 block-time histogram (microsecond decades).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace bp::obs::prof {

inline constexpr std::size_t kContentionBuckets = 16;

class ContentionSite {
 public:
  // A blocking wait that lasted `ns` nanoseconds.
  void record_block(std::uint64_t ns) noexcept {
    events_.fetch_add(1, std::memory_order_relaxed);
    blocks_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  // A contention event with no meaningful duration (a lost CAS).
  void record_event() noexcept {
    events_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t events() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }
  std::uint64_t blocks() const noexcept {
    return blocks_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const char* name() const noexcept { return name_; }

  // Bucket 0 holds waits under 1us; each later bucket doubles, with the
  // last one open-ended (>= 16.384ms).
  static std::size_t bucket_of(std::uint64_t ns) noexcept {
    std::uint64_t bound = 1000;  // 1us
    for (std::size_t b = 0; b + 1 < kContentionBuckets; ++b) {
      if (ns < bound) return b;
      bound <<= 1;
    }
    return kContentionBuckets - 1;
  }

 private:
  friend class ContentionRegistry;
  const char* name_ = nullptr;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> blocks_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> buckets_[kContentionBuckets]{};
};

class ContentionRegistry {
 public:
  static ContentionRegistry& instance();

  // Find-or-create by name content.  Call once per call site and keep
  // the pointer (the lookup takes a mutex; recording does not).  Names
  // must be string literals or otherwise immortal.  When the fixed
  // table is full every further name maps to the shared overflow site.
  ContentionSite& site(const char* name);

  std::size_t size() const;
  std::string render() const;

 private:
  static constexpr std::size_t kMaxSites = 64;
  mutable std::mutex mutex_;
  ContentionSite sites_[kMaxSites];
  ContentionSite overflow_;
  std::size_t n_sites_ = 0;
};

}  // namespace bp::obs::prof
