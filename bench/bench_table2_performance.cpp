// Reproduces Table 2 (§3) and the §7.5 performance analysis: service
// time and storage requirements of fine-grained fingerprinting tools vs
// Browser Polygraph's coarse-grained extraction.
//
// Times are measured with google-benchmark against the working probe
// implementations (canvas raster + hash, audio synthesis, font metric
// sweeps, property-table enumeration) — the *ordering* AmIUnique >>
// FingerprintJS > ClientJS > Polygraph and the storage gap are properties
// of the work each collector performs, not constants.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/collectors.h"
#include "baseline/encode.h"
#include "browser/extractor.h"
#include "browser/release_db.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace bp;

browser::Environment test_environment() {
  browser::Environment env;
  env.release =
      browser::ReleaseDatabase::instance().find(ua::Vendor::kChrome, 112);
  env.os = ua::Os::kWindows10;
  env.session_salt = 0x1234;
  return env;
}

void BM_PolygraphExtraction(benchmark::State& state) {
  const browser::Environment env = test_environment();
  for (auto _ : state) {
    browser::SimulatedDom dom(env);
    benchmark::DoNotOptimize(dom.run_production_script());
  }
}
BENCHMARK(BM_PolygraphExtraction)->Unit(benchmark::kMillisecond);

void BM_ClientJsCollect(benchmark::State& state) {
  const browser::Environment env = test_environment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::collect(baseline::Collector::kClientJs, env));
  }
}
BENCHMARK(BM_ClientJsCollect)->Unit(benchmark::kMillisecond);

void BM_FingerprintJsCollect(benchmark::State& state) {
  const browser::Environment env = test_environment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::collect(baseline::Collector::kFingerprintJs, env));
  }
}
BENCHMARK(BM_FingerprintJsCollect)->Unit(benchmark::kMillisecond);

void BM_AmIUniqueCollect(benchmark::State& state) {
  const browser::Environment env = test_environment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::collect(baseline::Collector::kAmIUnique, env));
  }
}
BENCHMARK(BM_AmIUniqueCollect)->Unit(benchmark::kMillisecond);

void print_storage_table() {
  const browser::Environment env = test_environment();
  util::TextTable table({"Tool", "Storage req. (bytes)", "Notes"});

  for (const auto collector :
       {baseline::Collector::kAmIUnique, baseline::Collector::kFingerprintJs,
        baseline::Collector::kClientJs}) {
    const baseline::ProfileValue profile = baseline::collect(collector, env);
    table.add_row({std::string(baseline::collector_name(collector)),
                   std::to_string(profile.serialized_size()),
                   "nested JSON profile (pre-hash data structure)"});
  }

  const browser::FinalValues production = browser::extract_final(env);
  const std::string payload = browser::serialize_payload(
      production, ua::format_user_agent(env.presented_user_agent()),
      "0123456789abcdef");
  table.add_row({"BROWSER POLYGRAPH", std::to_string(payload.size()),
                 "28 integers + UA + opaque session id"});

  const browser::CandidateValues candidates = browser::extract_candidates(env);
  const std::string collection_payload = browser::serialize_payload(
      candidates, ua::format_user_agent(env.presented_user_agent()),
      "0123456789abcdef");
  table.add_row({"BROWSER POLYGRAPH (collection phase)",
                 std::to_string(collection_payload.size()),
                 "all 513 candidates, research collection only"});

  std::printf("\n=== Table 2: storage requirements ===\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "paper reference: AmIUnique ~60KB/~1.5s, FingerprintJS ~23KB/51ms, "
      "ClientJS ~10KB/37ms, BROWSER POLYGRAPH 1KB/6ms.  The production "
      "payload must stay under the 1KB budget of §3.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table 2: service time (google-benchmark) ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_storage_table();
  return 0;
}
