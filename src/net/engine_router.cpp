#include "net/engine_router.h"

#include <algorithm>
#include <thread>

namespace bp::net {

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(2, hw / 4);
}

// splitmix64 finalizer: session ids are often sequential, and a plain
// modulus would then stripe neighbours across shards while leaving any
// stride pattern intact.  The finalizer's avalanche makes the shard
// choice uniform regardless of how the caller mints ids.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EngineRouter::EngineRouter(const serve::ModelRegistry& registry,
                           RouterConfig config,
                           serve::ScoringEngine::ResponseCallback on_response)
    : registry_(registry) {
  const std::size_t n_shards = resolve_shards(config.shards);
  engines_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    serve::EngineConfig shard_config = config.engine;
    shard_config.metrics_prefix =
        config.engine.metrics_prefix + "_shard" + std::to_string(i);
    engines_.push_back(std::make_unique<serve::ScoringEngine>(
        registry, std::move(shard_config), on_response));
  }
}

EngineRouter::~EngineRouter() { stop(); }

std::size_t EngineRouter::shard_of(std::uint64_t session_id) const noexcept {
  return static_cast<std::size_t>(mix64(session_id) % engines_.size());
}

serve::SubmitResult EngineRouter::submit(std::uint64_t session_id,
                                         serve::ScoreRequest request) {
  return engines_[shard_of(session_id)]->submit(std::move(request));
}

void EngineRouter::drain() {
  for (auto& engine : engines_) engine->drain();
}

void EngineRouter::stop() {
  for (auto& engine : engines_) engine->stop();
}

serve::MetricsSnapshot EngineRouter::shard_metrics(std::size_t shard) const {
  return engines_[shard]->metrics();
}

serve::MetricsSnapshot EngineRouter::metrics() const {
  serve::MetricsSnapshot total;
  for (const auto& engine : engines_) {
    const serve::MetricsSnapshot shard = engine->metrics();
    total.scored += shard.scored;
    total.flagged += shard.flagged;
    total.shed += shard.shed;
    total.rejected += shard.rejected;
    total.batches += shard.batches;
    total.cached += shard.cached;
    total.deadline_exceeded += shard.deadline_exceeded;
    total.degraded += shard.degraded;
    total.stalled_workers += shard.stalled_workers;
    total.queue_depth += shard.queue_depth;
    for (std::size_t b = 0; b < total.latency_histogram.size(); ++b) {
      total.latency_histogram[b] += shard.latency_histogram[b];
    }
    for (std::size_t b = 0; b < total.batch_size_histogram.size(); ++b) {
      total.batch_size_histogram[b] += shard.batch_size_histogram[b];
    }
  }
  total.model_version = registry_.version();
  return total;
}

serve::CacheStats EngineRouter::shard_cache_stats(std::size_t shard) const {
  return engines_[shard]->cache_stats();
}

serve::CacheStats EngineRouter::cache_stats() const {
  serve::CacheStats total;
  for (const auto& engine : engines_) {
    const serve::CacheStats shard = engine->cache_stats();
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.stale += shard.stale;
    total.evictions += shard.evictions;
    total.inserts += shard.inserts;
    total.occupancy += shard.occupancy;
    total.capacity += shard.capacity;
  }
  return total;
}

}  // namespace bp::net
