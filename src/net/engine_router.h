// Sharded multi-engine router: N ScoringEngines behind one front door.
//
// One ScoringEngine already pools workers over one queue, but at
// ingress scale a single queue is a contention point and a single
// shard's caches are churned by every session in the process.  The
// router owns N engines ("shards") and routes each request by a hash
// of its *session id*, so one session's requests always land on the
// same shard — per-shard state (the worker's scoring scratch, the
// model tables in that core's caches, and the shard's verdict cache
// when EngineConfig::cache_capacity is set) stays hot, and queue
// contention divides by N.
//
// What the router coordinates, and what it deliberately does not:
//
//   * hot swap — nothing.  All shards read the same ModelRegistry;
//     a publish lands atomically and each shard's in-flight batches
//     finish on the version they hold.  A mid-swap drain() is the
//     way to observe "every response from here on is the new model".
//   * drain()  — waits shard by shard until every admitted request
//     has been answered (the ingress calls this between stopping
//     intake and joining its handler pool).
//   * stop()   — ordered: shard 0 first, then 1, ... so teardown is
//     deterministic and a stuck shard is identifiable by index.
//
// Cross-hop tracing passes through untouched: an adopted trace context
// rides inside the ScoreRequest (trace_id/trace_parent/trace_sampled),
// so whichever shard the session hashes to records its spans under the
// client's trace id into the shared EngineConfig::trace sink — the
// router adds no spans and needs no tracing state of its own.
//
// Per-shard metrics: each shard registers its instruments under
// "<metrics_prefix>_shard<i>_..." in the registry the EngineConfig
// template names, so an exporter shows per-shard queue depth, scored
// counts and latency histograms side by side; metrics() folds them
// into one aggregate MetricsSnapshot for SLO rules that care about
// the plane, not the shard.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/model_registry.h"
#include "serve/scoring_engine.h"

namespace bp::net {

struct RouterConfig {
  // 0 = one shard per 4 hardware threads, at least 2 — each shard
  // carries its own worker pool, so shards * engine.workers should
  // not exceed the machine.
  std::size_t shards = 0;
  // Per-shard template.  `workers` and `queue_capacity` apply to each
  // shard; `metrics_prefix` is the base the per-shard "_shard<i>"
  // suffix is appended to.  trace/audit planes, deadline and
  // degrade_without_model pass through unchanged.
  serve::EngineConfig engine;
};

class EngineRouter {
 public:
  // Starts every shard's worker pool immediately.  `registry` must
  // outlive the router; `on_response` follows ScoringEngine's contract
  // (worker threads, thread-safe, cheap) and is shared by all shards.
  EngineRouter(const serve::ModelRegistry& registry, RouterConfig config,
               serve::ScoringEngine::ResponseCallback on_response);
  ~EngineRouter();

  EngineRouter(const EngineRouter&) = delete;
  EngineRouter& operator=(const EngineRouter&) = delete;

  std::size_t shards() const noexcept { return engines_.size(); }

  // The shard `session_id` routes to: splitmix64(session_id) % shards.
  // Pure; stable for the router's lifetime.
  std::size_t shard_of(std::uint64_t session_id) const noexcept;

  // Route and submit.  `request.id` is the caller's correlation token
  // (the ingress uses response-slot indices); routing uses
  // `session_id`, which the two-argument form keeps separate so a
  // caller never has to overload one field with both meanings.
  serve::SubmitResult submit(std::uint64_t session_id,
                             serve::ScoreRequest request);

  // Blocks until every admitted request on every shard has been
  // responded to.  Producers should be quiescent.
  void drain();

  // Ordered stop: shard 0, 1, ... each drains its own queue per
  // ScoringEngine::stop.  Idempotent; the destructor calls it.
  void stop();

  serve::MetricsSnapshot shard_metrics(std::size_t shard) const;
  // Aggregate fold across shards: counters and histograms sum;
  // queue_depth sums; model_version is the registry's (shared).
  serve::MetricsSnapshot metrics() const;

  // Per-shard verdict-cache counters (all-zero when
  // engine.cache_capacity is 0) and their cross-shard fold.  Each shard
  // owns an independent cache — the splitmix64 session affinity is what
  // keeps a session's entries resident on the shard that will see its
  // next request.
  serve::CacheStats shard_cache_stats(std::size_t shard) const;
  serve::CacheStats cache_stats() const;

  std::uint64_t model_version() const noexcept { return registry_.version(); }

 private:
  const serve::ModelRegistry& registry_;
  std::vector<std::unique_ptr<serve::ScoringEngine>> engines_;
};

}  // namespace bp::net
