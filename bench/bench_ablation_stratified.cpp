// Ablation (§8 "Scale of the database"): training on a stratified sample
// instead of the full corpus.  The claim to verify: capping rows per
// user-agent stratum shrinks the training set by an order of magnitude
// while preserving clustering accuracy and the cluster table — because
// rare strata (old releases) are protected by the per-stratum minimum.
#include <cstdio>

#include "bench_common.h"
#include "ml/stratified.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Ablation: stratified sampling vs full-corpus training ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto full = benchmark_support::train_production(data);

  util::TextTable table({"Training set", "Rows", "Accuracy",
                         "UAs in table", "Table agrees with full model"});
  table.add_row({"full corpus", std::to_string(full.summary.rows_total),
                 util::format_double(100.0 * full.summary.clustering_accuracy, 2) + "%",
                 std::to_string(full.model.cluster_table().size()), "-"});

  for (const std::size_t cap : {2'000u, 500u, 100u}) {
    ml::StratifiedConfig strat;
    strat.max_per_stratum = cap;
    strat.min_per_stratum = 25;
    const auto kept = ml::stratified_sample(data.ua_keys(), strat);

    traffic::Dataset sampled(data.stored_indices());
    for (std::size_t idx : kept) sampled.add(data.records()[idx]);
    const auto trained = benchmark_support::train_production(sampled);

    // Partition agreement: same-cluster relations of the full model's
    // table preserved in the sampled model (cluster ids are arbitrary).
    std::size_t checked = 0;
    std::size_t agree = 0;
    const auto& entries = full.model.cluster_table().entries();
    for (auto it_a = entries.begin(); it_a != entries.end(); ++it_a) {
      auto it_b = std::next(it_a);
      for (int step = 0; it_b != entries.end() && step < 3; ++it_b, ++step) {
        const ua::UserAgent ua_a{static_cast<ua::Vendor>(it_a->first >> 16),
                                 static_cast<int>(it_a->first & 0xffff)};
        const ua::UserAgent ua_b{static_cast<ua::Vendor>(it_b->first >> 16),
                                 static_cast<int>(it_b->first & 0xffff)};
        const auto ca = trained.model.cluster_table().expected_cluster(ua_a);
        const auto cb = trained.model.cluster_table().expected_cluster(ua_b);
        if (!ca || !cb) continue;
        ++checked;
        const bool same_full = it_a->second == it_b->second;
        const bool same_sampled = *ca == *cb;
        agree += same_full == same_sampled ? 1 : 0;
      }
    }
    table.add_row(
        {"cap " + std::to_string(cap) + "/stratum",
         std::to_string(trained.summary.rows_total),
         util::format_double(100.0 * trained.summary.clustering_accuracy, 2) +
             "%",
         std::to_string(trained.model.cluster_table().size()),
         checked > 0 ? util::format_double(
                           100.0 * static_cast<double>(agree) /
                               static_cast<double>(checked),
                           1) + "%"
                     : "-"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nStratified training preserves the partition while cutting the "
      "corpus — the §8 scaling strategy holds on this substrate.\n");
  return 0;
}
