// Deterministic fault injection for chaos testing.
//
// Production resilience claims ("a torn model file never evicts a
// serving model", "the engine never loses a response") are only worth
// anything if the failure paths actually run.  This registry lets code
// declare named fault points:
//
//   if (FAULT_POINT("model_io.write")) return false;  // injected failure
//
// and lets tests (or an operator, via BP_FAULTS) arm them with a firing
// probability and a seed:
//
//   BP_FAULTS=model_io.write:0.3:7,engine.worker_stall:0.01:11
//
// Decisions are a pure function of (seed, per-point evaluation index):
// the i-th evaluation of an armed point fires iff
// mix64(seed ^ mix64(i)) maps below `probability`.  Re-arming with the
// same seed therefore replays the exact same fault pattern — chaos
// tests are reproducible, and a failing soak can be re-run under a
// debugger with the same injected-fault trace.
//
// Unarmed cost: FAULT_POINT expands to one relaxed atomic load of a
// global armed-point count (no lock, no map lookup, no string work),
// so instrumented hot paths pay nothing in production.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bp::util {

class FaultRegistry {
 public:
  // Process-wide singleton.  On first use, arms every point named in
  // the BP_FAULTS environment variable (see arm_from_spec).
  static FaultRegistry& instance();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // Arm `point` so evaluations fire with `probability`, deterministically
  // derived from `seed`.  Re-arming resets the point's evaluation count.
  void arm(std::string_view point, double probability, std::uint64_t seed);

  // Parse and arm a comma-separated spec: `name:probability:seed,...`.
  // The seed may be omitted (`name:probability`) and defaults to 0; a
  // bare `name` arms at probability 1.  Returns false (arming nothing
  // further) on the first malformed entry.
  bool arm_from_spec(std::string_view spec);

  // Re-read BP_FAULTS; returns false when unset or malformed.
  bool arm_from_env();

  void disarm(std::string_view point);
  void disarm_all();

  bool armed(std::string_view point) const;

  // True when at least one point is armed.  The only call on unarmed
  // hot paths (see FAULT_POINT); intentionally lock-free.
  bool any_armed() const noexcept {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  // Number of armed points — exported as a gauge by the observability
  // layer (obs::register_fault_metrics).
  int armed_points() const noexcept {
    return armed_count_.load(std::memory_order_relaxed);
  }

  // Evaluate `point`: false when unarmed; otherwise the deterministic
  // per-seed decision for this point's next evaluation index.  Fired
  // evaluations are appended to the trace.
  bool should_fire(std::string_view point);

  // Observability for tests and soak assertions.
  std::uint64_t evaluations(std::string_view point) const;
  std::uint64_t fires(std::string_view point) const;
  std::uint64_t total_fires() const;

  // Fired events in firing order, as "point#evaluation_index".  With a
  // deterministic caller, the whole trace is reproducible from the arm
  // spec; with concurrent callers, the *set* per point still is.
  std::vector<std::string> trace() const;

  // Forget evaluation counts and the trace but keep points armed — a
  // fresh, replayable run of the same fault pattern.
  void reset_counters();

 private:
  FaultRegistry();

  struct Point {
    double probability = 1.0;
    std::uint64_t seed = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Point, std::less<>> points_;
  std::vector<std::string> trace_;
  std::atomic<int> armed_count_{0};
};

// RAII arming for tests: arm a spec (same grammar as BP_FAULTS /
// arm_from_spec) on construction, disarm *all* points and clear the
// counters on destruction — one test's chaos never leaks into the
// next, even when an assertion throws mid-test.
class ScopedFaults {
 public:
  explicit ScopedFaults(std::string_view spec) {
    FaultRegistry::instance().arm_from_spec(spec);
  }
  ~ScopedFaults() {
    FaultRegistry::instance().disarm_all();
    FaultRegistry::instance().reset_counters();
  }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace bp::util

// True iff the named fault point is armed and fires on this evaluation.
// One relaxed atomic load when nothing is armed anywhere.
#define FAULT_POINT(point)                           \
  (::bp::util::FaultRegistry::instance().any_armed() && \
   ::bp::util::FaultRegistry::instance().should_fire(point))
