file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ua_randomization.dir/bench_ablation_ua_randomization.cpp.o"
  "CMakeFiles/bench_ablation_ua_randomization.dir/bench_ablation_ua_randomization.cpp.o.d"
  "bench_ablation_ua_randomization"
  "bench_ablation_ua_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ua_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
