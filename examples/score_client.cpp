// score_client: the resilient scoring client (net/score_client.h)
// against a real POST /score ingress, exercised through every failure
// mode it is built for (DESIGN.md §15).
//
//   1. clean path       — keep-alive pooled connections, one verdict
//                         per call;
//   2. injected faults  — the process-wide fault registry (util/fault.h)
//                         arms deterministic connection resets on the
//                         socket seam; retries absorb them inside the
//                         call deadline;
//   3. hedged tail      — a chaos proxy stalls ~8% of response chunks
//                         by 60 ms; a 10 ms hedge races a second
//                         attempt and the first verdict wins;
//   4. circuit breaker  — calls against a dead port fail fast, open
//                         the breaker, and are short-circuited without
//                         touching the network until the cooldown
//                         elapses.
//
// Every call ends in a *typed* outcome — the demo exits non-zero if
// any call hangs past its deadline or a verdict fails validation.
//
// Cross-hop mode (--connect <host:port>): instead of the in-process
// demo, score production-width sessions against an external ingress
// (e.g. fraud_detection_service --score-listen) with tracing armed —
// every call prints its minted trace id, and with --listen the
// client's own introspection plane serves /tracez?trace=<id> so the
// same id can be pulled up on both sides of the wire.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "net/chaos_proxy.h"
#include "net/score_client.h"
#include "net/score_server.h"
#include "obs/introspect/server.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "util/fault.h"

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true, std::memory_order_release); }

// "<addr>:<port>" or "<port>" (addr defaults to 127.0.0.1).
bool parse_host_port(const std::string& value, std::string* addr,
                     std::uint16_t* port) {
  std::string port_part = value;
  const std::size_t colon = value.rfind(':');
  if (colon != std::string::npos) {
    *addr = value.substr(0, colon);
    port_part = value.substr(colon + 1);
  }
  if (port_part.empty()) return false;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(port_part.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed > 65535) return false;
  *port = static_cast<std::uint16_t>(parsed);
  return true;
}

void print_stats(const char* label, const bp::net::ScoreClientStats& stats);

// Cross-hop mode: trace-armed calls against an external ingress.
int run_connect(const std::string& host, std::uint16_t port, int calls,
                bool listen_enabled, const std::string& listen_addr,
                std::uint16_t listen_port) {
  bp::obs::TraceSinkConfig trace_config;
  trace_config.capacity = 4096;
  trace_config.sample_rate = 1.0;  // the demo wants every trace visible
  bp::obs::TraceSink trace(trace_config);
  bp::obs::MetricsRegistry registry;

  bp::net::ScoreClientConfig config;
  config.host = host;
  config.port = port;
  config.io_timeout = std::chrono::milliseconds(2'000);
  config.deadline = std::chrono::milliseconds(5'000);
  config.max_attempts = 8;
  config.initial_backoff = std::chrono::milliseconds(5);
  config.max_backoff = std::chrono::milliseconds(100);
  config.hedge_delay = std::chrono::milliseconds(50);
  config.trace = &trace;
  config.registry = &registry;
  bp::net::ScoreClient client(config);

  // Production-width frames: the external ingress arms its wire-layer
  // feature-count check with the Table 8 set.
  const std::vector<std::int32_t> features(
      bp::core::PolygraphConfig::production().feature_indices.size(), 0);

  int failures = 0;
  for (int i = 0; i < calls; ++i) {
    const std::uint64_t session = static_cast<std::uint64_t>(i) + 1;
    const bp::net::ScoreCallResult result =
        client.score(session, "Chrome 112", features);
    const bool ok = result.outcome == bp::net::ScoreClientOutcome::kOk &&
                    result.response.session_id == session;
    if (!ok) ++failures;
    std::printf("session %llu trace=%llu sampled=%d attempts=%d %s\n",
                static_cast<unsigned long long>(session),
                static_cast<unsigned long long>(result.trace_id),
                result.trace_sampled ? 1 : 0, result.attempts,
                ok ? "scored"
                   : std::string(bp::net::score_client_outcome_name(
                                     result.outcome))
                         .c_str());
  }
  print_stats("cross-hop", client.stats());
  std::fflush(stdout);

  // With --listen, keep the client half of the trace scrapeable until
  // SIGINT: /tracez?trace=<id> here shows the client_call/attempt
  // spans, the same query on the server's introspection port shows the
  // slot/queue/kernel half.
  if (listen_enabled) {
    bp::obs::introspect::Sources sources;
    sources.metrics = &registry;
    sources.trace = &trace;
    bp::obs::introspect::ServerConfig server_config;
    server_config.bind_address = listen_addr;
    server_config.port = listen_port;
    bp::obs::introspect::IntrospectionServer server(sources, server_config);
    if (!server.running()) {
      std::fprintf(stderr, "client introspection failed: %s\n",
                   server.error().c_str());
      return 1;
    }
    std::printf("client introspection listening on %s:%u\n",
                listen_addr.c_str(), server.port());
    std::fflush(stdout);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
  }
  return failures == 0 ? 0 : 1;
}

bp::core::Polygraph tiny_model() {
  bp::core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  bp::ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  bp::ml::KMeansConfig kconfig;
  kconfig.k = 2;
  bp::core::ClusterTable table;
  table.assign({bp::ua::Vendor::kChrome, 100, bp::ua::Os::kWindows10}, 0);
  return bp::core::Polygraph::from_parts(
      config,
      bp::ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      bp::ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0},
                               bp::ml::Matrix::identity(2)),
      bp::ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

bp::net::ScoreClientConfig base_config(std::uint16_t port) {
  bp::net::ScoreClientConfig config;
  config.port = port;
  config.io_timeout = std::chrono::milliseconds(500);
  config.deadline = std::chrono::milliseconds(4'000);
  config.max_attempts = 8;
  config.initial_backoff = std::chrono::milliseconds(2);
  config.max_backoff = std::chrono::milliseconds(20);
  return config;
}

// Score `calls` sessions; returns how many did not end kOk with a
// correct verdict.
int drive(bp::net::ScoreClient& client, int calls) {
  int bad = 0;
  for (int i = 0; i < calls; ++i) {
    const std::uint64_t session = static_cast<std::uint64_t>(i) + 1;
    const bool fraud = session % 2 == 0;
    const std::int32_t clean[] = {0, 0};
    const std::int32_t bot[] = {10, 10};
    const bp::net::ScoreCallResult result =
        client.score(session, "Chrome 100", fraud ? bot : clean);
    if (result.outcome != bp::net::ScoreClientOutcome::kOk ||
        result.response.session_id != session ||
        result.response.flagged != fraud) {
      ++bad;
      std::printf("  session %llu failed: %s\n",
                  static_cast<unsigned long long>(session),
                  result.error.empty() ? "bad verdict" : result.error.c_str());
    }
  }
  return bad;
}

void print_stats(const char* label, const bp::net::ScoreClientStats& stats) {
  std::printf("%s: calls=%llu attempts=%llu retries=%llu hedges=%llu "
              "hedge_wins=%llu transport_errors=%llu short_circuits=%llu\n",
              label, static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.hedges),
              static_cast<unsigned long long>(stats.hedge_wins),
              static_cast<unsigned long long>(stats.transport_errors),
              static_cast<unsigned long long>(stats.breaker_short_circuits));
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_host = "127.0.0.1";
  std::uint16_t connect_port = 0;
  bool connect_mode = false;
  std::string listen_addr = "127.0.0.1";
  std::uint16_t listen_port = 0;
  bool listen_enabled = false;
  int calls = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      if (!parse_host_port(argv[++i], &connect_host, &connect_port)) {
        std::fprintf(stderr, "bad --connect value: %s\n", argv[i]);
        return 2;
      }
      connect_mode = true;
    } else if (arg == "--listen" && i + 1 < argc) {
      if (!parse_host_port(argv[++i], &listen_addr, &listen_port)) {
        std::fprintf(stderr, "bad --listen value: %s\n", argv[i]);
        return 2;
      }
      listen_enabled = true;
    } else if (arg == "--calls" && i + 1 < argc) {
      calls = std::atoi(argv[++i]);
      if (calls <= 0) {
        std::fprintf(stderr, "bad --calls value: %s\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect <host:port> [--calls N] "
                   "[--listen <addr:port|port>]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (connect_mode) {
    return run_connect(connect_host, connect_port, calls, listen_enabled,
                       listen_addr, listen_port);
  }

  bp::serve::ModelRegistry models;
  models.publish(tiny_model());
  bp::net::ScoreServerConfig server_config;
  server_config.router.shards = 2;
  server_config.router.engine.workers = 1;
  server_config.expected_features = 2;
  server_config.listener.handler_threads = 4;
  bp::net::ScoreServer server(models, server_config);
  if (!server.running()) {
    std::fprintf(stderr, "score server failed: %s\n", server.error().c_str());
    return 1;
  }
  int failures = 0;

  // ---- 1. clean path: pooled keep-alive scoring ----
  std::printf("== 1. clean path ==\n");
  {
    bp::net::ScoreClient client(base_config(server.port()));
    failures += drive(client, 20);
    print_stats("clean", client.stats());
  }

  // ---- 2. deterministic injected resets on the socket seam ----
  // Each reset surfaces as a typed transport error; the retry loop
  // replays the idempotent /score inside the same call deadline.
  std::printf("== 2. injected connection resets (5%% of recvs) ==\n");
  {
    bp::net::ScoreClient client(base_config(server.port()));
    {
      bp::util::ScopedFaults faults("net.sock.recv.reset:0.05:1234");
      failures += drive(client, 30);
    }
    print_stats("faulted", client.stats());
  }

  // ---- 3. hedged tail through a stalling chaos proxy ----
  std::printf("== 3. hedged requests under injected stalls ==\n");
  {
    bp::net::ChaosProxyConfig chaos_config;
    chaos_config.upstream_port = server.port();
    chaos_config.seed = 0x7EDE;
    chaos_config.fault_client_to_upstream = false;
    chaos_config.delay_probability = 0.08;
    chaos_config.delay = std::chrono::milliseconds(60);
    bp::net::ChaosProxy proxy(chaos_config);
    if (!proxy.running()) {
      std::fprintf(stderr, "chaos proxy failed: %s\n", proxy.error().c_str());
      return 1;
    }
    bp::net::ScoreClientConfig config = base_config(proxy.port());
    config.hedge_delay = std::chrono::milliseconds(10);
    bp::net::ScoreClient client(config);
    failures += drive(client, 40);
    proxy.stop();
    print_stats("hedged", client.stats());
  }

  // ---- 4. circuit breaker against a dead host ----
  // Find a port with nothing behind it by binding an ephemeral
  // listener and stopping it.
  std::printf("== 4. circuit breaker against a dead port ==\n");
  std::uint16_t dead_port;
  {
    bp::net::ScoreServerConfig dead_config;
    dead_config.router.shards = 1;
    dead_config.router.engine.workers = 1;
    bp::net::ScoreServer doomed(models, dead_config);
    dead_port = doomed.port();
    doomed.stop();
  }
  {
    bp::obs::MetricsRegistry registry;
    bp::net::ScoreClientConfig config = base_config(dead_port);
    config.max_attempts = 2;
    config.deadline = std::chrono::milliseconds(1'000);
    config.breaker_threshold = 2;
    config.breaker_cooldown = 4;
    config.registry = &registry;
    bp::net::ScoreClient client(config);
    const std::int32_t clean[] = {0, 0};
    for (int i = 0; i < 5; ++i) {
      const bp::net::ScoreCallResult result =
          client.score(static_cast<std::uint64_t>(i) + 1, "Chrome 100", clean);
      std::printf("  call %d: %s\n", i + 1,
                  result.outcome == bp::net::ScoreClientOutcome::kBreakerOpen
                      ? "short-circuited (breaker open)"
                      : "transport error (typed)");
      if (result.outcome == bp::net::ScoreClientOutcome::kOk) ++failures;
    }
    if (!client.breaker_open()) {
      std::fprintf(stderr, "FAIL: breaker never opened against a dead port\n");
      ++failures;
    }
    print_stats("breaker", client.stats());
    std::printf("\nclient exposition:\n%s",
                registry.render_prometheus().c_str());
  }

  server.stop();
  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d calls ended badly\n", failures);
    return 1;
  }
  std::printf("\nevery call ended in a typed outcome; no hangs, no bad "
              "verdicts\n");
  return 0;
}
