#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/rng.h"

namespace bp::obs {

TraceSink::TraceSink(TraceSinkConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.resize(config_.capacity);
}

bool TraceSink::sampled(std::uint64_t trace_id) const noexcept {
  if (config_.sample_rate >= 1.0) return true;
  if (config_.sample_rate <= 0.0) return false;
  // Rng::split is pure in (state, stream id): seeding a generator with
  // the sink seed and splitting on the trace id yields the same
  // decision on every thread and every run.
  return bp::util::Rng(config_.seed).split(trace_id).uniform() <
         config_.sample_rate;
}

void TraceSink::record(const TraceEvent& event) {
  if (!sampled(event.trace_id)) return;
  record_forced(event);
}

void TraceSink::record_forced(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  if (size_ == ring_.size()) {
    overwritten_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++size_;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mutex_);
    out.reserve(size_);
    // Oldest-first ring walk; sorted below, so start position only
    // matters for stability.
    const std::size_t begin = size_ == ring_.size() ? next_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(begin + i) % ring_.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });
  return out;
}

std::string TraceSink::render(bool include_timing, std::uint64_t trace_filter,
                              std::size_t limit) const {
  std::vector<TraceEvent> kept;
  {
    std::lock_guard lock(mutex_);
    kept.reserve(size_);
    // Oldest-first ring walk, so "the most recent `limit` events" is a
    // suffix of this vector.
    const std::size_t begin = size_ == ring_.size() ? next_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const TraceEvent& e = ring_[(begin + i) % ring_.size()];
      if (trace_filter != 0 && e.trace_id != trace_filter) continue;
      kept.push_back(e);
    }
  }
  if (limit != 0 && kept.size() > limit) {
    kept.erase(kept.begin(),
               kept.begin() + static_cast<std::ptrdiff_t>(kept.size() - limit));
  }
  std::sort(kept.begin(), kept.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });
  std::string out;
  for (const TraceEvent& e : kept) {
    char line[256];
    if (include_timing) {
      std::snprintf(line, sizeof(line),
                    "trace=%llu span=%u parent=%u name=%s start=%lld "
                    "end=%lld dur_us=%lld\n",
                    static_cast<unsigned long long>(e.trace_id), e.span_id,
                    e.parent_id, e.name, static_cast<long long>(e.start_us),
                    static_cast<long long>(e.end_us),
                    static_cast<long long>(e.end_us - e.start_us));
    } else {
      std::snprintf(line, sizeof(line), "trace=%llu span=%u parent=%u name=%s\n",
                    static_cast<unsigned long long>(e.trace_id), e.span_id,
                    e.parent_id, e.name);
    }
    out += line;
  }
  return out;
}

void TraceSink::clear() {
  std::lock_guard lock(mutex_);
  next_ = 0;
  size_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  overwritten_.store(0, std::memory_order_relaxed);
}

}  // namespace bp::obs
