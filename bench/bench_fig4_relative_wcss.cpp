// Reproduces Figure 4: relative WCSS improvement vs number of clusters —
// the view that singles out k=11 for the production model.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "browser/feature_catalog.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "ml/scaler.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 60'000;

  std::printf("=== Figure 4: relative WCSS drop vs number of clusters ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto& catalog = browser::FeatureCatalog::instance();
  const ml::Matrix raw = data.feature_matrix(catalog.final_indices());

  std::vector<bool> scale_column;
  for (std::size_t idx : catalog.final_indices()) {
    scale_column.push_back(catalog.spec(idx).kind ==
                           browser::FeatureKind::kDeviationBased);
  }
  ml::StandardScaler scaler;
  scaler.fit(raw, scale_column);
  const ml::Matrix scaled = scaler.transform(raw);

  ml::IsolationForest forest;
  forest.fit(scaled);
  const ml::Matrix filtered =
      scaled.filter_rows(forest.inlier_mask(scaled, 0.00084));

  ml::Pca pca;
  const ml::Matrix projected = pca.fit_transform(filtered, 7);

  const std::vector<double> wcss = ml::wcss_curve(projected, 1, 16);
  const std::vector<double> drops = ml::relative_wcss_drops(wcss);

  std::vector<std::pair<std::string, double>> series;
  for (std::size_t i = 0; i < drops.size(); ++i) {
    const std::size_t k = i + 2;  // drop[i] is the improvement going to k
    char label[16];
    std::snprintf(label, sizeof(label), "k=%2zu", k);
    series.emplace_back(label, 100.0 * drops[i]);
  }
  std::fputs(util::ascii_chart(series).c_str(), stdout);

  const std::size_t best_k = ml::elbow_k(wcss, 1);
  std::printf(
      "\nFirst pronounced late-stage relative-WCSS peak: k=%zu (paper reads "
      "k=11 off the same view).\n",
      best_k);
  return 0;
}
