# Empty dependencies file for bench_table6_drift.
# This may be replaced when dependencies are built.
