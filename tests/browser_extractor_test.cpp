// Tests for fingerprint extraction: modifiers, payload budgets, the
// SimulatedDom consistency, and the per-install jitter envelope.
#include <gtest/gtest.h>

#include <cmath>

#include "browser/engine_timelines.h"
#include "browser/extractor.h"

namespace bp::browser {
namespace {

const BrowserRelease* release(ua::Vendor vendor, int version) {
  const auto* r = ReleaseDatabase::instance().find(vendor, version);
  EXPECT_NE(r, nullptr);
  return r;
}

Environment make_env(ua::Vendor vendor, int version, std::uint32_t modifiers = 0,
                     std::uint64_t salt = 1) {
  Environment env;
  env.release = release(vendor, version);
  env.modifiers = modifiers;
  env.session_salt = salt;
  return env;
}

std::size_t element_index() {
  return FeatureCatalog::instance().index_of(
      "Object.getOwnPropertyNames(Element.prototype).length");
}

// Find a salt whose extraction is jitter-free for this environment so
// modifier deltas can be asserted exactly.
std::uint64_t quiet_salt(ua::Vendor vendor, int version) {
  const auto& base =
      baseline_candidates(release(vendor, version)->engine, version);
  for (std::uint64_t salt = 1; salt < 200; ++salt) {
    Environment env = make_env(vendor, version, 0, salt);
    if (extract_candidates(env) == base) return salt;
  }
  ADD_FAILURE() << "no quiet salt found";
  return 0;
}

TEST(Extractor, PristineMatchesBaseline) {
  const std::uint64_t salt = quiet_salt(ua::Vendor::kChrome, 112);
  Environment env = make_env(ua::Vendor::kChrome, 112, 0, salt);
  EXPECT_EQ(extract_candidates(env),
            baseline_candidates(Engine::kBlink, 112));
}

TEST(Extractor, DuckDuckGoAddsTwoToElement) {
  const std::uint64_t salt = quiet_salt(ua::Vendor::kChrome, 111);
  Environment plain = make_env(ua::Vendor::kChrome, 111, 0, salt);
  Environment ddg = make_env(
      ua::Vendor::kChrome, 111,
      static_cast<std::uint32_t>(Modifier::kDuckDuckGoExtension), salt);
  const auto base = extract_candidates(plain);
  const auto modified = extract_candidates(ddg);
  EXPECT_EQ(modified[element_index()], base[element_index()] + 2);
}

TEST(Extractor, FirefoxNoServiceWorkersZeroesSwInterfaces) {
  const std::uint64_t salt = quiet_salt(ua::Vendor::kFirefox, 110);
  Environment env = make_env(
      ua::Vendor::kFirefox, 110,
      static_cast<std::uint32_t>(Modifier::kFirefoxNoServiceWorkers), salt);
  const auto values = extract_candidates(env);
  const auto& catalog = FeatureCatalog::instance();
  for (const char* iface :
       {"ServiceWorkerRegistration", "ServiceWorkerContainer", "ServiceWorker"}) {
    const std::size_t idx = catalog.index_of(
        std::string("Object.getOwnPropertyNames(") + iface +
        ".prototype).length");
    EXPECT_EQ(values[idx], 0) << iface;
  }
}

TEST(Extractor, FirefoxNoServiceWorkersLeavesProductionSetAlone) {
  const std::uint64_t salt = quiet_salt(ua::Vendor::kFirefox, 110);
  Environment plain = make_env(ua::Vendor::kFirefox, 110, 0, salt);
  Environment modified = make_env(
      ua::Vendor::kFirefox, 110,
      static_cast<std::uint32_t>(Modifier::kFirefoxNoServiceWorkers), salt);
  EXPECT_EQ(extract_final(plain), extract_final(modified));
}

TEST(Extractor, TorPatchsetGutsWebGl) {
  const std::uint64_t salt = quiet_salt(ua::Vendor::kFirefox, 102);
  Environment env = make_env(ua::Vendor::kFirefox, 102,
                             static_cast<std::uint32_t>(Modifier::kTorPatchset),
                             salt);
  const auto& catalog = FeatureCatalog::instance();
  const auto values = extract_candidates(env);
  EXPECT_EQ(values[catalog.index_of(
                "Object.getOwnPropertyNames(WebGL2RenderingContext.prototype)"
                ".length")],
            0);
  EXPECT_EQ(values[catalog.index_of(
                "Object.getOwnPropertyNames(AudioContext.prototype).length")],
            0);
}

TEST(Extractor, BravePresentsChromeUserAgent) {
  Environment env = make_env(
      ua::Vendor::kChrome, 113,
      static_cast<std::uint32_t>(Modifier::kBraveStandardShields));
  EXPECT_EQ(env.presented_user_agent().vendor, ua::Vendor::kChrome);
}

TEST(Extractor, BraveBlocksDeviceMemory) {
  Environment env = make_env(
      ua::Vendor::kChrome, 113,
      static_cast<std::uint32_t>(Modifier::kBraveStandardShields));
  const auto& catalog = FeatureCatalog::instance();
  const auto values = extract_candidates(env);
  EXPECT_EQ(values[catalog.index_of(
                "Navigator.prototype.hasOwnProperty('deviceMemory')")],
            0);
}

TEST(Extractor, TorPresentsFirefoxUserAgent) {
  Environment env = make_env(ua::Vendor::kFirefox, 102,
                             static_cast<std::uint32_t>(Modifier::kTorPatchset));
  EXPECT_EQ(env.presented_user_agent().vendor, ua::Vendor::kFirefox);
  EXPECT_EQ(env.presented_user_agent().major_version, 102);
}

TEST(Extractor, JitterIsAtMostOneUnitOnOneFeature) {
  const auto& base = baseline_candidates(Engine::kBlink, 105);
  for (std::uint64_t salt = 0; salt < 300; ++salt) {
    Environment env = make_env(ua::Vendor::kChrome, 105, 0, salt);
    const auto values = extract_candidates(env);
    int changed = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] != base[i]) {
        ++changed;
        EXPECT_LE(std::abs(values[i] - base[i]), 1);
      }
    }
    EXPECT_LE(changed, 1) << "salt " << salt;
  }
}

TEST(Extractor, SelectFeaturesPicksInOrder) {
  const CandidateValues values = {10, 20, 30, 40};
  const FinalValues out = select_features(values, {3, 0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 40.0);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
}

TEST(Extractor, ExtractFinalIs28Wide) {
  Environment env = make_env(ua::Vendor::kChrome, 112);
  EXPECT_EQ(extract_final(env).size(), 28u);
}

TEST(Payload, ProductionUnderOneKilobyte) {
  // The §3 budget: the production payload must stay under 1KB.
  Environment env = make_env(ua::Vendor::kChrome, 112);
  const std::string payload = serialize_payload(
      extract_final(env), ua::format_user_agent(env.presented_user_agent()),
      "0123456789abcdef");
  EXPECT_LT(payload.size(), 1024u);
  EXPECT_GT(payload.size(), 50u);
}

TEST(Payload, ContainsUserAgentAndSession) {
  Environment env = make_env(ua::Vendor::kFirefox, 102);
  const std::string payload =
      serialize_payload(extract_final(env), "UA-STRING", "SESSION-ID");
  EXPECT_NE(payload.find("UA-STRING"), std::string::npos);
  EXPECT_NE(payload.find("SESSION-ID"), std::string::npos);
}

TEST(SimulatedDom, MatchesDirectExtraction) {
  Environment env = make_env(ua::Vendor::kChrome, 110, 0, 7);
  SimulatedDom dom(env);
  EXPECT_EQ(dom.run_production_script(), extract_final(env));
}

TEST(SimulatedDom, PropertyTableSizesMatchValues) {
  Environment env = make_env(ua::Vendor::kFirefox, 108, 0, 3);
  SimulatedDom dom(env);
  const auto values = extract_candidates(env);
  const std::size_t element = element_index();
  EXPECT_EQ(dom.own_property_names(element).size(),
            static_cast<std::size_t>(values[element]));
}

}  // namespace
}  // namespace bp::browser
