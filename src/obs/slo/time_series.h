// Windowed view of a MetricsRegistry: the bridge between cumulative
// counters and the *rates* an operator (and the SLO engine) actually
// alarms on.
//
// A MetricsRegistry only ever answers "how many so far"; burn-rate and
// error-rate alerting need "how many per second over the last five
// minutes".  TimeSeriesWindow periodically snapshots a set of named
// registry instruments into fixed-size per-series rings and derives
// deltas and rates over configurable lookbacks.
//
// The clock is injectable by construction: `sample(now_ms)` takes the
// timestamp instead of reading one, so a test (or the deterministic
// SLO replay) drives time explicitly — every derived value is a pure
// function of the (tick, snapshot) sequence, never of wall time.
// Production callers pass a steady-clock reading on a sampler cadence.
//
// Three series kinds:
//   * track()                — raw instrument value (counter fold,
//     gauge level, callback evaluation, histogram count);
//   * track_sum()            — sum of several instruments as one
//     series (e.g. shed + deadline + rejected = "bad responses");
//   * track_histogram_over() — count of histogram samples above a
//     threshold (e.g. requests over the 100 ms latency budget), so a
//     latency SLO reduces to a plain bad/total counter pair.
//
// Thread-safety: sample() and the readers take one mutex; the sampler
// runs on its own low-rate cadence, so this is nowhere near a hot path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.h"

namespace bp::obs::slo {

class TimeSeriesWindow {
 public:
  // `capacity` is the per-series ring size: how many samples of
  // history each series retains (oldest evicted first).  With a 1 s
  // sampler cadence the default holds one hour.
  explicit TimeSeriesWindow(const MetricsRegistry& registry,
                            std::size_t capacity = 3600);

  TimeSeriesWindow(const TimeSeriesWindow&) = delete;
  TimeSeriesWindow& operator=(const TimeSeriesWindow&) = delete;

  // Register series before sampling.  Re-tracking an existing series
  // name replaces its source and clears its history.  An instrument
  // that does not exist (yet) in the registry reads as 0 — a counter
  // nobody has touched.
  void track(std::string series, std::string metric);
  void track_sum(std::string series, std::vector<std::string> metrics);
  void track_histogram_over(std::string series, std::string metric,
                            std::uint64_t threshold);

  // Snapshot every tracked series at `now_ms` (injectable clock
  // ticks; callers must pass non-decreasing timestamps).
  void sample(std::int64_t now_ms);

  // Most recently sampled value; 0 before the first sample or for an
  // unknown series.
  double latest(std::string_view series) const;

  // Increase over the lookback: newest value minus the value at the
  // oldest retained sample within [newest_ms - lookback_ms, newest_ms].
  // Clamped at 0 (counters are monotonic; a negative delta means the
  // source was reset).  0 with fewer than two samples.
  double delta(std::string_view series, std::int64_t lookback_ms) const;

  // delta() divided by the actual elapsed seconds between the two
  // samples it compared — so a partially-filled window reports the
  // rate over the history it has, not a diluted full-window average.
  double rate_per_second(std::string_view series,
                         std::int64_t lookback_ms) const;

  // Timestamp of the most recent sample() (0 before the first), and
  // how many sample() calls have run.
  std::int64_t last_sample_ms() const;
  std::uint64_t samples() const;

 private:
  struct Point {
    std::int64_t at_ms = 0;
    double value = 0.0;
  };

  enum class SourceKind : std::uint8_t { kValue, kSum, kHistogramOver };

  struct Series {
    SourceKind kind = SourceKind::kValue;
    std::vector<std::string> metrics;  // one entry except for kSum
    std::uint64_t threshold = 0;       // kHistogramOver only
    std::vector<Point> ring;           // size <= capacity
    std::size_t next = 0;              // ring write cursor
    std::size_t size = 0;
  };

  double read_source(const Series& series) const;
  // Newest point and the oldest retained point within the lookback;
  // false when the series has no samples.
  bool span(const Series& series, std::int64_t lookback_ms, Point* oldest,
            Point* newest) const;

  const MetricsRegistry& registry_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, Series, std::less<>> series_;
  std::int64_t last_sample_ms_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace bp::obs::slo
