#include "ml/pca.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/parallel.h"

namespace bp::ml {

namespace {

// Row-blocking grain for the covariance reduction and the projection
// sweep; fixed so the chunk-ordered covariance sums (and therefore the
// eigenbasis) are identical at any thread count.
constexpr std::size_t kRowGrain = 2048;

double off_diagonal_norm(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

}  // namespace

void symmetric_eigen(const Matrix& a_in, std::vector<double>& eigenvalues,
                     Matrix& eigenvectors, double tolerance, int max_sweeps) {
  assert(a_in.rows() == a_in.cols());
  const std::size_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(a) <= tolerance) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan(phi) for the smaller rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) > a(y, y);
  });

  eigenvalues.resize(n);
  eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    eigenvalues[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      eigenvectors(i, j) = v(i, order[j]);
    }
  }
}

void Pca::fit(const Matrix& data, std::size_t n_components) {
  assert(data.rows() > 1 && data.cols() > 0);
  const std::size_t d = data.cols();
  n_components_ = std::min(n_components, d);
  mean_ = data.column_means();

  // Covariance (sample, divisor n-1, matching sklearn) as a blocked
  // parallel reduction over rows: each chunk accumulates its own upper
  // triangle, merged in chunk order.
  const double denom = static_cast<double>(data.rows() - 1);
  Matrix cov = bp::util::parallel_reduce(
      std::size_t{0}, data.rows(), kRowGrain, Matrix(d, d),
      [&](std::size_t begin, std::size_t end) {
        Matrix partial(d, d);
        for (std::size_t r = begin; r < end; ++r) {
          const auto row = data.row(r);
          for (std::size_t i = 0; i < d; ++i) {
            const double di = row[i] - mean_[i];
            if (di == 0.0) continue;
            for (std::size_t j = i; j < d; ++j) {
              partial(i, j) += di * (row[j] - mean_[j]);
            }
          }
        }
        return partial;
      },
      [d](Matrix& acc, Matrix&& part) {
        for (std::size_t i = 0; i < d; ++i) {
          for (std::size_t j = i; j < d; ++j) {
            acc(i, j) += part(i, j);
          }
        }
      });
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }

  Matrix vectors;
  symmetric_eigen(cov, eigenvalues_, vectors);

  components_ = Matrix(d, n_components_);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < n_components_; ++j) {
      components_(i, j) = vectors(i, j);
    }
  }
}

Matrix Pca::transform(const Matrix& data) const {
  assert(fitted() && data.cols() == mean_.size());
  // Row-parallel projection through transform_row, which performs the
  // same center-then-accumulate arithmetic (in the same order) as the
  // historical centered.multiply(components_) path.
  Matrix out(data.rows(), n_components_);
  bp::util::parallel_for(
      std::size_t{0}, data.rows(), kRowGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          transform_row(data.row(r), out.row(r));
        }
      });
  return out;
}

void Pca::transform_row(std::span<const double> in,
                        std::span<double> out) const {
  assert(fitted() && in.size() == mean_.size() && out.size() == n_components_);
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double centered = in[i] - mean_[i];
    if (centered == 0.0) continue;
    const auto components = components_.row(i);
    for (std::size_t j = 0; j < n_components_; ++j) {
      out[j] += centered * components[j];
    }
  }
}

Matrix Pca::fit_transform(const Matrix& data, std::size_t n_components) {
  fit(data, n_components);
  return transform(data);
}

Matrix Pca::inverse_transform(const Matrix& projected) const {
  assert(fitted() && projected.cols() == n_components_);
  Matrix out = projected.multiply(components_.transposed());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] += mean_[c];
    }
  }
  return out;
}

Pca Pca::from_params(std::vector<double> mean, std::vector<double> eigenvalues,
                     Matrix components) {
  assert(components.rows() == mean.size());
  Pca pca;
  pca.mean_ = std::move(mean);
  pca.eigenvalues_ = std::move(eigenvalues);
  pca.n_components_ = components.cols();
  pca.components_ = std::move(components);
  return pca;
}

std::vector<double> Pca::explained_variance_ratio() const {
  double total = 0.0;
  for (double ev : eigenvalues_) total += std::max(ev, 0.0);
  std::vector<double> out(n_components_, 0.0);
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < n_components_; ++i) {
    out[i] = std::max(eigenvalues_[i], 0.0) / total;
  }
  return out;
}

std::vector<double> Pca::cumulative_variance_ratio() const {
  double total = 0.0;
  for (double ev : eigenvalues_) total += std::max(ev, 0.0);
  std::vector<double> out(eigenvalues_.size(), 0.0);
  double running = 0.0;
  for (std::size_t i = 0; i < eigenvalues_.size(); ++i) {
    running += std::max(eigenvalues_[i], 0.0);
    out[i] = total > 0.0 ? running / total : 0.0;
  }
  return out;
}

}  // namespace bp::ml
