// Tests for the retraining supervisor: retry/backoff schedule (with
// deterministic jitter), circuit breaker open/cooldown/half-open-probe,
// and the model-staleness gauge.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/retrain_supervisor.h"

namespace bp::serve {
namespace {

using std::chrono::milliseconds;

ua::UserAgent chrome(int v) { return {ua::Vendor::kChrome, v, ua::Os::kWindows10}; }
ua::UserAgent firefox(int v) {
  return {ua::Vendor::kFirefox, v, ua::Os::kWindows10};
}

core::Polygraph tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign(chrome(100), 0);
  table.assign(firefox(100), 1);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

// A sleep recorder so backoff schedules are asserted without waiting.
struct SleepRecorder {
  std::vector<milliseconds> slept;
  RetrainSupervisor::SleepFn fn() {
    return [this](milliseconds d) { slept.push_back(d); };
  }
};

TEST(RetrainSupervisor, NoDriftLeavesRegistryUntouched) {
  ModelRegistry registry;
  RetrainSupervisor supervisor(
      registry, RetrainConfig{}, /*drift_check=*/[] { return false; },
      /*train=*/[] { return std::optional<core::Polygraph>(tiny_model()); },
      /*validate=*/{}, SleepRecorder{}.fn());
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kNoDrift);
  EXPECT_EQ(registry.version(), 0u);
  const auto status = supervisor.status();
  EXPECT_EQ(status.cycles, 1u);
  EXPECT_EQ(status.attempts, 0u);
  EXPECT_EQ(status.staleness_cycles, 1u);
}

TEST(RetrainSupervisor, DriftPlusHealthyPipelinePublishes) {
  ModelRegistry registry;
  RetrainSupervisor supervisor(
      registry, RetrainConfig{}, [] { return true; },
      [] { return std::optional<core::Polygraph>(tiny_model()); },
      [](const core::Polygraph& m) { return m.trained(); });
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kPublished);
  EXPECT_EQ(registry.version(), 1u);
  const auto status = supervisor.status();
  EXPECT_EQ(status.published, 1u);
  EXPECT_EQ(status.last_published_version, 1u);
  EXPECT_EQ(status.staleness_cycles, 0u);
  EXPECT_FALSE(status.breaker_open);
}

TEST(RetrainSupervisor, RetriesWithExponentialJitteredBackoff) {
  ModelRegistry registry;
  SleepRecorder recorder;
  int calls = 0;
  RetrainSupervisor supervisor(
      registry, RetrainConfig{}, [] { return true; },
      [&]() -> std::optional<core::Polygraph> {
        // Fail twice, succeed on the third attempt.
        if (++calls < 3) return std::nullopt;
        return tiny_model();
      },
      {}, recorder.fn());

  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kPublished);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(recorder.slept.size(), 2u);
  // initial_backoff=100ms, multiplier=2, jitter in [0.5, 1.0):
  EXPECT_GE(recorder.slept[0].count(), 50);
  EXPECT_LT(recorder.slept[0].count(), 100);
  EXPECT_GE(recorder.slept[1].count(), 100);
  EXPECT_LT(recorder.slept[1].count(), 200);
  EXPECT_EQ(supervisor.status().attempts, 3u);
}

TEST(RetrainSupervisor, BackoffScheduleIsDeterministicPerSeed) {
  const auto schedule_for = [](std::uint64_t seed) {
    ModelRegistry registry;
    SleepRecorder recorder;
    RetrainConfig config;
    config.jitter_seed = seed;
    config.max_attempts = 5;
    RetrainSupervisor supervisor(
        registry, config, [] { return true; },
        []() -> std::optional<core::Polygraph> { return std::nullopt; }, {},
        recorder.fn());
    supervisor.run_cycle();
    return recorder.slept;
  };
  const auto a = schedule_for(7);
  const auto b = schedule_for(7);
  const auto c = schedule_for(8);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RetrainSupervisor, BackoffIsCappedAtMax) {
  ModelRegistry registry;
  SleepRecorder recorder;
  RetrainConfig config;
  config.max_attempts = 8;
  config.initial_backoff = milliseconds(100);
  config.max_backoff = milliseconds(300);
  RetrainSupervisor supervisor(
      registry, config, [] { return true; },
      []() -> std::optional<core::Polygraph> { return std::nullopt; }, {},
      recorder.fn());
  supervisor.run_cycle();
  ASSERT_EQ(recorder.slept.size(), 7u);
  for (const auto d : recorder.slept) {
    EXPECT_LT(d.count(), 300);
    EXPECT_GE(d.count(), 50);
  }
}

TEST(RetrainSupervisor, ValidationFailureCountsAsFailedAttempt) {
  ModelRegistry registry;
  SleepRecorder recorder;
  RetrainSupervisor supervisor(
      registry, RetrainConfig{}, [] { return true; },
      [] { return std::optional<core::Polygraph>(tiny_model()); },
      [](const core::Polygraph&) { return false; },  // holdout always fails
      recorder.fn());
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kFailed);
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(supervisor.status().attempts, 3u);  // default max_attempts
  EXPECT_EQ(supervisor.status().failed_cycles, 1u);
}

TEST(RetrainSupervisor, BreakerOpensCoolsDownAndProbes) {
  ModelRegistry registry;
  SleepRecorder recorder;
  RetrainConfig config;
  config.max_attempts = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown_cycles = 2;
  std::atomic<bool> train_healthy{false};
  RetrainSupervisor supervisor(
      registry, config, [] { return true; },
      [&]() -> std::optional<core::Polygraph> {
        if (train_healthy.load()) return tiny_model();
        return std::nullopt;
      },
      {}, recorder.fn());

  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kFailed);   // streak 1
  EXPECT_FALSE(supervisor.status().breaker_open);
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kFailed);   // streak 2: opens
  EXPECT_TRUE(supervisor.status().breaker_open);

  // Two cooldown cycles pass without touching the training pipeline.
  const auto attempts_before = supervisor.status().attempts;
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kBreakerOpen);
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kBreakerOpen);
  EXPECT_EQ(supervisor.status().attempts, attempts_before);

  // Half-open probe while still broken: fails, breaker re-opens.
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kFailed);
  EXPECT_TRUE(supervisor.status().breaker_open);
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kBreakerOpen);
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kBreakerOpen);

  // Pipeline fixed: the next probe publishes and closes the breaker.
  train_healthy.store(true);
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kPublished);
  EXPECT_FALSE(supervisor.status().breaker_open);
  EXPECT_EQ(supervisor.status().consecutive_failures, 0);
  EXPECT_EQ(registry.version(), 1u);
}

TEST(RetrainSupervisor, StalenessGaugeTracksCyclesSinceLastPublish) {
  ModelRegistry registry;
  SleepRecorder recorder;
  RetrainConfig config;
  config.max_attempts = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown_cycles = 1;
  std::atomic<bool> train_healthy{true};
  RetrainSupervisor supervisor(
      registry, config, [] { return true; },
      [&]() -> std::optional<core::Polygraph> {
        if (train_healthy.load()) return tiny_model();
        return std::nullopt;
      },
      {}, recorder.fn());

  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kPublished);
  EXPECT_EQ(supervisor.status().staleness_cycles, 0u);

  train_healthy.store(false);
  supervisor.run_cycle();  // failed
  supervisor.run_cycle();  // failed, breaker opens
  supervisor.run_cycle();  // breaker open
  EXPECT_EQ(supervisor.status().staleness_cycles, 3u);

  train_healthy.store(true);
  supervisor.run_cycle();  // probe publishes
  EXPECT_EQ(supervisor.status().staleness_cycles, 0u);
}

TEST(RetrainSupervisor, ResetBreakerRestoresTraining) {
  ModelRegistry registry;
  SleepRecorder recorder;
  RetrainConfig config;
  config.max_attempts = 1;
  config.breaker_threshold = 1;
  config.breaker_cooldown_cycles = 100;  // would stay open a long time
  std::atomic<bool> train_healthy{false};
  RetrainSupervisor supervisor(
      registry, config, [] { return true; },
      [&]() -> std::optional<core::Polygraph> {
        if (train_healthy.load()) return tiny_model();
        return std::nullopt;
      },
      {}, recorder.fn());

  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kFailed);
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kBreakerOpen);

  train_healthy.store(true);
  supervisor.reset_breaker();  // operator fixed the pipeline
  EXPECT_EQ(supervisor.run_cycle(), CycleResult::kPublished);
}

TEST(RetrainSupervisor, BackgroundLoopRunsCyclesUntilStopped) {
  ModelRegistry registry;
  std::atomic<int> checks{0};
  RetrainSupervisor supervisor(
      registry, RetrainConfig{},
      [&] {
        ++checks;
        return false;
      },
      []() -> std::optional<core::Polygraph> { return std::nullopt; }, {});
  supervisor.start(std::chrono::milliseconds(1));
  while (checks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  supervisor.stop();
  const auto after = supervisor.status().cycles;
  EXPECT_GE(after, 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(supervisor.status().cycles, after);  // really stopped
}

}  // namespace
}  // namespace bp::serve
