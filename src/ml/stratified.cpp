#include "ml/stratified.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace bp::ml {

std::vector<std::size_t> stratified_sample(
    const std::vector<std::uint32_t>& strata, const StratifiedConfig& config) {
  std::map<std::uint32_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < strata.size(); ++i) {
    groups[strata[i]].push_back(i);
  }

  bp::util::Rng rng(config.seed);
  std::vector<std::size_t> kept;
  for (auto& [stratum, rows] : groups) {
    // Keep up to the cap; when a keep-fraction is set, shrink large
    // strata to that fraction (never below the per-stratum floor).
    std::size_t quota = config.max_per_stratum;
    if (config.keep_fraction > 0.0) {
      const auto fractional = static_cast<std::size_t>(std::ceil(
          config.keep_fraction * static_cast<double>(rows.size())));
      quota = std::min(quota, std::max(config.min_per_stratum, fractional));
    }
    quota = std::min(quota, rows.size());

    if (quota == rows.size()) {
      kept.insert(kept.end(), rows.begin(), rows.end());
      continue;
    }
    bp::util::Rng stratum_rng = rng.fork(stratum);
    for (std::size_t pick : stratum_rng.sample_indices(rows.size(), quota)) {
      kept.push_back(rows[pick]);
    }
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace bp::ml
