#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "obs/prof/prof.h"

namespace bp::util {

// One blocking parallel region (a run_chunks call).  Lives on the
// caller's stack; the protocol below guarantees no lane touches it
// after the caller's completion wait returns:
//   * chunk indices are handed out under the pool mutex while the
//     region sits in `active_`, and the region is de-listed the moment
//     its last chunk is claimed, so no new lane can reach it;
//   * completion counting and the final notify happen under the
//     region's own mutex, which the waiting caller also holds to check
//     the predicate — a lane finishing the last chunk cannot signal
//     between the caller's predicate check and its wait.
struct ThreadPool::Region {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n_chunks = 0;
  std::size_t next = 0;  // guarded by the pool mutex
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;  // guarded by `mutex`
  std::exception_ptr error;
  bool failed = false;  // guarded by `mutex`; set once, then chunks skip
};

ThreadPool::ThreadPool(std::size_t threads) {
  threads_ = threads == 0 ? default_thread_count() : threads;
  start_workers();
}

ThreadPool::~ThreadPool() { stop_workers(); }

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("BP_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return std::min<std::size_t>(parsed, 256);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

void ThreadPool::resize(std::size_t threads) {
  const std::size_t target = threads == 0 ? default_thread_count() : threads;
  if (target == threads_) return;
  stop_workers();
  threads_ = target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
  start_workers();
}

void ThreadPool::start_workers() {
  workers_.reserve(threads_ > 0 ? threads_ - 1 : 0);
  for (std::size_t i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::execute_chunk(Region& region, std::size_t chunk) {
  {
    std::lock_guard<std::mutex> lock(region.mutex);
    if (region.failed) {
      // A prior chunk threw: count this one done without running it.
      if (++region.done == region.n_chunks) region.done_cv.notify_all();
      return;
    }
  }
  std::exception_ptr error;
  try {
    (*region.fn)(chunk);
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(region.mutex);
  if (error && !region.failed) {
    region.failed = true;
    region.error = error;
  }
  if (++region.done == region.n_chunks) region.done_cv.notify_all();
}

void ThreadPool::worker_loop(std::size_t lane) {
  // Register the lane with the profiling plane for its whole lifetime;
  // the handle's destructor unregisters before the thread joins.
  obs::prof::ThreadHandle prof_handle("pool.worker",
                                      static_cast<std::uint32_t>(lane));
  for (;;) {
    Region* region = nullptr;
    std::size_t chunk = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !active_.empty(); });
      // On shutdown, leave immediately: every region's caller is a lane
      // of its own and will finish the remaining chunks itself.
      if (stop_) return;
      region = active_.back();  // innermost region first
      chunk = region->next++;
      if (region->next >= region->n_chunks) {
        active_.erase(std::find(active_.begin(), active_.end(), region));
      }
    }
    execute_chunk(*region, chunk);
  }
}

void ThreadPool::run_chunks(std::size_t n_chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (n_chunks == 0) return;
  if (n_chunks == 1 || threads_ == 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) fn(c);
    return;
  }

  Region region;
  region.fn = &fn;
  region.n_chunks = n_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_.push_back(&region);
  }
  work_cv_.notify_all();

  // The caller is a dispatch lane too: claim chunks until none remain.
  for (;;) {
    std::size_t chunk = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (region.next >= region.n_chunks) {
        const auto it = std::find(active_.begin(), active_.end(), &region);
        if (it != active_.end()) active_.erase(it);
        break;
      }
      chunk = region.next++;
      if (region.next >= region.n_chunks) {
        active_.erase(std::find(active_.begin(), active_.end(), &region));
      }
    }
    execute_chunk(region, chunk);
  }

  std::unique_lock<std::mutex> lock(region.mutex);
  region.done_cv.wait(lock,
                      [&region] { return region.done == region.n_chunks; });
  if (region.error) std::rethrow_exception(region.error);
}

std::size_t parallel_threads() { return ThreadPool::instance().thread_count(); }

void set_parallel_threads(std::size_t threads) {
  ThreadPool::instance().resize(threads);
}

}  // namespace bp::util
