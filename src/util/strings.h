// Small string utilities shared across the Browser Polygraph libraries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bp::util {

// Split on a single-character delimiter.  Consecutive delimiters produce
// empty fields (CSV-style), and the result always has count(delim)+1
// entries.
std::vector<std::string_view> split(std::string_view s, char delim);

// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// True if `s` begins with / contains `needle` (case-sensitive).
bool starts_with(std::string_view s, std::string_view prefix);
bool contains(std::string_view s, std::string_view needle);

// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

// Parse a non-negative integer; returns nullopt on any non-digit or
// overflow past 2^63-1.
std::optional<std::int64_t> parse_int(std::string_view s);

// Parse a double via std::from_chars semantics; nullopt on failure.
std::optional<double> parse_double(std::string_view s);

// printf-style formatting into std::string.
std::string format_double(double v, int precision);

// Join values with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

// Hex-encode 64-bit values — used for opaque session identifiers.
std::string to_hex(std::uint64_t v);

}  // namespace bp::util
