// VerdictCache correctness: content addressing, the version-keyed
// invalidation protocol, the seqlock under concurrent hammering (run
// under TSan/ASan via scripts/tier1.sh), and the cache's integration
// into the ScoringEngine — synchronous submit-side hits, worker-side
// hits against the batch's snapshot version, hot-swap invalidation
// (no verdict from version K after K+1 publishes), metrics, tracing
// and the audit `cached` tag.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/audit.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"
#include "serve/verdict_cache.h"

namespace bp::serve {
namespace {

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100,
                                ua::Os::kWindows10};

core::Detection make_detection(std::uint64_t salt) {
  core::Detection d;
  d.predicted_cluster = salt % 11;
  if (salt % 3 != 0) d.expected_cluster = (salt + 1) % 11;
  d.flagged = (salt % 2) == 1;
  d.risk_factor = static_cast<int>(salt % 23);
  d.centroid_distance2 = static_cast<double>(salt) * 0.125 + 0.5;
  return d;
}

void expect_same_detection(const core::Detection& a,
                           const core::Detection& b) {
  EXPECT_EQ(a.predicted_cluster, b.predicted_cluster);
  EXPECT_EQ(a.expected_cluster, b.expected_cluster);
  EXPECT_EQ(a.flagged, b.flagged);
  EXPECT_EQ(a.risk_factor, b.risk_factor);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.centroid_distance2),
            std::bit_cast<std::uint64_t>(b.centroid_distance2));
}

// ----------------------------- keying -----------------------------

TEST(VerdictCacheKey, DeterministicAndContentSensitive) {
  const std::vector<std::int32_t> features{1, 2, 3, 4};
  const auto key = VerdictCache::key_of(features, kChrome100);
  const auto same = VerdictCache::key_of(features, kChrome100);
  EXPECT_EQ(key.primary, same.primary);
  EXPECT_EQ(key.check, same.check);
  EXPECT_NE(key.primary, 0u);  // 0 is the empty-slot sentinel

  const std::vector<std::int32_t> mutated{1, 2, 3, 5};
  const auto other_features = VerdictCache::key_of(mutated, kChrome100);
  EXPECT_NE(key.primary, other_features.primary);

  const auto other_ua = VerdictCache::key_of(features, kFirefox100);
  EXPECT_NE(key.primary, other_ua.primary);

  const ua::UserAgent chrome101{ua::Vendor::kChrome, 101, ua::Os::kWindows10};
  const auto other_version = VerdictCache::key_of(features, chrome101);
  EXPECT_NE(key.primary, other_version.primary);

  // Same words, different split: {1,2} vs {1,2,0} must not collide.
  const std::vector<std::int32_t> shorter{1, 2};
  const std::vector<std::int32_t> padded{1, 2, 0};
  EXPECT_NE(VerdictCache::key_of(shorter, kChrome100).primary,
            VerdictCache::key_of(padded, kChrome100).primary);
}

// --------------------------- slot protocol ---------------------------

TEST(VerdictCacheSlots, RoundTripsFullDetection) {
  VerdictCache cache({.capacity = 64});
  const auto key =
      VerdictCache::key_of(std::vector<std::int32_t>{7, 7}, kChrome100);
  const core::Detection stored = make_detection(41);
  cache.insert(key, /*version=*/3, stored);

  core::Detection out;
  ASSERT_TRUE(cache.lookup(key, 3, out));
  expect_same_detection(out, stored);

  // nullopt expected_cluster survives the packing too.
  core::Detection no_expected;
  no_expected.predicted_cluster = 5;
  no_expected.centroid_distance2 = -0.0;  // sign of zero must round-trip
  const auto key2 =
      VerdictCache::key_of(std::vector<std::int32_t>{9, 9}, kChrome100);
  cache.insert(key2, 3, no_expected);
  ASSERT_TRUE(cache.lookup(key2, 3, out));
  expect_same_detection(out, no_expected);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(VerdictCacheSlots, MissOnEmptyAndOnDifferentKey) {
  VerdictCache cache({.capacity = 64});
  const auto key =
      VerdictCache::key_of(std::vector<std::int32_t>{1}, kChrome100);
  core::Detection out;
  EXPECT_FALSE(cache.lookup(key, 1, out));

  // A colliding primary with a different check hash must miss, never
  // serve the wrong verdict.
  cache.insert(key, 1, make_detection(7));
  VerdictCache::Key wrong_check = key;
  wrong_check.check ^= 0xdeadbeefULL;
  EXPECT_FALSE(cache.lookup(wrong_check, 1, out));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(VerdictCacheSlots, VersionMismatchIsStaleMissBothDirections) {
  VerdictCache cache({.capacity = 64});
  const auto key =
      VerdictCache::key_of(std::vector<std::int32_t>{5, 5}, kChrome100);
  cache.insert(key, /*version=*/1, make_detection(1));

  core::Detection out;
  // Newer serving version: the entry predates the hot swap.
  EXPECT_FALSE(cache.lookup(key, 2, out));
  // Older serving version (rollback): a v2 entry must not serve v1.
  cache.insert(key, 2, make_detection(2));
  EXPECT_FALSE(cache.lookup(key, 1, out));

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.stale, 2u);
  EXPECT_EQ(stats.misses, 2u);

  // Rescoring under the current version overwrites the stale entry and
  // restores hits.
  ASSERT_TRUE(cache.lookup(key, 2, out));
  expect_same_detection(out, make_detection(2));
}

TEST(VerdictCacheSlots, EvictionCountsOnlyLiveDisplacement) {
  VerdictCache cache({.capacity = 4});  // slot index = primary & 3
  const VerdictCache::Key a{.primary = 0x10, .check = 1};  // slot 0
  const VerdictCache::Key b{.primary = 0x20, .check = 2};  // slot 0 too
  cache.insert(a, 1, make_detection(1));
  cache.insert(b, 1, make_detection(2));  // displaces live same-version a
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Displacing a *stale* entry is reclamation, not eviction.
  cache.insert(a, 2, make_detection(3));
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Refreshing the same key in place is not an eviction either.
  cache.insert(a, 2, make_detection(4));
  EXPECT_EQ(cache.stats().evictions, 1u);

  core::Detection out;
  ASSERT_TRUE(cache.lookup(a, 2, out));
  expect_same_detection(out, make_detection(4));
}

TEST(VerdictCacheSlots, OccupancyTracksDistinctSlots) {
  VerdictCache cache({.capacity = 8});
  EXPECT_EQ(cache.capacity(), 8u);
  EXPECT_EQ(cache.stats().occupancy, 0u);
  cache.insert({.primary = 1, .check = 1}, 1, make_detection(1));
  cache.insert({.primary = 2, .check = 2}, 1, make_detection(2));
  EXPECT_EQ(cache.stats().occupancy, 2u);
  // Same slot again (same key, and then a colliding key): no growth.
  cache.insert({.primary = 1, .check = 1}, 2, make_detection(3));
  cache.insert({.primary = 9, .check = 9}, 1, make_detection(4));  // 9&7==1
  EXPECT_EQ(cache.stats().occupancy, 2u);
}

TEST(VerdictCacheSlots, CapacityRoundsUpToPowerOfTwo) {
  VerdictCache cache({.capacity = 100});
  EXPECT_EQ(cache.capacity(), 128u);
}

// The seqlock under fire: concurrent writers re-publishing versioned
// verdicts while readers verify that every hit is internally consistent
// — the detection a hit returns must be exactly the one some writer
// stored for that (key, version).  A torn read would surface as a
// mismatched field pair.  tier1.sh runs this under TSan and ASan.
TEST(VerdictCacheConcurrency, HammeredSlotsNeverTear) {
  VerdictCache cache({.capacity = 32});  // tiny: force slot sharing
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kKeys = 64;
  constexpr std::uint64_t kVersions = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};

  auto key_for = [](std::uint64_t i) {
    return VerdictCache::Key{.primary = (i + 1) * 0x9e3779b97f4a7c15ULL,
                             .check = (i + 1) * 0xc2b2ae3d27d4eb4fULL};
  };
  // The canonical detection for (key i, version v) — writers store it,
  // readers demand it.
  auto detection_for = [](std::uint64_t i, std::uint64_t v) {
    return make_detection(i * 131 + v * 17);
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t i = static_cast<std::uint64_t>(w);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t version = (i / kKeys) % kVersions + 1;
        cache.insert(key_for(i % kKeys), version,
                     detection_for(i % kKeys, version), w);
        ++i;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::uint64_t i = static_cast<std::uint64_t>(r) * 7;
      core::Detection out;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = i % kKeys;
        const std::uint64_t version = i % kVersions + 1;
        if (cache.lookup(key_for(k), version, out, r + 8)) {
          const core::Detection want = detection_for(k, version);
          ASSERT_EQ(out.predicted_cluster, want.predicted_cluster);
          ASSERT_EQ(out.expected_cluster, want.expected_cluster);
          ASSERT_EQ(out.flagged, want.flagged);
          ASSERT_EQ(out.risk_factor, want.risk_factor);
          ASSERT_EQ(std::bit_cast<std::uint64_t>(out.centroid_distance2),
                    std::bit_cast<std::uint64_t>(want.centroid_distance2));
          hits.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  EXPECT_GT(hits.load(), 0u) << "hammer never hit — test is vacuous";
}

// ------------------------ engine integration ------------------------

core::Polygraph make_model(bool swapped_table) {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign(kChrome100, swapped_table ? 1 : 0);
  table.assign(kFirefox100, swapped_table ? 0 : 1);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

ScoreRequest request_at_origin(std::uint64_t id) {
  ScoreRequest request;
  request.id = id;
  request.features = {0, 0};
  request.claimed = kChrome100;
  return request;
}

struct Collected {
  std::mutex mutex;
  std::vector<ScoreResponse> responses;
  ScoringEngine::ResponseCallback callback() {
    return [this](const ScoreResponse& response) {
      std::lock_guard lock(mutex);
      responses.push_back(response);
    };
  }
};

TEST(VerdictCacheEngine, RepeatSessionHitsAndMatchesFirstVerdict) {
  ModelRegistry registry;
  ASSERT_GT(registry.publish(make_model(false)), 0u);
  Collected collected;
  EngineConfig config;
  config.workers = 1;
  config.cache_capacity = 256;
  ScoringEngine engine(registry, config, collected.callback());

  ASSERT_EQ(engine.submit(request_at_origin(1)), SubmitResult::kAdmitted);
  engine.drain();  // first: a miss, scored by a worker, inserted
  ASSERT_EQ(engine.submit(request_at_origin(2)), SubmitResult::kAdmitted);
  engine.drain();
  engine.stop();

  ASSERT_EQ(collected.responses.size(), 2u);
  const auto& first = collected.responses[0];
  const auto& second = collected.responses[1];
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.status, ResponseStatus::kScored);
  EXPECT_EQ(second.model_version, first.model_version);
  expect_same_detection(second.detection, first.detection);

  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  const MetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.scored, 2u);
  EXPECT_EQ(metrics.cached, 1u);
}

TEST(VerdictCacheEngine, SubmitSideHitAnswersSynchronously) {
  ModelRegistry registry;
  ASSERT_GT(registry.publish(make_model(false)), 0u);
  Collected collected;
  EngineConfig config;
  config.workers = 1;
  config.cache_capacity = 256;
  ScoringEngine engine(registry, config, collected.callback());

  ASSERT_EQ(engine.submit(request_at_origin(1)), SubmitResult::kAdmitted);
  engine.drain();
  // The repeat is answered on *this* thread before submit returns.
  ASSERT_EQ(engine.submit(request_at_origin(2)), SubmitResult::kAdmitted);
  {
    std::lock_guard lock(collected.mutex);
    ASSERT_EQ(collected.responses.size(), 2u);
    EXPECT_TRUE(collected.responses[1].cached);
  }
  engine.stop();
}

TEST(VerdictCacheEngine, DisabledByDefaultAndStatsAreZero) {
  ModelRegistry registry;
  ASSERT_GT(registry.publish(make_model(false)), 0u);
  Collected collected;
  EngineConfig config;
  config.workers = 1;
  ScoringEngine engine(registry, config, collected.callback());
  EXPECT_EQ(engine.cache(), nullptr);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(engine.submit(request_at_origin(i)), SubmitResult::kAdmitted);
  }
  engine.drain();
  engine.stop();
  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts + stats.capacity, 0u);
  EXPECT_EQ(engine.metrics().cached, 0u);
  for (const auto& response : collected.responses) {
    EXPECT_FALSE(response.cached);
  }
}

TEST(VerdictCacheEngine, HotSwapInvalidatesAtomically) {
  // The invalidation contract end to end: verdicts cached under v1 must
  // never be served once v2 is published — model B flips the flag for
  // the same session, so a stale replay would be *visible*, not just
  // wrong-version.
  ModelRegistry registry;
  ASSERT_GT(registry.publish(make_model(false)), 0u);  // v1: clean
  Collected collected;
  EngineConfig config;
  config.workers = 1;
  config.cache_capacity = 256;
  ScoringEngine engine(registry, config, collected.callback());

  ASSERT_EQ(engine.submit(request_at_origin(1)), SubmitResult::kAdmitted);
  engine.drain();
  ASSERT_EQ(engine.submit(request_at_origin(2)), SubmitResult::kAdmitted);
  engine.drain();  // cached v1 replay

  ASSERT_EQ(registry.publish(make_model(true)), 2u);  // v2: flags it
  ASSERT_EQ(engine.submit(request_at_origin(3)), SubmitResult::kAdmitted);
  engine.drain();  // stale entry -> rescored under v2
  ASSERT_EQ(engine.submit(request_at_origin(4)), SubmitResult::kAdmitted);
  engine.drain();  // cached v2 replay
  engine.stop();

  ASSERT_EQ(collected.responses.size(), 4u);
  for (const auto& response : collected.responses) {
    SCOPED_TRACE(response.id);
    const bool after_swap = response.id >= 3;
    EXPECT_EQ(response.model_version, after_swap ? 2u : 1u);
    EXPECT_EQ(response.detection.flagged, after_swap);
    EXPECT_EQ(response.cached, response.id == 2 || response.id == 4);
  }
  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_GE(stats.stale, 1u);  // the post-swap miss saw the v1 entry
}

TEST(VerdictCacheEngine, NoStaleVerdictUnderConcurrentSwaps) {
  // Concurrent load against repeated hot swaps between models whose
  // verdicts differ: every response's flag must match the version it
  // names — a verdict from version K served after observing K+1 in the
  // same response would trip the parity check.
  ModelRegistry registry;
  ASSERT_GT(registry.publish(make_model(false)), 0u);
  std::atomic<std::uint64_t> parity_errors{0};
  EngineConfig config;
  config.workers = 2;
  config.cache_capacity = 128;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& response) {
    if (response.status != ResponseStatus::kScored) return;
    // Table A (odd versions) leaves origin/Chrome clean; table B (even
    // versions) flags it.
    const bool expect_flag = response.model_version % 2 == 0;
    if (response.detection.flagged != expect_flag) {
      parity_errors.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    bool swapped = true;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.publish(make_model(swapped));
      swapped = !swapped;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::uint64_t id = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_NE(engine.submit(request_at_origin(++id)), SubmitResult::kStopped);
  }
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  engine.drain();
  engine.stop();

  EXPECT_EQ(parity_errors.load(), 0u);
  EXPECT_GT(engine.cache_stats().hits, 0u) << "soak never hit the cache";
}

TEST(VerdictCacheEngine, CachedResponsesTraceAndAuditWithTag) {
  ModelRegistry registry;
  ASSERT_GT(registry.publish(make_model(true)), 0u);  // flags origin/Chrome
  obs::TraceSink trace;
  obs::AuditTrail audit;
  Collected collected;
  EngineConfig config;
  config.workers = 1;
  config.cache_capacity = 256;
  config.trace = &trace;
  config.audit = &audit;
  ScoringEngine engine(registry, config, collected.callback());

  ASSERT_EQ(engine.submit(request_at_origin(10)), SubmitResult::kAdmitted);
  engine.drain();
  ASSERT_EQ(engine.submit(request_at_origin(11)), SubmitResult::kAdmitted);
  engine.drain();
  engine.stop();

  bool saw_cache_hit_span = false;
  for (const auto& event : trace.events()) {
    if (event.trace_id == 11 && event.span_id == 3) {
      EXPECT_STREQ(event.name, "cache_hit");
      saw_cache_hit_span = true;
    }
  }
  EXPECT_TRUE(saw_cache_hit_span);

  const auto records = audit.records();
  ASSERT_EQ(records.size(), 2u);  // both flagged -> both audited
  EXPECT_FALSE(records[0].cached());
  EXPECT_TRUE(records[1].cached());
  // Replay stays exact: identical evidence under the same version.
  EXPECT_EQ(records[0].model_version, records[1].model_version);
  EXPECT_EQ(records[0].predicted_cluster, records[1].predicted_cluster);
  EXPECT_EQ(records[0].expected_cluster, records[1].expected_cluster);
  EXPECT_EQ(records[0].risk_factor, records[1].risk_factor);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(records[0].centroid_distance2),
            std::bit_cast<std::uint64_t>(records[1].centroid_distance2));
  EXPECT_TRUE(records[0].flagged() && records[1].flagged());
}

}  // namespace
}  // namespace bp::serve
