#include "serve/retrain_supervisor.h"

#include <algorithm>
#include <utility>

#include "obs/prof/prof.h"
#include "util/rng.h"

namespace bp::serve {

std::string_view cycle_result_name(CycleResult r) noexcept {
  switch (r) {
    case CycleResult::kNoDrift: return "no_drift";
    case CycleResult::kPublished: return "published";
    case CycleResult::kFailed: return "failed";
    case CycleResult::kBreakerOpen: return "breaker_open";
  }
  return "unknown";
}

RetrainSupervisor::RetrainSupervisor(ModelRegistry& registry,
                                     RetrainConfig config,
                                     DriftCheck drift_check, TrainFn train,
                                     ValidateFn validate, SleepFn sleep)
    : registry_(registry),
      config_(config),
      drift_check_(std::move(drift_check)),
      train_(std::move(train)),
      validate_(std::move(validate)),
      sleep_(std::move(sleep)),
      jitter_state_(config.jitter_seed) {
  if (!sleep_) {
    sleep_ = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
}

RetrainSupervisor::~RetrainSupervisor() { stop(); }

std::chrono::milliseconds RetrainSupervisor::backoff_before_attempt(
    int attempt) {
  double backoff = static_cast<double>(config_.initial_backoff.count());
  for (int i = 0; i < attempt; ++i) backoff *= config_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(config_.max_backoff.count()));
  // Deterministic jitter in [0.5, 1.0): splitmix64 is a pure function
  // of the advancing state, so the same jitter_seed replays the same
  // backoff schedule — chaos runs stay reproducible.
  const double u =
      static_cast<double>(bp::util::splitmix64(jitter_state_) >> 11) *
      0x1.0p-53;
  backoff *= 0.5 + 0.5 * u;
  return std::chrono::milliseconds(static_cast<std::int64_t>(backoff));
}

CycleResult RetrainSupervisor::run_cycle() {
  std::unique_lock lock(mutex_);
  ++status_.cycles;
  const std::uint64_t attempts_before = status_.attempts;
  const CycleResult result = run_cycle_locked(lock);
  if (config_.registry != nullptr) {
    export_status_locked(result, status_.attempts - attempts_before);
  }
  return result;
}

CycleResult RetrainSupervisor::run_cycle_locked(
    std::unique_lock<std::mutex>& lock) {
  // Trace id: the (1 << 62) block keeps supervisor cycles disjoint from
  // request-path trace ids, and the cycle number makes the id (and so
  // the sampling decision) deterministic.
  const std::uint64_t trace_id = (std::uint64_t{1} << 62) + status_.cycles;
  obs::TraceSink* trace = config_.trace;
  const bool traced = trace != nullptr && trace->sampled(trace_id);
  const std::int64_t cycle_begin_us = traced ? obs::steady_now_us() : 0;
  const auto finish = [&](CycleResult result) {
    if (traced) {
      trace->record({trace_id, 1, 0, "retrain_cycle", cycle_begin_us,
                     obs::steady_now_us()});
    }
    return result;
  };

  if (status_.breaker_open) {
    if (breaker_cooldown_remaining_ > 0) {
      --breaker_cooldown_remaining_;
      ++status_.staleness_cycles;
      return finish(CycleResult::kBreakerOpen);
    }
    // Cooldown elapsed: half-open — let one probe cycle through.  A
    // success below closes the breaker; a failure re-opens the cooldown.
  }

  const std::int64_t drift_begin_us = traced ? obs::steady_now_us() : 0;
  const bool drifted = drift_check_();
  if (traced) {
    trace->record({trace_id, 2, 1, "drift_check", drift_begin_us,
                   obs::steady_now_us()});
  }
  if (!drifted) {
    // The frozen model still holds; a healthy pipeline also clears any
    // half-open breaker (nothing to probe until drift returns).
    ++status_.staleness_cycles;
    return finish(CycleResult::kNoDrift);
  }

  // Span 3 "train" covers the whole attempt loop — retries and backoff
  // included — so its duration is the cycle's total training cost.
  const std::int64_t train_begin_us = traced ? obs::steady_now_us() : 0;
  const auto end_train_span = [&] {
    if (traced) {
      trace->record(
          {trace_id, 3, 1, "train", train_begin_us, obs::steady_now_us()});
    }
  };

  for (int attempt = 0; attempt < std::max(1, config_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      const auto backoff = backoff_before_attempt(attempt - 1);
      status_.last_backoff = backoff;
      // Sleep outside the lock so status() stays readable mid-backoff.
      lock.unlock();
      sleep_(backoff);
      lock.lock();
    }
    ++status_.attempts;

    std::optional<core::Polygraph> candidate = train_();
    if (!candidate.has_value()) continue;  // retrain crashed / no data

    const std::int64_t validate_begin_us = traced ? obs::steady_now_us() : 0;
    const bool valid = !validate_ || validate_(*candidate);
    if (traced) {
      trace->record({trace_id, 4, 1, "validate", validate_begin_us,
                     obs::steady_now_us()});
    }
    if (!valid) continue;  // failed holdout

    const std::int64_t publish_begin_us = traced ? obs::steady_now_us() : 0;
    const std::uint64_t version = registry_.publish(std::move(*candidate));
    if (version == 0) continue;  // registry refused (untrained model)
    end_train_span();
    if (traced) {
      trace->record({trace_id, 5, 1, "publish", publish_begin_us,
                     obs::steady_now_us()});
    }

    status_.last_published_version = version;
    ++status_.published;
    status_.consecutive_failures = 0;
    status_.breaker_open = false;
    breaker_cooldown_remaining_ = 0;
    status_.staleness_cycles = 0;
    return finish(CycleResult::kPublished);
  }
  end_train_span();

  ++status_.failed_cycles;
  ++status_.consecutive_failures;
  ++status_.staleness_cycles;
  if (status_.consecutive_failures >= config_.breaker_threshold) {
    status_.breaker_open = true;
    breaker_cooldown_remaining_ = config_.breaker_cooldown_cycles;
  }
  return finish(CycleResult::kFailed);
}

void RetrainSupervisor::export_status_locked(CycleResult result,
                                             std::uint64_t attempts_delta) {
  obs::MetricsRegistry& r = *config_.registry;
  r.counter("bp_retrain_cycles_total", "supervision cycles run").increment();
  r.counter("bp_retrain_attempts_total", "train attempts across all cycles")
      .add(attempts_delta);
  r.counter("bp_retrain_published_total", "successful hot-swaps")
      .add(result == CycleResult::kPublished ? 1 : 0);
  r.counter("bp_retrain_failed_cycles_total",
            "cycles that exhausted all attempts")
      .add(result == CycleResult::kFailed ? 1 : 0);
  r.gauge("bp_retrain_staleness_cycles",
          "cycles since the last successful publish")
      .set(static_cast<double>(status_.staleness_cycles));
  r.gauge("bp_retrain_breaker_open", "1 while the circuit breaker is open")
      .set(status_.breaker_open ? 1.0 : 0.0);
  r.gauge("bp_retrain_consecutive_failures", "current failed-cycle streak")
      .set(static_cast<double>(status_.consecutive_failures));
  r.gauge("bp_retrain_last_published_version",
          "registry version of the last successful publish")
      .set(static_cast<double>(status_.last_published_version));
  r.gauge("bp_retrain_last_backoff_ms", "most recent retry backoff")
      .set(static_cast<double>(status_.last_backoff.count()));
}

void RetrainSupervisor::reset_breaker() {
  std::lock_guard lock(mutex_);
  status_.breaker_open = false;
  status_.consecutive_failures = 0;
  breaker_cooldown_remaining_ = 0;
}

SupervisorStatus RetrainSupervisor::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

void RetrainSupervisor::start(std::chrono::milliseconds period) {
  stop();  // at most one loop
  {
    std::lock_guard lock(loop_mutex_);
    loop_stop_ = false;
  }
  loop_ = std::thread([this, period] {
    obs::prof::ThreadHandle prof_handle("serve.retrain", 0);
    std::unique_lock lock(loop_mutex_);
    while (!loop_stop_) {
      lock.unlock();
      {
        PROF_SCOPE("train.retrain_cycle");
        run_cycle();
      }
      lock.lock();
      loop_cv_.wait_for(lock, period, [&] { return loop_stop_; });
    }
  });
}

void RetrainSupervisor::stop() {
  {
    std::lock_guard lock(loop_mutex_);
    loop_stop_ = true;
  }
  loop_cv_.notify_all();
  if (loop_.joinable()) loop_.join();
}

}  // namespace bp::serve
