file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_synthetic_windows.dir/bench_table13_synthetic_windows.cpp.o"
  "CMakeFiles/bench_table13_synthetic_windows.dir/bench_table13_synthetic_windows.cpp.o.d"
  "bench_table13_synthetic_windows"
  "bench_table13_synthetic_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_synthetic_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
