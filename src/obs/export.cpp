#include "obs/export.h"

#include <cstdio>

#include "net/http_common.h"
#include "util/fault.h"

namespace bp::obs {

PeriodicDumper::PeriodicDumper(const MetricsRegistry& registry,
                               std::string path,
                               std::chrono::milliseconds period,
                               DumpFormat format)
    : registry_(registry),
      path_(std::move(path)),
      period_(period),
      format_(format) {
  thread_ = std::thread([this] { loop(); });
}

PeriodicDumper::~PeriodicDumper() { stop(); }

bool PeriodicDumper::dump_now() const {
  const std::string body = format_ == DumpFormat::kPrometheus
                               ? registry_.render_prometheus()
                               : registry_.render_json();
  // Write-to-temp + rename so a concurrent reader never sees a torn
  // dump; the rename is atomic within one filesystem.
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PeriodicDumper::loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    lock.unlock();
    dump_now();
    lock.lock();
    if (cv_.wait_for(lock, period_, [&] { return stop_; })) return;
  }
}

void PeriodicDumper::stop() {
  bool first_stop;
  {
    std::lock_guard lock(mutex_);
    first_stop = !stop_;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final synchronous dump after the loop is gone, so the tail of
  // the last period (everything recorded since the previous cadence
  // tick) survives shutdown.  Only the stop() that actually stopped
  // the loop flushes; repeated stop() calls stay cheap no-ops.
  if (first_stop) dump_now();
}

void register_fault_metrics(MetricsRegistry& registry) {
  registry.gauge_callback(
      "bp_fault_points_armed",
      [] {
        return static_cast<double>(
            bp::util::FaultRegistry::instance().armed_points());
      },
      "fault-injection points currently armed");
  registry.gauge_callback(
      "bp_fault_fires_total",
      [] {
        return static_cast<double>(
            bp::util::FaultRegistry::instance().total_fires());
      },
      "injected faults fired across all points");
}

void register_http_listener_metrics(MetricsRegistry& registry,
                                    const net::HttpListener& listener,
                                    const std::string& prefix) {
  registry.gauge_callback(
      prefix + "_requests_total",
      [&listener] { return static_cast<double>(listener.requests()); },
      "HTTP requests answered");
  registry.gauge_callback(
      prefix + "_overloaded_total",
      [&listener] { return static_cast<double>(listener.overloaded()); },
      "connections shed at accept (pending queue full)");
  registry.gauge_callback(
      prefix + "_reaped_total",
      [&listener] { return static_cast<double>(listener.reaped()); },
      "keep-alive connections closed by the idle/lifetime/request reaper");
  registry.gauge_callback(
      prefix + "_slowloris_total",
      [&listener] { return static_cast<double>(listener.slowloris()); },
      "request heads cut off 408 at the header deadline");
}

void remove_http_listener_metrics(MetricsRegistry& registry,
                                  const std::string& prefix) {
  registry.remove(prefix + "_requests_total");
  registry.remove(prefix + "_overloaded_total");
  registry.remove(prefix + "_reaped_total");
  registry.remove(prefix + "_slowloris_total");
}

}  // namespace bp::obs
