// Batch-vs-scalar equivalence: Polygraph::score_batch promises
// *bit-identical* Detections to the scalar Polygraph::score.  The suite
// checks that promise on a production-shape trained model across batch
// sizes spanning sub-block, block-boundary and multi-block panels, on
// both element types, and on hand-built models that force the edge
// cases the kernel's reasoning depends on (exact-zero PCA
// contributions, centroid distance ties, extreme int32 values).
//
// Engine-level coverage lives at the bottom: a ScoringEngine whose
// workers drain through the SoA kernel must answer with the same bits
// as the scalar reference, and the degraded / deadline paths must be
// unaffected by the batch rewrite.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "serve/degraded.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"
#include "traffic/session_generator.h"

namespace bp::core {
namespace {

struct SharedModel {
  traffic::Dataset data;
  Polygraph model;
};

const SharedModel& shared() {
  static const SharedModel* instance = [] {
    auto* s = new SharedModel{traffic::Dataset{}, Polygraph{}};
    traffic::TrafficConfig config;
    config.n_sessions = 20'000;
    traffic::SessionGenerator gen(config);
    s->data = gen.generate(traffic::experiment_feature_indices());
    const ml::Matrix features =
        s->data.feature_matrix(s->model.config().feature_indices);
    std::vector<ua::UserAgent> uas;
    for (const auto& r : s->data.records()) uas.push_back(r.claimed);
    s->model.train(features, uas);
    return s;
  }();
  return *instance;
}

// Bit-level Detection comparison: the double goes through its bit
// pattern, so a -0.0 vs +0.0 or NaN-payload divergence would fail.
void expect_bit_identical(const Detection& batch, const Detection& scalar,
                          std::size_t row) {
  EXPECT_EQ(batch.predicted_cluster, scalar.predicted_cluster)
      << "row " << row;
  EXPECT_EQ(batch.expected_cluster, scalar.expected_cluster) << "row " << row;
  EXPECT_EQ(batch.flagged, scalar.flagged) << "row " << row;
  EXPECT_EQ(batch.risk_factor, scalar.risk_factor) << "row " << row;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(batch.centroid_distance2),
            std::bit_cast<std::uint64_t>(scalar.centroid_distance2))
      << "row " << row << ": " << batch.centroid_distance2 << " vs "
      << scalar.centroid_distance2;
}

// Random panel: a mix of realistic generated sessions and uniformly
// random rows (including values no browser would ever emit), with
// claims drawn from seen and unseen UAs.
struct Panel {
  std::vector<std::vector<std::int32_t>> rows;
  std::vector<ua::UserAgent> claims;
};

Panel make_panel(std::size_t n, std::uint64_t seed) {
  const auto& s = shared();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> noise(-1000, 1000);
  std::uniform_int_distribution<int> version(1, 200);
  const auto& indices = s.model.config().feature_indices;
  const std::size_t d = indices.size();
  // Records store features in stored_indices() order; the model's
  // feature_indices are candidate-catalog ids, so map id -> position
  // (the same translation Dataset::feature_matrix does).
  const auto& stored = s.data.stored_indices();
  std::vector<std::size_t> cols(d);
  for (std::size_t j = 0; j < d; ++j) {
    const auto it = std::find(stored.begin(), stored.end(), indices[j]);
    EXPECT_NE(it, stored.end()) << "model feature " << indices[j]
                                << " not stored in the dataset";
    cols[j] = static_cast<std::size_t>(it - stored.begin());
  }
  Panel panel;
  panel.rows.reserve(n);
  panel.claims.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 != 2) {
      const auto& record = s.data.records()[rng() % s.data.records().size()];
      // Score inputs are the model's selected columns, not the raw
      // 42-wide record vector.
      std::vector<std::int32_t> row(d);
      for (std::size_t j = 0; j < d; ++j) row[j] = record.features[cols[j]];
      panel.rows.push_back(std::move(row));
      panel.claims.push_back(record.claimed);
    } else {
      std::vector<std::int32_t> row(d);
      for (auto& v : row) v = noise(rng);
      panel.rows.push_back(std::move(row));
      // Unseen UA versions exercise the nullopt expected_cluster path.
      panel.claims.push_back(
          {rng() % 2 == 0 ? ua::Vendor::kChrome : ua::Vendor::kFirefox,
           version(rng), ua::Os::kWindows10});
    }
  }
  return panel;
}

std::vector<Detection> scalar_reference(const Polygraph& model,
                                        const Panel& panel) {
  ScoringScratch scratch;
  std::vector<Detection> out;
  out.reserve(panel.rows.size());
  for (std::size_t i = 0; i < panel.rows.size(); ++i) {
    out.push_back(model.score(std::span<const std::int32_t>(panel.rows[i]),
                              panel.claims[i], scratch));
  }
  return out;
}

class BatchScoreSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchScoreSizes, BitIdenticalToScalarInt32) {
  const std::size_t n = GetParam();
  const Panel panel = make_panel(n, 0xb17c0de + n);
  const auto& model = shared().model;

  std::vector<std::span<const std::int32_t>> rows;
  for (const auto& row : panel.rows) rows.emplace_back(row);
  std::vector<Detection> batch(n);
  BatchScratch scratch;
  model.score_batch(std::span<const std::span<const std::int32_t>>(rows),
                    std::span<const ua::UserAgent>(panel.claims),
                    std::span<Detection>(batch), scratch);

  const std::vector<Detection> scalar = scalar_reference(model, panel);
  for (std::size_t i = 0; i < n; ++i) {
    expect_bit_identical(batch[i], scalar[i], i);
  }
}

TEST_P(BatchScoreSizes, BitIdenticalToScalarDouble) {
  const std::size_t n = GetParam();
  const Panel panel = make_panel(n, 0xd0b1e + n);
  const auto& model = shared().model;

  std::vector<std::vector<double>> wide;
  wide.reserve(n);
  for (const auto& row : panel.rows) {
    wide.emplace_back(row.begin(), row.end());
  }
  std::vector<std::span<const double>> rows;
  for (const auto& row : wide) rows.emplace_back(row);
  std::vector<Detection> batch(n);
  BatchScratch scratch;
  model.score_batch(std::span<const std::span<const double>>(rows),
                    std::span<const ua::UserAgent>(panel.claims),
                    std::span<Detection>(batch), scratch);

  ScoringScratch scalar_scratch;
  for (std::size_t i = 0; i < n; ++i) {
    const Detection scalar = model.score(std::span<const double>(wide[i]),
                                         panel.claims[i], scalar_scratch);
    expect_bit_identical(batch[i], scalar, i);
  }
}

// N spans sub-block (1, 2, 17), exactly one block (64), and many blocks
// with a ragged tail (1000 = 15*64 + 40).
INSTANTIATE_TEST_SUITE_P(Panels, BatchScoreSizes,
                         ::testing::Values(1u, 2u, 17u, 64u, 1000u));

TEST(BatchScore, ScratchReuseAcrossPanelsStaysIdentical) {
  // One scratch across differently-sized panels: stale lanes from a
  // larger earlier batch must never leak into a smaller later one.
  const auto& model = shared().model;
  BatchScratch scratch;
  for (const std::size_t n : {64u, 3u, 128u, 1u, 17u}) {
    const Panel panel = make_panel(n, 0x5eed + n);
    std::vector<std::span<const std::int32_t>> rows;
    for (const auto& row : panel.rows) rows.emplace_back(row);
    std::vector<Detection> batch(n);
    model.score_batch(std::span<const std::span<const std::int32_t>>(rows),
                      std::span<const ua::UserAgent>(panel.claims),
                      std::span<Detection>(batch), scratch);
    const std::vector<Detection> scalar = scalar_reference(model, panel);
    for (std::size_t i = 0; i < n; ++i) {
      expect_bit_identical(batch[i], scalar[i], i);
    }
  }
}

// ----- hand-built models forcing the kernel's documented edge cases ----

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100,
                                ua::Os::kWindows10};

Polygraph make_tiny_model(bool tied_centroids) {
  PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  if (!tied_centroids) {
    centroids(1, 0) = 10.0;
    centroids(1, 1) = 10.0;
  }  // tied: both centroids at the origin — every distance is a tie
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  ClusterTable table;
  table.assign(kChrome100, 0);
  table.assign(kFirefox100, 1);
  return Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

void expect_panel_identical(const Polygraph& model,
                            const std::vector<std::vector<std::int32_t>>& raw,
                            const std::vector<ua::UserAgent>& claims) {
  std::vector<std::span<const std::int32_t>> rows;
  for (const auto& row : raw) rows.emplace_back(row);
  std::vector<Detection> batch(raw.size());
  BatchScratch scratch;
  model.score_batch(std::span<const std::span<const std::int32_t>>(rows),
                    std::span<const ua::UserAgent>(claims),
                    std::span<Detection>(batch), scratch);
  ScoringScratch scalar_scratch;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const Detection scalar = model.score(std::span<const std::int32_t>(raw[i]),
                                         claims[i], scalar_scratch);
    expect_bit_identical(batch[i], scalar, i);
  }
}

TEST(BatchScore, ExactZeroCenteredValuesMatchScalarSkipPath) {
  // Identity scaler + zero PCA mean: a zero feature makes `centered`
  // exactly 0.0, the one case where the scalar transform skips the
  // accumulation and the batch kernel adds +/-0.0 instead.
  const Polygraph model = make_tiny_model(false);
  expect_panel_identical(model,
                         {{0, 0}, {0, 7}, {-3, 0}, {10, 10}, {0, 0}},
                         {kChrome100, kChrome100, kFirefox100, kFirefox100,
                          kFirefox100});
}

TEST(BatchScore, CentroidDistanceTiesPickLowestIndexLikeScalar) {
  const Polygraph model = make_tiny_model(true);
  expect_panel_identical(model, {{0, 0}, {5, -5}, {-2, 9}},
                         {kChrome100, kFirefox100, kChrome100});
}

TEST(BatchScore, ExtremeInt32ValuesSurviveWidening) {
  constexpr std::int32_t kMin = std::numeric_limits<std::int32_t>::min();
  constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();
  const Polygraph model = make_tiny_model(false);
  expect_panel_identical(
      model, {{kMin, kMax}, {kMax, kMax}, {kMin, kMin}, {kMax, 0}},
      {kChrome100, kFirefox100, kChrome100, kFirefox100});
}

// --------------------- engine-level equivalence ---------------------

TEST(BatchScore, EngineBatchPathMatchesScalarReference) {
  // Requests drained in batches by the engine must carry the same bits
  // as direct scalar scoring — across enough traffic that the workers
  // actually form multi-request batches.
  const auto& s = shared();
  serve::ModelRegistry registry;
  ASSERT_GT(registry.publish(Polygraph(s.model)), 0u);

  std::mutex mutex;
  std::vector<serve::ScoreResponse> responses;
  serve::EngineConfig config;
  config.workers = 2;
  config.max_batch = 64;
  serve::ScoringEngine engine(registry, config,
                              [&](const serve::ScoreResponse& response) {
                                std::lock_guard lock(mutex);
                                responses.push_back(response);
                              });

  const Panel panel = make_panel(500, 0xe2e);
  for (std::size_t i = 0; i < panel.rows.size(); ++i) {
    serve::ScoreRequest request;
    request.id = i;
    request.features = panel.rows[i];
    request.claimed = panel.claims[i];
    ASSERT_EQ(engine.submit(std::move(request)),
              serve::SubmitResult::kAdmitted);
  }
  engine.drain();
  engine.stop();

  const std::vector<Detection> scalar = scalar_reference(s.model, panel);
  ASSERT_EQ(responses.size(), panel.rows.size());
  for (const auto& response : responses) {
    ASSERT_EQ(response.status, serve::ResponseStatus::kScored);
    EXPECT_EQ(response.model_version, 1u);
    EXPECT_FALSE(response.cached);
    expect_bit_identical(response.detection, scalar[response.id],
                         response.id);
  }
}

TEST(BatchScore, DegradedPathUnchangedByBatchRewrite) {
  serve::ModelRegistry registry;  // never published
  std::mutex mutex;
  std::vector<serve::ScoreResponse> responses;
  serve::EngineConfig config;
  config.workers = 1;
  config.degrade_without_model = true;
  serve::ScoringEngine engine(registry, config,
                              [&](const serve::ScoreResponse& response) {
                                std::lock_guard lock(mutex);
                                responses.push_back(response);
                              });
  for (std::uint64_t i = 0; i < 32; ++i) {
    serve::ScoreRequest request;
    request.id = i;
    request.features = {0, 0};
    request.claimed = kChrome100;
    ASSERT_EQ(engine.submit(std::move(request)),
              serve::SubmitResult::kAdmitted);
  }
  engine.drain();
  engine.stop();
  const Detection expected = serve::degraded_score(kChrome100);
  ASSERT_EQ(responses.size(), 32u);
  for (const auto& response : responses) {
    ASSERT_EQ(response.status, serve::ResponseStatus::kDegraded);
    expect_bit_identical(response.detection, expected, response.id);
  }
}

TEST(BatchScore, DeadlinePathUnchangedByBatchRewrite) {
  // Workers hold the popped batch while no model is published; by the
  // time one appears, every request is past its 1 ms deadline and must
  // be answered kDeadlineExceeded, exactly as before the batch rewrite.
  serve::ModelRegistry registry;
  std::mutex mutex;
  std::vector<serve::ScoreResponse> responses;
  serve::EngineConfig config;
  config.workers = 1;
  config.deadline = std::chrono::milliseconds(1);
  serve::ScoringEngine engine(registry, config,
                              [&](const serve::ScoreResponse& response) {
                                std::lock_guard lock(mutex);
                                responses.push_back(response);
                              });
  for (std::uint64_t i = 0; i < 16; ++i) {
    serve::ScoreRequest request;
    request.id = i;
    request.features = {0, 0};
    request.claimed = kChrome100;
    ASSERT_EQ(engine.submit(std::move(request)),
              serve::SubmitResult::kAdmitted);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_GT(registry.publish(make_tiny_model(false)), 0u);
  engine.drain();
  engine.stop();
  ASSERT_EQ(responses.size(), 16u);
  for (const auto& response : responses) {
    EXPECT_EQ(response.status, serve::ResponseStatus::kDeadlineExceeded)
        << "id " << response.id;
  }
}

}  // namespace
}  // namespace bp::core
