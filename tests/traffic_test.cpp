// Tests for the synthetic web-scale traffic generator and the dataset
// container.
#include <gtest/gtest.h>

#include <set>

#include "traffic/session_generator.h"

namespace bp::traffic {
namespace {

TrafficConfig small_config(std::size_t n = 5'000, std::uint64_t seed = 1) {
  TrafficConfig config;
  config.n_sessions = n;
  config.seed = seed;
  return config;
}

TEST(Generator, ProducesRequestedCount) {
  SessionGenerator gen(small_config(1'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  EXPECT_EQ(data.size(), 1'000u);
}

TEST(Generator, DeterministicGivenSeed) {
  SessionGenerator a(small_config(500, 7));
  SessionGenerator b(small_config(500, 7));
  const Dataset da = a.generate(experiment_feature_indices());
  const Dataset db = b.generate(experiment_feature_indices());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.records()[i].session_id, db.records()[i].session_id);
    EXPECT_EQ(da.records()[i].features, db.records()[i].features);
    EXPECT_EQ(da.records()[i].user_agent, db.records()[i].user_agent);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  SessionGenerator a(small_config(100, 1));
  SessionGenerator b(small_config(100, 2));
  EXPECT_NE(a.generate(experiment_feature_indices()).records()[0].session_id,
            b.generate(experiment_feature_indices()).records()[0].session_id);
}

TEST(Generator, SessionIdsAreUniqueAndOpaque) {
  SessionGenerator gen(small_config(2'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  std::set<std::string> ids;
  for (const auto& r : data.records()) {
    EXPECT_EQ(r.session_id.size(), 16u);
    EXPECT_TRUE(ids.insert(r.session_id).second);
  }
}

TEST(Generator, DatesWithinWindow) {
  SessionGenerator gen(small_config(2'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  for (const auto& r : data.records()) {
    EXPECT_GE(r.date, gen.config().start_date);
    EXPECT_LE(r.date, gen.config().end_date);
  }
}

TEST(Generator, ClaimedUaNeverPredatesItsRelease) {
  SessionGenerator gen(small_config(5'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  const auto& db = browser::ReleaseDatabase::instance();
  for (const auto& r : data.records()) {
    const auto* release = db.find(r.claimed);
    ASSERT_NE(release, nullptr) << r.user_agent;
    EXPECT_LE(release->release_date, r.date) << r.user_agent;
  }
}

TEST(Generator, TagRatesNearConfiguredBase) {
  SessionGenerator gen(small_config(20'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  std::size_t ip = 0;
  std::size_t cookie = 0;
  std::size_t ato = 0;
  for (const auto& r : data.records()) {
    ip += r.untrusted_ip ? 1 : 0;
    cookie += r.untrusted_cookie ? 1 : 0;
    ato += r.ato ? 1 : 0;
  }
  const double n = static_cast<double>(data.size());
  EXPECT_NEAR(ip / n, 0.51, 0.02);
  EXPECT_NEAR(cookie / n, 0.49, 0.02);
  EXPECT_NEAR(ato / n, 0.0043, 0.002);
}

TEST(Generator, FraudShareNearConfigured) {
  SessionGenerator gen(small_config(40'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  std::size_t fraud = 0;
  for (const auto& r : data.records()) {
    fraud += r.kind == SessionKind::kFraudBrowser ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(fraud) / 40'000.0, gen.config().p_fraud,
              0.0015);
}

TEST(Generator, FraudToolsRespectReleaseDates) {
  // Tools released after the training window (Octo 1.10, Sphere 1.3,
  // GoLogin 3.3.23) must not appear in training traffic.
  SessionGenerator gen(small_config(40'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  for (const auto& r : data.records()) {
    if (r.kind != SessionKind::kFraudBrowser) continue;
    EXPECT_NE(r.origin, "Octo Browser-1.10");
    EXPECT_NE(r.origin, "Sphere-1.3");
    EXPECT_NE(r.origin, "GoLogin-3.3.23");
  }
}

TEST(Generator, StragglersKeepOldReleasesAlive) {
  SessionGenerator gen(small_config(40'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  std::size_t old_chrome = 0;
  for (const auto& r : data.records()) {
    if (r.claimed.vendor == ua::Vendor::kChrome &&
        r.claimed.major_version <= 81) {
      ++old_chrome;
    }
  }
  // Present but rare — the paper saw <100 rows for Chrome 81-class UAs
  // in 205k; scaled to 40k that is a handful to a few hundred in total
  // across the 23 old versions.
  EXPECT_GT(old_chrome, 10u);
  EXPECT_LT(old_chrome, 1'500u);
}

TEST(Generator, PrivacyBrowsersPresentUpstreamUas) {
  TrafficConfig config = small_config(30'000);
  config.p_tor = 0.01;  // enough Tor rows to assert on
  SessionGenerator gen(config);
  const Dataset data = gen.generate(experiment_feature_indices());
  std::size_t tor = 0;
  for (const auto& r : data.records()) {
    if (r.kind != SessionKind::kPrivacyBrowser) continue;
    if (r.origin.find("Tor") != std::string::npos) {
      ++tor;
      EXPECT_EQ(r.claimed.vendor, ua::Vendor::kFirefox);
      EXPECT_EQ(r.claimed.major_version, 102);
    } else {
      EXPECT_EQ(r.claimed.vendor, ua::Vendor::kChrome);
    }
  }
  EXPECT_GT(tor, 100u);
}

TEST(Generator, StreamingMatchesBatch) {
  SessionGenerator a(small_config(50, 3));
  SessionGenerator b(small_config(50, 3));
  const auto indices = experiment_feature_indices();
  const Dataset batch = a.generate(indices);
  for (std::size_t i = 0; i < 50; ++i) {
    const SessionRecord r = b.next_session(indices);
    EXPECT_EQ(r.session_id, batch.records()[i].session_id);
  }
}

// ------------------------- dataset container -------------------------

TEST(Dataset, FeatureMatrixSelectsStoredSubset) {
  SessionGenerator gen(small_config(200));
  const Dataset data = gen.generate(experiment_feature_indices());
  const auto& finals = browser::FeatureCatalog::instance().final_indices();
  const ml::Matrix m = data.feature_matrix(finals);
  EXPECT_EQ(m.rows(), 200u);
  EXPECT_EQ(m.cols(), 28u);
}

TEST(Dataset, UaKeysMatchRecords) {
  SessionGenerator gen(small_config(100));
  const Dataset data = gen.generate(experiment_feature_indices());
  const auto keys = data.ua_keys();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(keys[i], data.records()[i].claimed.key());
  }
}

TEST(Dataset, SliceFiltersByDate) {
  SessionGenerator gen(small_config(2'000));
  const Dataset data = gen.generate(experiment_feature_indices());
  const auto mid = bp::util::Date::from_ymd(2023, 5, 1);
  const Dataset early = data.slice(gen.config().start_date, mid);
  const Dataset late = data.slice(mid + 1, gen.config().end_date);
  EXPECT_EQ(early.size() + late.size(), data.size());
  for (const auto& r : early.records()) EXPECT_LE(r.date, mid);
}

TEST(Dataset, CsvRoundTrip) {
  SessionGenerator gen(small_config(60));
  const Dataset data = gen.generate(experiment_feature_indices());
  const Dataset parsed = Dataset::from_csv_table(data.to_csv_table());
  ASSERT_EQ(parsed.size(), data.size());
  EXPECT_EQ(parsed.stored_indices(), data.stored_indices());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& a = data.records()[i];
    const auto& b = parsed.records()[i];
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.date, b.date);
    EXPECT_EQ(a.user_agent, b.user_agent);
    EXPECT_EQ(a.features, b.features);
    EXPECT_EQ(a.untrusted_ip, b.untrusted_ip);
    EXPECT_EQ(a.ato, b.ato);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.origin, b.origin);
  }
}

TEST(Dataset, FingerprintStringsAreStable) {
  SessionGenerator gen(small_config(50));
  const Dataset data = gen.generate(experiment_feature_indices());
  const auto strings = data.fingerprint_strings();
  ASSERT_EQ(strings.size(), 50u);
  // Two rows with identical features serialize identically.
  EXPECT_EQ(strings[0], strings[0]);
  EXPECT_FALSE(strings[0].empty());
}

}  // namespace
}  // namespace bp::traffic
