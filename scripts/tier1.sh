#!/usr/bin/env bash
# Tier-1 verification: full build + test suite + training-bench smoke
# run, plus an optional sanitizer pass over the concurrency tests
# (serving tier and the parallel training substrate).
#
#   ./scripts/tier1.sh                  # standard build + ctest + smoke
#   BP_SANITIZE=thread ./scripts/tier1.sh   # ... + TSan concurrency pass
#   BP_SANITIZE=address ./scripts/tier1.sh  # ... + ASan concurrency pass
set -euo pipefail
cd "$(dirname "$0")/.."

case "${BP_SANITIZE:-}" in
  "" | thread | address ) ;;
  * )
    echo "BP_SANITIZE must be 'thread' or 'address', got '${BP_SANITIZE}'" >&2
    exit 2
    ;;
esac

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== training-throughput bench smoke (determinism gate) =="
./build/bench/bench_training_throughput --smoke /tmp/bp_bench_training_smoke.json

if [[ -n "${BP_SANITIZE:-}" ]]; then
  san_dir="build-${BP_SANITIZE}"
  echo "== ${BP_SANITIZE} sanitizer pass over the concurrency tests =="
  cmake -B "${san_dir}" -S . -DBP_SANITIZE="${BP_SANITIZE}"
  cmake --build "${san_dir}" -j --target bp_tests
  # Covers the serving tier, the parallel training substrate, the whole
  # fault-tolerance layer — including the chaos soak, which must run
  # clean under both TSan and ASan — and the observability plane
  # (striped counters, trace ring, audit trail) whose lock-free hot
  # paths are exactly what the sanitizers exist to vet.
  ctest --test-dir "${san_dir}" \
    -R 'Serve|BoundedQueue|Parallel|TrainingDeterminism|Fault|RetrainSupervisor|ModelIntegrity|ChaosSoak|Obs|Audit' \
    --output-on-failure
fi
