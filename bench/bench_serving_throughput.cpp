// bench_serving_throughput: load driver for the serving subsystem.
//
// Sweeps worker counts and batch sizes over a pre-generated session
// stream and reports sessions/second plus the latency distribution
// against the paper's ~100 ms per-request budget (§3).  The single
// worker / batch 1 configuration is the baseline; on a 4+ core machine
// the pool is expected to clear >= 3x its throughput.
//
// Beyond the worker/batch sweep, three more arms:
//   * observability overhead (full plane on vs off, < 3% gate),
//   * continuous-profiler overhead (wall+cpu sampler on vs off,
//     < 3% gate — the cost of leaving /profilez armed in production),
//   * the verdict cache under release-popularity traffic — the same
//     few fingerprints dominating the stream, as browser releases do
//     in production — where cached serving must clear >= 5x the
//     uncached throughput with a >= 50% hit rate.
//
// Gate arming: the cache gates are hardware-independent (a hash + one
// seqlock read beating a full PCA+k-means pass does not need spare
// cores) and are always enforced.  The concurrency-scaling and
// observability gates need real parallelism and only arm on 4+
// hardware threads.  "gates_enforced" in the JSON is true when every
// armed gate was enforced and passed.
//
// Output: a human-readable table on stdout plus machine-readable JSON
// ("serving_throughput.json" in the working directory, or argv[2]).
//
// Usage: bench_serving_throughput [--smoke] [n_sessions] [json_path]
//   --smoke: small stream, cache arm only, hit-rate gate only — a
//   seconds-scale sanity check for CI (sanitizer builds included,
//   where throughput numbers mean nothing).
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/audit.h"
#include "obs/introspect/http.h"
#include "obs/introspect/server.h"
#include "obs/metrics_registry.h"
#include "obs/prof/prof.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"
#include "traffic/session_generator.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

struct RunResult {
  std::size_t workers = 0;
  std::size_t max_batch = 0;
  double seconds = 0.0;
  double sessions_per_second = 0.0;
  double speedup = 1.0;  // vs the single worker / batch 1 baseline
  bp::serve::MetricsSnapshot metrics;
  bp::serve::CacheStats cache;  // all-zero when the cache is off
};

// The full observability plane, as a production deployment would run it.
struct ObsPlanes {
  bp::obs::MetricsRegistry* registry = nullptr;
  bp::obs::TraceSink* trace = nullptr;
  bp::obs::AuditTrail* audit = nullptr;
};

// `reps` replays the stream that many times inside one timed run — the
// overhead-gate arms use it so each measurement lasts long enough to
// mean something on a small stream / slow machine (a millisecond-scale
// run measures the scheduler, not the instrumentation).
RunResult run_configuration(const bp::serve::ModelRegistry& registry,
                            const std::vector<bp::serve::ScoreRequest>& stream,
                            std::size_t workers, std::size_t max_batch,
                            const ObsPlanes* planes = nullptr,
                            std::size_t reps = 1,
                            std::size_t cache_capacity = 0) {
  bp::serve::EngineConfig config;
  config.workers = workers;
  config.max_batch = max_batch;
  config.queue_capacity = 4096;
  config.overflow_policy = bp::serve::OverflowPolicy::kBlock;
  config.cache_capacity = cache_capacity;
  if (planes != nullptr) {
    config.registry = planes->registry;
    config.trace = planes->trace;
    config.audit = planes->audit;
  }
  bp::serve::ScoringEngine engine(registry, config, nullptr);

  if (cache_capacity > 0) {
    // Warm-up pass (untimed): production caches run warm; the cold
    // fill is a one-off per model version, not steady state.
    for (const bp::serve::ScoreRequest& request : stream) {
      engine.submit(request);
    }
    engine.drain();
  }

  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const bp::serve::ScoreRequest& request : stream) {
      engine.submit(request);  // copies; every run scores identical work
    }
  }
  engine.drain();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.workers = workers;
  result.max_batch = max_batch;
  result.seconds = std::chrono::duration<double>(end - begin).count();
  result.sessions_per_second =
      static_cast<double>(stream.size() * reps) / result.seconds;
  result.metrics = engine.metrics();
  result.cache = engine.cache_stats();
  engine.stop();
  return result;
}

// Release-popularity stream: `unique` distinct sessions, draws skewed
// hard toward the head (u^3 concentration) the way a handful of
// current browser releases dominates real traffic (paper §2: coarse
// fingerprints collide by design).  This is the workload the verdict
// cache exists for.
std::vector<bp::serve::ScoreRequest> make_popularity_stream(
    const std::vector<bp::serve::ScoreRequest>& unique_sessions,
    std::size_t n) {
  std::mt19937_64 rng(0xCAC4Eu);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<bp::serve::ScoreRequest> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = uniform(rng);
    const std::size_t idx = std::min(
        unique_sessions.size() - 1,
        static_cast<std::size_t>(
            static_cast<double>(unique_sessions.size()) * u * u * u));
    bp::serve::ScoreRequest request = unique_sessions[idx];
    request.id = i;
    stream.push_back(std::move(request));
  }
  return stream;
}

// The cache arm proper: the same engine configuration with the cache
// off, then on, over the popularity stream.  Best-of-`attempts` per
// arm; returns {uncached, cached}.
std::pair<RunResult, RunResult> run_cache_arms(
    const bp::serve::ModelRegistry& registry,
    const std::vector<bp::serve::ScoreRequest>& popular, std::size_t workers,
    std::size_t max_batch, std::size_t cache_capacity, std::size_t reps,
    int attempts) {
  RunResult uncached;
  RunResult cached;
  for (int rep = 0; rep < attempts; ++rep) {
    RunResult r = run_configuration(registry, popular, workers, max_batch,
                                    nullptr, reps, 0);
    if (r.sessions_per_second > uncached.sessions_per_second) uncached = r;
  }
  for (int rep = 0; rep < attempts; ++rep) {
    RunResult r = run_configuration(registry, popular, workers, max_batch,
                                    nullptr, reps, cache_capacity);
    if (r.sessions_per_second > cached.sessions_per_second) cached = r;
  }
  return {uncached, cached};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;

  bool smoke = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  // Positionals: [n_sessions] [json_path], but a lone non-numeric
  // positional is a json_path ("bench --smoke out.json" works).
  std::size_t n_sessions = smoke ? 4'000 : 30'000;
  std::string json_path = "serving_throughput.json";
  if (!positional.empty()) {
    char* end = nullptr;
    const long parsed = std::strtol(positional[0], &end, 10);
    const bool numeric = end != positional[0] && *end == '\0';
    if (numeric && parsed > 0) {
      n_sessions = static_cast<std::size_t>(parsed);
      if (positional.size() > 1) json_path = positional[1];
    } else if (!numeric && positional.size() == 1) {
      json_path = positional[0];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [n_sessions > 0] [json_path]\n"
                   "  n_sessions: got '%s'\n",
                   argv[0], positional[0]);
      return 2;
    }
  }

  constexpr double kCacheSpeedupGate = 5.0;   // cached vs uncached, same load
  constexpr double kCacheHitRateGate = 0.5;   // popularity stream floor

  std::printf("training the production model...\n");
  const auto trained = benchmark_support::train_production(
      benchmark_support::make_training_dataset(smoke ? 6'000 : 40'000));

  serve::ModelRegistry registry;
  registry.publish(trained.model);

  // Pre-generate the stream so the sweep measures scoring, not synthesis.
  std::printf("generating %zu live sessions...\n", n_sessions);
  traffic::TrafficConfig live_config;
  live_config.seed = 0x5EF7E2024;
  traffic::SessionGenerator live(live_config);
  const auto& indices = trained.model.config().feature_indices;
  std::vector<serve::ScoreRequest> stream;
  stream.reserve(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    traffic::SessionRecord session = live.next_session(indices);
    serve::ScoreRequest request;
    request.id = i;
    request.features = std::move(session.features);
    request.claimed = session.claimed;
    stream.push_back(std::move(request));
  }

  const unsigned hardware = std::thread::hardware_concurrency();

  if (smoke) {
    // CI sanity: the verdict cache must actually hit on a popularity
    // stream and answer everything it admits.  Throughput is not gated
    // here — smoke runs under sanitizers, where timing means nothing.
    const std::size_t unique =
        std::min(n_sessions, std::max<std::size_t>(64, n_sessions / 4));
    std::vector<serve::ScoreRequest> head(
        stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(unique));
    const auto popular = make_popularity_stream(head, n_sessions);
    const std::size_t capacity = std::bit_ceil(4 * unique);
    auto [uncached, cached] = run_cache_arms(
        registry, popular, /*workers=*/2, /*max_batch=*/64, capacity,
        /*reps=*/1, /*attempts=*/1);
    const double hit_rate = cached.cache.hit_rate();
    std::printf("smoke: uncached %.0f/s cached %.0f/s hit_rate %.3f "
                "(gate >= %.2f) scored %llu/%zu\n",
                uncached.sessions_per_second, cached.sessions_per_second,
                hit_rate, kCacheHitRateGate,
                static_cast<unsigned long long>(cached.metrics.scored),
                2 * popular.size());
    if (hit_rate < kCacheHitRateGate) {
      std::fprintf(stderr, "FAIL: cache hit rate %.3f below %.2f\n", hit_rate,
                   kCacheHitRateGate);
      return 1;
    }
    // Warm-up + timed pass both answered in full, cache on and off.
    if (cached.metrics.scored != 2 * popular.size() ||
        uncached.metrics.scored != popular.size()) {
      std::fprintf(stderr, "FAIL: lost responses (cached %llu uncached %llu)\n",
                   static_cast<unsigned long long>(cached.metrics.scored),
                   static_cast<unsigned long long>(uncached.metrics.scored));
      return 1;
    }
    std::printf("smoke ok\n");
    return 0;
  }

  std::vector<std::size_t> worker_counts{1, 2, 4};
  if (hardware > 4) worker_counts.push_back(hardware);
  // Oversubscription arm: workers past the core count must degrade
  // gracefully, not collapse (the workers=4 cliff this machine's
  // earlier recordings showed came from wakeup storms, not scheduling).
  const std::size_t oversub = 2 * std::max(1u, hardware);
  if (std::find(worker_counts.begin(), worker_counts.end(), oversub) ==
      worker_counts.end()) {
    worker_counts.push_back(oversub);
  }
  std::sort(worker_counts.begin(), worker_counts.end());
  const std::vector<std::size_t> batch_sizes{1, 16, 64};

  std::vector<RunResult> results;
  for (std::size_t workers : worker_counts) {
    for (std::size_t batch : batch_sizes) {
      RunResult result = run_configuration(registry, stream, workers, batch);
      if (!results.empty()) {
        result.speedup =
            result.sessions_per_second / results.front().sessions_per_second;
      }
      results.push_back(result);
      std::printf("  workers=%zu batch=%-3zu  %10.0f sessions/s  "
                  "p50=%.0fus p99=%.0fus\n",
                  result.workers, result.max_batch,
                  result.sessions_per_second, result.metrics.p50_micros(),
                  result.metrics.p99_micros());
    }
  }

  util::TextTable table(
      {"workers", "batch", "sessions/s", "speedup", "p50_us", "p95_us",
       "p99_us", "p99<100ms"});
  for (const RunResult& r : results) {
    char sps[32], speedup[16], p50[24], p95[24], p99[24];
    std::snprintf(sps, sizeof(sps), "%.0f", r.sessions_per_second);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", r.speedup);
    std::snprintf(p50, sizeof(p50), "%.0f", r.metrics.p50_micros());
    std::snprintf(p95, sizeof(p95), "%.0f", r.metrics.p95_micros());
    std::snprintf(p99, sizeof(p99), "%.0f", r.metrics.p99_micros());
    table.add_row({std::to_string(r.workers), std::to_string(r.max_batch),
                   sps, speedup, p50, p95, p99,
                   r.metrics.within_budget() ? "yes" : "NO"});
  }
  std::printf("\nserving throughput (%u hardware threads, %zu sessions "
              "per run):\n%s",
              hardware, n_sessions, table.render().c_str());

  // ---- observability overhead gate ----
  //
  // The same fixed configuration with the full observability plane off
  // vs on (shared registry, 1% trace sampling, 1% unflagged audit
  // sampling — production posture).  Best-of-3 per arm dampens
  // scheduler noise; instrumentation must cost < 3% throughput.
  constexpr double kObsOverheadGate = 0.03;
  const std::size_t gate_workers =
      std::min<std::size_t>(hardware == 0 ? 1 : hardware, 4);
  constexpr std::size_t kGateBatch = 16;
  // Replay the stream inside each timed run until it covers at least
  // ~200k sessions, so one measurement spans ~100 ms+ even on a slow
  // single-core box — an arm that finishes in single-digit
  // milliseconds measures scheduler luck, not instrumentation cost.
  const std::size_t gate_reps =
      std::max<std::size_t>(1, (200'000 + n_sessions - 1) / n_sessions);
  std::printf("\nmeasuring observability overhead (workers=%zu batch=%zu, "
              "stream x%zu per run, best of 3 per arm)...\n",
              gate_workers, kGateBatch, gate_reps);
  double baseline_sps = 0.0;
  double instrumented_sps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    baseline_sps = std::max(
        baseline_sps,
        run_configuration(registry, stream, gate_workers, kGateBatch, nullptr,
                          gate_reps)
            .sessions_per_second);
  }
  for (int rep = 0; rep < 3; ++rep) {
    obs::MetricsRegistry obs_registry;
    obs::TraceSinkConfig trace_config;
    trace_config.sample_rate = 0.01;
    obs::TraceSink trace(trace_config);
    obs::AuditTrail audit;  // default 1% unflagged sampling
    const ObsPlanes planes{&obs_registry, &trace, &audit};
    instrumented_sps = std::max(
        instrumented_sps,
        run_configuration(registry, stream, gate_workers, kGateBatch, &planes,
                          gate_reps)
            .sessions_per_second);
  }
  const double obs_overhead = 1.0 - instrumented_sps / baseline_sps;
  const bool obs_within_gate = obs_overhead < kObsOverheadGate;
  std::printf("  disabled:  %10.0f sessions/s\n"
              "  enabled:   %10.0f sessions/s\n"
              "  overhead:  %+.2f%% (gate < %.0f%%) -> %s\n",
              baseline_sps, instrumented_sps, 100.0 * obs_overhead,
              100.0 * kObsOverheadGate, obs_within_gate ? "ok" : "FAIL");

  // ---- scrape-under-load arm ----
  //
  // Same instrumented configuration, but with a live introspection
  // server attached and a scraper thread alternating GET /metrics and
  // GET /tracez over real TCP every ~100 ms for the whole run — 150x
  // hotter than a production Prometheus cadence.  Gated on the
  // *marginal* cost of being scraped (vs the instrumented arm, whose
  // own cost the gate above already bounds): rendering expositions
  // while workers hammer the counters must cost < 3% throughput.
  std::printf("measuring scrape-under-load overhead (same config, "
              "/metrics + /tracez scraped every ~100 ms)...\n");
  double scraped_sps = 0.0;
  std::uint64_t scrapes_completed = 0;
  for (int rep = 0; rep < 3; ++rep) {
    obs::MetricsRegistry obs_registry;
    obs::TraceSinkConfig trace_config;
    trace_config.sample_rate = 0.01;
    obs::TraceSink trace(trace_config);
    obs::AuditTrail audit;
    obs::introspect::Sources sources;
    sources.metrics = &obs_registry;
    sources.trace = &trace;
    sources.audit = &audit;
    obs::introspect::IntrospectionServer server(std::move(sources), {});
    if (!server.running()) {
      std::fprintf(stderr, "introspection server failed: %s\n",
                   server.error().c_str());
      return 1;
    }
    std::atomic<bool> stop_scraper{false};
    std::uint64_t scrapes = 0;
    std::thread scraper([&] {
      bool metrics_turn = true;
      while (!stop_scraper.load(std::memory_order_acquire)) {
        const obs::introspect::HttpResult got = obs::introspect::http_get(
            "127.0.0.1", server.port(), metrics_turn ? "/metrics" : "/tracez");
        if (got.status == 200) ++scrapes;
        metrics_turn = !metrics_turn;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    const ObsPlanes planes{&obs_registry, &trace, &audit};
    scraped_sps = std::max(
        scraped_sps,
        run_configuration(registry, stream, gate_workers, kGateBatch, &planes,
                          gate_reps)
            .sessions_per_second);
    stop_scraper.store(true, std::memory_order_release);
    scraper.join();
    server.stop();
    scrapes_completed += scrapes;
  }
  const double scrape_overhead = 1.0 - scraped_sps / instrumented_sps;
  const bool scrape_within_gate = scrape_overhead < kObsOverheadGate;
  std::printf("  scraped:   %10.0f sessions/s (%llu scrapes served)\n"
              "  overhead:  %+.2f%% vs instrumented (gate < %.0f%%) -> %s\n",
              scraped_sps, static_cast<unsigned long long>(scrapes_completed),
              100.0 * scrape_overhead, 100.0 * kObsOverheadGate,
              scrape_within_gate ? "ok" : "FAIL");

  // ---- profiler overhead arm ----
  //
  // The continuous profiler (src/obs/prof) in its production posture:
  // 100 Hz wall sampler over the registered worker threads, SIGPROF
  // self-capture per tick, plus the CPU itimer.  Gated on the marginal
  // cost vs the uninstrumented baseline — "always on" is only a
  // defensible default if being sampled costs < 3% throughput.
  constexpr double kProfilerOverheadGate = 0.03;
  std::printf("measuring profiler overhead (wall+cpu sampling, same "
              "config, best of 3)...\n");
  double profiled_sps = 0.0;
  std::uint64_t prof_wall_samples = 0;
  std::uint64_t prof_cpu_samples = 0;
  for (int rep = 0; rep < 3; ++rep) {
    obs::prof::Profiler profiler;
    profiler.start({});
    profiled_sps = std::max(
        profiled_sps,
        run_configuration(registry, stream, gate_workers, kGateBatch, nullptr,
                          gate_reps)
            .sessions_per_second);
    profiler.stop();
    prof_wall_samples += profiler.wall_samples();
    prof_cpu_samples += profiler.cpu_samples();
  }
  const double profiler_overhead = 1.0 - profiled_sps / baseline_sps;
  const bool profiler_within_gate = profiler_overhead < kProfilerOverheadGate;
  std::printf("  profiled:  %10.0f sessions/s "
              "(%llu wall + %llu cpu samples)\n"
              "  overhead:  %+.2f%% vs baseline (gate < %.0f%%) -> %s\n",
              profiled_sps,
              static_cast<unsigned long long>(prof_wall_samples),
              static_cast<unsigned long long>(prof_cpu_samples),
              100.0 * profiler_overhead, 100.0 * kProfilerOverheadGate,
              profiler_within_gate ? "ok" : "FAIL");

  // ---- verdict-cache arm (release-popularity traffic) ----
  //
  // The same engine configuration, cache off vs on, over a stream
  // where a head of popular sessions dominates — production's shape,
  // per the paper's coarse-fingerprint collision design.  Both gates
  // are hardware-independent: a hit replaces a full scaler+PCA+k-means
  // pass with one hash and one seqlock read on the *submitting*
  // thread, so the win does not depend on spare cores.
  const auto popular = make_popularity_stream(stream, n_sessions);
  const std::size_t cache_capacity = std::bit_ceil(4 * n_sessions);
  std::printf("\nmeasuring verdict cache (release-popularity stream, "
              "workers=%zu batch=64, capacity=%zu, stream x%zu, best of "
              "3)...\n",
              gate_workers, cache_capacity, gate_reps);
  const auto [uncached_run, cached_run] =
      run_cache_arms(registry, popular, gate_workers, 64, cache_capacity,
                     gate_reps, 3);
  const double cache_speedup =
      cached_run.sessions_per_second / uncached_run.sessions_per_second;
  const double cache_hit_rate = cached_run.cache.hit_rate();
  const bool cache_speedup_ok = cache_speedup >= kCacheSpeedupGate;
  const bool cache_hit_rate_ok = cache_hit_rate >= kCacheHitRateGate;
  std::printf("  uncached:  %10.0f sessions/s (p50=%.0fus)\n"
              "  cached:    %10.0f sessions/s (p50=%.0fus, hit rate %.3f)\n"
              "  speedup:   %.2fx (gate >= %.1fx) -> %s; hit rate gate "
              ">= %.2f -> %s\n",
              uncached_run.sessions_per_second,
              uncached_run.metrics.p50_micros(),
              cached_run.sessions_per_second, cached_run.metrics.p50_micros(),
              cache_hit_rate, cache_speedup, kCacheSpeedupGate,
              cache_speedup_ok ? "ok" : "FAIL", kCacheHitRateGate,
              cache_hit_rate_ok ? "ok" : "FAIL");

  // ---- gate verdicts ----
  //
  // Always armed: the p99 latency budget and both cache gates.
  // Armed on 4+ hardware threads: pool scaling and the three
  // overhead gates — observability, scrape-under-load, profiler
  // (below that, submitter, workers, scraper and sampler time-share
  // cores and the measurement is scheduler noise).
  double best_speedup = 1.0;
  bool all_within_budget = true;
  for (const RunResult& r : results) {
    best_speedup = std::max(best_speedup, r.speedup);
    all_within_budget = all_within_budget && r.metrics.within_budget();
  }
  const bool concurrency_armed = hardware >= 4;
  const bool scaling_ok = best_speedup >= 3.0;
  const bool gates_enforced =
      all_within_budget && cache_speedup_ok && cache_hit_rate_ok &&
      (!concurrency_armed ||
       (scaling_ok && obs_within_gate && scrape_within_gate &&
        profiler_within_gate));

  std::string json = "{\n";
  json += "  \"hardware_threads\": " + std::to_string(hardware) + ",\n";
  json += "  \"sessions_per_run\": " + std::to_string(n_sessions) + ",\n";
  json += "  \"latency_budget_micros\": " +
          std::to_string(serve::kLatencyBudgetMicros) + ",\n";
  json += std::string("  \"gates_enforced\": ") +
          (gates_enforced ? "true" : "false") + ",\n";
  {
    char cache_entry[768];
    std::snprintf(
        cache_entry, sizeof(cache_entry),
        "  \"cache\": {\"uncached_sessions_per_second\": %.1f, "
        "\"cached_sessions_per_second\": %.1f, "
        "\"speedup\": %.3f, \"speedup_gate\": %.1f, "
        "\"hit_rate\": %.4f, \"hit_rate_gate\": %.2f, "
        "\"uncached_p50_micros\": %.1f, \"cached_p50_micros\": %.1f, "
        "\"hits\": %llu, \"misses\": %llu, \"stale\": %llu, "
        "\"inserts\": %llu, \"occupancy\": %llu, \"capacity\": %llu, "
        "\"speedup_within_gate\": %s, \"hit_rate_within_gate\": %s, "
        "\"enforced\": true},\n",
        uncached_run.sessions_per_second, cached_run.sessions_per_second,
        cache_speedup, kCacheSpeedupGate, cache_hit_rate, kCacheHitRateGate,
        uncached_run.metrics.p50_micros(), cached_run.metrics.p50_micros(),
        static_cast<unsigned long long>(cached_run.cache.hits),
        static_cast<unsigned long long>(cached_run.cache.misses),
        static_cast<unsigned long long>(cached_run.cache.stale),
        static_cast<unsigned long long>(cached_run.cache.inserts),
        static_cast<unsigned long long>(cached_run.cache.occupancy),
        static_cast<unsigned long long>(cached_run.cache.capacity),
        cache_speedup_ok ? "true" : "false",
        cache_hit_rate_ok ? "true" : "false");
    json += cache_entry;
  }
  {
    char obs_entry[512];
    std::snprintf(
        obs_entry, sizeof(obs_entry),
        "  \"observability\": {\"baseline_sessions_per_second\": %.1f, "
        "\"instrumented_sessions_per_second\": %.1f, "
        "\"overhead_fraction\": %.4f, "
        "\"scraped_sessions_per_second\": %.1f, "
        "\"scrape_overhead_fraction\": %.4f, "
        "\"scrapes_completed\": %llu, "
        "\"gate_fraction\": %.2f, "
        "\"within_gate\": %s, \"scrape_within_gate\": %s, "
        "\"enforced\": %s},\n",
        baseline_sps, instrumented_sps, obs_overhead, scraped_sps,
        scrape_overhead, static_cast<unsigned long long>(scrapes_completed),
        kObsOverheadGate, obs_within_gate ? "true" : "false",
        scrape_within_gate ? "true" : "false",
        concurrency_armed ? "true" : "false");
    json += obs_entry;
  }
  {
    char prof_entry[384];
    std::snprintf(
        prof_entry, sizeof(prof_entry),
        "  \"profiler\": {\"baseline_sessions_per_second\": %.1f, "
        "\"profiled_sessions_per_second\": %.1f, "
        "\"overhead_fraction\": %.4f, \"gate_fraction\": %.2f, "
        "\"wall_samples\": %llu, \"cpu_samples\": %llu, "
        "\"within_gate\": %s, \"enforced\": %s},\n",
        baseline_sps, profiled_sps, profiler_overhead, kProfilerOverheadGate,
        static_cast<unsigned long long>(prof_wall_samples),
        static_cast<unsigned long long>(prof_cpu_samples),
        profiler_within_gate ? "true" : "false",
        concurrency_armed ? "true" : "false");
    json += prof_entry;
  }
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    char entry[512];
    std::snprintf(
        entry, sizeof(entry),
        "    {\"workers\": %zu, \"max_batch\": %zu, \"seconds\": %.4f, "
        "\"sessions_per_second\": %.1f, \"speedup_vs_single\": %.3f, "
        "\"p50_micros\": %.1f, \"p95_micros\": %.1f, \"p99_micros\": %.1f, "
        "\"within_budget\": %s}%s\n",
        r.workers, r.max_batch, r.seconds, r.sessions_per_second, r.speedup,
        r.metrics.p50_micros(), r.metrics.p95_micros(),
        r.metrics.p99_micros(),
        r.metrics.within_budget() ? "true" : "false",
        i + 1 == results.size() ? "" : ",");
    json += entry;
  }
  json += "  ]\n}\n";
  if (!util::write_file(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nJSON written to %s\n", json_path.c_str());

  std::printf("best speedup %.2fx; %s\n", best_speedup,
              all_within_budget ? "all runs inside the 100 ms p99 budget"
                                : "SOME RUNS OVER the 100 ms p99 budget");
  if (!cache_speedup_ok) {
    std::fprintf(stderr, "FAIL: cache speedup %.2fx below the %.1fx gate\n",
                 cache_speedup, kCacheSpeedupGate);
  }
  if (!cache_hit_rate_ok) {
    std::fprintf(stderr, "FAIL: cache hit rate %.3f below the %.2f gate\n",
                 cache_hit_rate, kCacheHitRateGate);
  }
  if (concurrency_armed && !scaling_ok) {
    std::fprintf(stderr, "FAIL: expected >= 3x speedup on %u threads\n",
                 hardware);
  }
  if (concurrency_armed && !obs_within_gate) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the %.0f%% "
                 "gate\n",
                 100.0 * obs_overhead, 100.0 * kObsOverheadGate);
  }
  if (concurrency_armed && !scrape_within_gate) {
    std::fprintf(stderr,
                 "FAIL: scrape-under-load overhead %.2f%% exceeds the %.0f%% "
                 "gate\n",
                 100.0 * scrape_overhead, 100.0 * kObsOverheadGate);
  }
  if (concurrency_armed && !profiler_within_gate) {
    std::fprintf(stderr,
                 "FAIL: profiler overhead %.2f%% exceeds the %.0f%% gate\n",
                 100.0 * profiler_overhead, 100.0 * kProfilerOverheadGate);
  }
  if (!concurrency_armed) {
    std::printf("(scaling and overhead gates measured but not armed on %u "
                "hardware threads)\n", hardware);
  }
  return gates_enforced ? 0 : 1;
}
