// Reproduces Table 14 (Appendix-5): the same coarse- vs fine-grained
// clustering comparison on macOS Sequoia and macOS Sonoma.
#include <cstdio>

#include "appendix5_common.h"

int main() {
  using namespace bp;
  const auto rows = appendix5::run_comparison(ua::Os::kMacSequoia,
                                              ua::Os::kMacSonoma, 0x14);
  appendix5::print_comparison(
      "=== Table 14: coarse vs fine-grained clustering (macOS) ===", rows);
  std::printf(
      "\npaper reference: BROWSER POLYGRAPH 100%%, FingerprintJS 99.38%%, "
      "ClientJS 85.93%% — same ordering as Windows.\n");
  return 0;
}
