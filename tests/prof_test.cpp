// Profiling plane (src/obs/prof): tag scopes, thread registry, the
// sampler's deterministic surfaces, and the render formats.
//
// Determinism is the load-bearing property: the tag-tree render of a
// tag-only profile must be byte-identical across runs AND across pool
// thread counts, because the work decomposition (chunks of a fixed
// grain) is what is profiled, not the scheduling.  (The collapsed
// render's thread-name column is the one scheduling-dependent field:
// the pool's caller is a dispatch lane too, so a chunk may run on
// either a registered lane or the unregistered caller.)  The suite
// drives the sampler on manual ticks for exact counts, and separately
// leaves the real sampler (wall thread + SIGPROF) running over live
// threads to prove start/stop is race-free (the TSan tier exercises
// exactly this path).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof/prof.h"
#include "util/parallel.h"

namespace prof = bp::obs::prof;

namespace {

TEST(ProfTagScope, NestsAndRestoresDepth) {
  prof::ThreadCtx& ctx = prof::this_thread_ctx();
  const std::uint32_t base = ctx.tag_depth.load(std::memory_order_relaxed);
  {
    PROF_SCOPE("outer");
    EXPECT_EQ(ctx.tag_depth.load(std::memory_order_relaxed), base + 1);
    EXPECT_STREQ(ctx.tags[base].load(std::memory_order_relaxed), "outer");
    {
      PROF_SCOPE("inner");
      EXPECT_EQ(ctx.tag_depth.load(std::memory_order_relaxed), base + 2);
      EXPECT_STREQ(ctx.tags[base + 1].load(std::memory_order_relaxed),
                   "inner");
    }
    EXPECT_EQ(ctx.tag_depth.load(std::memory_order_relaxed), base + 1);
  }
  EXPECT_EQ(ctx.tag_depth.load(std::memory_order_relaxed), base);
}

TEST(ProfTagScope, OverflowBeyondMaxDepthStillBalances) {
  prof::ThreadCtx& ctx = prof::this_thread_ctx();
  const std::uint32_t base = ctx.tag_depth.load(std::memory_order_relaxed);
  {
    // kMaxTagDepth + 2 nested scopes: the deepest two write no tag slot
    // but the depth counter still pushes/pops symmetrically.
    std::vector<std::unique_ptr<prof::TagScope>> scopes;
    for (std::size_t i = 0; i < prof::kMaxTagDepth + 2; ++i) {
      scopes.push_back(std::make_unique<prof::TagScope>("deep"));
    }
    EXPECT_EQ(ctx.tag_depth.load(std::memory_order_relaxed),
              base + prof::kMaxTagDepth + 2);
    scopes.clear();
  }
  EXPECT_EQ(ctx.tag_depth.load(std::memory_order_relaxed), base);
}

TEST(ProfThreadRegistry, RegisterUnregisterAccounting) {
  prof::ThreadRegistry& registry = prof::ThreadRegistry::instance();
  const std::size_t before = registry.size();
  std::atomic<bool> release{false};
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      prof::ThreadHandle handle("test.registry", static_cast<std::uint32_t>(i));
      EXPECT_TRUE(handle.registered());
      ready.fetch_add(1);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (ready.load() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(registry.size(), before + 4);

  // The remote view the wall sampler takes: every registered thread has
  // a readable name.
  std::size_t named = 0;
  registry.for_each([&](prof::ThreadCtx& ctx, pthread_t) {
    if (ctx.name.load(std::memory_order_acquire) != nullptr) ++named;
  });
  EXPECT_GE(named, 4u);

  release.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.size(), before);
}

// Fixed work decomposition (grain 16 over 256 items), each chunk
// recording explicit samples under nested tags.  The sample table keys
// on (thread, kind, tags); the tag tree aggregates tags only, so its
// render must be byte-identical at every pool width.
std::pair<std::string, std::string> tagged_profile_at(std::size_t threads) {
  bp::util::set_parallel_threads(threads);
  prof::Profiler profiler;  // not started: no sampler, manual records
  bp::util::parallel_for(0, 256, 16, [&](std::size_t b, std::size_t e) {
    PROF_SCOPE("det.chunk");
    for (std::size_t i = b; i < e; ++i) {
      if (i % 2 == 0) {
        PROF_SCOPE("det.even");
        profiler.sample_here();
      } else {
        PROF_SCOPE("det.odd");
        profiler.sample_here();
      }
    }
  });
  const prof::ProfileSnapshot snap = profiler.snapshot();
  return {prof::Profiler::render_tag_tree_json(snap),
          prof::Profiler::render_collapsed(snap, /*symbolize=*/false)};
}

TEST(ProfDeterministicTagTree, ByteIdenticalAcrossThreadCounts) {
  const std::size_t restore = bp::util::parallel_threads();
  const auto [tree1, collapsed1] = tagged_profile_at(1);
  const auto [tree2, collapsed2] = tagged_profile_at(2);
  const auto [tree4, collapsed4] = tagged_profile_at(4);
  bp::util::set_parallel_threads(restore);

  EXPECT_EQ(tree1, tree2);
  EXPECT_EQ(tree1, tree4);
  // Tag-only samples from pool lanes all share the "pool.worker" thread
  // name (or the caller's), so even the collapsed render is stable...
  // except lane count changes which threads participate.  Aggregate
  // invariant instead: identical total weight.
  EXPECT_NE(tree1.find("\"det.even\", \"self\": 128"), std::string::npos)
      << tree1;
  EXPECT_NE(tree1.find("\"det.odd\", \"self\": 128"), std::string::npos)
      << tree1;
  EXPECT_NE(collapsed1.find("det.chunk;det.even 128"), std::string::npos)
      << collapsed1;

  // Run-to-run determinism at a fixed width: the tag tree is exact.
  // The collapsed render's leading thread-name column depends on which
  // lane (pool worker or the unregistered dispatching caller) claimed
  // each chunk, so compare it with that column folded away.
  const auto fold_threads = [](const std::string& collapsed) {
    std::map<std::string, std::uint64_t> by_stack;
    std::istringstream lines(collapsed);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t semi = line.find(';');
      const std::size_t space = line.rfind(' ');
      if (semi == std::string::npos || space == std::string::npos) continue;
      by_stack[line.substr(semi + 1, space - semi - 1)] +=
          std::strtoull(line.c_str() + space + 1, nullptr, 10);
    }
    std::string out;
    for (const auto& [stack, count] : by_stack) {
      out += stack + ' ' + std::to_string(count) + '\n';
    }
    return out;
  };
  const auto [tree2b, collapsed2b] = tagged_profile_at(2);
  bp::util::set_parallel_threads(restore);
  EXPECT_EQ(tree2, tree2b);
  EXPECT_EQ(fold_threads(collapsed2), fold_threads(collapsed2b));
  EXPECT_EQ(fold_threads(collapsed1), fold_threads(collapsed2));
}

TEST(ProfSamplerInjectableClock, ManualTicksYieldExactCounts) {
  prof::Profiler profiler;  // never started: wall_tick() is the clock
  std::atomic<bool> release{false};
  std::atomic<int> ready{0};
  auto parked = [&](const char* name, const char* tag) {
    prof::ThreadHandle handle(name);
    prof::TagScope scope(tag);
    ready.fetch_add(1);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::thread a(parked, "test.parked_a", "stage.alpha");
  std::thread b(parked, "test.parked_b", "stage.beta");
  while (ready.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const prof::ProfileSnapshot before = profiler.snapshot();
  for (int i = 0; i < 7; ++i) profiler.wall_tick();
  const prof::ProfileSnapshot after = profiler.snapshot();
  release.store(true, std::memory_order_release);
  a.join();
  b.join();

  const prof::ProfileSnapshot window = prof::Profiler::diff(before, after);
  std::uint64_t alpha = 0;
  std::uint64_t beta = 0;
  for (const prof::Sample& s : window.samples) {
    if (s.n_tags == 1 && std::string(s.tags[0]) == "stage.alpha") {
      alpha += s.count;
      EXPECT_STREQ(s.thread_name, "test.parked_a");
      EXPECT_EQ(s.kind, prof::SampleKind::kWall);
    }
    if (s.n_tags == 1 && std::string(s.tags[0]) == "stage.beta") {
      beta += s.count;
    }
  }
  EXPECT_EQ(alpha, 7u);
  EXPECT_EQ(beta, 7u);
  EXPECT_EQ(window.dropped, 0u);
}

TEST(ProfSampler, DiffIsolatesTheWindow) {
  prof::Profiler profiler;
  {
    PROF_SCOPE("win.before");
    profiler.sample_here();
    profiler.sample_here();
  }
  const prof::ProfileSnapshot before = profiler.snapshot();
  {
    PROF_SCOPE("win.during");
    profiler.sample_here();
  }
  const prof::ProfileSnapshot window =
      prof::Profiler::diff(before, profiler.snapshot());
  EXPECT_EQ(window.total(), 1u);
  ASSERT_EQ(window.samples.size(), 1u);
  EXPECT_STREQ(window.samples[0].tags[0], "win.during");
}

TEST(ProfSampler, CollapsedRenderFormat) {
  prof::Profiler profiler;
  {
    PROF_SCOPE("fmt.outer");
    PROF_SCOPE("fmt.inner");
    profiler.sample_here();
    profiler.sample_here(prof::SampleKind::kCpu);
  }
  const std::string collapsed =
      prof::Profiler::render_collapsed(profiler.snapshot(),
                                       /*symbolize=*/false);
  // This thread is not registered, so samples carry the fallback name;
  // lines are `thread;(kind);tag;... count`, sorted, cpu before wall.
  EXPECT_EQ(collapsed,
            "(unregistered);(cpu);fmt.outer;fmt.inner 1\n"
            "(unregistered);(wall);fmt.outer;fmt.inner 1\n");
}

// The TSan tier's target: real sampler thread + SIGPROF machinery
// started and stopped repeatedly while tagged worker threads run hot.
// Asserts survival and monotone sample counters, not exact values.
TEST(ProfSamplerStartStop, RaceFreeWithLiveWorkers) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      prof::ThreadHandle handle("test.hot", static_cast<std::uint32_t>(i));
      volatile std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_acquire)) {
        PROF_SCOPE("hot.spin");
        for (int k = 0; k < 4096; ++k) {
          sink = sink + static_cast<std::uint64_t>(k);
        }
      }
    });
  }

  prof::Profiler profiler;
  for (int cycle = 0; cycle < 3; ++cycle) {
    prof::ProfilerConfig config;
    config.wall_period = std::chrono::microseconds(500);
    profiler.start(config);
    EXPECT_TRUE(profiler.running());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    profiler.stop();
    EXPECT_FALSE(profiler.running());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  EXPECT_GT(profiler.wall_samples(), 0u);
  const std::string collapsed =
      prof::Profiler::render_collapsed(profiler.snapshot());
  EXPECT_NE(collapsed.find("test.hot;"), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("hot.spin"), std::string::npos) << collapsed;
}

TEST(ProfAllocHook, CountsWhenLinkedAndEnabled) {
  if (!prof::alloc_hook_linked()) {
    GTEST_SKIP() << "bp_prof_alloc not linked into this binary "
                    "(sanitizer build compiles the hook out)";
  }
  EXPECT_FALSE(prof::alloc_counting());  // off by default
  const prof::AllocCounts before = prof::alloc_counts();
  prof::set_alloc_counting(true);
  {
    std::vector<std::unique_ptr<int>> keep;
    for (int i = 0; i < 64; ++i) keep.push_back(std::make_unique<int>(i));
  }
  prof::set_alloc_counting(false);
  const prof::AllocCounts after = prof::alloc_counts();
  EXPECT_GE(after.allocations, before.allocations + 64);
  EXPECT_GE(after.bytes, before.bytes + 64 * sizeof(int));

  // Gated off again: the counters hold still.
  const prof::AllocCounts quiesced = prof::alloc_counts();
  std::vector<std::unique_ptr<int>> extra;
  for (int i = 0; i < 16; ++i) extra.push_back(std::make_unique<int>(i));
  EXPECT_EQ(prof::alloc_counts().allocations, quiesced.allocations);
}

}  // namespace
