// Reproduces Table 4: the real-world deployment experiment (§7.1).
// Sessions flagged by Browser Polygraph are compared against the whole
// population and a random batch of the same size on the FinOrg security
// tags: Untrusted_IP, Untrusted_Cookie, and ATO-within-72h.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct TagCounts {
  std::size_t sessions = 0;
  std::size_t untrusted_ip = 0;
  std::size_t untrusted_cookie = 0;
  std::size_t ato = 0;

  void add(const bp::traffic::SessionRecord& record) {
    ++sessions;
    untrusted_ip += record.untrusted_ip ? 1 : 0;
    untrusted_cookie += record.untrusted_cookie ? 1 : 0;
    ato += record.ato ? 1 : 0;
  }

  std::vector<std::string> row(const std::string& name) const {
    auto pct = [&](std::size_t count) {
      return sessions == 0
                 ? std::string("-")
                 : bp::util::format_double(
                       100.0 * static_cast<double>(count) /
                           static_cast<double>(sessions),
                       2) +
                       "%";
    };
    return {name, std::to_string(sessions), pct(untrusted_ip),
            pct(untrusted_cookie), pct(ato)};
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Table 4: flag rates of Browser Polygraph batches ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto trained = benchmark_support::train_production(data);

  const ml::Matrix features =
      data.feature_matrix(trained.model.config().feature_indices);

  TagCounts all;
  TagCounts flagged;
  TagCounts risk_over_1;
  TagCounts risk_over_4;
  std::vector<std::size_t> flagged_rows;

  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& record = data.records()[i];
    all.add(record);
    const core::Detection detection =
        trained.model.score(features.row(i), record.claimed);
    if (!detection.flagged) continue;
    flagged.add(record);
    flagged_rows.push_back(i);
    if (detection.risk_factor > 1) risk_over_1.add(record);
    if (detection.risk_factor > 4) risk_over_4.add(record);
  }

  // Random batch of the same size as the flagged batch.
  TagCounts random_batch;
  util::Rng rng(0xBADC0FFEULL);
  for (std::size_t idx : rng.sample_indices(data.size(), flagged.sessions)) {
    random_batch.add(data.records()[idx]);
  }

  util::TextTable table(
      {"Category", "Sessions", "Untrusted_IP", "Untrusted_Cookie", "ATO"});
  table.add_row(all.row("All users"));
  table.add_row(flagged.row("Flagged by Browser Polygraph (all)"));
  table.add_row(risk_over_1.row("Flagged (risk factor > 1)"));
  table.add_row(risk_over_4.row("Flagged (risk factor > 4)"));
  table.add_row(random_batch.row("Randomly-chosen"));
  std::fputs(table.render().c_str(), stdout);

  // Composition of the flagged batch by ground-truth provenance — the
  // visibility a real deployment lacks.
  std::size_t flagged_fraud = 0;
  std::size_t flagged_privacy = 0;
  std::size_t flagged_benign = 0;
  for (std::size_t idx : flagged_rows) {
    switch (data.records()[idx].kind) {
      case traffic::SessionKind::kFraudBrowser:
        ++flagged_fraud;
        break;
      case traffic::SessionKind::kPrivacyBrowser:
        ++flagged_privacy;
        break;
      default:
        ++flagged_benign;
        break;
    }
  }
  std::printf(
      "\nflagged batch provenance (simulation ground truth): "
      "%zu fraud-browser, %zu privacy-browser, %zu benign sessions\n",
      flagged_fraud, flagged_privacy, flagged_benign);
  std::printf("paper reference: 897 flagged of 205k; ATO 0.43%% overall, "
              "2%% flagged, 3.89%% (risk>1), 5.83%% (risk>4)\n");
  return 0;
}
