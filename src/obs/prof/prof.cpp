#include "obs/prof/prof.h"

#include <dlfcn.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bp::obs::prof {

namespace {

// The profiler that owns the SIGPROF plane (handler + itimer +
// pthread_kill walks).  Signals are process-global, so at most one.
std::atomic<Profiler*> g_signal_owner{nullptr};

constexpr const char* kUnregisteredName = "(unregistered)";

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void sigprof_handler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  // Async-signal-safe: save errno, touch only atomics and the ucontext.
  const int saved_errno = errno;
  Profiler* profiler = g_signal_owner.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler->record_signal_sample(ucontext);
  errno = saved_errno;
}

// Extract the interrupted pc and frame pointer from the signal's
// ucontext.  Unknown architectures yield nulls — the sample then
// carries tags only (the graceful no-frame fallback).
void interrupted_registers(void* ucontext, void** pc, void** fp) noexcept {
  *pc = nullptr;
  *fp = nullptr;
  if (ucontext == nullptr) return;
  auto* uc = static_cast<ucontext_t*>(ucontext);
#if defined(__x86_64__) && defined(__linux__)
  *pc = reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
  *fp = reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__) && defined(__linux__)
  *pc = reinterpret_cast<void*>(uc->uc_mcontext.pc);
  *fp = reinterpret_cast<void*>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
#endif
}

// Frame-pointer chain walk with address-sanity rails.  Each frame is
// [saved fp, return address]; the walk stops the moment anything looks
// off (unaligned, outside this thread's stack, not strictly moving
// toward the stack base, depth cap).  When the code was built without
// frame pointers this degrades — by design — to the single interrupted
// pc captured by the caller.
std::uint32_t walk_frames(void* fp, const void* stack_lo,
                          const void* stack_hi, void** out,
                          std::uint32_t out_start) noexcept {
  std::uint32_t n = out_start;
  const auto in_stack = [&](void* p) noexcept {
    // The walk reads frame[0] and frame[1]; both must sit inside the
    // thread's stack mapping.
    return p > stack_lo &&
           p <= static_cast<const void*>(
                    static_cast<const char*>(stack_hi) - 2 * sizeof(void*)) &&
           (reinterpret_cast<std::uintptr_t>(p) & (sizeof(void*) - 1)) == 0;
  };
  while (n < kMaxFrames && in_stack(fp)) {
    void* const* frame = static_cast<void* const*>(fp);
    void* ret = frame[1];
    // Return addresses live in mapped code, far from page zero.
    if (reinterpret_cast<std::uintptr_t>(ret) < 0x10000) break;
    out[n++] = ret;
    void* next = frame[0];
    if (next <= fp) break;  // frames must move strictly toward the base
    fp = next;
  }
  return n;
}

std::string symbolize(void* address) {
  Dl_info info;
  if (dladdr(address, &info) != 0 && info.dli_sname != nullptr) {
    return info.dli_sname;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<std::uintptr_t>(address)));
  return buf;
}

}  // namespace

ThreadCtx& this_thread_ctx() noexcept {
  thread_local ThreadCtx ctx;
  return ctx;
}

// ------------------------------------------------------------ registry

ThreadRegistry& ThreadRegistry::instance() {
  static ThreadRegistry registry;
  return registry;
}

int ThreadRegistry::register_current(ThreadCtx* ctx) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    if (slots_[i].ctx == nullptr) {
      slots_[i].ctx = ctx;
      slots_[i].thread = pthread_self();
      high_water_ = std::max(high_water_, i + 1);
      return static_cast<int>(i);
    }
  }
  return -1;  // table full: the thread goes unprofiled, nothing breaks
}

void ThreadRegistry::unregister(int slot) {
  if (slot < 0) return;
  // Taking the walk mutex here is the unregistration-safety contract:
  // once this returns, no sampler pass can read the ctx or signal the
  // thread again, so the handle's thread may exit immediately after.
  std::lock_guard lock(mutex_);
  slots_[static_cast<std::size_t>(slot)].ctx = nullptr;
}

void ThreadRegistry::for_each(
    const std::function<void(ThreadCtx&, pthread_t)>& fn) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < high_water_; ++i) {
    if (slots_[i].ctx != nullptr) fn(*slots_[i].ctx, slots_[i].thread);
  }
}

std::size_t ThreadRegistry::size() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < high_water_; ++i) {
    if (slots_[i].ctx != nullptr) ++n;
  }
  return n;
}

ThreadHandle::ThreadHandle(const char* name, std::uint32_t index) noexcept {
  ThreadCtx& ctx = this_thread_ctx();
  ctx.index = index;
  ctx.stack_lo = nullptr;
  ctx.stack_hi = nullptr;
#if defined(__GLIBC__)
  // Stack bounds bound the frame walk; without them the handler keeps
  // to the single interrupted-pc frame.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* base = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &base, &size) == 0) {
      ctx.stack_lo = base;
      ctx.stack_hi = static_cast<char*>(base) + size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
  ctx.name.store(name, std::memory_order_release);
  slot_ = ThreadRegistry::instance().register_current(&ctx);
}

ThreadHandle::~ThreadHandle() {
  ThreadRegistry::instance().unregister(slot_);
  this_thread_ctx().name.store(nullptr, std::memory_order_release);
}

// ------------------------------------------------------------ profiler

// One slot of the lock-free aggregation table.  Claim protocol: CAS
// hash 0 -> 1 (claim sentinel), write the payload plainly, then publish
// the real hash with a release store.  Matching inserters fetch_add the
// count only after loading the published hash (acquire), so a reader
// that sees hash > 1 also sees a complete payload.  A thread that finds
// the claim sentinel probes onward — duplicate buckets for one logical
// key are possible and merged at snapshot time.
struct Profiler::TableSlot {
  std::atomic<std::uint64_t> hash{0};  // 0 empty, 1 claimed, else key
  std::atomic<std::uint64_t> count{0};
  SampleKind kind = SampleKind::kWall;
  std::uint32_t n_tags = 0;
  std::uint32_t n_frames = 0;
  const char* thread_name = nullptr;
  const char* tags[kMaxTagDepth];
  void* frames[kMaxFrames];
};

Profiler::Profiler() : table_(new TableSlot[kTableSlots]) {}

Profiler::~Profiler() { stop(); }

void Profiler::record(SampleKind kind, const char* thread_name,
                      const char* const* tags, std::uint32_t n_tags,
                      void* const* frames, std::uint32_t n_frames) noexcept {
  n_tags = std::min<std::uint32_t>(n_tags, kMaxTagDepth);
  n_frames = std::min<std::uint32_t>(n_frames, kMaxFrames);
  std::uint64_t h = mix64(reinterpret_cast<std::uintptr_t>(thread_name) ^
                          (static_cast<std::uint64_t>(kind) << 1));
  for (std::uint32_t i = 0; i < n_tags; ++i) {
    h = mix64(h ^ reinterpret_cast<std::uintptr_t>(tags[i]));
  }
  for (std::uint32_t i = 0; i < n_frames; ++i) {
    h = mix64(h ^ reinterpret_cast<std::uintptr_t>(frames[i]));
  }
  if (h < 2) h = 2;  // 0 = empty, 1 = claim sentinel

  for (std::size_t probe = 0; probe < kProbeLimit; ++probe) {
    TableSlot& slot = table_[(h + probe) & (kTableSlots - 1)];
    std::uint64_t seen = slot.hash.load(std::memory_order_acquire);
    if (seen == h) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (seen == 0) {
      std::uint64_t expected = 0;
      if (slot.hash.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        slot.kind = kind;
        slot.thread_name = thread_name;
        slot.n_tags = n_tags;
        slot.n_frames = n_frames;
        for (std::uint32_t i = 0; i < n_tags; ++i) slot.tags[i] = tags[i];
        for (std::uint32_t i = 0; i < n_frames; ++i) {
          slot.frames[i] = frames[i];
        }
        slot.count.store(1, std::memory_order_relaxed);
        slot.hash.store(h, std::memory_order_release);
        return;
      }
      if (expected == h) {  // lost the claim to the same key
        slot.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Claimed by a different key mid-probe: fall through, probe on.
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::sample_here(SampleKind kind) noexcept {
  ThreadCtx& ctx = this_thread_ctx();
  const char* name = ctx.name.load(std::memory_order_acquire);
  if (name == nullptr) name = kUnregisteredName;
  const std::uint32_t depth =
      std::min<std::uint32_t>(ctx.tag_depth.load(std::memory_order_acquire),
                              kMaxTagDepth);
  const char* tags[kMaxTagDepth];
  for (std::uint32_t i = 0; i < depth; ++i) {
    tags[i] = ctx.tags[i].load(std::memory_order_relaxed);
  }
  record(kind, name, tags, depth, nullptr, 0);
  if (kind == SampleKind::kWall) {
    wall_samples_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cpu_samples_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Profiler::record_signal_sample(void* ucontext) noexcept {
  ThreadCtx& ctx = this_thread_ctx();
  const char* name = ctx.name.load(std::memory_order_relaxed);
  if (name == nullptr) name = kUnregisteredName;
  const std::uint32_t depth =
      std::min<std::uint32_t>(ctx.tag_depth.load(std::memory_order_relaxed),
                              kMaxTagDepth);
  const char* tags[kMaxTagDepth];
  for (std::uint32_t i = 0; i < depth; ++i) {
    tags[i] = ctx.tags[i].load(std::memory_order_relaxed);
  }
  void* frames[kMaxFrames];
  std::uint32_t n_frames = 0;
  void* pc = nullptr;
  void* fp = nullptr;
  interrupted_registers(ucontext, &pc, &fp);
  if (pc != nullptr) frames[n_frames++] = pc;
  if (fp != nullptr && ctx.stack_lo != nullptr) {
    n_frames = walk_frames(fp, ctx.stack_lo, ctx.stack_hi, frames, n_frames);
  }
  record(SampleKind::kCpu, name, tags, depth, frames, n_frames);
  cpu_samples_.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::wall_tick() {
  ThreadRegistry::instance().for_each([this](ThreadCtx& ctx,
                                             pthread_t thread) {
    const char* name = ctx.name.load(std::memory_order_acquire);
    if (name == nullptr) name = kUnregisteredName;
    const std::uint32_t depth = std::min<std::uint32_t>(
        ctx.tag_depth.load(std::memory_order_acquire), kMaxTagDepth);
    const char* tags[kMaxTagDepth];
    for (std::uint32_t i = 0; i < depth; ++i) {
      tags[i] = ctx.tags[i].load(std::memory_order_relaxed);
    }
    record(SampleKind::kWall, name, tags, depth, nullptr, 0);
    wall_samples_.fetch_add(1, std::memory_order_relaxed);
    if (owns_signals_ && config_.capture_stacks) {
      // The registry mutex (held by for_each) is what makes this safe:
      // the target cannot unregister-and-exit mid-kill.
      pthread_kill(thread, SIGPROF);
    }
  });
}

void Profiler::sampler_loop() {
  while (running_.load(std::memory_order_acquire)) {
    wall_tick();
    if (config_.sleep) {
      config_.sleep(config_.wall_period);
    } else {
      std::unique_lock lock(stop_mutex_);
      stop_cv_.wait_for(lock, config_.wall_period,
                        [this] { return stop_requested_; });
    }
  }
}

void Profiler::start(ProfilerConfig config) {
  stop();
  config_ = std::move(config);
  {
    std::lock_guard lock(stop_mutex_);
    stop_requested_ = false;
  }
  Profiler* expected = nullptr;
  owns_signals_ = (config_.capture_stacks || config_.cpu_interval.count() > 0)
                  && g_signal_owner.compare_exchange_strong(
                         expected, this, std::memory_order_acq_rel);
  if (owns_signals_) {
    struct sigaction action{};
    action.sa_sigaction = &sigprof_handler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    sigaction(SIGPROF, &action, nullptr);
    if (config_.cpu_interval.count() > 0) {
      itimerval timer{};
      timer.it_interval.tv_sec =
          static_cast<time_t>(config_.cpu_interval.count() / 1'000'000);
      timer.it_interval.tv_usec =
          static_cast<suseconds_t>(config_.cpu_interval.count() % 1'000'000);
      timer.it_value = timer.it_interval;
      setitimer(ITIMER_PROF, &timer, nullptr);
    }
  }
  running_.store(true, std::memory_order_release);
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Profiler::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  if (owns_signals_) {
    itimerval off{};
    setitimer(ITIMER_PROF, &off, nullptr);
    // Keep the (idempotent, owner-checked) handler installed: a signal
    // already in flight must land on a handler, not SIG_DFL (which
    // kills the process).  Clearing the owner makes it a no-op.
    g_signal_owner.store(nullptr, std::memory_order_release);
    owns_signals_ = false;
  }
}

std::uint64_t Profiler::dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

namespace {

// Deterministic sample order: kind, thread name (by content), tag path,
// then raw frame addresses (absent in tag-only profiles, so those sort
// reproducibly across runs).
bool sample_less(const Sample& a, const Sample& b) noexcept {
  if (a.kind != b.kind) return a.kind < b.kind;
  const int name_cmp = std::strcmp(a.thread_name, b.thread_name);
  if (name_cmp != 0) return name_cmp < 0;
  const std::uint32_t n_tags = std::min(a.n_tags, b.n_tags);
  for (std::uint32_t i = 0; i < n_tags; ++i) {
    const int c = std::strcmp(a.tags[i], b.tags[i]);
    if (c != 0) return c < 0;
  }
  if (a.n_tags != b.n_tags) return a.n_tags < b.n_tags;
  const std::uint32_t n_frames = std::min(a.n_frames, b.n_frames);
  for (std::uint32_t i = 0; i < n_frames; ++i) {
    if (a.frames[i] != b.frames[i]) return a.frames[i] < b.frames[i];
  }
  return a.n_frames < b.n_frames;
}

bool sample_key_equal(const Sample& a, const Sample& b) noexcept {
  if (a.kind != b.kind || a.n_tags != b.n_tags || a.n_frames != b.n_frames ||
      std::strcmp(a.thread_name, b.thread_name) != 0) {
    return false;
  }
  for (std::uint32_t i = 0; i < a.n_tags; ++i) {
    if (std::strcmp(a.tags[i], b.tags[i]) != 0) return false;
  }
  for (std::uint32_t i = 0; i < a.n_frames; ++i) {
    if (a.frames[i] != b.frames[i]) return false;
  }
  return true;
}

}  // namespace

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot out;
  out.dropped = dropped_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kTableSlots; ++i) {
    const TableSlot& slot = table_[i];
    const std::uint64_t hash = slot.hash.load(std::memory_order_acquire);
    if (hash < 2) continue;  // empty or still being claimed
    Sample sample;
    sample.kind = slot.kind;
    sample.thread_name = slot.thread_name;
    sample.n_tags = slot.n_tags;
    sample.n_frames = slot.n_frames;
    for (std::uint32_t t = 0; t < slot.n_tags; ++t) {
      sample.tags[t] = slot.tags[t];
    }
    for (std::uint32_t f = 0; f < slot.n_frames; ++f) {
      sample.frames[f] = slot.frames[f];
    }
    sample.count = slot.count.load(std::memory_order_relaxed);
    if (sample.count > 0) out.samples.push_back(sample);
  }
  std::sort(out.samples.begin(), out.samples.end(), &sample_less);
  // Merge duplicate buckets (distinct slots claimed for one key when a
  // claim raced) into one deterministic entry.
  std::vector<Sample> merged;
  for (const Sample& sample : out.samples) {
    if (!merged.empty() && sample_key_equal(merged.back(), sample)) {
      merged.back().count += sample.count;
    } else {
      merged.push_back(sample);
    }
  }
  out.samples = std::move(merged);
  return out;
}

ProfileSnapshot Profiler::diff(const ProfileSnapshot& before,
                               const ProfileSnapshot& after) {
  ProfileSnapshot out;
  out.dropped = after.dropped - before.dropped;
  // Both inputs are sorted by the same deterministic order; one merge
  // pass subtracts the earlier counts.
  std::size_t b = 0;
  for (const Sample& sample : after.samples) {
    while (b < before.samples.size() &&
           sample_less(before.samples[b], sample)) {
      ++b;
    }
    Sample delta = sample;
    if (b < before.samples.size() &&
        sample_key_equal(before.samples[b], sample)) {
      delta.count -= before.samples[b].count;
    }
    if (delta.count > 0) out.samples.push_back(delta);
  }
  return out;
}

std::string Profiler::render_collapsed(const ProfileSnapshot& snapshot,
                                       bool symbolize_frames) {
  std::string out;
  out.reserve(snapshot.samples.size() * 64);
  for (const Sample& sample : snapshot.samples) {
    std::string line = sample.thread_name;
    line += sample.kind == SampleKind::kCpu ? ";(cpu)" : ";(wall)";
    for (std::uint32_t t = 0; t < sample.n_tags; ++t) {
      line += ';';
      line += sample.tags[t];
    }
    // flamegraph.pl wants root-first; frames were captured leaf-first.
    for (std::uint32_t f = sample.n_frames; f > 0; --f) {
      line += ';';
      if (symbolize_frames) {
        line += symbolize(sample.frames[f - 1]);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(
                          reinterpret_cast<std::uintptr_t>(
                              sample.frames[f - 1])));
        line += buf;
      }
    }
    line += ' ';
    line += std::to_string(sample.count);
    line += '\n';
    out += line;
  }
  // Symbolized lines can collide (two pcs in one function) and need a
  // final stable ordering pass for deterministic output.
  if (!out.empty()) {
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < out.size()) {
      const std::size_t eol = out.find('\n', pos);
      lines.push_back(out.substr(pos, eol - pos));
      pos = eol + 1;
    }
    std::sort(lines.begin(), lines.end());
    out.clear();
    for (const std::string& line : lines) {
      out += line;
      out += '\n';
    }
  }
  if (snapshot.dropped > 0) {
    out += "(dropped) " + std::to_string(snapshot.dropped) + "\n";
  }
  return out;
}

namespace {

struct TagNode {
  std::string name;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
  std::vector<TagNode> children;  // kept sorted by name

  TagNode& child(const char* child_name) {
    const auto it = std::lower_bound(
        children.begin(), children.end(), child_name,
        [](const TagNode& node, const char* n) { return node.name < n; });
    if (it != children.end() && it->name == child_name) return *it;
    return *children.insert(it, TagNode{child_name, 0, 0, {}});
  }
};

void render_node(const TagNode& node, std::string& out) {
  out += "{\"name\": \"" + node.name + "\", \"self\": " +
         std::to_string(node.self) + ", \"total\": " +
         std::to_string(node.total);
  if (!node.children.empty()) {
    out += ", \"children\": [";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out += ", ";
      render_node(node.children[i], out);
    }
    out += "]";
  }
  out += "}";
}

}  // namespace

std::string Profiler::render_tag_tree_json(const ProfileSnapshot& snapshot) {
  TagNode root{"all", 0, 0, {}};
  for (const Sample& sample : snapshot.samples) {
    root.total += sample.count;
    TagNode* node = &root;
    for (std::uint32_t t = 0; t < sample.n_tags; ++t) {
      node = &node->child(sample.tags[t]);
      node->total += sample.count;
    }
    node->self += sample.count;
  }
  std::string out;
  render_node(root, out);
  out += "\n";
  return out;
}

// ------------------------------------------------- allocation counting

namespace {
std::atomic<bool> g_alloc_hook_linked{false};
std::atomic<bool> g_alloc_counting{false};
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

bool alloc_hook_linked() noexcept {
  return g_alloc_hook_linked.load(std::memory_order_acquire);
}

void set_alloc_counting(bool enabled) noexcept {
  g_alloc_counting.store(enabled, std::memory_order_release);
}

bool alloc_counting() noexcept {
  return g_alloc_counting.load(std::memory_order_acquire);
}

AllocCounts alloc_counts() noexcept {
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

namespace detail {

void mark_alloc_hook_linked() noexcept {
  g_alloc_hook_linked.store(true, std::memory_order_release);
}

void note_allocation(std::size_t bytes) noexcept {
  if (!g_alloc_counting.load(std::memory_order_relaxed)) return;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace bp::obs::prof
