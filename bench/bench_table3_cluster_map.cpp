// Reproduces Table 3: user-agents assigned to clusters with k=11
// (and prints the training summary the table rests on).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Table 3: user-agents assigned to clusters (k=11) ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto trained = benchmark_support::train_production(data);

  std::printf(
      "training rows: %zu   outliers removed: %zu   clustering accuracy: "
      "%.2f%%   labels realigned: %zu\n\n",
      trained.summary.rows_total, trained.summary.rows_outliers_removed,
      100.0 * trained.summary.clustering_accuracy,
      trained.summary.labels_realigned);

  const auto numbering =
      benchmark_support::paper_cluster_numbering(trained.model);
  util::TextTable table({"Cluster", "user-agents"});
  const auto& cluster_table = trained.model.cluster_table();
  std::vector<std::pair<std::size_t, std::string>> rows;
  for (std::size_t cluster = 0; cluster < trained.model.config().k; ++cluster) {
    const auto& uas = cluster_table.user_agents_in(cluster);
    if (uas.empty()) continue;  // noise clusters hold no UA majority
    rows.emplace_back(numbering[cluster],
                      benchmark_support::describe_cluster_uas(uas));
  }
  std::sort(rows.begin(), rows.end());
  for (auto& [paper_id, description] : rows) {
    table.add_row({std::to_string(paper_id), std::move(description)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nClusters without any user-agent majority (the paper's omitted "
      "clusters 7/8) absorb privacy-browser and fraud-tool fingerprints.\n");
  return 0;
}
