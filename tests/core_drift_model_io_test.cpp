// Tests for drift detection (§6.6/§7.3) and model persistence.
#include <gtest/gtest.h>

#include "core/drift.h"
#include "core/model_io.h"
#include "traffic/session_generator.h"

namespace bp::core {
namespace {

struct DriftFixture {
  Polygraph model;
  traffic::Dataset drift_data;
};

const DriftFixture& fixture() {
  static const DriftFixture* instance = [] {
    auto* f = new DriftFixture;
    {
      traffic::TrafficConfig config;
      config.n_sessions = 40'000;
      traffic::SessionGenerator gen(config);
      const traffic::Dataset train = gen.generate(
          traffic::experiment_feature_indices());
      const ml::Matrix features =
          train.feature_matrix(f->model.config().feature_indices);
      std::vector<ua::UserAgent> uas;
      for (const auto& r : train.records()) uas.push_back(r.claimed);
      f->model.train(features, uas);
    }
    {
      traffic::TrafficConfig config;
      config.seed = 20230725;
      config.n_sessions = 60'000;
      config.start_date = bp::util::Date::from_ymd(2023, 7, 20);
      config.end_date = bp::util::Date::from_ymd(2023, 11, 3);
      traffic::SessionGenerator gen(config);
      f->drift_data = gen.generate(traffic::experiment_feature_indices());
    }
    return f;
  }();
  return *instance;
}

ua::UserAgent chrome(int v) { return {ua::Vendor::kChrome, v, ua::Os::kWindows10}; }
ua::UserAgent firefox(int v) {
  return {ua::Vendor::kFirefox, v, ua::Os::kWindows10};
}
ua::UserAgent edge(int v) { return {ua::Vendor::kEdge, v, ua::Os::kWindows10}; }

TEST(Drift, StableReleasesDoNotTrigger) {
  const DriftDetector detector(fixture().model, 0.98);
  for (int version = 115; version <= 118; ++version) {
    const DriftReport report = detector.check(
        fixture().drift_data,
        {chrome(version), firefox(version), edge(version)},
        bp::util::Date::from_ymd(2023, 10, 23));
    EXPECT_FALSE(report.retraining_required) << "version " << version;
    for (const auto& entry : report.entries) {
      EXPECT_GT(entry.accuracy, 0.98) << entry.release.label();
      EXPECT_FALSE(entry.cluster_changed) << entry.release.label();
    }
  }
}

TEST(Drift, StableReleasesInheritPredecessorCluster) {
  const DriftDetector detector(fixture().model, 0.98);
  const DriftReport report =
      detector.check(fixture().drift_data, {chrome(116), firefox(116)},
                     bp::util::Date::from_ymd(2023, 8, 25));
  ASSERT_EQ(report.entries.size(), 2u);
  for (const auto& entry : report.entries) {
    ASSERT_TRUE(entry.reference_cluster.has_value());
    EXPECT_EQ(entry.predominant_cluster, *entry.reference_cluster);
  }
}

TEST(Drift, Firefox119ChangesCluster) {
  const DriftDetector detector(fixture().model, 0.98);
  const DriftReport report =
      detector.check(fixture().drift_data, {firefox(119)},
                     bp::util::Date::from_ymd(2023, 11, 2));
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].cluster_changed);
  EXPECT_TRUE(report.retraining_required);
  // It lands in the Chrome 90-101 cluster (§7.3's Table 6).
  const auto chrome95_cluster =
      fixture().model.cluster_table().expected_cluster(chrome(95));
  ASSERT_TRUE(chrome95_cluster.has_value());
  EXPECT_EQ(report.entries[0].predominant_cluster, *chrome95_cluster);
}

TEST(Drift, Chrome119DropsBelowAccuracyThreshold) {
  const DriftDetector detector(fixture().model, 0.98);
  const DriftReport report =
      detector.check(fixture().drift_data, {chrome(119)},
                     bp::util::Date::from_ymd(2023, 11, 2));
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].accuracy_below_threshold);
  EXPECT_FALSE(report.entries[0].cluster_changed);
  EXPECT_LT(report.entries[0].accuracy, 0.98);
  EXPECT_GT(report.entries[0].accuracy, 0.94);
}

TEST(Drift, Edge119StaysHealthy) {
  const DriftDetector detector(fixture().model, 0.98);
  const DriftReport report =
      detector.check(fixture().drift_data, {edge(119)},
                     bp::util::Date::from_ymd(2023, 11, 2));
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_FALSE(report.entries[0].triggers_retraining());
}

TEST(Drift, ReleasesWithoutSessionsAreSkipped) {
  // A release with zero sessions must be *recorded* as skipped, not
  // silently dropped — "checked, healthy" and "no data to check" are
  // different operational states.
  const DriftDetector detector(fixture().model, 0.98);
  const DriftReport report =
      detector.check(fixture().drift_data, {chrome(200), chrome(117)},
                     bp::util::Date::from_ymd(2023, 11, 2));
  EXPECT_FALSE(report.retraining_required);
  ASSERT_EQ(report.skipped_count(), 1u);
  EXPECT_EQ(report.skipped[0].key(), chrome(200).key());
  // The release that does have sessions is still evaluated normally.
  ASSERT_EQ(report.checked(), 1u);
  EXPECT_EQ(report.entries[0].release.key(), chrome(117).key());
}

TEST(Drift, ClosestKnownReleaseFindsPredecessor) {
  const DriftDetector detector(fixture().model, 0.98);
  const auto closest = detector.closest_known_release(chrome(117));
  ASSERT_TRUE(closest.has_value());
  EXPECT_EQ(closest->vendor, ua::Vendor::kChrome);
  EXPECT_EQ(closest->major_version, 114);  // last trained Chrome release
}

TEST(Drift, ScheduleAnchorsOnFirefoxReleases) {
  const auto schedule = DriftDetector::schedule(
      bp::util::Date::from_ymd(2023, 7, 20),
      bp::util::Date::from_ymd(2023, 11, 3), /*days_after_release=*/3);
  // Firefox 116 (Aug 1), 117 (Aug 29), 118 (Sep 26), 119 (Oct 24).
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_EQ(schedule[0].date.to_string(), "2023-08-04");
  EXPECT_EQ(schedule.back().date.to_string(), "2023-10-27");
  // Every window's releases fall inside (previous check, check date].
  bp::util::Date window_start = bp::util::Date::from_ymd(2023, 7, 20);
  const auto& db = browser::ReleaseDatabase::instance();
  for (const auto& check : schedule) {
    for (const auto& release : check.releases) {
      const auto* r = db.find(release);
      ASSERT_NE(r, nullptr);
      EXPECT_GE(r->release_date, window_start);
      EXPECT_LE(r->release_date, check.date);
    }
    window_start = check.date + 1;
  }
}

// ------------------------- model persistence -------------------------

TEST(ModelIo, RoundTripPreservesPredictions) {
  const Polygraph& original = fixture().model;
  const std::string text = serialize_model(original);
  const auto restored = deserialize_model(text);
  ASSERT_TRUE(restored.has_value());

  const ml::Matrix features = fixture().drift_data.feature_matrix(
      original.config().feature_indices);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(restored->predict_cluster(features.row(i)),
              original.predict_cluster(features.row(i)));
  }
}

TEST(ModelIo, RoundTripPreservesClusterTable) {
  const Polygraph& original = fixture().model;
  const auto restored = deserialize_model(serialize_model(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cluster_table().entries(),
            original.cluster_table().entries());
}

TEST(ModelIo, RoundTripPreservesRiskFactors) {
  const Polygraph& original = fixture().model;
  const auto restored = deserialize_model(serialize_model(original));
  ASSERT_TRUE(restored.has_value());
  for (std::size_t cluster = 0; cluster < 11; ++cluster) {
    EXPECT_EQ(restored->risk_factor(chrome(95), cluster),
              original.risk_factor(chrome(95), cluster));
    EXPECT_EQ(restored->risk_factor(firefox(110), cluster),
              original.risk_factor(firefox(110), cluster));
  }
}

// A minimal hand-assembled model (identity scaler/PCA over 2 features,
// 2 centroids) so the structural edge cases below don't pay for a
// training run.
Polygraph tiny_model(bool with_table) {
  PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  ClusterTable table;
  if (with_table) {
    table.assign(chrome(100), 0);
    table.assign(firefox(100), 1);
  }
  return Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

TEST(ModelIo, RejectsBadHeader) {
  EXPECT_FALSE(deserialize_model("not-a-model v9\n").has_value());
  EXPECT_FALSE(deserialize_model("").has_value());
}

TEST(ModelIo, RejectsVersionHeaderMismatch) {
  // A v2 writer's output must not be half-understood by the v1 reader.
  std::string text = serialize_model(tiny_model(true));
  const auto pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v2");
  EXPECT_FALSE(deserialize_model(text).has_value());
}

TEST(ModelIo, EmptyClusterTableRoundTrips) {
  // A model trained before any UA majority exists (or with every label
  // filtered) is structurally valid: it scores with expected_cluster ==
  // nullopt rather than failing to load.
  const Polygraph original = tiny_model(/*with_table=*/false);
  const auto restored = deserialize_model(serialize_model(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cluster_table().size(), 0u);
  const std::vector<double> features{0.0, 0.0};
  const Detection detection = restored->score(features, chrome(100));
  EXPECT_FALSE(detection.expected_cluster.has_value());
  EXPECT_FALSE(detection.flagged);
}

TEST(ModelIo, TruncationAtEveryLineReturnsNullopt) {
  // Cutting the file at *any* line boundary must yield nullopt — never
  // a partially-constructed model (the serving tier would otherwise hot
  // swap in a model missing its centroids or half its table).
  const std::string text = serialize_model(tiny_model(true));
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  ASSERT_GT(lines.size(), 10u);
  std::string prefix;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    prefix += lines[i];
    prefix += '\n';
    EXPECT_FALSE(deserialize_model(prefix).has_value())
        << "prefix of " << i + 1 << " lines parsed as a full model";
  }
  prefix += lines.back();
  prefix += '\n';
  EXPECT_TRUE(deserialize_model(prefix).has_value());
}

TEST(ModelIo, RejectsMalformedTableCount) {
  std::string text = serialize_model(tiny_model(true));
  const auto pos = text.find("table 2");
  ASSERT_NE(pos, std::string::npos);
  std::string negative = text;
  negative.replace(pos, 7, "table -1");
  EXPECT_FALSE(deserialize_model(negative).has_value());
  std::string garbage = text;
  garbage.replace(pos, 7, "table x");
  EXPECT_FALSE(deserialize_model(garbage).has_value());
}

TEST(ModelIo, TinyModelRoundTripPreservesScoring) {
  const Polygraph original = tiny_model(true);
  const auto restored = deserialize_model(serialize_model(original));
  ASSERT_TRUE(restored.has_value());
  ScoringScratch scratch;
  const std::vector<std::int32_t> native{9, 11};
  const Detection a = original.score(std::span<const std::int32_t>(native),
                                     chrome(100), scratch);
  const Detection b = restored->score(std::span<const std::int32_t>(native),
                                      chrome(100), scratch);
  EXPECT_EQ(a.predicted_cluster, b.predicted_cluster);
  EXPECT_EQ(a.flagged, b.flagged);
  EXPECT_EQ(a.risk_factor, b.risk_factor);
  EXPECT_TRUE(a.flagged);  // (9,11) sits at cluster 1, Chrome expects 0
}

TEST(ModelIo, RejectsTruncatedBody) {
  std::string text = serialize_model(fixture().model);
  text.resize(text.size() / 2);
  // Either a structural error (nullopt) — truncation mid-matrix — is
  // acceptable; what must not happen is a crash or a silently wrong
  // model with a full table.
  const auto restored = deserialize_model(text);
  if (restored.has_value()) {
    EXPECT_LT(restored->cluster_table().size(),
              fixture().model.cluster_table().size());
  }
}

TEST(ModelIo, RejectsCorruptedNumbers) {
  std::string text = serialize_model(fixture().model);
  const auto pos = text.find("scaler_means");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "scaler_meanz");
  EXPECT_FALSE(deserialize_model(text).has_value());
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = "/tmp/bp_model_io_test.model";
  ASSERT_TRUE(save_model(fixture().model, path));
  const auto restored = load_model(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cluster_table().size(),
            fixture().model.cluster_table().size());
  EXPECT_FALSE(load_model("/tmp/definitely_missing_bp_model").has_value());
}

}  // namespace
}  // namespace bp::core
