// Compatibility shim: the introspection plane's HTTP vocabulary now
// lives in src/net/http_common.h, shared with the POST /score ingress
// (bp_http library — depends only on bp_util, so both bp_obs and
// bp_net link it without a cycle).  Existing includes and the
// bp::obs::introspect spellings keep working via these aliases.
#pragma once

#include "net/http_common.h"

namespace bp::obs::introspect {

using net::HttpRequest;
using net::HttpResponse;
using net::HttpResult;

using net::http_get;
using net::http_post;
using net::parse_request_head;
using net::query_uint;
using net::serialize_response;
using net::status_reason;

}  // namespace bp::obs::introspect
