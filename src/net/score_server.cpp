#include "net/score_server.h"

#include <utility>

#include "obs/export.h"
#include "obs/prof/prof.h"
#include "obs/trace.h"

namespace bp::net {

namespace {

HttpResponse plain(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "text/plain";
  response.body = std::move(body);
  return response;
}

}  // namespace

ScoreServer::ScoreServer(const serve::ModelRegistry& models,
                         ScoreServerConfig config)
    : config_(std::move(config)),
      slots_(config_.max_inflight == 0 ? 1 : config_.max_inflight),
      router_(models, config_.router,
              [this](const serve::ScoreResponse& response) {
                dispatch(response);
              }) {
  free_.reserve(slots_.size());
  for (std::size_t i = slots_.size(); i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  if (config_.registry != nullptr) {
    config_.registry->gauge_callback(
        config_.metrics_prefix + "_inflight",
        [this] { return static_cast<std::int64_t>(inflight()); });
    gauge_registered_ = true;
    trace_adopted_ = &config_.registry->counter(
        "bp_trace_adopted_total",
        "request frames whose t: trace context this ingress adopted");
  }
  ListenerConfig listener_config = config_.listener;
  listener_config.keep_alive = true;
  listener_.emplace(listener_config,
                    [this](const HttpRequest& request) {
                      return handle(request);
                    });
  if (config_.registry != nullptr) {
    // The listener's serving + hardening counters (reaps, slow-loris
    // cutoffs) ride the same exposition as the ingress gauges.
    obs::register_http_listener_metrics(*config_.registry, *listener_,
                                        config_.metrics_prefix + "_http");
  }
}

ScoreServer::~ScoreServer() {
  stop();
  if (gauge_registered_ && config_.registry != nullptr) {
    config_.registry->remove(config_.metrics_prefix + "_inflight");
  }
  if (config_.registry != nullptr) {
    obs::remove_http_listener_metrics(*config_.registry,
                                      config_.metrics_prefix + "_http");
  }
}

std::optional<std::uint32_t> ScoreServer::acquire_slot() {
  std::lock_guard<std::mutex> lock(free_mutex_);
  if (free_.empty()) return std::nullopt;
  const std::uint32_t index = free_.back();
  free_.pop_back();
  return index;
}

void ScoreServer::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.done = false;
    slot.abandoned = false;
  }
  std::lock_guard<std::mutex> lock(free_mutex_);
  free_.push_back(index);
}

void ScoreServer::dispatch(const serve::ScoreResponse& response) {
  // The exactly-once engine contract means this id was minted by an
  // acquire_slot() whose handler is either waiting or has abandoned the
  // slot after a timeout — never anything else.
  const auto index = static_cast<std::uint32_t>(response.id);
  Slot& slot = slots_[index];
  bool reclaim = false;
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.abandoned) {
      reclaim = true;  // the handler gave up; the slot is ours to free
    } else {
      slot.response = response;
      slot.done = true;
    }
  }
  if (reclaim) {
    release_slot(index);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    slot.cv.notify_one();
  }
}

HttpResponse ScoreServer::handle(const HttpRequest& request) {
  if (request.method != "POST") {
    return plain(405, "method not allowed\n");
  }
  if (request.path != "/score") {
    return plain(404, "not found\n");
  }
  if (stopping_.load(std::memory_order_acquire)) {
    return plain(503, "shutting down\n");
  }

  // Parse the frame into thread-local scratch: the feature vector and
  // render buffers keep their capacity across requests on this handler
  // thread, so the steady-state path allocates nothing.
  thread_local WireScoreRequest wire_request;
  thread_local std::string wire_body;
  const WireError parse = [&] {
    PROF_SCOPE("net.parse");
    return parse_score_request(request.body, &wire_request);
  }();
  if (parse != WireError::kOk) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    std::string body("bad frame: ");
    body.append(wire_error_name(parse));
    body.push_back('\n');
    return plain(400, std::move(body));
  }
  if (config_.expected_features != 0 &&
      wire_request.features.size() != config_.expected_features) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    std::string body("bad frame: expected ");
    body.append(std::to_string(config_.expected_features));
    body.append(" features, got ");
    body.append(std::to_string(wire_request.features.size()));
    body.push_back('\n');
    return plain(400, std::move(body));
  }

  // Adopted cross-hop trace context (the wire's t: segment): the
  // engine's spans for this request join the client's trace, and the
  // ingress contributes slot_admission/serialize spans of its own into
  // the shards' shared sink.  The client's sampling decision is final —
  // an unsampled context is adopted (counted, propagated to the engine)
  // but records nothing.
  const WireTraceContext trace = wire_request.trace;
  obs::TraceSink* trace_sink =
      trace.present() ? config_.router.engine.trace : nullptr;
  const bool trace_record = trace_sink != nullptr && trace.sampled;
  const std::uint32_t span_base = serve::adopted_span_base(trace.parent_span);
  if (trace.present() && trace_adopted_ != nullptr) {
    trace_adopted_->increment();
  }

  const std::int64_t admission_start_us =
      trace_record ? obs::steady_now_us() : 0;
  const auto slot_index = acquire_slot();
  if (!slot_index) {
    admission_rejected_.fetch_add(1, std::memory_order_relaxed);
    return plain(503, "in-flight budget exhausted\n");
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);

  serve::ScoreRequest score_request;
  score_request.id = *slot_index;
  score_request.features = wire_request.features;  // copy; engine owns it
  score_request.claimed = wire_request.claimed;
  score_request.trace_id = trace.trace_id;
  score_request.trace_parent = trace.parent_span;
  score_request.trace_sampled = trace.sampled;
  const serve::SubmitResult submit =
      router_.submit(wire_request.session_id, std::move(score_request));
  if (submit != serve::SubmitResult::kAdmitted) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    release_slot(*slot_index);
    admission_rejected_.fetch_add(1, std::memory_order_relaxed);
    return plain(503, submit == serve::SubmitResult::kStopped
                          ? "shutting down\n"
                          : "shard queue full\n");
  }
  if (trace_record) {
    // Recorded only once the request is truly admitted, so the span's
    // parent ("server_request", base+1) is guaranteed to follow from
    // the engine — a refused admission leaves no dangling child.
    trace_sink->record_forced({trace.trace_id, span_base + 4, span_base + 1,
                               "slot_admission", admission_start_us,
                               obs::steady_now_us()});
  }

  Slot& slot = slots_[*slot_index];
  serve::ScoreResponse engine_response;
  {
    PROF_SCOPE("net.await");
    std::unique_lock<std::mutex> lock(slot.mutex);
    if (!slot.cv.wait_for(lock, config_.response_timeout,
                          [&slot] { return slot.done; })) {
      // Shard wedged past the defensive bound.  Mark the slot so the
      // late delivery reclaims it; this handler answers 503 and the
      // in-flight count stays held until that delivery.
      slot.abandoned = true;
      return plain(503, "scoring timeout\n");
    }
    engine_response = slot.response;
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  release_slot(*slot_index);

  WireScoreResponse wire_response;
  wire_response.session_id = wire_request.session_id;
  wire_response.status = engine_response.status;
  wire_response.flagged = engine_response.detection.flagged;
  wire_response.risk_factor = engine_response.detection.risk_factor;
  wire_response.predicted_cluster = engine_response.detection.predicted_cluster;
  wire_response.model_version = engine_response.model_version;
  wire_response.latency_micros =
      static_cast<std::uint64_t>(engine_response.latency.count());
  const std::int64_t serialize_start_us =
      trace_record ? obs::steady_now_us() : 0;
  {
    PROF_SCOPE("net.serialize");
    render_score_response(wire_response, &wire_body);
  }
  if (trace_record) {
    trace_sink->record_forced({trace.trace_id, span_base + 5, span_base + 1,
                               "serialize", serialize_start_us,
                               obs::steady_now_us()});
  }
  responses_.fetch_add(1, std::memory_order_relaxed);

  HttpResponse response;
  response.status = 200;
  response.content_type = "application/x-bpwire";
  response.body = wire_body;
  return response;
}

void ScoreServer::stop() {
  if (stopped_.exchange(true)) {
    // Another caller ran (or is running) the sequence; serialize on it.
    std::lock_guard<std::mutex> lock(stop_mutex_);
    return;
  }
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stopping_.store(true, std::memory_order_release);
  // 1. Stop intake: no new connections; handlers still answer frames
  //    already read but admit nothing new (stopping_ gate above).
  if (listener_) listener_->begin_stop();
  // 2. Drain shards: every admitted request gets its response, which
  //    unblocks every handler parked on a slot condvar.
  router_.drain();
  // 3. Ordered shard stop.
  router_.stop();
  // 4. Join the handler pool — safe now, nothing left to wait on.
  if (listener_) listener_->stop();
}

}  // namespace bp::net
