// chaos_proxy: deterministic network fault injection for the scoring
// plane (net/chaos_proxy.h, DESIGN.md §15).
//
// The proxy is a byte-level TCP relay that mutilates traffic on a
// schedule that is a pure function of (seed, stream, chunk): delays,
// truncations, connection resets and single-byte corruption.  Because
// the schedule is deterministic, a failure found under chaos replays
// from the seed — chaos testing without flaky tests.
//
// Usage:
//   chaos_proxy
//     Self-contained demo, exits: starts a real ScoreServer, parks the
//     proxy in front of it with every fault class armed on the
//     response direction, and drives a resilient ScoreClient through
//     the storm.  The acceptance line printed at the end is the
//     soak's: zero lost, zero corrupted verdicts.
//
//   chaos_proxy --upstream <addr:port|port> [--listen <addr:port|port>]
//       [--seed N] [--reset P] [--truncate P] [--corrupt P]
//       [--delay P] [--delay-ms N] [--response-only]
//     Relay mode: prints "chaos proxy listening on <addr>:<port>",
//     relays until SIGINT/SIGTERM, then prints its fault ledger.
//     Point it at a live ingress (e.g. fraud_detection_service
//     --score-listen) and aim clients at the proxy's port.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "net/chaos_proxy.h"
#include "net/score_client.h"
#include "net/score_server.h"
#include "serve/model_registry.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

// A two-cluster model the demo can score against: (0,0) is the known
// Chrome 100 cluster, (10,10) is fraud.
bp::core::Polygraph tiny_model() {
  bp::core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  bp::ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  bp::ml::KMeansConfig kconfig;
  kconfig.k = 2;
  bp::core::ClusterTable table;
  table.assign({bp::ua::Vendor::kChrome, 100, bp::ua::Os::kWindows10}, 0);
  return bp::core::Polygraph::from_parts(
      config,
      bp::ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      bp::ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0},
                               bp::ml::Matrix::identity(2)),
      bp::ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

// "<addr>:<port>" or "<port>" (addr defaults to 127.0.0.1).
bool parse_endpoint(const std::string& value, std::string* address,
                    std::uint16_t* port) {
  const std::size_t colon = value.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? value : value.substr(colon + 1);
  if (colon != std::string::npos) *address = value.substr(0, colon);
  char* end = nullptr;
  const long parsed = std::strtol(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0 || parsed > 65535) {
    return false;
  }
  *port = static_cast<std::uint16_t>(parsed);
  return true;
}

void print_ledger(const bp::net::ChaosProxyStats& stats) {
  std::printf("chaos ledger: connections=%llu chunks=%llu bytes=%llu  "
              "delays=%llu truncates=%llu corrupts=%llu resets=%llu\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.chunks),
              static_cast<unsigned long long>(stats.bytes),
              static_cast<unsigned long long>(stats.delays),
              static_cast<unsigned long long>(stats.truncates),
              static_cast<unsigned long long>(stats.corrupts),
              static_cast<unsigned long long>(stats.resets));
}

int run_relay(const bp::net::ChaosProxyConfig& config) {
  bp::net::ChaosProxy proxy(config);
  if (!proxy.running()) {
    std::fprintf(stderr, "chaos proxy failed: %s\n", proxy.error().c_str());
    return 1;
  }
  std::printf("chaos proxy listening on %s:%u -> upstream %s:%u (seed %llu)\n",
              config.bind_address.c_str(), proxy.port(),
              config.upstream_host.c_str(), config.upstream_port,
              static_cast<unsigned long long>(config.seed));
  std::fflush(stdout);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("signal %d: stopping relay\n", static_cast<int>(g_signal));
  proxy.stop();
  print_ledger(proxy.stats());
  return 0;
}

int run_demo() {
  std::printf("== chaos proxy demo: a scoring client under injected "
              "network faults ==\n");
  bp::serve::ModelRegistry models;
  models.publish(tiny_model());
  bp::net::ScoreServerConfig server_config;
  server_config.router.shards = 2;
  server_config.router.engine.workers = 1;
  server_config.expected_features = 2;
  server_config.listener.handler_threads = 4;
  bp::net::ScoreServer server(models, server_config);
  if (!server.running()) {
    std::fprintf(stderr, "score server failed: %s\n", server.error().c_str());
    return 1;
  }

  // Every fault class armed on the response direction (request-side
  // mutilation can be legitimately refused 400 — a correct terminal
  // outcome, not one the client should retry through).
  bp::net::ChaosProxyConfig chaos_config;
  chaos_config.upstream_port = server.port();
  chaos_config.seed = 0xC4A05;
  chaos_config.fault_client_to_upstream = false;
  chaos_config.reset_probability = 0.02;
  chaos_config.truncate_probability = 0.02;
  chaos_config.corrupt_probability = 0.02;
  chaos_config.delay_probability = 0.04;
  chaos_config.delay = std::chrono::milliseconds(20);
  bp::net::ChaosProxy proxy(chaos_config);
  if (!proxy.running()) {
    std::fprintf(stderr, "chaos proxy failed: %s\n", proxy.error().c_str());
    return 1;
  }
  std::printf("proxy on port %u -> server on port %u: 2%% resets, "
              "2%% truncations, 2%% corruptions, 4%% delays\n",
              proxy.port(), server.port());

  bp::net::ScoreClientConfig client_config;
  client_config.port = proxy.port();
  client_config.io_timeout = std::chrono::milliseconds(500);
  client_config.deadline = std::chrono::milliseconds(4'000);
  client_config.max_attempts = 8;
  client_config.initial_backoff = std::chrono::milliseconds(2);
  client_config.max_backoff = std::chrono::milliseconds(20);
  client_config.hedge_delay = std::chrono::milliseconds(50);
  client_config.breaker_threshold = 1000;  // let every fault be felt
  bp::net::ScoreClient client(client_config);

  constexpr int kCalls = 150;
  int lost = 0, corrupted = 0;
  for (int i = 0; i < kCalls; ++i) {
    const std::uint64_t session = static_cast<std::uint64_t>(i) + 1;
    const bool fraud = session % 2 == 0;
    const std::int32_t clean[] = {0, 0};
    const std::int32_t bot[] = {10, 10};
    const bp::net::ScoreCallResult result =
        client.score(session, "Chrome 100", fraud ? bot : clean);
    if (result.outcome != bp::net::ScoreClientOutcome::kOk) {
      ++lost;
      std::printf("  session %llu LOST: %s\n",
                  static_cast<unsigned long long>(session),
                  result.error.c_str());
    } else if (result.response.session_id != session ||
               result.response.flagged != fraud) {
      ++corrupted;
      std::printf("  session %llu CORRUPTED verdict\n",
                  static_cast<unsigned long long>(session));
    }
  }
  proxy.stop();
  server.stop();

  const bp::net::ScoreClientStats stats = client.stats();
  print_ledger(proxy.stats());
  std::printf("client: calls=%llu attempts=%llu retries=%llu hedges=%llu "
              "hedge_wins=%llu\n",
              static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.hedges),
              static_cast<unsigned long long>(stats.hedge_wins));
  if (lost != 0 || corrupted != 0) {
    std::fprintf(stderr, "FAIL: %d lost, %d corrupted of %d calls\n", lost,
                 corrupted, kCalls);
    return 1;
  }
  std::printf("zero lost, zero corrupted verdicts across %d calls under "
              "chaos\n", kCalls);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bp::net::ChaosProxyConfig config;
  bool relay = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--upstream" && has_value) {
      if (!parse_endpoint(argv[++i], &config.upstream_host,
                          &config.upstream_port)) {
        std::fprintf(stderr, "bad --upstream '%s'\n", argv[i]);
        return 2;
      }
      relay = true;
    } else if (arg == "--listen" && has_value) {
      if (!parse_endpoint(argv[++i], &config.bind_address, &config.port)) {
        std::fprintf(stderr, "bad --listen '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--seed" && has_value) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--reset" && has_value) {
      config.reset_probability = std::strtod(argv[++i], nullptr);
    } else if (arg == "--truncate" && has_value) {
      config.truncate_probability = std::strtod(argv[++i], nullptr);
    } else if (arg == "--corrupt" && has_value) {
      config.corrupt_probability = std::strtod(argv[++i], nullptr);
    } else if (arg == "--delay" && has_value) {
      config.delay_probability = std::strtod(argv[++i], nullptr);
    } else if (arg == "--delay-ms" && has_value) {
      config.delay = std::chrono::milliseconds(
          std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--response-only") {
      config.fault_client_to_upstream = false;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--upstream <addr:port|port>] [--listen <addr:port|port>]"
          " [--seed N] [--reset P] [--truncate P] [--corrupt P] [--delay P]"
          " [--delay-ms N] [--response-only]\n",
          argv[0]);
      return 2;
    }
  }
  return relay ? run_relay(config) : run_demo();
}
