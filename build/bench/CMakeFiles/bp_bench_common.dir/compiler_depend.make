# Empty compiler generated dependencies file for bp_bench_common.
# This may be replaced when dependencies are built.
