// JSON-like profile tree for fine-grained fingerprinting baselines.
//
// FingerprintJS, ClientJS and AmIUnique all emit a nested JSON object
// that is normally hashed into a visitor identifier.  Appendix-5's
// comparison instead *interprets* the JSON: nested objects are flattened
// into per-key columns and converted to numbers for clustering.  This
// module provides the tree, a serializer (payload-size measurements for
// Table 2 need real byte counts), and the flattener.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace bp::baseline {

class ProfileValue {
 public:
  using Object = std::map<std::string, ProfileValue>;
  using Array = std::vector<ProfileValue>;

  ProfileValue() : value_(nullptr) {}
  ProfileValue(std::nullptr_t) : value_(nullptr) {}
  ProfileValue(bool b) : value_(b) {}
  ProfileValue(double d) : value_(d) {}
  ProfileValue(int i) : value_(static_cast<double>(i)) {}
  ProfileValue(long long i) : value_(static_cast<double>(i)) {}
  ProfileValue(const char* s) : value_(std::string(s)) {}
  ProfileValue(std::string s) : value_(std::move(s)) {}
  ProfileValue(Object o) : value_(std::move(o)) {}
  ProfileValue(Array a) : value_(std::move(a)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }

  // Convenience builders.
  ProfileValue& operator[](const std::string& key) {
    if (!is_object()) value_ = Object{};
    return std::get<Object>(value_)[key];
  }

  // Compact JSON serialization (string escaping limited to the
  // characters our synthetic profiles can produce).
  std::string to_json() const;
  std::size_t serialized_size() const { return to_json().size(); }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Object, Array> value_;
};

// A flattened leaf: dotted path -> scalar.  Arrays flatten by index;
// additionally each array contributes a `<path>.length` pseudo-leaf,
// which mirrors how the Appendix-5 preparation columnized list features.
struct FlatLeaf {
  std::string path;
  ProfileValue value;  // null / bool / number / string only
};

std::vector<FlatLeaf> flatten_profile(const ProfileValue& root);

}  // namespace bp::baseline
