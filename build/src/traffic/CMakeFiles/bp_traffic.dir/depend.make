# Empty dependencies file for bp_traffic.
# This may be replaced when dependencies are built.
