#include "serve/scoring_engine.h"

#include <span>
#include <utility>

#include "obs/prof/contention.h"
#include "obs/prof/prof.h"
#include "serve/degraded.h"
#include "util/fault.h"

namespace bp::serve {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::int64_t steady_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t to_us(std::chrono::steady_clock::time_point tp) noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

ScoringEngine::ScoringEngine(const ModelRegistry& registry, EngineConfig config,
                             ResponseCallback on_response)
    : registry_(registry),
      config_([&] {
        config.workers = resolve_workers(config.workers);
        if (config.max_batch == 0) config.max_batch = 1;
        return config;
      }()),
      on_response_(std::move(on_response)),
      queue_(config_.queue_capacity, config_.overflow_policy),
      metrics_(config_.workers, config_.registry, config_.metrics_prefix),
      heartbeats_(config_.workers) {
  // Contention attribution for the admission queue: producers blocked
  // on a full queue, workers parked on an empty one (see /contentionz).
  auto& contention = obs::prof::ContentionRegistry::instance();
  queue_.set_contention_sites(&contention.site("serve.queue.push_block"),
                              &contention.site("serve.queue.pop_wait"));
  if (config_.cache_capacity > 0) {
    VerdictCacheConfig cache_config;
    cache_config.capacity = config_.cache_capacity;
    // Same registry as the serving counters (the engine's private one
    // when none was supplied), so `<prefix>_cache_*` exports alongside
    // `<prefix>_scored_total` et al.
    cache_config.registry = &metrics_.registry();
    cache_config.metrics_prefix = config_.metrics_prefix + "_cache";
    cache_ = std::make_unique<VerdictCache>(cache_config);
  }
  if (config_.registry != nullptr) {
    // Callback gauges are evaluated at render time, so an exported
    // queue depth / model version is as fresh as the scrape — the
    // uniform gauge consistency model (see serve_metrics.h).
    config_.registry->gauge_callback(
        config_.metrics_prefix + "_queue_depth",
        [this] { return static_cast<double>(queue_.size()); },
        "requests admitted but not yet picked up");
    config_.registry->gauge_callback(
        config_.metrics_prefix + "_model_version",
        [this] { return static_cast<double>(registry_.version()); },
        "latest published model version");
    callback_gauges_registered_ = true;
  }
  workers_.reserve(config_.workers);
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (config_.watchdog_interval.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

ScoringEngine::~ScoringEngine() { stop(); }

bool ScoringEngine::try_cached_submit(const ScoreRequest& request) {
  // The submit-side fast path: answer on the submitting thread, never
  // touching the queue or the drain accounting (the response is
  // delivered before submit returns, so no drain() can be waiting on
  // it).  This is where the heavy-tailed win lives, so the path is
  // kept allocation- and syscall-free: no request copy, no snapshot
  // shared_ptr traffic (the atomic version counter is enough — a hit
  // is only served when its entry was minted under exactly that
  // version), a fixed counter stripe (one submitter keeps one set of
  // cache lines hot), and the clock only read when a trace span needs
  // timestamps.  A repeat session costs one hash + one seqlock read.
  if (cache_ == nullptr) return false;
  const std::uint64_t version = registry_.version();
  if (version == 0) return false;
  core::Detection detection;
  if (!cache_->lookup(VerdictCache::key_of(request.features, request.claimed),
                      version, detection, /*stripe_hint=*/0)) {
    return false;
  }
  ScoreResponse response;
  response.id = request.id;
  response.status = ResponseStatus::kScored;
  response.detection = detection;
  response.model_version = version;
  response.worker = 0;
  response.cached = true;
  response.latency = std::chrono::microseconds{0};  // sub-microsecond
  metrics_.record_cached(/*stripe=*/0, detection.flagged, 0,
                         exemplar_trace_id(request));
  if (on_response_) on_response_(response);
  record_audit(request, response);
  if (config_.trace != nullptr) {
    const std::int64_t now_us = steady_now_us();
    record_request_trace(request, "cache_hit", now_us, now_us);
  }
  return true;
}

SubmitResult ScoringEngine::submit(const ScoreRequest& request) {
  if (stopping_.load(std::memory_order_acquire)) return SubmitResult::kStopped;
  if (try_cached_submit(request)) return SubmitResult::kAdmitted;
  return submit_miss(ScoreRequest(request));  // miss: copy into the queue
}

SubmitResult ScoringEngine::submit(ScoreRequest&& request) {
  if (stopping_.load(std::memory_order_acquire)) return SubmitResult::kStopped;
  if (try_cached_submit(request)) return SubmitResult::kAdmitted;
  return submit_miss(std::move(request));
}

SubmitResult ScoringEngine::submit_miss(ScoreRequest&& request) {
  request.admitted_at = std::chrono::steady_clock::now();
  if (cache_ != nullptr) {
    // Computed once here; workers re-check it against their batch's
    // snapshot version and insert under it after scoring.
    request.cache_key =
        VerdictCache::key_of(request.features, request.claimed);
  }
  // Count admission before the push: once the request is in the queue a
  // worker may complete it, and `completed_` must never overtake
  // `admitted_` or drain() would return early.
  admitted_.fetch_add(1, std::memory_order_acq_rel);
  std::optional<ScoreRequest> displaced;
  switch (queue_.push(std::move(request), displaced)) {
    case PushResult::kAccepted:
      return SubmitResult::kAdmitted;
    case PushResult::kDisplacedOldest:
      // The new request is admitted; the oldest queued one is completed
      // here and now as an explicit shed.
      deliver_shed(std::move(*displaced), 0, /*from_submit=*/true);
      return SubmitResult::kAdmitted;
    case PushResult::kRejected:
      retract_admission();
      metrics_.record_rejected();
      return SubmitResult::kRejected;
    case PushResult::kClosed:
      retract_admission();
      return SubmitResult::kStopped;
  }
  return SubmitResult::kStopped;  // unreachable
}

void ScoringEngine::record_request_trace(const ScoreRequest& request,
                                         const char* terminal,
                                         std::int64_t picked_up_us,
                                         std::int64_t done_us) const {
  obs::TraceSink* sink = config_.trace;
  if (sink == nullptr) return;
  const std::int64_t admitted_us = to_us(request.admitted_at);
  if (request.trace_id != 0) {
    // Adopted cross-hop context: the client already decided sampling
    // for the whole trace — honor it in both directions (record_forced
    // bypasses the local head-sampling that would otherwise tear the
    // assembled trace apart; an unsampled trace records nothing here).
    if (!request.trace_sampled) return;
    const std::uint32_t base = adopted_span_base(request.trace_parent);
    sink->record_forced({request.trace_id, base + 1, request.trace_parent,
                         "server_request", admitted_us, done_us});
    sink->record_forced({request.trace_id, base + 2, base + 1, "queue_wait",
                         admitted_us, picked_up_us});
    sink->record_forced(
        {request.trace_id, base + 3, base + 1, terminal, picked_up_us, done_us});
    return;
  }
  if (!sink->sampled(request.id)) return;
  // Span ids are fixed by convention (see EngineConfig::trace) so the
  // rendered trace is deterministic given a request id, regardless of
  // which worker picked the request up.
  sink->record({request.id, 1, 0, "request", admitted_us, done_us});
  sink->record({request.id, 2, 1, "queue_wait", admitted_us, picked_up_us});
  sink->record({request.id, 3, 1, terminal, picked_up_us, done_us});
}

std::uint64_t ScoringEngine::exemplar_trace_id(
    const ScoreRequest& request) const noexcept {
  const obs::TraceSink* sink = config_.trace;
  if (sink == nullptr) return 0;
  if (request.trace_id != 0) {
    return request.trace_sampled ? request.trace_id : 0;
  }
  return sink->sampled(request.id) ? request.id : 0;
}

void ScoringEngine::record_audit(const ScoreRequest& request,
                                 const ScoreResponse& response) {
  obs::AuditTrail* audit = config_.audit;
  if (audit == nullptr) return;
  if (response.status != ResponseStatus::kScored &&
      response.status != ResponseStatus::kDegraded) {
    return;  // sheds/deadline misses carry no verdict to audit
  }
  const bool flagged = response.detection.flagged;
  if (!flagged && !audit->sample_unflagged(request.id)) return;
  obs::AuditRecord record;
  record.session_id = request.id;
  record.model_version = response.model_version;
  record.claimed = request.claimed;
  record.predicted_cluster =
      static_cast<std::uint32_t>(response.detection.predicted_cluster);
  record.expected_cluster =
      response.detection.expected_cluster.has_value()
          ? static_cast<std::int32_t>(*response.detection.expected_cluster)
          : -1;
  record.risk_factor = response.detection.risk_factor;
  record.centroid_distance2 = response.detection.centroid_distance2;
  record.tags = flagged ? obs::AuditRecord::kFlagged
                        : obs::AuditRecord::kSampledUnflagged;
  if (response.status == ResponseStatus::kDegraded) {
    record.tags |= obs::AuditRecord::kDegraded;
  }
  if (response.cached) {
    // Replayed from the verdict cache: the evidence is byte-identical
    // to the original scoring under the same model_version, so replay
    // stays exact — the tag only records that no fresh scoring ran.
    record.tags |= obs::AuditRecord::kCached;
  }
  record.recorded_at_us = steady_now_us();
  audit->record(record);
}

void ScoringEngine::worker_loop(std::uint32_t worker_index) {
  obs::prof::ThreadHandle prof_handle("serve.worker", worker_index);
  std::vector<ScoreRequest> batch;
  core::BatchScratch scratch;
  // Reused per-batch staging (capacity sticks after the first batch, so
  // the steady state stays allocation-free like the scalar path was):
  std::vector<std::size_t> pending;  // batch indices that need scoring
  std::vector<std::span<const std::int32_t>> rows;
  std::vector<ua::UserAgent> claims;
  std::vector<core::Detection> detections;
  Heartbeat& heartbeat = heartbeats_[worker_index];
  for (;;) {
    {
      // Tagged so wall samples of an idle worker read as queue time,
      // not as an unattributed mystery.
      PROF_SCOPE("serve.queue_wait");
      if (!queue_.pop_batch(batch, config_.max_batch)) break;
    }
    heartbeat.busy_since_us.store(steady_now_us(), std::memory_order_relaxed);
    if (FAULT_POINT("engine.worker_stall")) {
      // Chaos hook: freeze this worker long enough for the watchdog to
      // notice (2x the stall threshold).
      std::this_thread::sleep_for(config_.stall_threshold * 2);
    }
    // One snapshot per batch: the whole batch is attributed to a single
    // published model version, and a concurrent publish() never tears a
    // batch across two models.
    ModelSnapshot snapshot = registry_.current();
    if (!snapshot && config_.degrade_without_model) {
      // Degraded mode: no model, but the engine still answers — the
      // UA-prior fallback judges the claimed UA alone, and the status
      // tells the caller no fingerprint evidence was used.
      PROF_SCOPE("serve.degraded");
      std::uint64_t answered_in_batch = 0;
      for (ScoreRequest& request : batch) {
        const auto picked_up = std::chrono::steady_clock::now();
        if (past_deadline(request, picked_up)) {
          deliver_deadline_exceeded(std::move(request), worker_index);
          continue;
        }
        ScoreResponse response;
        response.id = request.id;
        response.status = ResponseStatus::kDegraded;
        response.detection = degraded_score(request.claimed);
        response.worker = worker_index;
        const auto done = std::chrono::steady_clock::now();
        response.latency =
            std::chrono::duration_cast<std::chrono::microseconds>(
                done - request.admitted_at);
        metrics_.record_degraded(
            worker_index, response.detection.flagged,
            static_cast<std::uint64_t>(response.latency.count()),
            exemplar_trace_id(request));
        if (on_response_) on_response_(response);
        record_audit(request, response);
        record_request_trace(request, "degrade", to_us(picked_up), to_us(done));
        ++answered_in_batch;
      }
      if (answered_in_batch > 0) note_completed(answered_in_batch);
      heartbeat.busy_since_us.store(0, std::memory_order_relaxed);
      continue;
    }
    while (!snapshot) {
      if (stopping_.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      snapshot = registry_.current();
    }
    if (!snapshot) {
      // Stopped before any model was ever published: complete the batch
      // as shed so no admitted request is left without a response.
      for (ScoreRequest& request : batch) {
        deliver_shed(std::move(request), worker_index, /*from_submit=*/false);
      }
      heartbeat.busy_since_us.store(0, std::memory_order_relaxed);
      continue;
    }
    metrics_.record_batch(worker_index, batch.size());
    const auto picked_up = std::chrono::steady_clock::now();
    std::uint64_t answered_in_batch = 0;
    // Triage pass: deadline misses out, repeat sessions replayed from
    // the cache (re-checked here against the *batch's* snapshot version
    // — a hot swap between submit and pickup must not replay an older
    // model's verdict), the rest staged for the fused kernel.
    pending.clear();
    PROF_SCOPE("serve.batch");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ScoreRequest& request = batch[i];
      if (past_deadline(request, picked_up)) {
        // deliver_deadline_exceeded note_completed()s itself — counting
        // it in answered_in_batch too would overshoot completed_ and
        // release a concurrent drain() with requests still in flight.
        deliver_deadline_exceeded(std::move(request), worker_index);
        continue;
      }
      if (cache_ != nullptr) {
        core::Detection detection;
        if (cache_->lookup(request.cache_key, snapshot.version, detection,
                           worker_index)) {
          deliver_cached(request, detection, snapshot.version, worker_index,
                         worker_index, picked_up);
          ++answered_in_batch;
          continue;
        }
      }
      pending.push_back(i);
    }
    if (!pending.empty()) {
      rows.clear();
      claims.clear();
      for (const std::size_t i : pending) {
        rows.emplace_back(batch[i].features);
        claims.push_back(batch[i].claimed);
      }
      detections.resize(pending.size());
      {
        // The whole drain goes through the SoA kernel in one pass —
        // bit-identical to per-request score() by the kernel's
        // equivalence guarantee, so this is purely a layout change.
        PROF_SCOPE("serve.kernel");
        snapshot.model->score_batch(
            std::span<const std::span<const std::int32_t>>(rows),
            std::span<const ua::UserAgent>(claims),
            std::span<core::Detection>(detections), scratch);
      }
      PROF_SCOPE("serve.respond");
      const auto done = std::chrono::steady_clock::now();
      for (std::size_t p = 0; p < pending.size(); ++p) {
        ScoreRequest& request = batch[pending[p]];
        ScoreResponse response;
        response.id = request.id;
        response.status = ResponseStatus::kScored;
        response.detection = detections[p];
        response.model_version = snapshot.version;
        response.worker = worker_index;
        response.latency =
            std::chrono::duration_cast<std::chrono::microseconds>(
                done - request.admitted_at);
        metrics_.record_scored(
            worker_index, response.detection.flagged,
            static_cast<std::uint64_t>(response.latency.count()),
            exemplar_trace_id(request));
        if (on_response_) on_response_(response);
        record_audit(request, response);
        record_request_trace(request, "score", to_us(picked_up), to_us(done));
        if (cache_ != nullptr) {
          cache_->insert(request.cache_key, snapshot.version, detections[p],
                         worker_index);
        }
        ++answered_in_batch;
      }
    }
    if (answered_in_batch > 0) note_completed(answered_in_batch);
    heartbeat.busy_since_us.store(0, std::memory_order_relaxed);
  }
}

void ScoringEngine::watchdog_loop() {
  obs::prof::ThreadHandle prof_handle("serve.watchdog", 0);
  std::unique_lock lock(watchdog_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    watchdog_cv_.wait_for(lock, config_.watchdog_interval, [&] {
      return stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire)) break;
    const std::int64_t now_us = steady_now_us();
    const std::int64_t threshold_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            config_.stall_threshold)
            .count();
    std::uint64_t stalled = 0;
    for (const Heartbeat& heartbeat : heartbeats_) {
      const std::int64_t busy_since =
          heartbeat.busy_since_us.load(std::memory_order_relaxed);
      if (busy_since != 0 && now_us - busy_since > threshold_us) ++stalled;
    }
    metrics_.set_stalled_workers(stalled);
  }
}

void ScoringEngine::deliver_shed(ScoreRequest request,
                                 std::uint32_t worker_index, bool from_submit) {
  ScoreResponse response;
  response.id = request.id;
  response.status = ResponseStatus::kShed;
  response.worker = worker_index;
  const auto done = std::chrono::steady_clock::now();
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      done - request.admitted_at);
  if (from_submit) {
    metrics_.record_shed_on_submit();
  } else {
    metrics_.record_shed(worker_index);
  }
  if (on_response_) on_response_(response);
  record_request_trace(request, "shed", to_us(done), to_us(done));
  note_completed(1);
}

void ScoringEngine::deliver_deadline_exceeded(ScoreRequest request,
                                              std::uint32_t worker_index) {
  ScoreResponse response;
  response.id = request.id;
  response.status = ResponseStatus::kDeadlineExceeded;
  response.worker = worker_index;
  const auto done = std::chrono::steady_clock::now();
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      done - request.admitted_at);
  metrics_.record_deadline_exceeded(worker_index);
  if (on_response_) on_response_(response);
  record_request_trace(request, "deadline", to_us(done), to_us(done));
  note_completed(1);
}

void ScoringEngine::deliver_cached(
    const ScoreRequest& request, const core::Detection& detection,
    std::uint64_t version, std::uint32_t worker_index, std::size_t stripe,
    std::chrono::steady_clock::time_point picked_up) {
  ScoreResponse response;
  response.id = request.id;
  response.status = ResponseStatus::kScored;
  response.detection = detection;
  response.model_version = version;
  response.worker = worker_index;
  response.cached = true;
  const auto done = std::chrono::steady_clock::now();
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      done - request.admitted_at);
  metrics_.record_cached(stripe, detection.flagged,
                         static_cast<std::uint64_t>(response.latency.count()),
                         exemplar_trace_id(request));
  if (on_response_) on_response_(response);
  record_audit(request, response);
  record_request_trace(request, "cache_hit", to_us(picked_up), to_us(done));
}

void ScoringEngine::note_completed(std::uint64_t n) {
  const std::uint64_t done =
      completed_.fetch_add(n, std::memory_order_acq_rel) + n;
  // Notify only when a drain() could actually be releasable.  The old
  // unconditional lock+notify per completion put every worker through
  // one mutex per batch item — measurable as the workers=4 throughput
  // collapse in BENCH_serving.json.  The lock is still taken before
  // notifying: drain() re-checks its predicate under this mutex, so a
  // notify outside it could slip between a waiter's check and its wait.
  if (done >= admitted_.load(std::memory_order_acquire)) {
    std::lock_guard lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void ScoringEngine::retract_admission() {
  // Undo a provisional admission (the push was refused).  Must notify:
  // a drain() that raced the submit may be waiting on the transiently
  // inflated admitted_ count, and no completion will ever arrive for
  // a request that was never queued.
  admitted_.fetch_sub(1, std::memory_order_acq_rel);
  std::lock_guard lock(drain_mutex_);
  drain_cv_.notify_all();
}

void ScoringEngine::drain() {
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) >=
           admitted_.load(std::memory_order_acquire);
  });
}

void ScoringEngine::stop() {
  std::lock_guard lock(stop_mutex_);
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    queue_.close();
    {
      std::lock_guard watchdog_lock(watchdog_mutex_);
      watchdog_cv_.notify_all();
    }
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
  if (callback_gauges_registered_) {
    // The callback gauges close over `this`; remove them before the
    // engine can be destroyed under a longer-lived registry.
    config_.registry->remove(config_.metrics_prefix + "_queue_depth");
    config_.registry->remove(config_.metrics_prefix + "_model_version");
    callback_gauges_registered_ = false;
  }
}

MetricsSnapshot ScoringEngine::metrics() const {
  MetricsSnapshot snapshot = metrics_.snapshot();
  snapshot.queue_depth = queue_.size();
  snapshot.model_version = registry_.version();
  return snapshot;
}

}  // namespace bp::serve
