# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fraud_detection_service "/root/repo/build/examples/fraud_detection_service")
set_tests_properties(example_fraud_detection_service PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_drift_monitoring "/root/repo/build/examples/drift_monitoring")
set_tests_properties(example_drift_monitoring PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_privacy_audit "/root/repo/build/examples/privacy_audit")
set_tests_properties(example_privacy_audit PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
