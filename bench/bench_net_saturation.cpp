// bench_net_saturation: open-loop load generator for the network
// scoring plane (src/net).
//
// Drives POST /score over M keep-alive connections at a configured
// *offered* arrival rate, independent of how fast the server answers —
// the open-loop discipline: every request has a scheduled arrival time
// derived from the rate alone, and its latency is measured from that
// schedule, not from when a backed-up sender finally wrote it.  A
// closed-loop driver (send, wait, send) silently slows down with the
// server and hides saturation — the coordinated-omission trap this
// bench exists to avoid.
//
// Per connection, one sender thread paces and pipelines requests while
// one reader thread drains responses in order (the HttpClient
// send_request/read_response halves).  Every response is parsed and
// checked: HTTP 200 with a well-formed wire frame echoing the expected
// session id counts as answered; HTTP 503 is the server *telling* the
// client it shed (counted, not lost); anything else — transport error,
// unparseable frame, wrong session echo — is lost or corrupted, and
// the sweep's acceptance line is zero of both.
//
// Traffic is release-popularity shaped: frame *content* is drawn with
// a u^3-skewed distribution over a smaller pool of unique sessions —
// the coarse-fingerprint collision profile browser releases produce —
// so the router's per-shard verdict cache (enabled under test) hits on
// repeat (fingerprint, UA) pairs within a single sweep point.  Every
// frame still carries its own session id, so response echo validation
// is as strict as with unique traffic.
//
// Output: a table on stdout plus machine-readable JSON (latency
// percentiles vs offered load, plus router cache counters;
// "net_saturation.json" or argv's path).
//
// Usage:
//   bench_net_saturation [json_path]         # full rate sweep
//   bench_net_saturation --smoke [json_path] # one short rate, CI gate
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/chaos_proxy.h"
#include "net/http_common.h"
#include "net/score_client.h"
#include "net/score_server.h"
#include "net/wire.h"
#include "obs/prof/prof.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "traffic/session_generator.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

struct RateResult {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  // answered / wall time
  std::size_t connections = 0;
  std::size_t sent = 0;
  std::size_t answered = 0;  // HTTP 200 with a valid scored/degraded frame
  std::size_t shed = 0;      // HTTP 503: explicit backpressure
  std::size_t lost = 0;      // no response at all
  std::size_t corrupted = 0;  // response that failed validation
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double seconds = 0.0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// One offered-load point: `total` requests spread evenly over
// `connections` keep-alive connections at `offered_rps` aggregate.
RateResult drive(std::uint16_t port,
                 const std::vector<std::string>& frames,
                 double offered_rps, std::size_t connections,
                 std::size_t total) {
  RateResult result;
  result.offered_rps = offered_rps;
  result.connections = connections;

  const double interval_s =
      static_cast<double>(connections) / offered_rps;  // per-connection gap

  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::size_t> sent(connections, 0), answered(connections, 0),
      shed(connections, 0), lost(connections, 0), corrupted(connections, 0);

  const auto t0 = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> drivers;
  for (std::size_t c = 0; c < connections; ++c) {
    drivers.emplace_back([&, c] {
      const std::size_t n =
          total / connections + (c < total % connections ? 1 : 0);
      bp::net::HttpClient client("127.0.0.1", port,
                                 std::chrono::milliseconds(10'000));
      if (!client.connect()) {
        lost[c] = n;
        return;
      }
      latencies[c].reserve(n);
      // The connection's arrival schedule, fixed before any response.
      std::vector<Clock::time_point> schedule(n);
      for (std::size_t i = 0; i < n; ++i) {
        schedule[i] =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(
                         (static_cast<double>(i) +
                          static_cast<double>(c) /
                              static_cast<double>(connections)) *
                         interval_s));
      }

      std::atomic<std::size_t> n_sent{0};
      std::atomic<bool> sender_done{false};
      std::thread sender([&] {
        for (std::size_t i = 0; i < n; ++i) {
          std::this_thread::sleep_until(schedule[i]);
          const std::string& frame =
              frames[(c + i * connections) % frames.size()];
          if (!client.send_request("POST", "/score", frame,
                                   "application/x-bpwire")) {
            break;  // transport gone; reader accounts the shortfall
          }
          n_sent.store(i + 1, std::memory_order_release);
        }
        sender_done.store(true, std::memory_order_release);
      });

      // Reader: responses arrive in pipeline order, so response i
      // pairs with schedule[i] and frame (c + i*connections) % size.
      std::size_t i = 0;
      while (true) {
        while (n_sent.load(std::memory_order_acquire) <= i &&
               !sender_done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        if (n_sent.load(std::memory_order_acquire) <= i) break;  // all read
        bp::net::WireScoreResponse verdict;
        const bp::net::HttpResult got = client.read_response();
        if (got.status < 0) break;  // transport error: rest is lost
        const auto now = Clock::now();
        const std::uint64_t want_session =
            (c + i * connections) % frames.size() + 1;
        if (got.status == 503) {
          ++shed[c];
        } else if (got.status != 200) {
          ++corrupted[c];
        } else if (bp::net::parse_score_response(got.body, &verdict) !=
                       bp::net::WireError::kOk ||
                   verdict.session_id != want_session) {
          ++corrupted[c];
        } else {
          ++answered[c];
          latencies[c].push_back(
              std::chrono::duration<double, std::micro>(now - schedule[i])
                  .count());
        }
        ++i;
      }
      sender.join();
      sent[c] = n_sent.load(std::memory_order_acquire);
      lost[c] += sent[c] - (answered[c] + shed[c] + corrupted[c]);
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double seconds = std::chrono::duration<double>(
                             Clock::now() - t0)
                             .count();

  std::vector<double> all;
  for (std::size_t c = 0; c < connections; ++c) {
    result.sent += sent[c];
    result.answered += answered[c];
    result.shed += shed[c];
    result.lost += lost[c];
    result.corrupted += corrupted[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  result.p50_us = percentile(all, 0.50);
  result.p95_us = percentile(all, 0.95);
  result.p99_us = percentile(all, 0.99);
  result.p999_us = percentile(all, 0.999);
  result.seconds = seconds;
  result.achieved_rps =
      seconds > 0.0 ? static_cast<double>(result.answered) / seconds : 0.0;
  return result;
}

// ------------------------------------------------------------- fault arm
//
// The same plane under *injected* stalls: a deterministic ChaosProxy
// (net/chaos_proxy.h) sits between client and server delaying ~1% of
// relayed chunks by 40 ms, and a ScoreClient scores through it twice —
// once plain, once with a 5 ms hedge.  The open-loop sweep above asks
// "how does the plane behave at the load it is offered"; this arm asks
// "what does tail latency cost when the network itself misbehaves, and
// how much of that cost does hedging buy back".  The acceptance line:
// hedged p99 < unhedged p99, with zero lost and zero corrupted calls
// in both arms (every injected stall absorbed inside the deadline).

struct FaultArmResult {
  std::size_t calls = 0;
  std::size_t lost = 0;       // outcome != kOk
  std::size_t corrupted = 0;  // accepted verdict failing validation
  double p50_us = 0.0, p99_us = 0.0;
  double seconds = 0.0;
  bp::net::ScoreClientStats client;  // attempts/hedges/hedge_wins
  bp::net::ChaosProxyStats chaos;    // injected delays actually fired
};

FaultArmResult drive_fault_arm(std::uint16_t server_port,
                               const std::vector<bp::traffic::SessionRecord>&
                                   pool,
                               std::size_t calls,
                               std::chrono::milliseconds hedge_delay) {
  FaultArmResult result;
  result.calls = calls;

  // Both arms use the same seed.  The unhedged arm reuses one pooled
  // keep-alive connection, so its chunk sequence — and therefore its
  // injected-stall schedule — is deterministic run to run; the hedged
  // arm opens extra connections (new chaos streams) but draws from the
  // same per-chunk rate.
  bp::net::ChaosProxyConfig chaos_config;
  chaos_config.upstream_port = server_port;
  chaos_config.seed = 0xFA17A;
  chaos_config.delay_probability = 0.01;
  chaos_config.delay = std::chrono::milliseconds(40);
  bp::net::ChaosProxy proxy(chaos_config);
  if (!proxy.running()) {
    std::fprintf(stderr, "chaos proxy failed: %s\n", proxy.error().c_str());
    result.lost = calls;
    return result;
  }

  bp::net::ScoreClientConfig client_config;
  client_config.port = proxy.port();
  client_config.io_timeout = std::chrono::milliseconds(1'000);
  client_config.deadline = std::chrono::milliseconds(3'000);
  client_config.max_attempts = 4;
  client_config.initial_backoff = std::chrono::milliseconds(2);
  client_config.max_backoff = std::chrono::milliseconds(20);
  client_config.hedge_delay = hedge_delay;
  bp::net::ScoreClient client(client_config);

  std::vector<double> latencies;
  latencies.reserve(calls);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) {
    const bp::traffic::SessionRecord& session = pool[i % pool.size()];
    const std::uint64_t session_id = i + 1;
    const auto start = Clock::now();
    const bp::net::ScoreCallResult call =
        client.score(session_id, session.user_agent, session.features);
    const auto end = Clock::now();
    if (call.outcome != bp::net::ScoreClientOutcome::kOk) {
      ++result.lost;
      continue;
    }
    if (call.response.session_id != session_id) {
      ++result.corrupted;
      continue;
    }
    latencies.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  proxy.stop();
  result.client = client.stats();
  result.chaos = proxy.stats();
  std::sort(latencies.begin(), latencies.end());
  result.p50_us = percentile(latencies, 0.50);
  result.p99_us = percentile(latencies, 0.99);
  return result;
}

// ------------------------------------------------------------ trace arm
//
// What does cross-hop tracing cost the plane?  Two fresh servers with
// identical configs — one with a trace sink on its engines, one
// without — each driven flat out (closed loop: every arrival scheduled
// in the past, so the senders pipeline as fast as the sockets allow).
// The traced arm's frames all carry a t: wire segment, so every
// request pays the extension parse + adoption; the sink's head
// sampling (production-shaped 1%) decides which also pay the span
// recording.  Best-of-N per arm absorbs scheduler noise; the
// acceptance line is <3% throughput overhead.

struct TraceArmResult {
  double off_rps_best = 0.0;
  double on_rps_best = 0.0;
  double overhead_pct = 0.0;  // (off - on) / off * 100; negative = noise
  std::size_t lost = 0;       // both arms, all runs
  std::size_t corrupted = 0;
  std::uint64_t spans_recorded = 0;  // server-side, traced arm
};

TraceArmResult drive_trace_arm(const bp::serve::ModelRegistry& registry,
                               const bp::net::ScoreServerConfig& base_config,
                               const std::vector<std::string>& frames,
                               std::size_t connections, std::size_t total,
                               int runs) {
  TraceArmResult result;

  bp::obs::TraceSinkConfig sink_config;
  sink_config.capacity = 8192;
  sink_config.sample_rate = 0.01;  // production posture
  bp::obs::TraceSink sink(sink_config);

  bp::net::ScoreServerConfig off_config = base_config;
  off_config.router.engine.trace = nullptr;
  bp::net::ScoreServerConfig on_config = base_config;
  on_config.router.engine.trace = &sink;
  bp::net::ScoreServer off_server(registry, off_config);
  bp::net::ScoreServer on_server(registry, on_config);
  if (!off_server.running() || !on_server.running()) {
    std::fprintf(stderr, "trace-arm server failed: %s%s\n",
                 off_server.error().c_str(), on_server.error().c_str());
    result.lost = total;
    return result;
  }

  // Every traced frame carries a context minted the way ScoreClient
  // does: deterministic id, parent = the first attempt's primary span,
  // sampled = the sink's own head-sampling decision for that id.
  std::vector<std::string> traced;
  traced.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    std::uint64_t state = i + 1;
    const std::uint64_t trace_id =
        std::max<std::uint64_t>(1, bp::util::splitmix64(state));
    std::string frame = frames[i];
    bp::net::append_trace_context({trace_id, 10, sink.sampled(trace_id)},
                                  &frame);
    traced.push_back(std::move(frame));
  }

  // Interleave the arms run for run so drift (thermal, other tenants)
  // lands on both; run 1 of each also warms its server's verdict cache
  // to the same popularity profile, and best-of-N keeps the warm runs.
  for (int run = 0; run < runs; ++run) {
    const RateResult off = drive(off_server.port(), frames, 1e7,
                                 connections, total);
    const RateResult on = drive(on_server.port(), traced, 1e7,
                                connections, total);
    result.off_rps_best = std::max(result.off_rps_best, off.achieved_rps);
    result.on_rps_best = std::max(result.on_rps_best, on.achieved_rps);
    result.lost += off.lost + on.lost;
    result.corrupted += off.corrupted + on.corrupted;
  }
  result.overhead_pct =
      result.off_rps_best > 0.0
          ? (result.off_rps_best - result.on_rps_best) /
                result.off_rps_best * 100.0
          : 0.0;
  result.spans_recorded = sink.recorded();
  off_server.stop();
  on_server.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;

  bool smoke = false;
  std::string json_path = "net_saturation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  std::printf("training the production model...\n");
  const auto trained = benchmark_support::train_production(
      benchmark_support::make_training_dataset(smoke ? 8'000 : 40'000));
  serve::ModelRegistry registry;
  registry.publish(trained.model);

  // The unique-session pool the popularity draw collapses frames onto;
  // repeats of a pool member are exact (fingerprint, UA) replays.
  const std::size_t n_frames = smoke ? 2'000 : 10'000;
  const std::size_t unique_sessions = std::max<std::size_t>(64, n_frames / 4);

  // ---- the server under test: sharded router behind POST /score ----
  net::ScoreServerConfig config;
  config.listener.handler_threads = 4;
  config.router.shards = 2;
  config.router.engine.workers = 2;
  config.router.engine.queue_capacity = 4096;
  config.router.engine.overflow_policy = serve::OverflowPolicy::kReject;
  // Per-shard content-addressed verdict cache, sized so the whole
  // unique pool fits with headroom even if sharding lands unevenly.
  config.router.engine.cache_capacity = std::bit_ceil(4 * unique_sessions);
  config.expected_features = trained.model.config().feature_indices.size();
  net::ScoreServer server(registry, config);
  if (!server.running()) {
    std::fprintf(stderr, "score server failed: %s\n", server.error().c_str());
    return 1;
  }

  // ---- pre-render the wire frames so the drivers measure the plane,
  // not client-side synthesis ----
  //
  // Content is popularity-skewed over `unique_sessions` distinct
  // sessions (same u^3 draw and seed as bench_serving_throughput's
  // release-popularity stream), while session ids stay per-frame so
  // the echo check still catches any cross-request mixup.
  std::printf("rendering %zu request frames over %zu unique sessions...\n",
              n_frames, unique_sessions);
  traffic::TrafficConfig live_config;
  live_config.seed = 0x5EF7E2025;
  traffic::SessionGenerator live(live_config);
  const auto& indices = trained.model.config().feature_indices;
  std::vector<traffic::SessionRecord> pool;
  pool.reserve(unique_sessions);
  for (std::size_t i = 0; i < unique_sessions; ++i) {
    pool.push_back(live.next_session(indices));
  }
  std::mt19937_64 popularity(0xCAC4Eu);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::string> frames;
  frames.reserve(n_frames);
  for (std::size_t i = 0; i < n_frames; ++i) {
    const double u = unit(popularity);
    const std::size_t idx = std::min(
        pool.size() - 1,
        static_cast<std::size_t>(static_cast<double>(pool.size()) * u * u * u));
    const traffic::SessionRecord& session = pool[idx];
    std::string frame;
    net::render_score_request(i + 1, session.user_agent, session.features,
                              &frame);
    frames.push_back(std::move(frame));
  }

  const std::size_t connections = smoke ? 2 : 4;
  std::vector<double> rates;
  std::vector<std::size_t> totals;
  if (smoke) {
    rates = {1'000.0};
    totals = {1'000};
  } else {
    rates = {2'000.0, 5'000.0, 10'000.0, 20'000.0, 40'000.0};
    for (const double rate : rates) {
      // ~2 seconds of offered traffic per point.
      totals.push_back(static_cast<std::size_t>(rate * 2.0));
    }
  }

  std::printf("driving %zu keep-alive connections (open-loop; latency "
              "measured from scheduled arrival):\n",
              connections);
  std::vector<RateResult> results;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    RateResult r = drive(server.port(), frames, rates[i], connections,
                         totals[i]);
    std::printf("  offered %7.0f rps -> answered %7.0f rps  "
                "p50=%.0fus p99=%.0fus p999=%.0fus  "
                "shed=%zu lost=%zu corrupted=%zu\n",
                r.offered_rps, r.achieved_rps, r.p50_us, r.p99_us, r.p999_us,
                r.shed, r.lost, r.corrupted);
    results.push_back(std::move(r));
  }
  // ---- fault arm: hedged vs unhedged through the chaos proxy ----
  const std::size_t fault_calls = smoke ? 400 : 1'500;
  std::printf("\nfault arm: %zu calls through a chaos proxy "
              "(1%% of chunks stalled 40ms)...\n",
              fault_calls);
  const FaultArmResult unhedged = drive_fault_arm(
      server.port(), pool, fault_calls, std::chrono::milliseconds(0));
  const FaultArmResult hedged = drive_fault_arm(
      server.port(), pool, fault_calls, std::chrono::milliseconds(5));
  std::printf("  unhedged: p50=%.0fus p99=%.0fus  lost=%zu corrupted=%zu  "
              "attempts=%llu stalls_injected=%llu\n",
              unhedged.p50_us, unhedged.p99_us, unhedged.lost,
              unhedged.corrupted,
              static_cast<unsigned long long>(unhedged.client.attempts),
              static_cast<unsigned long long>(unhedged.chaos.delays));
  std::printf("  hedged:   p50=%.0fus p99=%.0fus  lost=%zu corrupted=%zu  "
              "hedges=%llu hedge_wins=%llu stalls_injected=%llu\n",
              hedged.p50_us, hedged.p99_us, hedged.lost, hedged.corrupted,
              static_cast<unsigned long long>(hedged.client.hedges),
              static_cast<unsigned long long>(hedged.client.hedge_wins),
              static_cast<unsigned long long>(hedged.chaos.delays));

  // ---- profiler attribution arm ----
  //
  // /profilez's question, asked under load: when the continuous
  // profiler wall-samples the plane while it serves real traffic, do
  // serve-side samples land on named PROF_SCOPE stages or in
  // unattributed dark matter?  "Serve-side" is every thread the engine
  // registered under "serve." (workers and watchdogs — including the
  // watchdog keeps the denominator honest); "attributed" means the
  // sample carries at least one tag.  Attribution is a ratio, not a
  // timing, so the gate arms on sample count, not core count.
  constexpr double kAttributionGate = 0.5;
  constexpr std::uint64_t kAttributionMinSamples = 64;
  const double prof_rate = smoke ? 500.0 : 2'000.0;
  const std::size_t prof_total = static_cast<std::size_t>(prof_rate * 2.0);
  std::printf("\nprofiler arm: wall-sampling the plane under %.0f rps of "
              "offered load...\n",
              prof_rate);
  obs::prof::Profiler profiler;
  profiler.start({});
  const obs::prof::ProfileSnapshot prof_before = profiler.snapshot();
  const RateResult prof_run =
      drive(server.port(), frames, prof_rate, connections, prof_total);
  const obs::prof::ProfileSnapshot prof_after = profiler.snapshot();
  profiler.stop();
  const obs::prof::ProfileSnapshot prof_window =
      obs::prof::Profiler::diff(prof_before, prof_after);
  std::uint64_t serve_samples = 0;
  std::uint64_t serve_tagged = 0;
  for (const obs::prof::Sample& sample : prof_window.samples) {
    if (std::strncmp(sample.thread_name, "serve.", 6) != 0) continue;
    serve_samples += sample.count;
    if (sample.n_tags > 0) serve_tagged += sample.count;
  }
  const double attributed_fraction =
      serve_samples > 0
          ? static_cast<double>(serve_tagged) /
                static_cast<double>(serve_samples)
          : 0.0;
  const bool attribution_enforced = serve_samples >= kAttributionMinSamples;
  const bool attribution_ok = attributed_fraction >= kAttributionGate;
  std::printf("  %llu samples in the window, %llu serve-side, %llu tagged "
              "-> %.1f%% attributed (gate >= %.0f%%, %s) -> %s\n",
              static_cast<unsigned long long>(prof_window.total()),
              static_cast<unsigned long long>(serve_samples),
              static_cast<unsigned long long>(serve_tagged),
              100.0 * attributed_fraction, 100.0 * kAttributionGate,
              attribution_enforced ? "enforced" : "too few samples to arm",
              attribution_ok ? "ok" : "FAIL");

  // ---- trace arm: what does cross-hop tracing cost at saturation? ----
  const std::size_t trace_total = smoke ? 1'000 : 4'000;
  const int trace_runs = 3;
  std::printf("\ntrace arm: %zu closed-loop calls per run, best of %d, "
              "traced vs untraced...\n",
              trace_total, trace_runs);
  const TraceArmResult trace_arm = drive_trace_arm(
      registry, config, frames, connections, trace_total, trace_runs);
  std::printf("  tracing off: %7.0f rps   tracing on: %7.0f rps   "
              "overhead %.2f%%  (spans recorded server-side: %llu)\n",
              trace_arm.off_rps_best, trace_arm.on_rps_best,
              trace_arm.overhead_pct,
              static_cast<unsigned long long>(trace_arm.spans_recorded));

  const serve::CacheStats cache = server.router().cache_stats();
  server.stop();

  const double cache_hit_rate = cache.hit_rate();
  std::printf("\nverdict cache (all shards): hit_rate=%.3f hits=%llu "
              "misses=%llu stale=%llu inserts=%llu occupancy=%zu/%zu\n",
              cache_hit_rate,
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.stale),
              static_cast<unsigned long long>(cache.inserts),
              cache.occupancy, cache.capacity);

  util::TextTable table({"offered_rps", "achieved_rps", "conns", "sent",
                         "answered", "shed", "lost", "corrupt", "p50_us",
                         "p95_us", "p99_us", "p999_us"});
  for (const RateResult& r : results) {
    char offered[24], achieved[24], p50[24], p95[24], p99[24], p999[24];
    std::snprintf(offered, sizeof(offered), "%.0f", r.offered_rps);
    std::snprintf(achieved, sizeof(achieved), "%.0f", r.achieved_rps);
    std::snprintf(p50, sizeof(p50), "%.0f", r.p50_us);
    std::snprintf(p95, sizeof(p95), "%.0f", r.p95_us);
    std::snprintf(p99, sizeof(p99), "%.0f", r.p99_us);
    std::snprintf(p999, sizeof(p999), "%.0f", r.p999_us);
    table.add_row({offered, achieved, std::to_string(r.connections),
                   std::to_string(r.sent), std::to_string(r.answered),
                   std::to_string(r.shed), std::to_string(r.lost),
                   std::to_string(r.corrupted), p50, p95, p99, p999});
  }
  std::printf("\nnet saturation (latency vs offered load):\n%s",
              table.render().c_str());

  std::string json = "{\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"connections\": " + std::to_string(connections) + ",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"unique_sessions\": " + std::to_string(unique_sessions) + ",\n";
  {
    char entry[512];
    std::snprintf(
        entry, sizeof(entry),
        "  \"cache\": {\"capacity_per_shard\": %zu, \"hit_rate\": %.4f, "
        "\"hits\": %llu, \"misses\": %llu, \"stale\": %llu, "
        "\"evictions\": %llu, \"inserts\": %llu, \"occupancy\": %zu},\n",
        static_cast<std::size_t>(config.router.engine.cache_capacity),
        cache_hit_rate, static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.stale),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.inserts), cache.occupancy);
    json += entry;
  }
  {
    const auto arm_json = [](const char* name, const FaultArmResult& arm,
                             double hedge_delay_ms) {
      char entry[512];
      std::snprintf(
          entry, sizeof(entry),
          "    \"%s\": {\"hedge_delay_ms\": %.0f, \"calls\": %zu, "
          "\"lost\": %zu, \"corrupted\": %zu, \"p50_micros\": %.1f, "
          "\"p99_micros\": %.1f, \"attempts\": %llu, \"hedges\": %llu, "
          "\"hedge_wins\": %llu, \"stalls_injected\": %llu}",
          name, hedge_delay_ms, arm.calls, arm.lost, arm.corrupted,
          arm.p50_us, arm.p99_us,
          static_cast<unsigned long long>(arm.client.attempts),
          static_cast<unsigned long long>(arm.client.hedges),
          static_cast<unsigned long long>(arm.client.hedge_wins),
          static_cast<unsigned long long>(arm.chaos.delays));
      return std::string(entry);
    };
    json += "  \"fault_arm\": {\n";
    json += "    \"delay_probability\": 0.01, \"delay_ms\": 40,\n";
    json += arm_json("unhedged", unhedged, 0.0) + ",\n";
    json += arm_json("hedged", hedged, 5.0) + "\n";
    json += "  },\n";
  }
  {
    char entry[512];
    std::snprintf(
        entry, sizeof(entry),
        "  \"trace_arm\": {\"runs\": %d, \"calls_per_run\": %zu, "
        "\"sample_rate\": 0.01, \"off_rps_best\": %.1f, "
        "\"on_rps_best\": %.1f, \"overhead_pct\": %.2f, "
        "\"spans_recorded\": %llu, \"lost\": %zu, \"corrupted\": %zu},\n",
        trace_runs, trace_total, trace_arm.off_rps_best,
        trace_arm.on_rps_best, trace_arm.overhead_pct,
        static_cast<unsigned long long>(trace_arm.spans_recorded),
        trace_arm.lost, trace_arm.corrupted);
    json += entry;
  }
  {
    char entry[512];
    std::snprintf(
        entry, sizeof(entry),
        "  \"profiler_arm\": {\"offered_rps\": %.0f, \"requests\": %zu, "
        "\"window_samples\": %llu, \"serve_samples\": %llu, "
        "\"serve_tagged\": %llu, \"attributed_fraction\": %.4f, "
        "\"gate_fraction\": %.2f, \"within_gate\": %s, \"enforced\": %s, "
        "\"lost\": %zu, \"corrupted\": %zu},\n",
        prof_rate, prof_total,
        static_cast<unsigned long long>(prof_window.total()),
        static_cast<unsigned long long>(serve_samples),
        static_cast<unsigned long long>(serve_tagged), attributed_fraction,
        kAttributionGate, attribution_ok ? "true" : "false",
        attribution_enforced ? "true" : "false", prof_run.lost,
        prof_run.corrupted);
    json += entry;
  }
  json += "  \"rates\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    char entry[512];
    std::snprintf(
        entry, sizeof(entry),
        "    {\"offered_rps\": %.0f, \"achieved_rps\": %.1f, "
        "\"seconds\": %.3f, \"sent\": %zu, \"answered\": %zu, "
        "\"shed\": %zu, \"lost\": %zu, \"corrupted\": %zu, "
        "\"p50_micros\": %.1f, \"p95_micros\": %.1f, \"p99_micros\": %.1f, "
        "\"p999_micros\": %.1f}%s\n",
        r.offered_rps, r.achieved_rps, r.seconds, r.sent, r.answered, r.shed,
        r.lost, r.corrupted, r.p50_us, r.p95_us, r.p99_us, r.p999_us,
        i + 1 == results.size() ? "" : ",");
    json += entry;
  }
  json += "  ]\n}\n";
  if (!util::write_file(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nJSON written to %s\n", json_path.c_str());

  // Acceptance: the plane answers everything it is offered — a request
  // is either scored or explicitly shed; nothing vanishes, nothing is
  // corrupted, at any offered load.
  std::size_t lost = 0, corrupted = 0, answered = 0;
  for (const RateResult& r : results) {
    lost += r.lost;
    corrupted += r.corrupted;
    answered += r.answered;
  }
  if (lost != 0 || corrupted != 0 || answered == 0) {
    std::fprintf(stderr,
                 "FAIL: %zu lost, %zu corrupted, %zu answered\n",
                 lost, corrupted, answered);
    return 1;
  }
  // The popularity stream guarantees repeat (fingerprint, UA) pairs; a
  // cache that never hit means the plane silently stopped using it.
  if (cache.hits == 0) {
    std::fprintf(stderr, "FAIL: verdict cache never hit under "
                         "popularity-skewed traffic\n");
    return 1;
  }
  // Fault-arm acceptance: both arms absorb every injected stall (zero
  // lost, zero corrupted), the chaos proxy actually injected stalls in
  // both, and the hedge bought back tail latency.
  if (unhedged.lost + unhedged.corrupted + hedged.lost + hedged.corrupted !=
      0) {
    std::fprintf(stderr,
                 "FAIL: fault arm dropped calls (unhedged lost=%zu "
                 "corrupted=%zu, hedged lost=%zu corrupted=%zu)\n",
                 unhedged.lost, unhedged.corrupted, hedged.lost,
                 hedged.corrupted);
    return 1;
  }
  if (unhedged.chaos.delays == 0 || hedged.chaos.delays == 0) {
    std::fprintf(stderr, "FAIL: chaos proxy injected no stalls — the fault "
                         "arm measured nothing\n");
    return 1;
  }
  if (hedged.client.hedge_wins == 0) {
    std::fprintf(stderr, "FAIL: no hedge ever won — the hedged arm is "
                         "indistinguishable from the unhedged one\n");
    return 1;
  }
  if (hedged.p99_us >= unhedged.p99_us) {
    std::fprintf(stderr,
                 "FAIL: hedging did not improve p99 under stalls "
                 "(hedged %.0fus >= unhedged %.0fus)\n",
                 hedged.p99_us, unhedged.p99_us);
    return 1;
  }
  // Profiler-arm acceptance: the plane must stay lossless while being
  // sampled, the sampler must actually have watched it (zero serve-side
  // samples means the arm measured nothing), and — once the window
  // holds enough samples to mean anything — at least half of the
  // serve-side samples must land on a named stage.
  if (prof_run.lost != 0 || prof_run.corrupted != 0) {
    std::fprintf(stderr,
                 "FAIL: profiler arm dropped calls (lost=%zu corrupted=%zu)\n",
                 prof_run.lost, prof_run.corrupted);
    return 1;
  }
  if (serve_samples == 0) {
    std::fprintf(stderr, "FAIL: profiler saw no serve-side samples — the "
                         "attribution arm measured nothing\n");
    return 1;
  }
  if (attribution_enforced && !attribution_ok) {
    std::fprintf(stderr,
                 "FAIL: only %.1f%% of serve-side samples attributed to "
                 "tagged stages (gate >= %.0f%%)\n",
                 100.0 * attributed_fraction, 100.0 * kAttributionGate);
    return 1;
  }
  // Trace-arm acceptance: tracing is free enough to leave on — every
  // request pays the wire-segment parse, 1% pay span recording, and
  // the plane must not give up more than 3% of its peak throughput.
  // Both arms must also stay lossless, and the sink must actually have
  // recorded spans (a zero here means the arm measured nothing).
  if (trace_arm.lost != 0 || trace_arm.corrupted != 0) {
    std::fprintf(stderr,
                 "FAIL: trace arm dropped calls (lost=%zu corrupted=%zu)\n",
                 trace_arm.lost, trace_arm.corrupted);
    return 1;
  }
  if (trace_arm.spans_recorded == 0) {
    std::fprintf(stderr, "FAIL: trace arm recorded no server-side spans — "
                         "the traced frames were not adopted\n");
    return 1;
  }
  if (trace_arm.overhead_pct >= 3.0) {
    std::fprintf(stderr,
                 "FAIL: tracing overhead %.2f%% >= 3%% "
                 "(off %.0f rps, on %.0f rps)\n",
                 trace_arm.overhead_pct, trace_arm.off_rps_best,
                 trace_arm.on_rps_best);
    return 1;
  }
  std::printf("zero lost, zero corrupted responses across the sweep; "
              "hedged p99 %.0fus < unhedged p99 %.0fus under stalls; "
              "tracing overhead %.2f%% < 3%%; %.1f%% of serve-side "
              "profile samples attributed\n",
              hedged.p99_us, unhedged.p99_us, trace_arm.overhead_pct,
              100.0 * attributed_fraction);
  return 0;
}
