// fraud_detection_service: the deployment workload of §6.5 on the
// serving subsystem (src/serve).
//
// Offline, a model is trained and persisted; the serving tier reloads
// it and publishes it into a ModelRegistry.  A ScoringEngine (sharded
// worker pool over a bounded queue) then scores a live stream of
// sessions within the paper's ~100 ms budget, while:
//
//   * the drift module (§6.6) watches the Firefox/Chrome 119 era and
//     raises the retraining signal, and
//   * a retraining job runs concurrently with serving and hot-swaps the
//     new model mid-stream with zero downtime — in-flight batches
//     finish on the version they hold; every response names the model
//     version that produced it.
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/drift.h"
#include "core/model_io.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"
#include "traffic/session_generator.h"
#include "util/table.h"

namespace {

// Everything the risk dashboard accumulates from responses.  The
// callback runs on worker threads, so state is folded under one mutex
// (cheap next to scoring; ServeMetrics handles the hot counters).
struct Dashboard {
  std::mutex mutex;
  std::map<int, std::size_t> risk_histogram;
  std::map<std::uint64_t, std::size_t> scored_by_version;
  std::size_t flagged = 0;
  std::size_t flagged_ato = 0;
};

bp::core::Polygraph train_model(const bp::traffic::TrafficConfig& config,
                                const bp::obs::ObsContext* obs = nullptr) {
  bp::traffic::SessionGenerator generator(config);
  const bp::traffic::Dataset history =
      generator.generate(bp::traffic::experiment_feature_indices());
  bp::core::Polygraph model;
  const bp::ml::Matrix features =
      history.feature_matrix(model.config().feature_indices);
  std::vector<bp::ua::UserAgent> uas;
  uas.reserve(history.size());
  for (const auto& r : history.records()) uas.push_back(r.claimed);
  const auto summary = model.train(features, uas, obs);
  std::printf("  trained: %.2f%% accuracy on %zu sessions\n",
              100.0 * summary.clustering_accuracy, summary.rows_total);
  return model;
}

}  // namespace

int main() {
  using namespace bp;

  // ---- the observability plane (src/obs), production posture ----
  // One process-wide registry shared by training, serving, drift and
  // the fault layer; a 1%-sampled request trace; a full-rate sink for
  // the two offline training runs; an audit trail holding Algorithm-1
  // evidence for every flagged verdict (1% of clean ones).  A periodic
  // dumper snapshots the registry for scrape-by-file collection.
  obs::MetricsRegistry metrics;
  obs::register_fault_metrics(metrics);
  obs::TraceSinkConfig request_trace_config;
  request_trace_config.sample_rate = 0.01;
  obs::TraceSink request_trace(request_trace_config);
  obs::TraceSink training_trace;
  obs::AuditTrail audit;
  obs::PeriodicDumper dumper(metrics, "/tmp/browser_polygraph_metrics.prom",
                             std::chrono::seconds(1));

  // ---- offline: train and persist (§6.5's offline/online split) ----
  std::printf("offline training (Mar-Jul 2023 window):\n");
  traffic::TrafficConfig train_config;
  train_config.n_sessions = 40'000;
  const obs::ObsContext train_obs{&metrics, &training_trace, 1};
  const core::Polygraph trained = train_model(train_config, &train_obs);

  const std::string model_path = "/tmp/browser_polygraph.model";
  if (!core::save_model(trained, model_path)) {
    std::fprintf(stderr, "failed to persist model\n");
    return 1;
  }

  // ---- online: load, validate, publish, serve ----
  // publish_from_file is fail-closed: the file is checksummed and
  // validated end to end before any swap, and a bad artifact is
  // quarantined aside with a typed reason (try it:
  // BP_FAULTS=model_io.read:1 makes this load fail deterministically).
  serve::ModelRegistry registry;
  const serve::PublishReport publish_report =
      registry.publish_from_file(model_path);
  if (!publish_report) {
    std::fprintf(stderr, "refusing to serve: %s%s%s\n",
                 publish_report.error->message().c_str(),
                 publish_report.quarantined_to.empty() ? "" : "; quarantined to ",
                 publish_report.quarantined_to.c_str());
    return 1;
  }
  const std::uint64_t v1 = publish_report.version;
  std::printf("model persisted to %s, validated and published as v%llu\n\n",
              model_path.c_str(), static_cast<unsigned long long>(v1));

  constexpr std::size_t kPhaseA = 25'000;   // pre-drift era traffic
  constexpr std::size_t kPhaseB1 = 10'000;  // drift era, old model serving
  constexpr std::size_t kPhaseB2 = 15'000;  // drift era, after the hot swap
  constexpr std::size_t kStream = kPhaseA + kPhaseB1 + kPhaseB2;

  std::vector<std::uint8_t> session_ato(kStream, 0);
  Dashboard dashboard;

  serve::EngineConfig engine_config;
  engine_config.workers = 4;
  engine_config.queue_capacity = 1024;
  engine_config.max_batch = 32;
  engine_config.overflow_policy = serve::OverflowPolicy::kBlock;
  engine_config.registry = &metrics;
  engine_config.trace = &request_trace;
  engine_config.audit = &audit;
  serve::ScoringEngine engine(
      registry, engine_config, [&](const serve::ScoreResponse& response) {
        if (response.status != serve::ResponseStatus::kScored) return;
        std::lock_guard lock(dashboard.mutex);
        ++dashboard.scored_by_version[response.model_version];
        if (!response.detection.flagged) return;
        ++dashboard.flagged;
        dashboard.flagged_ato += session_ato[response.id];
        ++dashboard.risk_histogram[response.detection.risk_factor];
      });

  const auto& indices = trained.config().feature_indices;
  std::uint64_t next_id = 0;
  const auto stream_sessions = [&](traffic::SessionGenerator& generator,
                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      traffic::SessionRecord session = generator.next_session(indices);
      session_ato[next_id] = session.ato ? 1 : 0;
      serve::ScoreRequest request;
      request.id = next_id++;
      request.features = std::move(session.features);
      request.claimed = session.claimed;
      if (engine.submit(std::move(request)) != serve::SubmitResult::kAdmitted) {
        std::fprintf(stderr, "submission failed\n");
        std::exit(1);
      }
    }
  };

  // ---- phase A: the stable summer (no new-era releases) ----
  traffic::TrafficConfig live_config;
  live_config.seed = 0x117E2024;
  live_config.start_date = util::Date::from_ymd(2023, 7, 20);
  live_config.end_date = util::Date::from_ymd(2023, 9, 30);
  traffic::SessionGenerator live(live_config);
  stream_sessions(live, kPhaseA);
  engine.drain();
  std::printf("phase A (stable era): %s\n\n", engine.metrics().summary().c_str());

  // ---- drift check (§6.6): the 119 era arrives ----
  traffic::TrafficConfig drift_config;
  drift_config.seed = 20231103;
  drift_config.n_sessions = 15'000;
  drift_config.start_date = util::Date::from_ymd(2023, 10, 20);
  drift_config.end_date = util::Date::from_ymd(2023, 11, 3);
  traffic::SessionGenerator drift_generator(drift_config);
  const traffic::Dataset drift_data =
      drift_generator.generate(traffic::experiment_feature_indices());

  const core::DriftDetector detector(trained, 0.98, &metrics);
  const core::DriftReport report = detector.check(
      drift_data,
      {{ua::Vendor::kFirefox, 119, ua::Os::kWindows10},
       {ua::Vendor::kChrome, 119, ua::Os::kWindows10}},
      util::Date::from_ymd(2023, 11, 2));
  for (const auto& entry : report.entries) {
    std::printf("drift check %s: accuracy %.1f%%%s%s\n",
                entry.release.label().c_str(), 100.0 * entry.accuracy,
                entry.cluster_changed ? " [cluster changed]" : "",
                entry.accuracy_below_threshold ? " [below threshold]" : "");
  }
  if (!report.retraining_required) {
    std::fprintf(stderr, "expected the 119 era to trigger retraining\n");
    return 1;
  }
  std::printf("retraining signal raised; serving continues on v%llu\n\n",
              static_cast<unsigned long long>(registry.version()));

  // ---- phase B: drift-era traffic; retrain + hot-swap mid-stream ----
  traffic::TrafficConfig live_b_config;
  live_b_config.seed = 0x117E2025;
  live_b_config.start_date = util::Date::from_ymd(2023, 10, 20);
  live_b_config.end_date = util::Date::from_ymd(2023, 11, 3);
  traffic::SessionGenerator live_b(live_b_config);

  std::uint64_t v2 = 0;
  std::thread retrainer([&] {
    std::printf("retraining in the background (Mar-Nov window):\n");
    traffic::TrafficConfig retrain_config;
    retrain_config.seed = 20231104;
    retrain_config.n_sessions = 20'000;
    retrain_config.end_date = util::Date::from_ymd(2023, 11, 3);
    const obs::ObsContext retrain_obs{&metrics, &training_trace, 2};
    core::Polygraph fresh = train_model(retrain_config, &retrain_obs);
    v2 = registry.publish(std::move(fresh));  // zero-downtime hot swap
  });

  stream_sessions(live_b, kPhaseB1);  // served while the retrain runs
  retrainer.join();
  std::printf("hot-swapped to v%llu mid-stream (engine never paused)\n\n",
              static_cast<unsigned long long>(v2));
  stream_sessions(live_b, kPhaseB2);  // served by the fresh model
  engine.drain();

  const serve::MetricsSnapshot snapshot = engine.metrics();
  std::printf("phase B (drift era):  %s\n", snapshot.summary().c_str());
  engine.stop();

  // ---- the risk team's view ----
  std::lock_guard lock(dashboard.mutex);
  std::printf("\nserved %zu sessions, flagged %zu (%.2f%%), of which %zu "
              "became ATO within 72h\n",
              kStream, dashboard.flagged,
              100.0 * dashboard.flagged / kStream, dashboard.flagged_ato);
  for (const auto& [version, count] : dashboard.scored_by_version) {
    std::printf("  model v%llu scored %zu sessions\n",
                static_cast<unsigned long long>(version), count);
  }
  if (dashboard.scored_by_version.size() < 2) {
    std::fprintf(stderr, "expected sessions under both model versions\n");
    return 1;
  }

  util::TextTable table({"risk_factor", "sessions"});
  for (const auto& [risk, count] : dashboard.risk_histogram) {
    table.add_row({std::to_string(risk), std::to_string(count)});
  }
  std::printf("\nrisk-factor histogram of flagged sessions:\n%s",
              table.render().c_str());
  std::printf(
      "\nA risk-based-authentication system consumes these factors as one\n"
      "signal among many: risk 0-1 near-misses are soft signals, vendor\n"
      "mismatches (risk %d) warrant step-up authentication.\n",
      trained.config().vendor_distance);

  // ---- the SRE's view: one registry over the whole deployment ----
  dumper.dump_now();  // final flush of the scrape file
  std::printf("\ntraces: %llu request-path records in the ring "
              "(%llu displaced), 1%% deterministic sampling\n",
              static_cast<unsigned long long>(request_trace.recorded()),
              static_cast<unsigned long long>(request_trace.overwritten()));
  std::printf("audit: %llu verdicts recorded (%llu flagged), each "
              "replayable offline against its model version\n",
              static_cast<unsigned long long>(audit.recorded()),
              static_cast<unsigned long long>(audit.flagged_recorded()));
  std::printf("\ntraining stage spans (trace 1 = initial, 2 = retrain):\n%s",
              training_trace.render(/*include_timing=*/true).c_str());
  std::printf("\ntelemetry (Prometheus exposition, dumped every second to "
              "/tmp/browser_polygraph_metrics.prom):\n%s",
              metrics.render_prometheus().c_str());

  if (!snapshot.within_budget()) {
    std::fprintf(stderr, "p99 latency exceeded the 100 ms budget\n");
    return 1;
  }
  return 0;
}
