// The network-plane chaos soak: a ScoreClient scoring through a
// deterministic ChaosProxy in front of a real ScoreServer, with the
// proxy injecting delays, truncations, resets and corruption on the
// wire.  The gates:
//
//   zero lost       every call ends kOk — retries + hedging absorb
//                   every injected fault within the deadline budget;
//   zero corrupted  every accepted verdict echoes its session and
//                   matches the model's known answer for its features
//                   (the proxy's corruption flips a byte's top bit, so
//                   a mutilated frame can never alias a valid one —
//                   it is always *detected* and retried);
//   zero doubles    every call yields exactly one verdict (a retry of
//                   the idempotent /score is a replay, not a double:
//                   the verdict is a pure function of model version,
//                   features and UA, so replays agree by construction
//                   — asserted via the per-session field checks);
//   never hangs     the soak itself terminates because every layer is
//                   deadline-bounded; no call may exceed its budget.
//
// Run under TSan and ASan by the tier-1 sanitizer pass.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "net/chaos_proxy.h"
#include "net/http_common.h"
#include "net/score_client.h"
#include "net/score_server.h"
#include "net/wire.h"
#include "serve/model_registry.h"

namespace bp::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

core::Polygraph tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign({ua::Vendor::kChrome, 100, ua::Os::kWindows10}, 0);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

std::string request_frame(std::uint64_t session, std::string_view ua,
                          std::vector<std::int32_t> features) {
  std::string frame;
  render_score_request(session, ua, features, &frame);
  return frame;
}

ScoreServerConfig server_config() {
  ScoreServerConfig config;
  config.router.shards = 2;
  config.router.engine.workers = 1;
  config.router.engine.queue_capacity = 1024;
  config.router.engine.overflow_policy = serve::OverflowPolicy::kReject;
  config.expected_features = 2;
  config.listener.handler_threads = 4;
  return config;
}

TEST(ChaosProxy, DecideIsDeterministicAndMatchesItsProbabilities) {
  ChaosProxyConfig config;
  config.seed = 99;
  config.reset_probability = 0.01;
  config.truncate_probability = 0.01;
  config.corrupt_probability = 0.01;
  config.delay_probability = 0.02;
  ChaosProxy first(config);
  ChaosProxy second(config);
  ASSERT_TRUE(first.running());
  ASSERT_TRUE(second.running());

  std::map<ChaosAction, int> histogram;
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    for (std::uint64_t chunk = 0; chunk < 1000; ++chunk) {
      const ChaosAction action = first.decide(stream, chunk);
      ASSERT_EQ(action, second.decide(stream, chunk))
          << "same seed, same (stream, chunk), different fault";
      ++histogram[action];
    }
  }
  // 8000 draws: each 1% arm expects ~80, the 2% arm ~160.  Loose
  // bounds — this pins "roughly the configured rate", not exact counts.
  EXPECT_GT(histogram[ChaosAction::kReset], 20);
  EXPECT_LT(histogram[ChaosAction::kReset], 240);
  EXPECT_GT(histogram[ChaosAction::kTruncate], 20);
  EXPECT_GT(histogram[ChaosAction::kCorrupt], 20);
  EXPECT_GT(histogram[ChaosAction::kDelay], 60);
  EXPECT_GT(histogram[ChaosAction::kForward], 7000);

  // A different seed produces a different schedule.
  config.seed = 100;
  ChaosProxy reseeded(config);
  bool any_difference = false;
  for (std::uint64_t chunk = 0; chunk < 1000 && !any_difference; ++chunk) {
    any_difference = reseeded.decide(0, chunk) != first.decide(0, chunk);
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChaosProxy, FaultFreeRelayIsTransparent) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  ScoreServer server(models, server_config());
  ASSERT_TRUE(server.running()) << server.error();

  ChaosProxyConfig proxy_config;
  proxy_config.upstream_port = server.port();
  ChaosProxy proxy(proxy_config);
  ASSERT_TRUE(proxy.running()) << proxy.error();

  const std::string frame = request_frame(7, "Chrome 100", {0, 0});
  const HttpResult result = http_post("127.0.0.1", proxy.port(), "/score",
                                      frame);
  ASSERT_EQ(result.status, 200) << result.error;
  WireScoreResponse verdict;
  ASSERT_EQ(parse_score_response(result.body, &verdict), WireError::kOk);
  EXPECT_EQ(verdict.session_id, 7u);
  EXPECT_EQ(verdict.predicted_cluster, 0u);

  proxy.stop();
  const ChaosProxyStats stats = proxy.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_GT(stats.chunks, 0u);
  EXPECT_EQ(stats.resets + stats.truncates + stats.corrupts + stats.delays,
            0u);
}

// A wall of resets: the raw client sees typed transport errors (or a
// clean verdict when a request slips through whole), promptly — never
// a hang, never a garbage success.
TEST(ChaosProxy, ResetStormYieldsTypedErrorsNotHangs) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  ScoreServer server(models, server_config());
  ASSERT_TRUE(server.running()) << server.error();

  ChaosProxyConfig proxy_config;
  proxy_config.upstream_port = server.port();
  proxy_config.seed = 7;
  proxy_config.reset_probability = 0.5;
  ChaosProxy proxy(proxy_config);
  ASSERT_TRUE(proxy.running()) << proxy.error();

  const std::string frame = request_frame(1, "Chrome 100", {0, 0});
  const Clock::time_point start = Clock::now();
  int ok = 0, failed = 0;
  for (int i = 0; i < 30; ++i) {
    const HttpResult result =
        http_post("127.0.0.1", proxy.port(), "/score", frame,
                  "application/x-bpwire", 2000ms);
    if (result.status == 200) {
      WireScoreResponse verdict;
      ASSERT_EQ(parse_score_response(result.body, &verdict), WireError::kOk)
          << result.body;
      ++ok;
    } else {
      EXPECT_FALSE(result.error.empty());
      ++failed;
    }
  }
  EXPECT_LT(Clock::now() - start, 90s);
  EXPECT_EQ(ok + failed, 30);
  EXPECT_GT(failed, 0) << "a 50% reset storm should break some calls";
  proxy.stop();
  EXPECT_GT(proxy.stats().resets, 0u);
}

// The headline soak.  Faults ride the response direction, where every
// mutilation is detectable by construction (session echo + top-bit
// corruption + typed wire errors); the client's retry/hedge machinery
// must absorb all of it.
TEST(ChaosSoak, ZeroLostZeroCorruptedUnderMixedFaults) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  ScoreServer server(models, server_config());
  ASSERT_TRUE(server.running()) << server.error();

  ChaosProxyConfig proxy_config;
  proxy_config.upstream_port = server.port();
  proxy_config.seed = 0x50A6;
  // Faults ride the response direction only: a mutilated *request*
  // can legitimately be refused 400 (a terminal, correct outcome),
  // which would make "zero lost" unprovable.  Response-side faults
  // are all detectable, so the client must recover from every one.
  proxy_config.fault_client_to_upstream = false;
  proxy_config.reset_probability = 0.01;
  proxy_config.truncate_probability = 0.01;
  proxy_config.corrupt_probability = 0.01;
  proxy_config.delay_probability = 0.03;
  proxy_config.delay = 25ms;
  ChaosProxy proxy(proxy_config);
  ASSERT_TRUE(proxy.running()) << proxy.error();

  ScoreClientConfig client_config;
  client_config.port = proxy.port();
  client_config.io_timeout = 500ms;
  client_config.deadline = 4000ms;
  client_config.max_attempts = 6;
  client_config.initial_backoff = 5ms;
  client_config.max_backoff = 50ms;
  client_config.hedge_delay = 60ms;
  client_config.breaker_threshold = 1000;  // the soak wants every fault felt
  ScoreClient client(client_config);

  constexpr int kThreads = 2;
  constexpr int kCallsPerThread = 120;
  std::vector<std::string> failures[kThreads];
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::uint64_t session =
            static_cast<std::uint64_t>(t) * kCallsPerThread + i + 1;
        const bool fraud = session % 2 == 0;
        const std::int32_t clean[] = {0, 0};
        const std::int32_t bot[] = {10, 10};
        const ScoreCallResult result =
            client.score(session, "Chrome 100", fraud ? bot : clean);
        // zero lost:
        if (result.outcome != ScoreClientOutcome::kOk) {
          failures[t].push_back("session " + std::to_string(session) +
                                " lost: " + result.error);
          continue;
        }
        // zero corrupted: the verdict must be the model's known answer
        // for these features, addressed to this session.
        const WireScoreResponse& v = result.response;
        if (v.session_id != session ||
            v.status != serve::ResponseStatus::kScored ||
            v.flagged != fraud ||
            v.predicted_cluster != (fraud ? 1u : 0u) || v.model_version != 1) {
          failures[t].push_back("session " + std::to_string(session) +
                                " corrupted verdict");
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& f : failures[t]) ADD_FAILURE() << f;
  }

  proxy.stop();
  const ChaosProxyStats chaos = proxy.stats();
  const ScoreClientStats stats = client.stats();
  EXPECT_EQ(stats.ok, static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  // The soak only means something if chaos actually happened.
  EXPECT_GT(chaos.resets + chaos.truncates + chaos.corrupts, 0u)
      << "chaos proxy injected nothing — probabilities or traffic too low";
  EXPECT_GT(chaos.delays, 0u);
  // ... and the client actually had to work for it.
  EXPECT_GT(stats.attempts, stats.calls)
      << "no retries happened; the fault rates are too low to test anything";
}

}  // namespace
}  // namespace bp::net
