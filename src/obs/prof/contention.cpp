#include "obs/prof/contention.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace bp::obs::prof {

ContentionRegistry& ContentionRegistry::instance() {
  static ContentionRegistry registry;
  return registry;
}

ContentionSite& ContentionRegistry::site(const char* name) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < n_sites_; ++i) {
    if (std::strcmp(sites_[i].name_, name) == 0) return sites_[i];
  }
  if (n_sites_ < kMaxSites) {
    sites_[n_sites_].name_ = name;
    return sites_[n_sites_++];
  }
  if (overflow_.name_ == nullptr) overflow_.name_ = "(overflow)";
  return overflow_;
}

std::size_t ContentionRegistry::size() const {
  std::lock_guard lock(mutex_);
  return n_sites_;
}

std::string ContentionRegistry::render() const {
  // Collect site pointers under the lock, render outside it: sites are
  // never removed and counters are atomics, so the render itself needs
  // no further coordination.
  std::vector<const ContentionSite*> sites;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < n_sites_; ++i) sites.push_back(&sites_[i]);
    if (overflow_.name_ != nullptr) sites.push_back(&overflow_);
  }
  std::sort(sites.begin(), sites.end(),
            [](const ContentionSite* a, const ContentionSite* b) {
              return std::strcmp(a->name_, b->name_) < 0;
            });
  std::string out = "contention sites: " + std::to_string(sites.size()) + "\n";
  for (const ContentionSite* site : sites) {
    const std::uint64_t blocks = site->blocks();
    out += "\nsite ";
    out += site->name();
    out += "\n  events: " + std::to_string(site->events()) +
           "\n  blocks: " + std::to_string(blocks) +
           "\n  total_block_us: " + std::to_string(site->total_ns() / 1000) +
           "\n";
    if (blocks == 0) continue;
    std::uint64_t bound_ns = 1000;
    for (std::size_t b = 0; b < kContentionBuckets; ++b) {
      const std::uint64_t count = site->bucket(b);
      if (count != 0) {
        const std::string label =
            b + 1 < kContentionBuckets
                ? "<" + std::to_string(bound_ns / 1000) + "us"
                : ">=" + std::to_string((bound_ns >> 1) / 1000) + "us";
        out += "  " + label + ": " + std::to_string(count) + "\n";
      }
      bound_ns <<= 1;
    }
  }
  return out;
}

}  // namespace bp::obs::prof
