#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace bp::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace bp::util
