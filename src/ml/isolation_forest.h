// Isolation Forest anomaly detection (Liu, Ting, Zhou — ICDM 2008).
//
// Paper §6.4.1 filters outliers from the training data with an Isolation
// Forest at a contamination threshold of 0.002% — on the 205k-row FinOrg
// dataset this removed 172 rows, none of which matched a legitimate
// browser baseline.  We implement the standard algorithm: an ensemble of
// isolation trees built on subsamples, anomaly score
//   s(x, n) = 2 ^ ( -E[h(x)] / c(n) )
// where h is the path length and c(n) the average unsuccessful-search
// path length of a BST.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace bp::ml {

struct IsolationForestConfig {
  std::size_t n_trees = 100;
  std::size_t max_samples = 256;  // subsample size per tree
  std::uint64_t seed = 7;
};

class IsolationForest {
 public:
  explicit IsolationForest(IsolationForestConfig config = {})
      : config_(config) {}

  void fit(const Matrix& data);

  // Anomaly score in (0, 1); higher = more anomalous.
  double score_one(std::span<const double> point) const;
  std::vector<double> score(const Matrix& data) const;

  // Rows to KEEP after removing the `contamination` fraction with the
  // highest anomaly scores (at least the ceil of contamination * n rows
  // are dropped whenever contamination > 0 and n > 0).
  std::vector<bool> inlier_mask(const Matrix& data,
                                double contamination) const;

  bool fitted() const noexcept { return !trees_.empty(); }

  // Average unsuccessful-search path length of a BST with n nodes.
  static double average_path_length(std::size_t n) noexcept;

 private:
  struct Node {
    // Leaf when feature == npos; `size` then holds the number of training
    // points that reached the leaf.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t feature = npos;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::size_t size = 0;
  };

  struct Tree {
    std::vector<Node> nodes;
    double path_length(std::span<const double> point) const;
  };

  Tree build_tree(const Matrix& data, std::vector<std::size_t>& indices,
                  bp::util::Rng& rng) const;

  IsolationForestConfig config_;
  std::vector<Tree> trees_;
  double c_norm_ = 1.0;  // c(max_samples)
};

}  // namespace bp::ml
