// Continuous in-process profiling plane.
//
// The metrics/SLO/trace planes (PR 4/5/9) say *that* the system is slow;
// this subsystem says *where the cycles go* — the attribution the
// ROADMAP north star ("as fast as the hardware allows") cannot be
// claimed without.  Three cooperating pieces, all dependency-free and
// always compiled, all opt-in at runtime:
//
//   * ThreadRegistry + ThreadHandle — worker threads (pool lanes,
//     scoring workers, HTTP handlers, the retrain supervisor) register
//     themselves under a logical name via an RAII handle.  The handle
//     captures the thread's stack bounds at registration so the signal
//     handler's frame walk has hard address-sanity rails.
//
//   * PROF_SCOPE("serve.kernel") — a thread-local stack of compile-time
//     string tags (nestable, ~2 relaxed atomic ops when idle) mapping
//     samples to logical stages (parse/route/queue/kernel/serialize/
//     train) even where symbols are inlined away.  Tags are what tests
//     assert on: symbol names vary with optimization level, tag names
//     do not.
//
//   * Profiler — the sampler.  Two triggers feed one lock-free
//     fixed-capacity sample table:
//       wall: a sampler thread on an injectable sleep walks the
//             registered threads at a configurable rate and reads each
//             thread's tag stack remotely (atomics only; TSan-clean) —
//             the deterministic, blocked-time-inclusive view;
//       cpu:  SIGPROF (per-thread kill from the sampler walk, plus an
//             optional ITIMER_PROF whose delivery is proportional to
//             CPU burn) makes the *interrupted thread* capture its own
//             frame-pointer call stack (`__builtin_frame_address`-style
//             walk, bounded depth, address-sanity guards, single-frame
//             fallback when frame pointers are unavailable).
//     Symbolization (`dladdr`, hex fallback) happens only at render
//     time; the capture path never allocates, locks, or symbolizes.
//
// Captures are windowed over a monotonic table: snapshot() folds the
// table, diff(before, after) isolates an interval, and the renderers
// emit collapsed-stack text (flamegraph.pl input) and a tag tree with
// self/total counts.  Renders sort deterministically, so tag-only
// profiles are byte-identical across runs and thread counts.
#pragma once

#include <pthread.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bp::obs::prof {

inline constexpr std::size_t kMaxTagDepth = 8;
inline constexpr std::size_t kMaxFrames = 24;
inline constexpr std::size_t kMaxThreads = 256;

// Per-thread profiling context.  One thread_local instance per thread;
// the tag stack is written by the owning thread with relaxed stores and
// read remotely by the wall sampler (and locally by the SIGPROF
// handler), so every field the sampler touches is an atomic.
struct ThreadCtx {
  // Tag stack: depth is released after the tag slot is written, so a
  // remote reader acquiring depth always sees the tags it covers.
  // Depth may exceed kMaxTagDepth (overflow scopes still balance
  // push/pop); readers clamp.
  std::atomic<std::uint32_t> tag_depth{0};
  std::atomic<const char*> tags[kMaxTagDepth]{};
  // Non-null while registered via ThreadHandle; always a string
  // literal, so a stale remote read still dereferences safely.
  std::atomic<const char*> name{nullptr};
  std::uint32_t index = 0;
  // Stack bounds for the in-handler frame-pointer walk (from
  // pthread_getattr_np at registration); null = bounds unknown, the
  // handler falls back to the single interrupted-pc frame.
  void* stack_lo = nullptr;
  void* stack_hi = nullptr;
};

ThreadCtx& this_thread_ctx() noexcept;

// Nestable logical-stage tag.  Cheap enough to leave in hot paths
// unconditionally: push is two relaxed-ish stores, pop is one.
class TagScope {
 public:
  explicit TagScope(const char* tag) noexcept : ctx_(this_thread_ctx()) {
    const std::uint32_t depth =
        ctx_.tag_depth.load(std::memory_order_relaxed);
    if (depth < kMaxTagDepth) {
      ctx_.tags[depth].store(tag, std::memory_order_relaxed);
    }
    ctx_.tag_depth.store(depth + 1, std::memory_order_release);
  }
  ~TagScope() {
    ctx_.tag_depth.store(
        ctx_.tag_depth.load(std::memory_order_relaxed) - 1,
        std::memory_order_release);
  }
  TagScope(const TagScope&) = delete;
  TagScope& operator=(const TagScope&) = delete;

 private:
  ThreadCtx& ctx_;
};

#define BP_PROF_CONCAT_INNER(a, b) a##b
#define BP_PROF_CONCAT(a, b) BP_PROF_CONCAT_INNER(a, b)
// The "" forces a compile-time string literal — tag ids are interned by
// the literal's address and must never be a dangling runtime buffer.
#define PROF_SCOPE(tag)                                        \
  ::bp::obs::prof::TagScope BP_PROF_CONCAT(bp_prof_scope_, \
                                           __LINE__) { "" tag }

// Fixed-capacity table of live profiled threads.  Registration and the
// sampler walk share one mutex, so a pthread_kill is never aimed at a
// thread that has already unregistered (its handle destructor blocks on
// the same mutex until the walk finishes).
class ThreadRegistry {
 public:
  static ThreadRegistry& instance();

  // Register the calling thread.  Returns the slot index, or -1 when
  // the table is full (the thread simply goes unprofiled).
  int register_current(ThreadCtx* ctx);
  void unregister(int slot);

  // Invoke fn(ctx, pthread_t) for every registered thread, under the
  // registry mutex.
  void for_each(const std::function<void(ThreadCtx&, pthread_t)>& fn);

  std::size_t size() const;

 private:
  struct Slot {
    ThreadCtx* ctx = nullptr;
    pthread_t thread{};
  };
  mutable std::mutex mutex_;
  Slot slots_[kMaxThreads];
  std::size_t high_water_ = 0;
};

// RAII registration: construct on the thread's own stack at the top of
// its loop.  Fills the thread's ctx (name, index, stack bounds), then
// registers; unregisters and clears on destruction.
class ThreadHandle {
 public:
  explicit ThreadHandle(const char* name, std::uint32_t index = 0) noexcept;
  ~ThreadHandle();
  ThreadHandle(const ThreadHandle&) = delete;
  ThreadHandle& operator=(const ThreadHandle&) = delete;

  bool registered() const noexcept { return slot_ >= 0; }

 private:
  int slot_ = -1;
};

enum class SampleKind : std::uint8_t { kCpu = 0, kWall = 1 };

// One aggregated sample bucket: a (kind, thread name, tag path, call
// stack) key plus how many samples landed on it.
struct Sample {
  SampleKind kind = SampleKind::kWall;
  const char* thread_name = nullptr;  // never null after snapshot()
  std::uint32_t n_tags = 0;
  std::uint32_t n_frames = 0;
  const char* tags[kMaxTagDepth]{};
  void* frames[kMaxFrames]{};  // leaf first (interrupted pc at [0])
  std::uint64_t count = 0;
};

struct ProfileSnapshot {
  std::vector<Sample> samples;  // merged + deterministically sorted
  std::uint64_t dropped = 0;    // samples lost to table overflow
  std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const Sample& s : samples) n += s.count;
    return n;
  }
};

struct ProfilerConfig {
  // Wall sampler cadence (remote tag reads over registered threads).
  std::chrono::microseconds wall_period{10'000};  // 100 Hz
  // Also interrupt each registered thread (pthread_kill SIGPROF) on
  // every wall tick so it self-captures a call stack.
  bool capture_stacks = true;
  // Arm ITIMER_PROF at this interval: the kernel delivers SIGPROF
  // proportional to process CPU consumption, which is what attributes
  // busy loops to their stage even when they are a small slice of wall
  // time.  Zero disables the itimer.
  std::chrono::microseconds cpu_interval{4'000};  // ~250 Hz of CPU time
  // Injectable sleep between wall ticks (tests drive ticks manually via
  // wall_tick() instead, or inject a counting sleep).  The default
  // sleeps on a condition variable so stop() is immediate.
  std::function<void(std::chrono::microseconds)> sleep;
};

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Start the sampler thread (and the SIGPROF machinery when
  // configured).  Only one Profiler can own the signal plane at a time;
  // a second start() keeps wall sampling but skips signals.
  void start(ProfilerConfig config = {});
  void stop();
  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  // One wall pass over the registered threads: remote tag samples for
  // all, plus a SIGPROF per thread when capture_stacks is on.  Public
  // so tests can drive the sampler on a virtual clock.
  void wall_tick();

  // Record one explicit sample of the calling thread's current tag
  // stack (no frames).  The deterministic test path: a fixed work
  // decomposition calling sample_here() yields identical profiles at
  // any thread count.
  void sample_here(SampleKind kind = SampleKind::kWall) noexcept;

  // Fold the live table into a merged, deterministically sorted
  // snapshot.  Counts are monotonic, so interval captures are
  // diff(before, after).
  ProfileSnapshot snapshot() const;
  static ProfileSnapshot diff(const ProfileSnapshot& before,
                              const ProfileSnapshot& after);

  // flamegraph.pl collapsed-stack text:
  //   thread;(cpu|wall);tag;...;frame;... <count>\n
  // sorted lexicographically.  Frames symbolize via dladdr with a hex
  // fallback; pass symbolize=false for address-stable test output.
  static std::string render_collapsed(const ProfileSnapshot& snapshot,
                                      bool symbolize = true);
  // Tag tree with self/total counts, aggregated over tags only (thread
  // and kind ignored) — the byte-identical-across-thread-counts render.
  static std::string render_tag_tree_json(const ProfileSnapshot& snapshot);

  std::uint64_t wall_samples() const noexcept {
    return wall_samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t cpu_samples() const noexcept {
    return cpu_samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept;

  // Called from the SIGPROF handler on the interrupted thread.
  // Async-signal-safe: atomics and local reads only.
  void record_signal_sample(void* ucontext) noexcept;

 private:
  struct TableSlot;

  void record(SampleKind kind, const char* thread_name,
              const char* const* tags, std::uint32_t n_tags,
              void* const* frames, std::uint32_t n_frames) noexcept;
  void sampler_loop();

  // Fixed power-of-two table; samples beyond capacity count as dropped.
  static constexpr std::size_t kTableSlots = 2048;
  static constexpr std::size_t kProbeLimit = 32;
  std::unique_ptr<TableSlot[]> table_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> wall_samples_{0};
  std::atomic<std::uint64_t> cpu_samples_{0};

  ProfilerConfig config_;
  std::atomic<bool> running_{false};
  bool owns_signals_ = false;
  std::thread sampler_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

// ---------------------------------------------------------------------
// Allocation counting (operator new interposition, no capture).
//
// The interposing operators live in the separate bp_prof_alloc object
// library so inclusion is an explicit per-target decision; they are
// compiled out entirely under ASan/TSan (the sanitizer allocators own
// that seam).  Counting is gated off by default even when linked.
struct AllocCounts {
  std::uint64_t allocations = 0;
  std::uint64_t bytes = 0;
};

// True when the interposing operators are linked into this binary.
bool alloc_hook_linked() noexcept;
// Enable/disable counting (no-op observable effect unless linked).
void set_alloc_counting(bool enabled) noexcept;
bool alloc_counting() noexcept;
AllocCounts alloc_counts() noexcept;

namespace detail {
void mark_alloc_hook_linked() noexcept;
void note_allocation(std::size_t bytes) noexcept;
}  // namespace detail

}  // namespace bp::obs::prof
