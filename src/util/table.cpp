#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace bp::util {

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    out += '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += ' ';
      out += cell;
      out.append(widths[i] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  std::string out;
  if (!header_.empty()) {
    emit(header_, out);
    out += '|';
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '|';
    }
    out += '\n';
  }
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::string ascii_chart(const std::vector<std::pair<std::string, double>>& series,
                        int width, char bar) {
  double max_v = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : series) {
    max_v = std::max(max_v, v);
    label_w = std::max(label_w, label.size());
  }
  std::string out;
  for (const auto& [label, v] : series) {
    out += label;
    out.append(label_w - label.size(), ' ');
    out += " |";
    const int n = max_v > 0.0
                      ? static_cast<int>(v / max_v * width + 0.5)
                      : 0;
    out.append(static_cast<std::size_t>(std::max(n, 0)), bar);
    out += "  ";
    char num[48];
    std::snprintf(num, sizeof(num), "%.4g", v);
    out += num;
    out += '\n';
  }
  return out;
}

}  // namespace bp::util
