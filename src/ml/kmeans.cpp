#include "ml/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/parallel.h"

namespace bp::ml {

namespace {

// Row-blocking grain for assignment-style passes.  Fixed so the chunked
// floating-point merges are a function of the data alone: the same
// labels, centroids, and inertia fall out at any thread count.
constexpr std::size_t kAssignGrain = 2048;

// Nearest centroid of `point` with the early-exit distance bound: a
// centroid is abandoned as soon as its partial sum exceeds the best
// distance seen so far.  Ties keep the lowest centroid index, exactly
// like the historical full-distance scan (an abandoned accumulation can
// only happen on a strictly larger distance).
std::pair<std::size_t, double> nearest_centroid(
    std::span<const double> point, const Matrix& centroids) noexcept {
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d2 = squared_distance_bounded(point, centroids.row(c), best);
    if (d2 < best) {
      best = d2;
      best_c = c;
    }
  }
  return {best_c, best};
}

// Per-chunk partial of one assignment sweep: the centroid accumulators
// for the update step ride along with the labels so the data is walked
// once per iteration instead of twice.
struct AssignPartial {
  std::vector<double> sums;         // k * d, empty when not accumulating
  std::vector<std::size_t> counts;  // k
  double inertia = 0.0;
};

// Assign rows [begin, end) to their nearest centroid, writing labels in
// place (row-disjoint across chunks) and returning the chunk partial.
AssignPartial assign_rows(const Matrix& data, const Matrix& centroids,
                          std::size_t begin, std::size_t end,
                          std::vector<std::size_t>& labels, bool accumulate) {
  const std::size_t k = centroids.rows();
  const std::size_t d = centroids.cols();
  AssignPartial partial;
  if (accumulate) {
    partial.sums.assign(k * d, 0.0);
    partial.counts.assign(k, 0);
  }
  for (std::size_t i = begin; i < end; ++i) {
    const auto point = data.row(i);
    const auto [best_c, best] = nearest_centroid(point, centroids);
    labels[i] = best_c;
    partial.inertia += best;
    if (accumulate) {
      ++partial.counts[best_c];
      double* s = &partial.sums[best_c * d];
      for (std::size_t j = 0; j < d; ++j) s[j] += point[j];
    }
  }
  return partial;
}

// One full assignment sweep as an ordered parallel reduction.
AssignPartial assign_sweep(const Matrix& data, const Matrix& centroids,
                           std::vector<std::size_t>& labels,
                           bool accumulate) {
  const std::size_t k = centroids.rows();
  const std::size_t d = centroids.cols();
  AssignPartial init;
  if (accumulate) {
    init.sums.assign(k * d, 0.0);
    init.counts.assign(k, 0);
  }
  return bp::util::parallel_reduce(
      std::size_t{0}, data.rows(), kAssignGrain, std::move(init),
      [&](std::size_t begin, std::size_t end) {
        return assign_rows(data, centroids, begin, end, labels, accumulate);
      },
      [](AssignPartial& acc, AssignPartial&& part) {
        acc.inertia += part.inertia;
        for (std::size_t i = 0; i < acc.sums.size(); ++i) {
          acc.sums[i] += part.sums[i];
        }
        for (std::size_t i = 0; i < acc.counts.size(); ++i) {
          acc.counts[i] += part.counts[i];
        }
      });
}

}  // namespace

Matrix KMeans::init_plus_plus(const Matrix& data, bp::util::Rng& rng) const {
  const std::size_t n = data.rows();
  const std::size_t k = config_.k;
  Matrix centroids(k, data.cols());

  // First centroid: uniform.
  std::size_t first = static_cast<std::size_t>(rng.below(n));
  std::copy_n(data.row(first).data(), data.cols(), centroids.row(0).data());

  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  for (std::size_t c = 1; c < k; ++c) {
    // Update distances to the nearest chosen centroid.  Row-disjoint
    // min_d2 updates run in parallel; only the total is reduced, in
    // chunk order, so the k-means++ weights are thread-count invariant.
    const auto prev = centroids.row(c - 1);
    const double total = bp::util::parallel_reduce(
        std::size_t{0}, n, kAssignGrain, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double chunk_total = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            const double d2 =
                squared_distance_bounded(data.row(i), prev, min_d2[i]);
            if (d2 < min_d2[i]) min_d2[i] = d2;
            chunk_total += min_d2[i];
          }
          return chunk_total;
        },
        [](double& acc, double part) { acc += part; });
    std::size_t chosen = 0;
    if (total <= 0.0) {
      chosen = static_cast<std::size_t>(rng.below(n));
    } else {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        if (target < min_d2[i]) {
          chosen = i;
          break;
        }
        target -= min_d2[i];
        chosen = i;  // numeric slop: fall through to the last point
      }
    }
    std::copy_n(data.row(chosen).data(), data.cols(),
                centroids.row(c).data());
  }
  return centroids;
}

KMeans::RunResult KMeans::run_once(const Matrix& data,
                                   bp::util::Rng& rng) const {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = config_.k;

  RunResult result;
  result.centroids = init_plus_plus(data, rng);
  result.labels.assign(n, 0);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // Assignment step (fused with the update-step accumulation).
    AssignPartial assignment =
        assign_sweep(data, result.centroids, result.labels, true);
    result.inertia = assignment.inertia;

    // Update step.
    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      auto centroid = result.centroids.row(c);
      if (assignment.counts[c] == 0) {
        // Empty cluster: re-seed from the point farthest from its current
        // centroid (standard repair; keeps k clusters alive).  The scan
        // reduces (worst, index) in chunk order with strict comparisons,
        // so ties resolve to the lowest row index like the serial scan.
        struct Farthest {
          double worst = -1.0;
          std::size_t index = 0;
        };
        const Farthest farthest = bp::util::parallel_reduce(
            std::size_t{0}, n, kAssignGrain, Farthest{},
            [&](std::size_t begin, std::size_t end) {
              Farthest chunk;
              for (std::size_t i = begin; i < end; ++i) {
                const double d2 = squared_distance(
                    data.row(i), result.centroids.row(result.labels[i]));
                if (d2 > chunk.worst) {
                  chunk.worst = d2;
                  chunk.index = i;
                }
              }
              return chunk;
            },
            [](Farthest& acc, Farthest&& part) {
              if (part.worst > acc.worst) acc = part;
            });
        const auto src = data.row(farthest.index);
        shift += squared_distance(centroid, src);
        std::copy_n(src.data(), d, centroid.data());
        continue;
      }
      const double inv = 1.0 / static_cast<double>(assignment.counts[c]);
      double* s = &assignment.sums[c * d];
      double cluster_shift = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double updated = s[j] * inv;
        const double delta = updated - centroid[j];
        cluster_shift += delta * delta;
        centroid[j] = updated;
      }
      shift += cluster_shift;
    }

    if (shift <= config_.tolerance * (1.0 + result.inertia)) break;
  }

  // Final assignment with the converged centroids so labels and inertia
  // are consistent with what predict() would report.
  result.inertia =
      assign_sweep(data, result.centroids, result.labels, false).inertia;
  return result;
}

void KMeans::fit(const Matrix& data) {
  assert(data.rows() >= config_.k && config_.k > 0);

  // The n_init restarts are independent jobs: each draws from its own
  // pre-split RNG stream (split() leaves the parent untouched, so the
  // streams do not depend on execution order) and the winner is picked
  // by lowest inertia with lowest restart index breaking ties.
  const bp::util::Rng root(config_.seed);
  const std::size_t restarts =
      static_cast<std::size_t>(std::max(config_.n_init, 1));
  std::vector<bp::util::Rng> streams;
  streams.reserve(restarts);
  for (std::size_t r = 0; r < restarts; ++r) streams.push_back(root.split(r));

  std::vector<RunResult> results(restarts);
  bp::util::parallel_for(
      std::size_t{0}, restarts, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          results[r] = run_once(data, streams[r]);
        }
      });

  std::size_t best = 0;
  for (std::size_t r = 1; r < restarts; ++r) {
    if (results[r].inertia < results[best].inertia) best = r;
  }
  centroids_ = std::move(results[best].centroids);
  labels_ = std::move(results[best].labels);
  inertia_ = results[best].inertia;
}

KMeans KMeans::from_centroids(Matrix centroids, KMeansConfig config) {
  config.k = centroids.rows();
  KMeans model(config);
  model.centroids_ = std::move(centroids);
  return model;
}

std::size_t KMeans::predict_one(std::span<const double> point) const {
  return predict_one(point, nullptr);
}

std::size_t KMeans::predict_one(std::span<const double> point,
                                double* distance2) const {
  assert(fitted() && point.size() == centroids_.cols());
  const auto [cluster, d2] = nearest_centroid(point, centroids_);
  if (distance2 != nullptr) *distance2 = d2;
  return cluster;
}

std::vector<std::size_t> KMeans::predict(const Matrix& data) const {
  std::vector<std::size_t> labels(data.rows());
  bp::util::parallel_for(
      std::size_t{0}, data.rows(), kAssignGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          labels[i] = predict_one(data.row(i));
        }
      });
  return labels;
}

std::vector<double> wcss_curve(const Matrix& data, std::size_t k_begin,
                               std::size_t k_end, std::uint64_t seed) {
  std::vector<double> out;
  for (std::size_t k = k_begin; k <= k_end; ++k) {
    KMeansConfig config;
    config.k = k;
    config.seed = seed + k;
    KMeans model(config);
    model.fit(data);
    out.push_back(model.inertia());
  }
  return out;
}

std::vector<double> relative_wcss_drops(const std::vector<double>& wcss) {
  std::vector<double> out;
  for (std::size_t i = 1; i < wcss.size(); ++i) {
    out.push_back(wcss[i - 1] > 0.0
                      ? (wcss[i - 1] - wcss[i]) / wcss[i - 1]
                      : 0.0);
  }
  return out;
}

std::size_t elbow_k(const std::vector<double>& wcss, std::size_t k_begin,
                    std::size_t min_k, double threshold) {
  const std::vector<double> drops = relative_wcss_drops(wcss);
  auto drop_at = [&](std::size_t i) {
    return i < drops.size() ? drops[i] : 0.0;
  };

  std::size_t fallback = min_k;
  double fallback_drop = -1.0;
  for (std::size_t i = 0; i < drops.size(); ++i) {
    const std::size_t k = k_begin + 1 + i;  // drops[i] = improvement at k
    if (k < min_k) continue;
    const bool local_peak =
        (i == 0 || drops[i] > drop_at(i - 1)) && drops[i] > drop_at(i + 1);
    if (local_peak && drops[i] >= threshold) return k;
    if (drops[i] > fallback_drop) {
      fallback_drop = drops[i];
      fallback = k;
    }
  }
  return fallback;
}

}  // namespace bp::ml
