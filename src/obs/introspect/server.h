// Live introspection server: the scrape endpoint PR 4's exporter
// header promised ("plain functions an HTTP handler ... calls on
// demand") but never ran.
//
// The socket plumbing — accept loop, handler pool, bounded pending
// queue, per-connection I/O timeouts — is the shared net::HttpListener
// (src/net/http_common.h), configured with keep-alive OFF: one request
// per connection remains this plane's contract, and non-GET verbs are
// refused 405 here in the handler.  What stays in this class is the
// introspection policy: the endpoint table and its render calls.
//
// Endpoints (all GET):
//
//   /metrics       Prometheus text exposition (MetricsRegistry)
//   /metrics.json  the same registry as one JSON object
//   /healthz       liveness verdict from the HealthModel (200/503)
//   /readyz        serving-fitness verdict (200/503) — flips to 503
//                  while no model is published or degraded mode is
//                  active, back after a publish; the check to run
//                  before and after a hot swap
//   /statusz       human-readable rollup: health signals, SLO rule
//                  states, recent alert transitions, app extras
//   /tracez        TraceSink render (with timing); ?trace=ID keeps one
//                  trace id (the cross-hop drill-down), ?n=K keeps the
//                  K most recent matching events; a malformed value in
//                  either is refused 400
//   /auditz?n=K    most recent K AuditTrail records as JSONL
//   /profilez      collapsed-stack profile (flamegraph.pl input);
//                  ?seconds=N (default 1, clamped to [1,30]) windows
//                  the capture by diffing two table snapshots
//   /profilez.json tag-attribution tree (self/total sample counts)
//                  over the whole profiler run
//   /contentionz   named contention sites: queue block time, registry
//                  swap stalls, cache CAS losses, with log2 histograms
//
// Design constraints, in order: never perturb the scoring hot path
// (handlers only call the registry/sink render functions, which take
// the same short locks any exporter takes); bounded everything; port 0
// support so tests bind ephemerally and read port() back.
//
// handle() — the request -> response dispatch — is a pure-ish const
// function exposed for unit tests; the socket plumbing around it is
// exercised by the real-TCP tests and the tier-1 curl smoke.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/http_common.h"
#include "obs/audit.h"
#include "obs/introspect/http.h"
#include "obs/metrics_registry.h"
#include "obs/prof/contention.h"
#include "obs/prof/prof.h"
#include "obs/slo/health.h"
#include "obs/slo/slo_engine.h"
#include "obs/trace.h"

namespace bp::obs::introspect {

// What the server exposes.  Any pointer may be null — the matching
// endpoints then answer 404 (or, for /healthz, a bare liveness 200:
// reaching the handler proves the process is alive).  All referents
// must outlive the server.
struct Sources {
  const MetricsRegistry* metrics = nullptr;
  const TraceSink* trace = nullptr;
  const AuditTrail* audit = nullptr;
  const slo::HealthModel* health = nullptr;
  const slo::SloEngine* slo = nullptr;
  // Continuous profiler (for /profilez and /profilez.json) and the
  // process-wide contention-site registry (for /contentionz).
  const prof::Profiler* profiler = nullptr;
  const prof::ContentionRegistry* contention = nullptr;
  // Extra app-specific lines appended to /statusz (may be empty).
  std::function<std::string()> statusz_extra;
};

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the choice via port()
  std::size_t handler_threads = 2;
  std::size_t max_pending = 64;  // accepted connections awaiting a handler
  std::chrono::milliseconds io_timeout{2000};  // per-connection recv/send
};

class IntrospectionServer {
 public:
  // Binds and starts serving immediately.  On bind/listen failure the
  // server constructs non-running with error() set — callers decide
  // whether that is fatal (the example does; tests assert running()).
  explicit IntrospectionServer(Sources sources, ServerConfig config = {});
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  bool running() const noexcept { return listener_ && listener_->running(); }
  std::uint16_t port() const noexcept {
    return listener_ ? listener_->port() : 0;
  }
  const std::string& bind_address() const noexcept {
    return config_.bind_address;
  }
  std::string error() const { return listener_ ? listener_->error() : ""; }

  std::uint64_t requests() const noexcept {
    return listener_ ? listener_->requests() : 0;
  }
  // Connections dropped because the pending queue was full.
  std::uint64_t overloaded() const noexcept {
    return listener_ ? listener_->overloaded() : 0;
  }

  // Dispatch one parsed request.  Const and lock-light: every data
  // source is read through its own thread-safe render call.
  HttpResponse handle(const HttpRequest& request) const;

  // Stops accepting, drains/closes pending connections, joins all
  // threads.  Idempotent; the destructor calls it.
  void stop();

 private:
  std::string render_statusz() const;

  Sources sources_;
  ServerConfig config_;
  std::optional<net::HttpListener> listener_;
};

}  // namespace bp::obs::introspect
