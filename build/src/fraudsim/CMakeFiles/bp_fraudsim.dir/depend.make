# Empty dependencies file for bp_fraudsim.
# This may be replaced when dependencies are built.
