// Tests for the dense matrix substrate.
#include <gtest/gtest.h>

#include "ml/matrix.h"

namespace bp::ml {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, PushRowSetsColumnCount) {
  Matrix m;
  const double row[] = {1.0, 2.0, 3.0};
  m.push_row(row);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.rows(), 1u);
}

TEST(Matrix, RowSpanIsMutable) {
  Matrix m(1, 2);
  m.row(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(Matrix, FilterRows) {
  const Matrix m = Matrix::from_rows({{1, 1}, {2, 2}, {3, 3}});
  const Matrix f = m.filter_rows({true, false, true});
  ASSERT_EQ(f.rows(), 2u);
  EXPECT_DOUBLE_EQ(f(1, 0), 3.0);
}

TEST(Matrix, FilterRowsAllFalse) {
  const Matrix m = Matrix::from_rows({{1.0}});
  const Matrix f = m.filter_rows({false});
  EXPECT_EQ(f.rows(), 0u);
  EXPECT_EQ(f.cols(), 1u);
}

TEST(Matrix, SelectColumns) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix s = m.select_columns({2, 0});
  ASSERT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentity) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix c = a.multiply(Matrix::identity(2));
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(Matrix, Transposed) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(Matrix, ColumnMeans) {
  const Matrix m = Matrix::from_rows({{1, 10}, {3, 30}});
  const auto means = m.column_means();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
}

TEST(Matrix, ColumnStddevs) {
  const Matrix m = Matrix::from_rows({{1, 5}, {3, 5}});
  const auto means = m.column_means();
  const auto stds = m.column_stddevs(means);
  EXPECT_DOUBLE_EQ(stds[0], 1.0);   // population stddev of {1,3}
  EXPECT_DOUBLE_EQ(stds[1], 0.0);   // constant column
}

TEST(SquaredDistance, KnownValue) {
  const double a[] = {0.0, 3.0};
  const double b[] = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(SquaredDistance, ZeroForIdentical) {
  const double a[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, a), 0.0);
}

}  // namespace
}  // namespace bp::ml
