// privacy_audit: the §7.4 / Appendix-A analysis as a reusable tool.
//
// Before a coarse-grained fingerprinting deployment goes live, a privacy
// team wants evidence the collected features cannot track users.  This
// example audits a day of collected data: anonymity sets of the full
// fingerprint, per-feature entropy vs the user-agent's, and the payload
// size against the §3 budget.
#include <algorithm>
#include <cstdio>

#include "browser/extractor.h"
#include "browser/feature_catalog.h"
#include "stats/entropy.h"
#include "traffic/session_generator.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace bp;

  // One day of collection traffic.
  traffic::TrafficConfig config;
  config.n_sessions = 25'000;
  config.start_date = bp::util::Date::from_ymd(2023, 3, 1);
  config.end_date = bp::util::Date::from_ymd(2023, 3, 1);
  traffic::SessionGenerator generator(config);
  const traffic::Dataset day =
      generator.generate(traffic::experiment_feature_indices());

  const auto& catalog = browser::FeatureCatalog::instance();
  const ml::Matrix features = day.feature_matrix(catalog.final_indices());

  // ---- anonymity sets of the concatenated fingerprint ----
  std::vector<std::string> fingerprints;
  fingerprints.reserve(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    std::string s;
    for (const double v : features.row(r)) {
      s += std::to_string(static_cast<long long>(v));
      s += ',';
    }
    fingerprints.push_back(std::move(s));
  }
  const stats::AnonymitySetStats sets = stats::anonymity_sets(fingerprints);
  std::printf("anonymity audit over %zu sessions:\n", day.size());
  std::printf("  distinct fingerprints : %zu\n", sets.distinct_values);
  std::printf("  unique (trackable)    : %.2f%%   (fine-grained studies: ~33%%)\n",
              sets.pct_unique);
  std::printf("  in sets larger than 50: %.1f%%   (fine-grained studies: ~8%%)\n",
              sets.pct_over_50);

  // ---- entropy: no feature may out-identify the UA string ----
  std::vector<std::string> ua_strings;
  for (const auto& r : day.records()) ua_strings.push_back(r.user_agent);
  const double ua_norm = stats::normalized_entropy(ua_strings);
  std::printf("\nuser-agent: %.2f bits, normalized %.2f\n",
              stats::shannon_entropy(ua_strings), ua_norm);

  std::vector<std::pair<double, std::size_t>> by_entropy;  // (H_norm, column)
  for (std::size_t col = 0; col < features.cols(); ++col) {
    std::vector<std::string> column;
    column.reserve(features.rows());
    for (std::size_t r = 0; r < features.rows(); ++r) {
      column.push_back(
          std::to_string(static_cast<long long>(features(r, col))));
    }
    by_entropy.emplace_back(stats::normalized_entropy(column), col);
  }
  std::sort(by_entropy.rbegin(), by_entropy.rend());

  util::TextTable table({"Feature", "Normalized entropy", "Verdict"});
  bool all_below = true;
  for (std::size_t i = 0; i < 5 && i < by_entropy.size(); ++i) {
    const auto [h, col] = by_entropy[i];
    all_below &= h <= ua_norm;
    table.add_row({catalog.spec(catalog.final_indices()[col]).name,
                   bp::util::format_double(h, 3),
                   h <= ua_norm ? "<= UA, ok" : "EXCEEDS UA"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nverdict: %s\n",
              all_below ? "no feature adds identifiability beyond the UA "
                          "string — safe to deploy"
                        : "REVIEW REQUIRED: a feature out-identifies the UA");

  // ---- payload budget ----
  const auto* release =
      browser::ReleaseDatabase::instance().find(ua::Vendor::kChrome, 112);
  browser::Environment env;
  env.release = release;
  const std::string payload = browser::serialize_payload(
      browser::extract_final(env),
      ua::format_user_agent(env.presented_user_agent()), "0123456789abcdef");
  std::printf("\nproduction payload: %zu bytes (budget: 1024)\n",
              payload.size());
  return payload.size() < 1024 && all_below ? 0 : 1;
}
