// A deterministic chaos TCP relay: sits between a client and the
// scoring plane, forwards bytes, and injects network-level faults —
// delays, truncations, resets, single-byte corruption — whose
// placement is a pure function of (seed, stream index, chunk index).
//
// The socket-level fault points (net/socket_ops.h) exercise failure
// paths *inside* this process; the proxy exercises them from the
// *wire*: a peer that really does send half a frame and close, really
// does RST mid-response, really does go quiet for 40ms.  The chaos
// soak (tests/net_chaos_test.cpp) and the saturation bench's fault
// arm run their traffic through one of these.
//
// Determinism: every forwarded chunk consults decide(stream, chunk),
// where stream = connection_index * 2 + direction (0 = client→
// upstream, 1 = upstream→client) and chunk counts chunks on that
// stream.  decide() is exposed publicly so tests can predict exactly
// which chunks a given seed mutilates.  Two runs with the same seed
// and the same traffic shape see the same faults.
//
// Fault semantics per chunk:
//   kDelay     hold the chunk for config.delay, then forward intact —
//              the tail-latency fault hedging exists to beat;
//   kTruncate  forward the first half of the chunk, then close both
//              sides gracefully (FIN) — a peer dying mid-frame;
//   kCorrupt   flip the top bit of one deterministic byte, forward the
//              rest intact — the wire parser must reject, never crash
//              (the protocols this proxy carries are ASCII, so the
//              flip always lands outside the grammar: corruption is
//              detectable by construction, never a silent alias of a
//              different valid frame);
//   kReset     forward nothing, abort both sides with RST (SO_LINGER
//              zero) — the kernel-level ECONNRESET path.
//
// Teardown protocol: a pump that kills a connection only ever calls
// shutdown() on the pair's descriptors (unblocking the other pump);
// the relay thread that owns the pair closes both fds after *both*
// pumps have exited, so no descriptor is ever closed while a thread
// may still be blocked on it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace bp::net {

struct ChaosProxyConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the choice via port()
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  std::uint64_t seed = 0xC4A05;
  // Per-chunk fault probabilities; evaluated in the order reset,
  // truncate, corrupt, delay (their sum should stay well under 1).
  double reset_probability = 0.0;
  double truncate_probability = 0.0;
  double corrupt_probability = 0.0;
  double delay_probability = 0.0;
  std::chrono::milliseconds delay{40};
  // Which directions faults apply to (forwarding is always both ways).
  bool fault_client_to_upstream = true;
  bool fault_upstream_to_client = true;
  // Kernel recv timeout per relay socket; an idle direction past this
  // is treated as end-of-stream, so the proxy can never wedge.
  std::chrono::milliseconds io_timeout{5'000};
};

enum class ChaosAction : std::uint8_t {
  kForward = 0,
  kDelay,
  kTruncate,
  kCorrupt,
  kReset,
};

std::string_view chaos_action_name(ChaosAction a) noexcept;

struct ChaosProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t chunks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t delays = 0;
  std::uint64_t truncates = 0;
  std::uint64_t corrupts = 0;
  std::uint64_t resets = 0;
};

class ChaosProxy {
 public:
  // Binds and starts relaying immediately; on bind failure the proxy
  // constructs non-running with error() set.
  explicit ChaosProxy(ChaosProxyConfig config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  std::uint16_t port() const noexcept { return port_; }
  std::string error() const;
  ChaosProxyStats stats() const;

  // The pure fault schedule: what happens to chunk `chunk` of stream
  // `stream` under this proxy's seed and probabilities.  Exposed so a
  // test can predict the faults a run will see.
  ChaosAction decide(std::uint64_t stream, std::uint64_t chunk) const noexcept;

  // Idempotent; the destructor calls it.  Aborts every in-flight
  // relay and joins all threads.
  void stop();

 private:
  struct Pair {
    int client_fd = -1;
    int upstream_fd = -1;
    std::uint64_t index = 0;
    std::atomic<bool> killed{false};
  };

  void acceptor_loop();
  void relay(std::shared_ptr<Pair> pair);
  void pump(Pair& pair, int from_fd, int to_fd, std::uint64_t stream,
            bool fault_side);
  void kill_pair(Pair& pair, bool rst);
  int connect_upstream();

  ChaosProxyConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> truncates_{0};
  std::atomic<std::uint64_t> corrupts_{0};
  std::atomic<std::uint64_t> resets_{0};

  mutable std::mutex error_mutex_;
  std::string error_;

  // Active pairs (for stop() to abort) and every relay thread ever
  // spawned (joined at stop).
  std::mutex relay_mutex_;
  std::vector<std::shared_ptr<Pair>> pairs_;
  std::vector<std::thread> relays_;

  std::mutex stop_mutex_;
  std::thread acceptor_;
};

}  // namespace bp::net
