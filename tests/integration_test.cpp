// End-to-end integration tests: collection -> pre-processing -> training
// -> detection -> drift, on one coherent synthetic deployment.
#include <gtest/gtest.h>

#include "core/drift.h"
#include "core/polygraph.h"
#include "core/preprocessing.h"
#include "fraudsim/fraud_browser.h"
#include "stats/entropy.h"
#include "traffic/session_generator.h"

namespace bp {
namespace {

struct Deployment {
  traffic::Dataset training;
  core::Polygraph model;
  core::TrainingSummary summary;
};

const Deployment& deployment() {
  static const Deployment* instance = [] {
    auto* d = new Deployment;
    traffic::TrafficConfig config;
    config.n_sessions = 60'000;
    traffic::SessionGenerator gen(config);
    d->training = gen.generate(traffic::experiment_feature_indices());
    const ml::Matrix features =
        d->training.feature_matrix(d->model.config().feature_indices);
    std::vector<ua::UserAgent> uas;
    for (const auto& r : d->training.records()) uas.push_back(r.claimed);
    d->summary = d->model.train(features, uas);
    return d;
  }();
  return *instance;
}

TEST(EndToEnd, TrainingAccuracyInPaperBand) {
  EXPECT_GT(deployment().summary.clustering_accuracy, 0.985);
}

TEST(EndToEnd, FlaggedRateMatchesDeploymentScale) {
  // Paper: 897 flagged of 205k (~0.44%).  Band: 0.2% - 0.8%.
  const auto& d = deployment();
  const ml::Matrix features =
      d.training.feature_matrix(d.model.config().feature_indices);
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < d.training.size(); ++i) {
    flagged += d.model.score(features.row(i),
                             d.training.records()[i].claimed)
                       .flagged
                   ? 1
                   : 0;
  }
  const double rate =
      static_cast<double>(flagged) / static_cast<double>(d.training.size());
  EXPECT_GT(rate, 0.002);
  EXPECT_LT(rate, 0.008);
}

TEST(EndToEnd, FlaggedSessionsEnrichedInAto) {
  const auto& d = deployment();
  const ml::Matrix features =
      d.training.feature_matrix(d.model.config().feature_indices);
  std::size_t flagged = 0;
  std::size_t flagged_ato = 0;
  std::size_t total_ato = 0;
  for (std::size_t i = 0; i < d.training.size(); ++i) {
    const auto& record = d.training.records()[i];
    total_ato += record.ato ? 1 : 0;
    if (d.model.score(features.row(i), record.claimed).flagged) {
      ++flagged;
      flagged_ato += record.ato ? 1 : 0;
    }
  }
  const double base_rate =
      static_cast<double>(total_ato) / static_cast<double>(d.training.size());
  const double flagged_rate =
      static_cast<double>(flagged_ato) / static_cast<double>(flagged);
  // Paper: ~5x enrichment (0.43% -> 2%).
  EXPECT_GT(flagged_rate, 2.0 * base_rate);
}

TEST(EndToEnd, FraudBrowserRecallInPaperBand) {
  // §7.2 band: 67% - 84% recall for category-1/2 tools.
  const auto& d = deployment();
  bp::util::Rng rng(42);
  std::size_t flagged = 0;
  std::size_t total = 0;
  for (const char* name : {"GoLogin-3.3.23", "Incogniton-3.2.7.7",
                           "Octo Browser-1.10", "Sphere-1.3"}) {
    const auto* model = fraudsim::find_model(name);
    ASSERT_NE(model, nullptr);
    std::vector<ua::UserAgent> victims;
    for (std::size_t cluster : d.model.cluster_table().populated_clusters()) {
      const auto& uas = d.model.cluster_table().user_agents_in(cluster);
      victims.push_back(uas.front());
      victims.push_back(uas.back());
    }
    for (const auto& profile :
         fraudsim::make_evaluation_profiles(*model, victims, 1, rng)) {
      const auto features = browser::select_features(
          profile.candidate_values, d.model.config().feature_indices);
      flagged += d.model.score(features, profile.claimed_ua).flagged ? 1 : 0;
      ++total;
    }
  }
  const double recall =
      static_cast<double>(flagged) / static_cast<double>(total);
  EXPECT_GT(recall, 0.55);
  EXPECT_LT(recall, 0.95);
}

TEST(EndToEnd, Category3ToolsEvadeByDesign) {
  // §2.3/§8: category-3 (engine-swapping) tools produce internally
  // consistent fingerprints that coarse-grained detection cannot flag.
  const auto& d = deployment();
  bp::util::Rng rng(43);
  const auto* adspower = fraudsim::find_model("AdsPower-5.4.20");
  ASSERT_NE(adspower, nullptr);
  for (int version : {96, 105, 112}) {
    const auto profile = fraudsim::make_profile(
        *adspower, {ua::Vendor::kChrome, version, ua::Os::kWindows10}, rng);
    const auto features = browser::select_features(
        profile.candidate_values, d.model.config().feature_indices);
    EXPECT_FALSE(d.model.score(features, profile.claimed_ua).flagged)
        << "Chrome " << version;
  }
}

TEST(EndToEnd, PrivacyPropertiesHold) {
  // §7.4: coarse fingerprints must not identify users — unique rate well
  // under 1%, and the UA string carries more entropy than any feature.
  const auto& d = deployment();
  const auto& catalog = browser::FeatureCatalog::instance();
  const ml::Matrix features = d.training.feature_matrix(catalog.final_indices());

  std::vector<std::string> fingerprints;
  fingerprints.reserve(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    std::string s;
    for (const double v : features.row(r)) {
      s += std::to_string(static_cast<long long>(v));
      s += ',';
    }
    fingerprints.push_back(std::move(s));
  }
  const stats::AnonymitySetStats sets = stats::anonymity_sets(fingerprints);
  EXPECT_LT(sets.pct_unique, 1.0);
  EXPECT_GT(sets.pct_over_50, 90.0);

  std::vector<std::string> uas;
  for (const auto& r : d.training.records()) uas.push_back(r.user_agent);
  const double ua_entropy = stats::normalized_entropy(uas);
  for (std::size_t c = 0; c < 28; ++c) {
    std::vector<std::string> column;
    column.reserve(features.rows());
    for (std::size_t r = 0; r < features.rows(); ++r) {
      column.push_back(std::to_string(static_cast<long long>(features(r, c))));
    }
    EXPECT_LE(stats::normalized_entropy(column), ua_entropy + 1e-9)
        << catalog.spec(catalog.final_indices()[c]).name;
  }
}

TEST(EndToEnd, PreprocessingFeedsTraining) {
  // The §6.3 output on a raw collection sample is exactly the feature
  // set the production model trains on.
  traffic::TrafficConfig config;
  config.n_sessions = 3'000;
  traffic::SessionGenerator gen(config);
  const traffic::Dataset sample = gen.generate();
  const core::PreprocessingReport report = core::preprocess(sample);
  EXPECT_EQ(report.selected_features,
            deployment().model.config().feature_indices);
}

TEST(EndToEnd, RetrainingAfterDriftRestoresAccuracy) {
  // After the October drift fires, retraining on fresh data must restore
  // high accuracy and give Firefox 119 a stable home.
  traffic::TrafficConfig config;
  config.seed = 20231101;
  config.n_sessions = 50'000;
  config.start_date = bp::util::Date::from_ymd(2023, 9, 1);
  config.end_date = bp::util::Date::from_ymd(2023, 11, 3);
  traffic::SessionGenerator gen(config);
  const traffic::Dataset fresh = gen.generate(
      traffic::experiment_feature_indices());

  core::Polygraph retrained;
  const ml::Matrix features =
      fresh.feature_matrix(retrained.config().feature_indices);
  std::vector<ua::UserAgent> uas;
  for (const auto& r : fresh.records()) uas.push_back(r.claimed);
  const auto summary = retrained.train(features, uas);

  EXPECT_GT(summary.clustering_accuracy, 0.96);
  EXPECT_TRUE(retrained.cluster_table()
                  .expected_cluster({ua::Vendor::kFirefox, 119,
                                     ua::Os::kWindows10})
                  .has_value());
}

}  // namespace
}  // namespace bp
