// Tests for structured tracing: deterministic head-sampling, the
// bounded ring, and the byte-determinism contract of render() across
// runs and thread counts — for the raw sink, the scoring engine's
// request path, and the training pipeline's stage spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/retrain_supervisor.h"
#include "serve/scoring_engine.h"

namespace bp::obs {
namespace {

// ------------------------------ sampling -------------------------------

TEST(ObsTrace, SamplingIsPureInSeedAndTraceId) {
  TraceSinkConfig config;
  config.sample_rate = 0.5;
  config.seed = 1234;
  const TraceSink a(config);
  const TraceSink b(config);
  std::size_t kept = 0;
  for (std::uint64_t id = 1; id <= 2'000; ++id) {
    EXPECT_EQ(a.sampled(id), b.sampled(id)) << "id " << id;
    if (a.sampled(id)) ++kept;
  }
  // Head-sampling at 50%: the kept fraction concentrates around half.
  EXPECT_GT(kept, 800u);
  EXPECT_LT(kept, 1'200u);

  TraceSinkConfig other = config;
  other.seed = 99;
  const TraceSink c(other);
  std::size_t disagreements = 0;
  for (std::uint64_t id = 1; id <= 2'000; ++id) {
    if (a.sampled(id) != c.sampled(id)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0u);  // a different seed samples different ids
}

TEST(ObsTrace, RateZeroDropsEverythingRateOneKeepsEverything) {
  TraceSinkConfig none;
  none.sample_rate = 0.0;
  TraceSinkConfig all;
  all.sample_rate = 1.0;
  TraceSink drop(none);
  TraceSink keep(all);
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_FALSE(drop.sampled(id));
    EXPECT_TRUE(keep.sampled(id));
  }
  drop.record({1, 1, 0, "x", 0, 1});
  EXPECT_EQ(drop.recorded(), 0u);  // dropped before the lock
  keep.record({1, 1, 0, "x", 0, 1});
  EXPECT_EQ(keep.recorded(), 1u);
}

// -------------------------------- ring ---------------------------------

TEST(ObsTrace, RingOverwritesOldestAndCountsIt) {
  TraceSinkConfig config;
  config.capacity = 4;
  TraceSink sink(config);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    sink.record({id, 1, 0, "span", 0, 1});
  }
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.overwritten(), 6u);
  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // The four youngest traces survive, sorted by (trace_id, span_id).
  EXPECT_EQ(events.front().trace_id, 7u);
  EXPECT_EQ(events.back().trace_id, 10u);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(ObsTrace, SpanRaiiRecordsOnDestruction) {
  TraceSink sink;
  {
    Span span(&sink, /*trace_id=*/7, /*span_id=*/1, /*parent_id=*/0, "work");
  }
  Span unsampled(nullptr, 7, 1, 0, "ignored");  // null sink: no-op
  unsampled.finish();
  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_GE(events[0].end_us, events[0].start_us);
}

// ---------------------------- determinism ------------------------------

// Record the same span set from `n_threads` threads and render without
// timing: the output must not depend on arrival order.
std::string render_from_threads(int n_threads) {
  TraceSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&sink, t, n_threads] {
      for (std::uint64_t id = 1 + static_cast<std::uint64_t>(t); id <= 64;
           id += static_cast<std::uint64_t>(n_threads)) {
        sink.record({id, 2, 1, "child", 10, 20});
        sink.record({id, 1, 0, "root", 0, 30});
      }
    });
  }
  for (auto& t : threads) t.join();
  return sink.render(/*include_timing=*/false);
}

TEST(ObsTrace, RenderWithoutTimingIsByteIdenticalAcrossThreadCounts) {
  const std::string one = render_from_threads(1);
  const std::string four = render_from_threads(4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("trace=1 span=1 parent=0 name=root"), std::string::npos);
  EXPECT_EQ(one.find("start="), std::string::npos);  // timing suppressed
}

TEST(ObsTrace, RenderWithTimingCarriesTimestamps) {
  TraceSink sink;
  sink.record({3, 1, 0, "root", 100, 250});
  const std::string text = sink.render(/*include_timing=*/true);
  EXPECT_NE(text.find("start=100"), std::string::npos);
  EXPECT_NE(text.find("end=250"), std::string::npos);
  EXPECT_NE(text.find("dur_us=150"), std::string::npos);
}

// --------------------------- engine tracing ----------------------------

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100,
                                ua::Os::kWindows10};

core::Polygraph make_tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign(kChrome100, 0);
  table.assign(kFirefox100, 1);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

std::string run_engine_and_render(std::size_t workers, double sample_rate) {
  serve::ModelRegistry registry;
  registry.publish(make_tiny_model());
  TraceSinkConfig trace_config;
  trace_config.sample_rate = sample_rate;
  TraceSink sink(trace_config);
  serve::EngineConfig config;
  config.workers = workers;
  config.trace = &sink;
  {
    serve::ScoringEngine engine(registry, config, {});
    for (std::uint64_t id = 1; id <= 48; ++id) {
      serve::ScoreRequest request;
      request.id = id;
      request.features = {0, 0};
      request.claimed = kChrome100;
      EXPECT_EQ(engine.submit(std::move(request)),
                serve::SubmitResult::kAdmitted)
          << "id " << id;
    }
    engine.drain();
    engine.stop();
  }
  return sink.render(/*include_timing=*/false);
}

TEST(ObsTrace, EngineRequestTraceDeterministicAcrossWorkerCounts) {
  const std::string one = run_engine_and_render(1, 1.0);
  const std::string four = run_engine_and_render(4, 1.0);
  EXPECT_EQ(one, four);
  // Span convention: 1 root, 2 queue_wait, 3 terminal.
  EXPECT_NE(one.find("trace=1 span=1 parent=0 name=request"),
            std::string::npos);
  EXPECT_NE(one.find("trace=1 span=2 parent=1 name=queue_wait"),
            std::string::npos);
  EXPECT_NE(one.find("trace=1 span=3 parent=1 name=score"),
            std::string::npos);
}

TEST(ObsTrace, EngineSamplesRequestsDeterministically) {
  const std::string a = run_engine_and_render(2, 0.5);
  const std::string b = run_engine_and_render(3, 0.5);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());

  // The sampled set is exactly what an identically-seeded sink predicts.
  const TraceSink reference(TraceSinkConfig{.sample_rate = 0.5});
  for (std::uint64_t id = 1; id <= 48; ++id) {
    const std::string needle =
        "trace=" + std::to_string(id) + " span=1 ";
    EXPECT_EQ(a.find(needle) != std::string::npos, reference.sampled(id))
        << "id " << id;
  }
}

// --------------------------- training spans ----------------------------

TEST(ObsTrace, TrainingPipelineEmitsStageSpansAndMetrics) {
  // Tiny but genuine training run: two well-separated blobs.
  constexpr std::size_t kRows = 40;
  ml::Matrix features(kRows, 2);
  std::vector<ua::UserAgent> uas;
  for (std::size_t i = 0; i < kRows; ++i) {
    const bool high = i >= kRows / 2;
    features(i, 0) = (high ? 10.0 : 0.0) + 0.01 * static_cast<double>(i % 5);
    features(i, 1) = (high ? 10.0 : 0.0) + 0.01 * static_cast<double>(i % 3);
    uas.push_back(high ? kFirefox100 : kChrome100);
  }
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  config.kmeans_restarts = 1;
  config.align_rare_labels = false;

  MetricsRegistry registry;
  TraceSink sink;
  ObsContext obs{&registry, &sink, /*trace_id=*/77};

  core::Polygraph model(config);
  const core::TrainingSummary summary = model.train(features, uas, &obs);
  EXPECT_EQ(summary.rows_total, kRows);

  const std::string text = sink.render(/*include_timing=*/false);
  EXPECT_NE(text.find("trace=77 span=1 parent=0 name=train"),
            std::string::npos);
  EXPECT_NE(text.find("trace=77 span=2 parent=1 name=scale"),
            std::string::npos);
  EXPECT_NE(text.find("trace=77 span=3 parent=1 name=filter"),
            std::string::npos);
  EXPECT_NE(text.find("trace=77 span=4 parent=1 name=pca"),
            std::string::npos);
  EXPECT_NE(text.find("trace=77 span=5 parent=1 name=kmeans"),
            std::string::npos);
  EXPECT_NE(text.find("trace=77 span=6 parent=1 name=table"),
            std::string::npos);

  EXPECT_EQ(registry.counter("bp_training_runs_total").value(), 1u);
  EXPECT_EQ(registry.counter("bp_training_rows_total").value(), kRows);
  EXPECT_GE(registry.gauge("bp_training_total_seconds").value(), 0.0);
}

// ---------------------- supervisor cycle tracing -----------------------

TEST(ObsTrace, RetrainCycleEmitsSpans) {
  MetricsRegistry metrics;
  TraceSink sink;
  serve::ModelRegistry models;
  serve::RetrainConfig config;
  config.max_attempts = 1;
  config.trace = &sink;
  serve::RetrainSupervisor supervisor(
      models, config, [] { return true; },
      [] { return std::optional<core::Polygraph>(make_tiny_model()); },
      [](const core::Polygraph&) { return true; },
      [](std::chrono::milliseconds) {});
  ASSERT_EQ(supervisor.run_cycle(), serve::CycleResult::kPublished);

  const std::string text = sink.render(/*include_timing=*/false);
  const std::string trace_prefix =
      "trace=" + std::to_string((std::uint64_t{1} << 62) + 1);
  EXPECT_NE(text.find(trace_prefix + " span=1 parent=0 name=retrain_cycle"),
            std::string::npos);
  EXPECT_NE(text.find(trace_prefix + " span=2 parent=1 name=drift_check"),
            std::string::npos);
  EXPECT_NE(text.find(trace_prefix + " span=3 parent=1 name=train"),
            std::string::npos);
  EXPECT_NE(text.find(trace_prefix + " span=4 parent=1 name=validate"),
            std::string::npos);
  EXPECT_NE(text.find(trace_prefix + " span=5 parent=1 name=publish"),
            std::string::npos);
}

}  // namespace
}  // namespace bp::obs
