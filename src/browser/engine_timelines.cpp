#include "browser/engine_timelines.h"

#include <array>
#include <cassert>

#include "util/rng.h"

namespace bp::browser {

namespace {

// ---------------------------------------------------------------------
// Production 22 deviation-based features: hand-built era tables.
// Row order matches Table 8 (= FeatureCatalog::final_indices()[0..21]).
// ---------------------------------------------------------------------

constexpr int kBlinkEras = 7;   // 59-68, 69-89, 90-101, 102-109, 110-113, 114-118, 119
constexpr int kGeckoEras = 5;   // 46-50, 51-91, 92-100, 101-118, 119

// clang-format off
constexpr std::array<std::array<int, kBlinkEras>, 22> kBlinkTable = {{
    /* Element            */ {250, 280, 300, 320, 330, 340, 341},
    /* Document           */ {180, 205, 220, 232, 240, 247, 248},
    /* HTMLElement        */ {120, 135, 148, 160, 166, 170, 171},
    /* SVGElement         */ { 60,  68,  75,  80,  84,  86,  86},
    /* SVGFEBlendElement  */ {  8,  10,  12,  13,  13,  14,  14},
    /* TextMetrics        */ {  2,   4,   6,   8,  12,  12,  12},
    /* Range              */ { 30,  34,  36,  38,  40,  40,  40},
    /* StaticRange        */ {  0,   5,   5,   5,   5,   5,   5},
    /* AuthAttestationResp*/ {  0,   4,   5,   6,   6,   6,   6},
    /* HTMLVideoElement   */ { 20,  24,  26,  28,  30,  30,  30},
    /* ResizeObserverEntry*/ {  0,   4,   6,   7,   7,   7,   7},
    /* ShadowRoot         */ { 10,  14,  17,  19,  20,  20,  20},
    /* PointerEvent       */ { 24,  28,  30,  32,  33,  33,  33},
    /* IntersectionObserv */ {  7,   8,   9,  10,  11,  12,  12},
    /* CanvasRendering2D  */ { 70,  75,  80,  85,  88,  90,  90},
    /* CSSStyleSheet      */ { 10,  12,  14,  16,  17,  17,  17},
    /* AudioContext       */ { 10,  12,  13,  14,  14,  14,  14},
    /* HTMLLinkElement    */ { 18,  20,  22,  24,  25,  25,  25},
    /* HTMLMediaElement   */ { 50,  55,  58,  62,  64,  65,  65},
    /* WebGL2Rendering    */ {300, 320, 330, 340, 345, 350, 350},
    /* WebGLRendering     */ {250, 260, 270, 280, 285, 288, 288},
    /* CSSRule            */ { 14,  16,  17,  18,  19,  19,  19},
}};

// Gecko eras 0-3 are native Firefox evolution; era 4 (Firefox 119) is the
// Element-prototype rework of §7.3, modeled as convergence to Blink era 2
// (Chrome 90-101) prototype shapes — which is exactly why the drift
// analysis sees Firefox 119 land in the Chrome 90-101 cluster.
constexpr std::array<std::array<int, kGeckoEras>, 22> kGeckoTable = {{
    /* Element            */ {215, 248, 258, 274, 300},
    /* Document           */ {150, 178, 186, 199, 220},
    /* HTMLElement        */ {105, 122, 126, 138, 148},
    /* SVGElement         */ { 50,  62,  64,  70,  75},
    /* SVGFEBlendElement  */ {  6,   8,   9,  10,  12},
    /* TextMetrics        */ {  2,   3,   3,   8,   6},
    /* Range              */ { 28,  31,  32,  36,  36},
    /* StaticRange        */ {  0,   0,   5,   5,   5},
    /* AuthAttestationResp*/ {  0,   0,   0,   5,   5},
    /* HTMLVideoElement   */ { 16,  21,  22,  24,  26},
    /* ResizeObserverEntry*/ {  0,   0,   6,   7,   6},
    /* ShadowRoot         */ {  0,  10,  12,  16,  17},
    /* PointerEvent       */ { 20,  25,  26,  30,  30},
    /* IntersectionObserv */ {  0,   7,   7,   9,   9},
    /* CanvasRendering2D  */ { 60,  68,  70,  76,  80},
    /* CSSStyleSheet      */ {  9,  11,  11,  13,  14},
    /* AudioContext       */ {  8,  10,  10,  12,  13},
    /* HTMLLinkElement    */ { 15,  18,  18,  20,  22},
    /* HTMLMediaElement   */ { 45,  49,  50,  56,  58},
    /* WebGL2Rendering    */ {  0, 295, 302, 325, 330},
    /* WebGLRendering     */ {240, 252, 254, 260, 265},
    /* CSSRule            */ { 12,  14,  14,  16,  17},
}};

constexpr std::array<int, 22> kEdgeHtmlTable = {
    212, 145, 100, 46, 5, 2, 26, 0, 0, 14, 0, 0, 22, 0, 55, 8, 7, 13, 40, 0,
    230, 11,
};

constexpr std::array<int, 22> kWebKitTable = {
    260, 190, 125, 62, 8, 4, 31, 5, 4, 22, 6, 15, 0, 8, 70, 12, 10, 18, 50, 0,
    245, 14,
};
// clang-format on

// ---------------------------------------------------------------------
// Production 6 time-based features (Table 8 rows 23-28): presence bits
// with well-documented engine/version introductions.
// ---------------------------------------------------------------------
int production_time_based(Engine engine, int v, std::size_t row) {
  switch (row) {
    case 0:  // Navigator.deviceMemory — Blink 63+, never Gecko/EdgeHTML.
      return (engine == Engine::kBlink && v >= 63) ? 1 : 0;
    case 1:  // BaseAudioContext.currentTime — Blink 60+, Gecko 53+.
      if (engine == Engine::kBlink) return v >= 60 ? 1 : 0;
      if (engine == Engine::kGecko) return v >= 53 ? 1 : 0;
      return engine == Engine::kWebKit ? 1 : 0;
    case 2:  // HTMLVideoElement.webkitDisplayingFullscreen — WebKit lineage.
      return (engine == Engine::kBlink || engine == Engine::kWebKit) ? 1 : 0;
    case 3:  // Screen.orientation — Blink always, Gecko 48+.
      if (engine == Engine::kBlink) return 1;
      if (engine == Engine::kGecko) return v >= 48 ? 1 : 0;
      return 0;
    case 4:  // Window.speechSynthesis — Blink/WebKit, Gecko 49+; EdgeHTML
             // exposed it on the instance, not the prototype.
      if (engine == Engine::kGecko) return v >= 49 ? 1 : 0;
      return engine == Engine::kEdgeHtml ? 0 : 1;
    case 5:  // CSSStyleDeclaration.getPropertyValue — everywhere modern,
             // absent on EdgeHTML's flattened declaration object.
      return engine == Engine::kEdgeHtml ? 0 : 1;
    default:
      return 0;
  }
}

// ---------------------------------------------------------------------
// Hash-derived behaviour classes for the non-production candidates.
// ---------------------------------------------------------------------

enum class DeviationClass : int {
  kConstant = 0,      // same value everywhere (~30% — §6.3's "singular")
  kVendorLevel = 1,   // engine-dependent, version-independent
  kEraStepped = 2,    // slow steps with engine version
  kVolatile = 3,      // engine offset + steady version drift
};

DeviationClass deviation_class(std::uint64_t h) {
  const int bucket = static_cast<int>(h % 100);
  if (bucket < 30) return DeviationClass::kConstant;
  if (bucket < 55) return DeviationClass::kVendorLevel;
  if (bucket < 80) return DeviationClass::kEraStepped;
  return DeviationClass::kVolatile;
}

int engine_offset(Engine engine, std::uint64_t h) {
  switch (engine) {
    case Engine::kBlink:
      return static_cast<int>(h % 7);
    case Engine::kGecko:
      return static_cast<int>((h >> 8) % 7) - 3;
    case Engine::kEdgeHtml:
      return -static_cast<int>((h >> 16) % 9);
    case Engine::kWebKit:
      return static_cast<int>((h >> 24) % 5) - 2;
  }
  return 0;
}

int synth_deviation_value(Engine engine, int v, const FeatureSpec& spec) {
  const std::uint64_t h = bp::util::fnv1a(spec.name);
  const int base = 4 + static_cast<int>(h % 60);
  switch (deviation_class(h)) {
    case DeviationClass::kConstant:
      return base;
    case DeviationClass::kVendorLevel:
      return base + engine_offset(engine, h);
    case DeviationClass::kEraStepped: {
      // One or two property additions per ~12 engine versions.
      const int cadence = 10 + static_cast<int>((h >> 32) % 8);
      const int step = 1 + static_cast<int>((h >> 40) % 2);
      return base + engine_offset(engine, h) + (v / cadence) * step;
    }
    case DeviationClass::kVolatile:
      return base + engine_offset(engine, h) + v / 8 +
             static_cast<int>((h >> 48) % 3);
  }
  return base;
}

int synth_time_based_value(Engine engine, int v, const FeatureSpec& spec) {
  const std::uint64_t h = bp::util::fnv1a(spec.name);
  const int bucket = static_cast<int>(h % 100);
  if (bucket < 30) return 1;  // constant-present (~30%)
  if (bucket < 40) return 0;  // constant-absent (~10%)
  // The rest flipped at some pre-2020 engine version (BrowserPrint's
  // window): present from `intro` on, or removed at `intro` for a
  // minority of vendor-prefixed properties.
  const bool removal = (h >> 60) % 4 == 0;
  int intro = 0;
  switch (engine) {
    case Engine::kBlink:
      intro = 50 + static_cast<int>((h >> 16) % 30);  // Chrome 50-79
      break;
    case Engine::kGecko:
      intro = 45 + static_cast<int>((h >> 16) % 30);  // Firefox 45-74
      break;
    case Engine::kEdgeHtml:
      return (h >> 20) % 2 == 0 ? 1 : 0;
    case Engine::kWebKit:
      return (h >> 21) % 2 == 0 ? 1 : 0;
  }
  const bool present_after = v >= intro;
  return (removal ? !present_after : present_after) ? 1 : 0;
}

// Table-8 row of a candidate index, or -1.
int final_row_of(std::size_t candidate_index) {
  const auto& catalog = FeatureCatalog::instance();
  const auto& finals = catalog.final_indices();
  for (std::size_t i = 0; i < finals.size(); ++i) {
    if (finals[i] == candidate_index) return static_cast<int>(i);
  }
  return -1;
}

int production_deviation(Engine engine, int v, int row) {
  switch (engine) {
    case Engine::kBlink:
      return kBlinkTable[static_cast<std::size_t>(row)]
                        [static_cast<std::size_t>(blink_era(v))];
    case Engine::kGecko:
      return kGeckoTable[static_cast<std::size_t>(row)]
                        [static_cast<std::size_t>(gecko_era(v))];
    case Engine::kEdgeHtml:
      return kEdgeHtmlTable[static_cast<std::size_t>(row)];
    case Engine::kWebKit:
      return kWebKitTable[static_cast<std::size_t>(row)];
  }
  return 0;
}

}  // namespace

int blink_era(int version) noexcept {
  if (version >= 119) return 6;
  if (version >= 114) return 5;
  if (version >= 110) return 4;
  if (version >= 102) return 3;
  if (version >= 90) return 2;
  if (version >= 69) return 1;
  return 0;
}

int gecko_era(int version) noexcept {
  if (version >= 119) return 4;
  if (version >= 101) return 3;
  if (version >= 92) return 2;
  if (version >= 51) return 1;
  return 0;
}

int baseline_value(Engine engine, int engine_version,
                   std::size_t candidate_index) {
  const auto& catalog = FeatureCatalog::instance();
  assert(candidate_index < catalog.candidate_count());
  const FeatureSpec& spec = catalog.spec(candidate_index);

  const int row = final_row_of(candidate_index);
  if (row >= 0) {
    return row < 22
               ? production_deviation(engine, engine_version, row)
               : production_time_based(engine, engine_version,
                                       static_cast<std::size_t>(row - 22));
  }
  return spec.kind == FeatureKind::kDeviationBased
             ? synth_deviation_value(engine, engine_version, spec)
             : synth_time_based_value(engine, engine_version, spec);
}

bool is_globally_constant(std::size_t candidate_index) {
  int first = 0;
  bool have_first = false;
  for (const auto& release : ReleaseDatabase::instance().releases()) {
    const int v =
        baseline_value(release.engine, release.engine_version, candidate_index);
    if (!have_first) {
      first = v;
      have_first = true;
    } else if (v != first) {
      return false;
    }
  }
  return true;
}

double rollout_blend_fraction(const BrowserRelease& release) noexcept {
  // §7.3 drift carriers: Chrome 119 partially rolled back prototype
  // changes for ~3% of the population (a field-trial revert Edge did not
  // ship); Firefox 119's rework reached ~98.6% of installs in the first
  // week.
  if (release.vendor == ua::Vendor::kChrome && release.version == 119) {
    return 0.030;
  }
  if (release.vendor == ua::Vendor::kFirefox && release.version == 119) {
    return 0.014;
  }
  return 0.0;
}

int previous_era_value(Engine engine, int engine_version,
                       std::size_t candidate_index) {
  int prev_version = engine_version;
  if (engine == Engine::kBlink) {
    switch (blink_era(engine_version)) {
      // Blink 119's rollout cohort regresses to the 110-113 prototype
      // shapes (a reverted feature flag), not merely to 118 — this is
      // what scatters Chrome 119 across clusters in Table 6.
      case 6: prev_version = 113; break;
      case 5: prev_version = 113; break;
      case 4: prev_version = 109; break;
      case 3: prev_version = 101; break;
      case 2: prev_version = 89; break;
      case 1: prev_version = 68; break;
      default: prev_version = engine_version; break;
    }
  } else if (engine == Engine::kGecko) {
    switch (gecko_era(engine_version)) {
      case 4: prev_version = 118; break;
      case 3: prev_version = 100; break;
      case 2: prev_version = 91; break;
      case 1: prev_version = 50; break;
      default: prev_version = engine_version; break;
    }
  }
  return baseline_value(engine, prev_version, candidate_index);
}

}  // namespace bp::browser
