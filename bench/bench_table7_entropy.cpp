// Reproduces Table 7: Shannon entropy and normalized entropy of the
// collected attributes, sorted by normalized entropy (§7.4).  The
// user-agent should dominate every coarse-grained feature — i.e. the
// fingerprint adds no identifiability beyond the UA string itself.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "browser/feature_catalog.h"
#include "stats/entropy.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Table 7: entropy of Browser Polygraph's features ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto& catalog = browser::FeatureCatalog::instance();

  struct Row {
    std::string name;
    double entropy;
    double normalized;
  };
  std::vector<Row> rows;

  // user-agent string.
  {
    std::vector<std::string> values;
    values.reserve(data.size());
    for (const auto& record : data.records()) values.push_back(record.user_agent);
    rows.push_back({"user-agent", stats::shannon_entropy(values),
                    stats::normalized_entropy(values)});
  }

  // Every production feature.
  const auto& finals = catalog.final_indices();
  const ml::Matrix features = data.feature_matrix(finals);
  for (std::size_t c = 0; c < finals.size(); ++c) {
    std::vector<std::string> values;
    values.reserve(features.rows());
    for (std::size_t r = 0; r < features.rows(); ++r) {
      values.push_back(std::to_string(static_cast<long long>(features(r, c))));
    }
    rows.push_back({catalog.spec(finals[c]).name,
                    stats::shannon_entropy(values),
                    stats::normalized_entropy(values)});
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.normalized > b.normalized;
  });

  util::TextTable table({"Feature", "Entropy", "Normalized Entropy"});
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 8); ++i) {
    table.add_row({rows[i].name, util::format_double(rows[i].entropy, 2),
                   util::format_double(rows[i].normalized, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nhighest-entropy attribute: %s (paper: the user-agent itself, at "
      "5.97 bits / 0.58 normalized)\n",
      rows.front().name.c_str());
  return 0;
}
