// The resilient client tier for POST /score: what an edge box that
// must answer "fraud or not" inline on page loads runs against the
// scoring plane.
//
// /score is idempotent by construction — a verdict is a pure function
// of (published model version, fingerprint features, claimed UA), and
// the verdict cache makes even the server-side work of a replay
// nearly free — so the client is allowed to be aggressive about
// retries.  Four layers, outermost first:
//
//   1. deadline budget   — every score() call has one total deadline;
//                          retries, backoff and hedges all spend from
//                          it, and the call returns a typed outcome
//                          (never hangs) when it is exhausted;
//   2. retries + backoff — transport errors, 503 sheds and corrupt
//                          responses are retried with exponential
//                          backoff whose jitter is a pure function of
//                          (jitter_seed, session_id, retry index) via
//                          Rng::split — no shared mutable stream — so a
//                          chaos run's retry schedule replays exactly,
//                          per call, regardless of thread interleaving;
//   3. hedging           — optionally, a second request is launched on
//                          a different pooled connection once the
//                          primary has been quiet for hedge_delay; the
//                          first response wins and the loser's
//                          connection is aborted (the classic
//                          tail-at-scale move: a 1% stall tax becomes
//                          a ~0.01% one);
//   4. circuit breaker   — consecutive call failures open a per-host
//                          breaker (same shape as the retrain
//                          supervisor's, DESIGN.md §10): while open,
//                          calls short-circuit to kBreakerOpen for
//                          breaker_cooldown calls, then one half-open
//                          probe is let through; success closes it.
//
// Connections are keep-alive and pooled; any connection that saw a
// transport error or an unparseable frame is closed before it returns
// to the pool, so a desynchronized HTTP stream can never leak bytes
// into a later exchange.
//
// Thread model: score() is thread-safe (the pool and breaker are
// internally locked; backoff jitter and trace ids are pure per-call
// functions needing no lock at all); each in-flight call owns the
// connections it acquired.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/http_common.h"
#include "net/wire.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace bp::net {

struct ScoreClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  // Per-socket-operation kernel timeout (both directions); the coarse
  // bound under which no single attempt can wedge.
  std::chrono::milliseconds io_timeout{2'000};
  // Total budget for one score() call: attempts + backoff + hedges.
  std::chrono::milliseconds deadline{5'000};
  int max_attempts = 3;
  // Backoff before retry k (k=1..): initial * multiplier^(k-1), capped
  // at max_backoff, scaled by a jitter factor in [0.5, 1.0) drawn
  // deterministically from jitter_seed.
  std::chrono::milliseconds initial_backoff{10};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{500};
  std::uint64_t jitter_seed = 0x9d2c5680;
  // Hedge: if the primary request of an attempt has not answered
  // within this window, race a second request on another connection.
  // 0 disables hedging (attempts then run inline on the caller's
  // thread, with no per-request thread spawn).
  std::chrono::milliseconds hedge_delay{0};
  // Circuit breaker: consecutive failed score() calls before it opens,
  // and how many subsequent calls short-circuit before one half-open
  // probe is allowed through.
  int breaker_threshold = 5;
  int breaker_cooldown = 8;
  // Idle keep-alive connections retained for reuse.
  std::size_t pool_capacity = 4;
  // Counters additionally land here when set ("<metrics_prefix>_*").
  obs::MetricsRegistry* registry = nullptr;
  std::string metrics_prefix = "bp_client";
  // Injectable backoff sleep (tests assert schedules without waiting).
  std::function<void(std::chrono::milliseconds)> sleep_fn;

  // ---- cross-hop tracing (null = no tracing, no wire segment) ----
  // With a sink set, every score() call mints a deterministic trace id
  // — pure in (trace_seed, session_id) via Rng::split, so a chaos-soak
  // trace replays bit-for-bit — and records:
  //   1      "client_call"  root span, whole call                (parent 0)
  //   8k+2   attempt k's primary request                          (parent 1)
  //   8k+3   attempt k's hedged twin, when launched               (parent 1)
  // The span that settled the call is named "attempt_winner" /
  // "hedge_winner"; the others keep "attempt" / "hedge".  Every frame
  // sent carries the context as a wire t: segment (parent = that
  // runner's span id), so the server's slot/queue/cache/kernel spans
  // join this trace — see serve::adopted_span_base.  The sink's
  // deterministic head-sampling decides whether the trace records;
  // the decision rides the wire, so both sides agree span-for-span.
  obs::TraceSink* trace = nullptr;
  std::uint64_t trace_seed = 0x51ace;
};

enum class ScoreClientOutcome : std::uint8_t {
  kOk = 0,            // HTTP 200, well-formed frame, session echo matches
  kShed,              // 503 on every attempt: explicit backpressure
  kRejected,          // 4xx: the server understood us and said no (no retry)
  kTransportError,    // connect/send/recv failed on every attempt
  kCorruptResponse,   // unparseable frame or wrong session echo, every attempt
  kDeadlineExhausted, // the budget ran out before any attempt succeeded
  kBreakerOpen,       // short-circuited locally; no network I/O happened
};

std::string_view score_client_outcome_name(ScoreClientOutcome o) noexcept;

struct ScoreCallResult {
  ScoreClientOutcome outcome = ScoreClientOutcome::kTransportError;
  WireScoreResponse response{};  // valid iff outcome == kOk
  int attempts = 0;              // network attempts made (hedges excluded)
  bool hedged = false;           // a hedge was launched on some attempt
  bool hedge_won = false;        // ... and the hedge's response won
  std::string error;             // human-readable detail on failure
  // The call's minted trace id (0 when no trace sink is configured)
  // and whether the sink's head sampling kept it — what to paste into
  // /tracez?trace=<id> on either side of the wire.
  std::uint64_t trace_id = 0;
  bool trace_sampled = false;
};

struct ScoreClientStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t deadline_exhausted = 0;
  std::uint64_t breaker_short_circuits = 0;
  std::uint64_t breaker_opens = 0;
  // Frames sent carrying a t: trace context (primary + hedge each).
  std::uint64_t trace_propagated = 0;
};

class ScoreClient {
 public:
  explicit ScoreClient(ScoreClientConfig config);
  ~ScoreClient();

  ScoreClient(const ScoreClient&) = delete;
  ScoreClient& operator=(const ScoreClient&) = delete;

  // One scored session: renders the wire frame, runs the retry/hedge
  // state machine, returns a typed outcome within ~deadline (+ at most
  // one io_timeout of slack for an attempt already in flight).
  ScoreCallResult score(std::uint64_t session_id, std::string_view claimed_ua,
                        std::span<const std::int32_t> features);

  ScoreClientStats stats() const;
  bool breaker_open() const;
  // Operator override: close the breaker and forget the failure streak.
  void reset_breaker();

 private:
  struct AttemptResult {
    enum class Kind : std::uint8_t {
      kOk, kShed, kRejected, kTransport, kCorrupt, kTimedOut,
    };
    Kind kind = Kind::kTransport;
    WireScoreResponse response{};
    std::string error;
    bool poison_connection = false;  // close before returning to pool
  };
  struct RaceState;

  std::unique_ptr<HttpClient> acquire_connection();
  void release_connection(std::unique_ptr<HttpClient> connection,
                          bool healthy);
  AttemptResult exchange_once(HttpClient& connection, const std::string& frame,
                              std::uint64_t session_id);
  // One attempt of the retry loop.  `attempt_index` is 1-based — it
  // fixes the attempt's span ids (8k+2 primary, 8k+3 hedge) and
  // `trace_id` (0 = tracing off for this call) rides every frame as a
  // wire t: segment.
  AttemptResult attempt(const std::string& frame, std::uint64_t session_id,
                        std::uint64_t trace_id, bool trace_sampled,
                        int attempt_index,
                        std::chrono::steady_clock::time_point deadline,
                        ScoreCallResult* call);
  // Pure in (jitter_seed, session_id, retry_index): no shared state.
  std::chrono::milliseconds next_backoff(std::uint64_t session_id,
                                         int retry_index) const;
  void breaker_on_success();
  void breaker_on_failure();
  void bump(std::uint64_t ScoreClientStats::* field, obs::Counter* counter);

  ScoreClientConfig config_;

  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<HttpClient>> pool_;

  std::mutex breaker_mutex_;
  bool breaker_open_ = false;
  int consecutive_failures_ = 0;
  int cooldown_remaining_ = 0;

  mutable std::mutex stats_mutex_;
  ScoreClientStats stats_;

  // Registry counters (null when config_.registry is null).
  obs::Counter* m_calls_ = nullptr;
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_hedges_ = nullptr;
  obs::Counter* m_hedge_wins_ = nullptr;
  obs::Counter* m_ok_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_transport_ = nullptr;
  obs::Counter* m_corrupt_ = nullptr;
  obs::Counter* m_deadline_ = nullptr;
  obs::Counter* m_short_circuits_ = nullptr;
  obs::Counter* m_breaker_opens_ = nullptr;
  // bp_trace_propagated_total: frames sent carrying a t: trace context
  // (one per primary and per hedge) — the client half of the server's
  // bp_trace_adopted_total.
  obs::Counter* m_trace_propagated_ = nullptr;
  bool gauge_registered_ = false;
};

}  // namespace bp::net
