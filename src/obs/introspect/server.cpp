#include "obs/introspect/server.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/introspect/build_info.h"

namespace bp::obs::introspect {

IntrospectionServer::IntrospectionServer(Sources sources, ServerConfig config)
    : sources_(std::move(sources)), config_(std::move(config)) {
  net::ListenerConfig listener_config;
  listener_config.bind_address = config_.bind_address;
  listener_config.port = config_.port;
  listener_config.handler_threads = config_.handler_threads;
  listener_config.max_pending = config_.max_pending;
  listener_config.io_timeout = config_.io_timeout;
  // One request per connection: the introspection plane's historical
  // contract (scrapers open fresh connections each cadence anyway).
  listener_config.keep_alive = false;
  listener_.emplace(std::move(listener_config),
                    [this](const HttpRequest& request) {
                      if (request.method != "GET") {
                        HttpResponse response;
                        response.status = 405;
                        response.body = "only GET is served here\n";
                        return response;
                      }
                      return handle(request);
                    });
}

IntrospectionServer::~IntrospectionServer() { stop(); }

HttpResponse IntrospectionServer::handle(const HttpRequest& request) const {
  HttpResponse response;
  if (request.path == "/metrics") {
    if (sources_.metrics == nullptr) {
      response.status = 404;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = sources_.metrics->render_prometheus();
    return response;
  }
  if (request.path == "/metrics.json") {
    if (sources_.metrics == nullptr) {
      response.status = 404;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = sources_.metrics->render_json();
    return response;
  }
  if (request.path == "/healthz") {
    if (sources_.health == nullptr) {
      // No health model: answering at all is the liveness proof.
      response.body = "ok\n";
      return response;
    }
    const slo::HealthReport report = sources_.health->evaluate();
    response.status = report.live ? 200 : 503;
    response.body = report.live ? "ok\n" : report.detail;
    return response;
  }
  if (request.path == "/readyz") {
    if (sources_.health == nullptr) {
      response.status = 503;
      response.body = "no health model attached\n";
      return response;
    }
    const slo::HealthReport report = sources_.health->evaluate();
    response.status = report.ready ? 200 : 503;
    response.body = report.ready ? "ok\n" : report.detail;
    return response;
  }
  if (request.path == "/statusz") {
    response.body = render_statusz();
    return response;
  }
  if (request.path == "/tracez") {
    if (sources_.trace == nullptr) {
      response.status = 404;
      response.body = "no trace sink attached\n";
      return response;
    }
    // ?trace=<id> keeps one trace (the cross-hop drill-down: paste the
    // id a ScoreCallResult or an exemplar reported, on either side of
    // the wire); ?n=K keeps the K most recent matching events.  A
    // present-but-unparseable value is the operator's typo — 400, not
    // a silently unfiltered dump.
    std::uint64_t trace_filter = 0;
    std::uint64_t limit = 0;
    if (net::query_uint_checked(request.query, "trace", &trace_filter) ==
        net::QueryParam::kMalformed) {
      response.status = 400;
      response.body = "bad query: trace must be a non-negative integer\n";
      return response;
    }
    if (net::query_uint_checked(request.query, "n", &limit) ==
        net::QueryParam::kMalformed) {
      response.status = 400;
      response.body = "bad query: n must be a non-negative integer\n";
      return response;
    }
    response.body = sources_.trace->render(/*include_timing=*/true,
                                           trace_filter,
                                           static_cast<std::size_t>(limit));
    return response;
  }
  if (request.path == "/auditz") {
    if (sources_.audit == nullptr) {
      response.status = 404;
      response.body = "no audit trail attached\n";
      return response;
    }
    // Same typed-400 contract as /tracez and /profilez: a malformed
    // value is the operator's typo, never silently the default.
    std::uint64_t n = 100;
    if (net::query_uint_checked(request.query, "n", &n) ==
        net::QueryParam::kMalformed) {
      response.status = 400;
      response.body = "bad query: n must be a non-negative integer\n";
      return response;
    }
    response.content_type = "application/jsonl";
    response.body = sources_.audit->render_jsonl(
        /*include_timing=*/true, static_cast<std::size_t>(n));
    return response;
  }
  if (request.path == "/profilez") {
    if (sources_.profiler == nullptr) {
      response.status = 404;
      response.body = "no profiler attached\n";
      return response;
    }
    std::uint64_t seconds = 1;
    if (net::query_uint_checked(request.query, "seconds", &seconds) ==
        net::QueryParam::kMalformed) {
      response.status = 400;
      response.body = "bad query: seconds must be a non-negative integer\n";
      return response;
    }
    // The capture window is the diff of two snapshots of the profiler's
    // monotonic table, so concurrent /profilez requests never disturb
    // each other.  The handler sleeps the window out — introspection
    // handlers are cheap and pooled, and the clamp keeps one slow
    // request from parking a handler for minutes.
    seconds = std::clamp<std::uint64_t>(seconds, 1, 30);
    const prof::ProfileSnapshot before = sources_.profiler->snapshot();
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    const prof::ProfileSnapshot after = sources_.profiler->snapshot();
    response.body = prof::Profiler::render_collapsed(
        prof::Profiler::diff(before, after));
    return response;
  }
  if (request.path == "/profilez.json") {
    if (sources_.profiler == nullptr) {
      response.status = 404;
      response.body = "no profiler attached\n";
      return response;
    }
    response.content_type = "application/json";
    response.body =
        prof::Profiler::render_tag_tree_json(sources_.profiler->snapshot());
    return response;
  }
  if (request.path == "/contentionz") {
    if (sources_.contention == nullptr) {
      response.status = 404;
      response.body = "no contention registry attached\n";
      return response;
    }
    response.body = sources_.contention->render();
    return response;
  }
  response.status = 404;
  response.body =
      "not found; endpoints: /metrics /metrics.json /healthz /readyz "
      "/statusz /tracez?trace=ID&n=K /auditz?n=K /profilez?seconds=N "
      "/profilez.json /contentionz\n";
  return response;
}

std::string IntrospectionServer::render_statusz() const {
  std::string out = "browser-polygraph introspection\n";
  out += "requests_served: " + std::to_string(requests()) + "\n";
  out += "\n-- build --\n" + render_build_info();
  if (sources_.health != nullptr) {
    out += "\n-- health --\n" + sources_.health->evaluate().detail;
  }
  if (sources_.slo != nullptr) {
    out += "\n-- slo rules --\n" + sources_.slo->render_statuses();
    const std::string transitions = sources_.slo->render_transitions();
    if (!transitions.empty()) {
      out += "\n-- alert transitions --\n" + transitions;
    }
  }
  if (sources_.statusz_extra) {
    const std::string extra = sources_.statusz_extra();
    if (!extra.empty()) out += "\n-- service --\n" + extra;
  }
  return out;
}

void IntrospectionServer::stop() {
  if (listener_) listener_->stop();
}

}  // namespace bp::obs::introspect
