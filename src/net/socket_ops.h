// The socket seam every byte of the network plane moves through.
//
// bp_http used to call ::recv/::send/::connect directly, which meant
// the network layer's failure paths — short reads, partial writes,
// ECONNRESET mid-frame, EINTR, a peer that stalls mid-header — only
// ran when a real kernel produced them, i.e. never in CI.  These
// wrappers route every socket operation through the deterministic
// fault registry (util/fault.h, DESIGN.md §10): each operation
// evaluates a named FAULT_POINT, and an armed point's decisions are a
// pure function of (seed, evaluation index), so a chaos run that
// tripped a bug replays byte-for-byte under a debugger.
//
// Injection semantics keep the byte stream *correct* unless the fault
// is meant to kill it:
//
//   net.sock.recv.stall    sleep kInjectedStall, then recv normally —
//                          a peer (or kernel) that went quiet;
//   net.sock.recv.short    deliver at most 1 byte — fragmentation at
//                          its nastiest; data is never dropped;
//   net.sock.recv.eintr    return -1/EINTR without touching the
//                          socket — the caller must retry;
//   net.sock.recv.reset    return -1/ECONNRESET — the connection is
//                          dead as far as the caller can tell;
//   net.sock.send.stall / .partial / .eintr / .reset — mirror images
//                          on the write side (partial writes at most
//                          1 byte; the caller's loop must finish the
//                          job).
//   net.sock.connect       fail with ECONNREFUSED before the syscall.
//
// Callers retry EINTR at the call site (it is a signal, not an
// error); everything else surfaces through the normal error paths.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <string_view>

namespace bp::net::sockops {

inline constexpr std::string_view kFaultConnect = "net.sock.connect";
inline constexpr std::string_view kFaultRecvStall = "net.sock.recv.stall";
inline constexpr std::string_view kFaultRecvShort = "net.sock.recv.short";
inline constexpr std::string_view kFaultRecvEintr = "net.sock.recv.eintr";
inline constexpr std::string_view kFaultRecvReset = "net.sock.recv.reset";
inline constexpr std::string_view kFaultSendStall = "net.sock.send.stall";
inline constexpr std::string_view kFaultSendPartial = "net.sock.send.partial";
inline constexpr std::string_view kFaultSendEintr = "net.sock.send.eintr";
inline constexpr std::string_view kFaultSendReset = "net.sock.send.reset";

// How long an injected stall holds the operation.  Long enough that a
// header-deadline or hedging threshold can observe it, short enough
// that a soak armed at a few percent still finishes quickly.
inline constexpr std::chrono::milliseconds kInjectedStall{25};

// recv(fd, buf, len, 0) behind the fault points above.
ssize_t recv_some(int fd, void* buf, std::size_t len);

// send(fd, buf, len, MSG_NOSIGNAL) behind the fault points above.
ssize_t send_some(int fd, const void* buf, std::size_t len);

// connect(fd, addr, len) behind net.sock.connect.
int connect_fd(int fd, const sockaddr* addr, socklen_t len);

// Send the whole buffer: loops over partial writes, retries EINTR,
// returns false on any other error (errno preserved).
bool send_all(int fd, std::string_view data);

// Per-direction kernel I/O deadlines.  set_io_timeout sets BOTH
// SO_RCVTIMEO and SO_SNDTIMEO: a peer that stops *reading* must not
// wedge a handler in send() any more than a peer that stops writing
// may wedge it in recv().
void set_recv_timeout(int fd, std::chrono::milliseconds timeout);
void set_send_timeout(int fd, std::chrono::milliseconds timeout);
void set_io_timeout(int fd, std::chrono::milliseconds timeout);

}  // namespace bp::net::sockops
