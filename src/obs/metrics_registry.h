// Process-wide metrics registry: the one place every subsystem's
// telemetry lands.
//
// The serving tier, the drift module, the retrain supervisor, the fault
// registry and the training pipeline each used to expose bespoke status
// structs with no common export path.  The registry unifies them behind
// three instrument types — Counter, Gauge, Histogram — that any layer
// registers by name and any exporter renders in one call
// (`render_prometheus()` / `render_json()`).
//
// Hot-path design (same as the original ServeMetrics, which is now
// re-based onto these instruments): counters and histograms are sharded
// over cache-line-aligned stripes of relaxed atomics.  A recording
// thread passes a stripe hint (its worker index); distinct workers
// touch distinct cache lines, so a metrics layer never serializes the
// pool it is measuring.  Reads fold the stripes into one
// consistent-enough view — see "Consistency model" below.
//
// Consistency model:
//   * Counter/Histogram reads fold per-stripe relaxed atomics.  The
//     fold is not a point-in-time snapshot across *instruments*: two
//     counters read back-to-back may each be internally exact yet
//     mutually torn (a concurrent event may land between the reads).
//     Every individual value is exact once writers are quiescent.
//   * Gauges are single instantaneous values (last set wins).  Callback
//     gauges are evaluated at render time, so an exported gauge is
//     always as fresh as the render, never staler.
//
// Instrument references returned by counter()/gauge()/histogram() stay
// valid for the registry's lifetime (instruments are never destroyed;
// remove() applies to callback gauges only, whose referents may die
// before the registry does).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bp::obs {

// Monotonically increasing event count, sharded to keep concurrent
// writers off each other's cache lines.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void add(std::uint64_t n, std::size_t stripe_hint = 0) noexcept {
    stripes_[stripe_hint & (kStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment(std::size_t stripe_hint = 0) noexcept { add(1, stripe_hint); }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

// A single instantaneous value; last set wins.  Writers need no stripe:
// gauges are low-rate (watchdogs, supervisors, render-time callbacks).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    // Low-rate CAS loop; gauges are not hot-path instruments.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram over unsigned sample values (microseconds,
// bytes, ...).  Bucket b counts samples <= bounds[b] (lower_bound
// semantics, matching serve::latency_bucket); the last bucket is
// open-ended.  Bounds are frozen at registration.
class Histogram {
 public:
  void observe(std::uint64_t value, std::size_t stripe_hint = 0) noexcept {
    Stripe& stripe = stripes_[stripe_hint & (Counter::kStripes - 1)];
    stripe.buckets[bucket_index(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
  }

  // observe() plus an exemplar: remembers `trace_id` as the last
  // sampled trace that landed in this sample's bucket (last write wins;
  // trace_id 0 = no exemplar, slot untouched).  The JSON exporter
  // surfaces these so an operator can jump from a p99 bucket straight
  // to /tracez?trace=<id>.
  void observe_exemplar(std::uint64_t value, std::uint64_t trace_id,
                        std::size_t stripe_hint = 0) noexcept {
    observe(value, stripe_hint);
    if (trace_id != 0) {
      exemplars_[bucket_index(value)].store(trace_id,
                                            std::memory_order_relaxed);
    }
  }

  std::size_t bucket_index(std::uint64_t value) const noexcept;
  std::span<const std::uint64_t> bounds() const noexcept { return bounds_; }
  std::size_t n_buckets() const noexcept { return bounds_.size() + 1; }

  // Folded per-bucket counts (size n_buckets()).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  std::uint64_t sum() const;
  // Per-bucket last-exemplar trace ids (size n_buckets(); 0 = none).
  std::vector<std::uint64_t> exemplar_trace_ids() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<std::uint64_t> bounds);

  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> sum{0};
  };

  std::vector<std::uint64_t> bounds_;
  std::array<Stripe, Counter::kStripes> stripes_;
  // Unstriped: exemplars are last-write-wins markers, not counts.
  std::unique_ptr<std::atomic<std::uint64_t>[]> exemplars_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry most subsystems register into by default.
  static MetricsRegistry& global();

  // Find-or-create by name.  Re-registering an existing name of the
  // same kind returns the same instrument (so e.g. two components can
  // share a counter); registering an existing name as a different kind
  // is a programming error and returns a dedicated scrap instrument
  // that is never exported.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> bounds,
                       std::string_view help = "");

  // A gauge whose value is computed at render time (always fresh).
  // Re-registering replaces the callback.  The callback must stay
  // callable until remove()d — remove it before its referent dies.
  void gauge_callback(std::string_view name, std::function<double()> fn,
                      std::string_view help = "");

  // Remove an instrument by name (primarily for callback gauges whose
  // referent is being destroyed).  Invalidates references to it.
  void remove(std::string_view name);

  // Read one instrument's current value by name: a counter's fold, a
  // stored gauge's last set, a callback gauge's evaluation, or a
  // histogram's cumulative sample count.  nullopt for unknown names.
  // This is the generic read surface the windowed SLO layer samples
  // through (obs/slo/time_series.h).
  std::optional<double> read_value(std::string_view name) const;

  // Count of samples recorded strictly above `threshold` in histogram
  // `name` (exact when `threshold` is one of the histogram's bucket
  // bounds; otherwise the enclosing bucket counts as over).  nullopt
  // when `name` is not a histogram.  Lets an SLO rule treat
  // "requests over the latency budget" as a counter series.
  std::optional<double> read_histogram_over(std::string_view name,
                                            std::uint64_t threshold) const;

  // Prometheus text exposition format, instruments in name order.
  std::string render_prometheus() const;

  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {"bounds": [...], "counts": [...], "sum": n,
  // "count": n[, "exemplars": [...]]}}}.  "exemplars" (per-bucket last
  // sampled trace id, 0 = none) appears only when a histogram has
  // recorded at least one via observe_exemplar.  Name-ordered, hence
  // deterministic given quiescent writers.
  std::string render_json() const;

  std::size_t size() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kCallback };

  struct Instrument {
    Kind kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Instrument, std::less<>> instruments_;
};

}  // namespace bp::obs
