// Cross-hop distributed tracing, end to end: a ScoreClient with a
// trace sink scoring against a real ScoreServer whose engine shares a
// second sink — one trace id minted client-side must assemble the
// whole story on both sides of the wire, including under an armed
// ChaosProxy with hedging on.  The gates:
//
//   one id          every span on either side of a sampled call
//                   carries the client's minted trace id;
//   one winner      among a successful call's client spans, exactly
//                   one is named attempt_winner/hedge_winner;
//   zero orphans    every server-side span has a nonzero parent, and
//                   every server_request span's parent is an attempt
//                   span that exists in the client's sink;
//   replayable      with timing excluded, both sinks render
//                   byte-identically across two runs of the same
//                   deterministic workload.
//
// Run under TSan and ASan by the tier-1 sanitizer pass.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/polygraph.h"
#include "net/chaos_proxy.h"
#include "net/score_client.h"
#include "net/score_server.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"

namespace bp::net {
namespace {

using namespace std::chrono_literals;

core::Polygraph tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign({ua::Vendor::kChrome, 100, ua::Os::kWindows10}, 0);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

ScoreServerConfig server_config(obs::TraceSink* sink) {
  ScoreServerConfig config;
  config.router.shards = 2;
  config.router.engine.workers = 1;
  config.router.engine.queue_capacity = 1024;
  config.router.engine.overflow_policy = serve::OverflowPolicy::kReject;
  config.router.engine.trace = sink;
  config.expected_features = 2;
  config.listener.handler_threads = 4;
  return config;
}

bool is_winner_name(std::string_view name) {
  return name == "attempt_winner" || name == "hedge_winner";
}

// The assembled-trace invariants, checked over both sinks for one call:
// same id everywhere, exactly one winner, zero orphan server roots.
void expect_assembled(const obs::TraceSink& client_sink,
                      const obs::TraceSink& server_sink,
                      std::uint64_t trace_id) {
  std::set<std::uint32_t> client_spans;
  int winners = 0;
  bool saw_root = false;
  for (const obs::TraceEvent& event : client_sink.events()) {
    if (event.trace_id != trace_id) continue;
    client_spans.insert(event.span_id);
    if (is_winner_name(event.name)) ++winners;
    if (event.span_id == 1) {
      saw_root = true;
      EXPECT_EQ(event.parent_id, 0u);
      EXPECT_STREQ(event.name, "client_call");
    } else {
      EXPECT_EQ(event.parent_id, 1u) << "span " << event.span_id;
    }
  }
  EXPECT_TRUE(saw_root) << "trace " << trace_id << " has no client root";
  EXPECT_EQ(winners, 1) << "trace " << trace_id;

  int server_requests = 0;
  for (const obs::TraceEvent& event : server_sink.events()) {
    if (event.trace_id != trace_id) continue;
    ASSERT_NE(event.parent_id, 0u)
        << "orphan server-side root: span " << event.span_id;
    if (event.span_id % 16 == 1) {  // server_request, base+1
      ++server_requests;
      EXPECT_STREQ(event.name, "server_request");
      // Its parent is the client attempt span whose frame reached the
      // ingress — which must exist in the client's half of the trace.
      EXPECT_EQ(event.parent_id, event.span_id / 16);
      EXPECT_TRUE(client_spans.count(event.parent_id))
          << "server_request " << event.span_id
          << " parents under missing client span " << event.parent_id;
    } else {
      // Every other server span parents under its block's
      // server_request.
      EXPECT_EQ(event.parent_id, (event.span_id / 16) * 16 + 1)
          << "span " << event.span_id;
    }
  }
  EXPECT_GE(server_requests, 1) << "trace " << trace_id;
}

TEST(DistTrace, SingleCallAssemblesOneTraceAcrossTheWire) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  obs::TraceSink server_sink({.capacity = 1024, .sample_rate = 1.0});
  ScoreServer server(models, server_config(&server_sink));
  ASSERT_TRUE(server.running()) << server.error();

  obs::TraceSink client_sink({.capacity = 1024, .sample_rate = 1.0});
  ScoreClientConfig client_config;
  client_config.port = server.port();
  client_config.trace = &client_sink;
  ScoreClient client(client_config);

  const std::int32_t clean[] = {0, 0};
  const ScoreCallResult result = client.score(7, "Chrome 100", clean);
  ASSERT_EQ(result.outcome, ScoreClientOutcome::kOk) << result.error;
  ASSERT_NE(result.trace_id, 0u);
  ASSERT_TRUE(result.trace_sampled);

  // Attempt 1, no hedge: client records root (1) + primary (10); the
  // server's block hangs off span 10 at base 160.
  const std::vector<obs::TraceEvent> client_events = client_sink.events();
  ASSERT_EQ(client_events.size(), 2u);
  EXPECT_EQ(client_events[0].span_id, 1u);
  EXPECT_EQ(client_events[1].span_id, 10u);
  EXPECT_STREQ(client_events[1].name, "attempt_winner");

  std::set<std::uint32_t> server_spans;
  for (const obs::TraceEvent& event : server_sink.events()) {
    EXPECT_EQ(event.trace_id, result.trace_id);
    server_spans.insert(event.span_id);
  }
  // base+1 server_request, +2 queue_wait, +3 terminal, +4
  // slot_admission, +5 serialize.
  EXPECT_EQ(server_spans,
            (std::set<std::uint32_t>{161, 162, 163, 164, 165}));
  expect_assembled(client_sink, server_sink, result.trace_id);

  EXPECT_EQ(client.stats().trace_propagated, 1u);
}

TEST(DistTrace, UnsampledTracePropagatesButRecordsNothing) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  obs::TraceSink server_sink({.capacity = 1024, .sample_rate = 1.0});
  ScoreServer server(models, server_config(&server_sink));
  ASSERT_TRUE(server.running()) << server.error();

  // The client's head sampling says no; the server must honor that —
  // its own sample_rate=1.0 sink stays empty (a half-assembled trace
  // with only server-side spans would be worse than none).
  obs::TraceSink client_sink({.capacity = 1024, .sample_rate = 0.0});
  ScoreClientConfig client_config;
  client_config.port = server.port();
  client_config.trace = &client_sink;
  ScoreClient client(client_config);

  const std::int32_t clean[] = {0, 0};
  const ScoreCallResult result = client.score(7, "Chrome 100", clean);
  ASSERT_EQ(result.outcome, ScoreClientOutcome::kOk) << result.error;
  EXPECT_NE(result.trace_id, 0u);   // minted and propagated...
  EXPECT_FALSE(result.trace_sampled);
  EXPECT_EQ(client.stats().trace_propagated, 1u);
  EXPECT_EQ(client_sink.recorded(), 0u);  // ...but recorded nowhere
  EXPECT_EQ(server_sink.recorded(), 0u);
}

// The headline assembly gate: hedged calls through an armed chaos
// proxy.  Response-direction delays make hedges race for real; every
// successful sampled call must still assemble one trace with exactly
// one winner span and zero orphan roots.
TEST(DistTrace, HedgedChaosAssemblyHasOneWinnerAndNoOrphans) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  obs::TraceSink server_sink({.capacity = 8192, .sample_rate = 1.0});
  ScoreServer server(models, server_config(&server_sink));
  ASSERT_TRUE(server.running()) << server.error();

  ChaosProxyConfig proxy_config;
  proxy_config.upstream_port = server.port();
  proxy_config.seed = 0xD157;
  proxy_config.fault_client_to_upstream = false;
  proxy_config.delay_probability = 0.30;
  proxy_config.delay = 80ms;
  ChaosProxy proxy(proxy_config);
  ASSERT_TRUE(proxy.running()) << proxy.error();

  obs::TraceSink client_sink({.capacity = 8192, .sample_rate = 1.0});
  ScoreClientConfig client_config;
  client_config.port = proxy.port();
  client_config.io_timeout = 500ms;
  client_config.deadline = 4000ms;
  client_config.max_attempts = 4;
  client_config.initial_backoff = 5ms;
  client_config.max_backoff = 50ms;
  client_config.hedge_delay = 25ms;  // well under the injected 80ms delay
  client_config.trace = &client_sink;
  ScoreClient client(client_config);

  std::map<std::uint64_t, std::uint64_t> trace_of_session;
  int hedged_calls = 0;
  for (std::uint64_t session = 1; session <= 40; ++session) {
    const bool fraud = session % 2 == 0;
    const std::int32_t clean[] = {0, 0};
    const std::int32_t bot[] = {10, 10};
    const ScoreCallResult result =
        client.score(session, "Chrome 100", fraud ? bot : clean);
    ASSERT_EQ(result.outcome, ScoreClientOutcome::kOk)
        << "session " << session << ": " << result.error;
    ASSERT_NE(result.trace_id, 0u);
    ASSERT_TRUE(result.trace_sampled);
    // Distinct sessions must mint distinct ids, or the assembled
    // traces would shadow each other.
    ASSERT_TRUE(
        trace_of_session.emplace(result.trace_id, session).second)
        << "trace id collision at session " << session;
    if (result.hedged) ++hedged_calls;
  }
  EXPECT_GT(hedged_calls, 0)
      << "no hedge ever launched; delay rate too low to test assembly";

  for (const auto& [trace_id, session] : trace_of_session) {
    expect_assembled(client_sink, server_sink, trace_id);
  }
  proxy.stop();
  EXPECT_GT(proxy.stats().delays, 0u);
}

// Determinism gate: the same workload against a fresh stack renders
// the same traces, byte for byte, once timing is excluded — trace ids
// are pure in (trace_seed, session), span ids are fixed by convention,
// and render sorts by (trace_id, span_id).
TEST(DistTrace, RenderWithoutTimingIsByteReplayable) {
  const auto run = [](std::string* client_render, std::string* server_render) {
    serve::ModelRegistry models;
    ASSERT_TRUE(models.publish(tiny_model()));
    obs::TraceSink server_sink({.capacity = 4096, .sample_rate = 1.0});
    ScoreServer server(models, server_config(&server_sink));
    ASSERT_TRUE(server.running()) << server.error();

    obs::TraceSink client_sink({.capacity = 4096, .sample_rate = 1.0});
    ScoreClientConfig client_config;
    client_config.port = server.port();
    client_config.trace = &client_sink;
    ScoreClient client(client_config);

    for (std::uint64_t session = 1; session <= 12; ++session) {
      const bool fraud = session % 3 == 0;
      const std::int32_t clean[] = {0, 0};
      const std::int32_t bot[] = {10, 10};
      const ScoreCallResult result =
          client.score(session, "Chrome 100", fraud ? bot : clean);
      ASSERT_EQ(result.outcome, ScoreClientOutcome::kOk) << result.error;
    }
    *client_render = client_sink.render(/*include_timing=*/false);
    *server_render = server_sink.render(/*include_timing=*/false);
  };

  std::string client_first, server_first, client_second, server_second;
  run(&client_first, &server_first);
  run(&client_second, &server_second);
  ASSERT_FALSE(client_first.empty());
  ASSERT_FALSE(server_first.empty());
  EXPECT_EQ(client_first, client_second);
  EXPECT_EQ(server_first, server_second);

  // The rendered lines carry the minted ids — the /tracez?trace=
  // drill-down filter works off the same render.
  const std::string filtered = obs::TraceSink(
      {.capacity = 1, .sample_rate = 1.0}).render(false, 42);
  EXPECT_TRUE(filtered.empty());
}

}  // namespace
}  // namespace bp::net
