// Content-addressed (fingerprint, UA) -> verdict cache.
//
// Real traffic is heavy-tailed: most sessions present the identical
// per-release fingerprint (the release-popularity model in
// traffic::SessionGenerator reproduces this), so the serving tier keeps
// recomputing the same scale -> PCA -> nearest-centroid answer.  The
// cache short-circuits that work at the admission edge: a session whose
// (feature vector, claimed UA) pair was already scored under the
// *current* model version is answered without touching the queue or a
// worker.
//
// Keying.  Entries are content-addressed by a 128-bit hash pair of the
// raw int32 feature vector plus the claimed UA key (vendor + major
// version — exactly the pair Algorithm 1 consumes).  The primary hash
// picks the slot and is verified together with an independently-mixed
// check hash, so serving a wrong verdict requires two simultaneous
// 64-bit collisions between live entries (~2^-88 at 2^20 occupied
// slots) — far below the synthetic substrate's own noise floor.
//
// Invalidation.  Every entry records the model version that produced
// its verdict, and a lookup matches only when the entry's version
// equals the version the caller is serving.  A ModelRegistry hot swap
// therefore invalidates the whole cache *atomically and for free*: the
// moment version K+1 is published, every version-K entry stops
// matching — no stop-the-world flush, no invalidation storm.  Stale
// entries are lazily overwritten by the first miss that rescoring
// fills.
//
// Concurrency.  The table is a fixed, power-of-two array of
// direct-mapped seqlock slots.  All slot words are relaxed atomics
// bracketed by an acquire/release sequence counter (Boehm's seqlock
// recipe), so readers never block, writers never block readers, and
// the whole structure is ThreadSanitizer-clean.  Concurrent writers to
// one slot are resolved by a CAS on the sequence word; the loser drops
// its insert (inserts are best-effort — the next identical session
// refills).
//
// Counters land in the supplied MetricsRegistry under
// `<prefix>_{hits,misses,stale,evictions,inserts}_total` plus an
// `<prefix>_occupancy` callback gauge and a `<prefix>_capacity` gauge,
// so exporters and /statusz see hit rate and fill level live.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/polygraph.h"
#include "obs/metrics_registry.h"
#include "obs/prof/contention.h"
#include "ua/user_agent.h"

namespace bp::serve {

// Folded counter view; exact once writers are quiescent (same
// consistency model as MetricsSnapshot).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     // all unusable lookups (incl. stale)
  std::uint64_t stale = 0;      // entry matched the key but an older version
  std::uint64_t evictions = 0;  // live same-version entries displaced
  std::uint64_t inserts = 0;
  std::uint64_t occupancy = 0;  // slots holding any entry, live or stale
  std::uint64_t capacity = 0;

  double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

struct VerdictCacheConfig {
  std::size_t capacity = 1 << 16;  // slots; rounded up to a power of two
  // Registry the cache counters register into; null keeps them in a
  // private registry (isolated, invisible to exporters).
  obs::MetricsRegistry* registry = nullptr;
  std::string metrics_prefix = "bp_cache";
};

class VerdictCache {
 public:
  // The 128-bit content address of a (fingerprint, UA) pair.
  struct Key {
    std::uint64_t primary = 0;  // slot selector + first verifier
    std::uint64_t check = 0;    // independently mixed second verifier
  };

  explicit VerdictCache(VerdictCacheConfig config = {});
  ~VerdictCache();

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  // Pure content hash; identical inputs always produce identical keys,
  // and the primary is never 0 (0 marks an empty slot).
  static Key key_of(std::span<const std::int32_t> features,
                    const ua::UserAgent& claimed) noexcept;

  // Wait-free read.  True (and `out` filled) only when the slot holds
  // this exact key at exactly `version`; a key match at any other
  // version counts as stale + miss.  `stripe_hint` routes the counter
  // update (pass the worker index or a request id).
  bool lookup(const Key& key, std::uint64_t version, core::Detection& out,
              std::size_t stripe_hint = 0) noexcept;

  // Best-effort write: a concurrent writer to the same slot makes the
  // loser drop its insert (the next identical session refills it).
  void insert(const Key& key, std::uint64_t version,
              const core::Detection& detection,
              std::size_t stripe_hint = 0) noexcept;

  CacheStats stats() const;
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  // 7 atomic words = 60 bytes: one seqlock slot per cache line.
  struct alignas(64) Slot {
    std::atomic<std::uint32_t> seq{0};  // odd = write in progress
    std::atomic<std::uint64_t> key{0};  // 0 = empty
    std::atomic<std::uint64_t> check{0};
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> verdict_a{0};  // predicted | expected
    std::atomic<std::uint64_t> verdict_b{0};  // risk | flagged
    std::atomic<std::uint64_t> distance_bits{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> filled_{0};

  std::unique_ptr<obs::MetricsRegistry> owned_;  // set iff none supplied
  obs::MetricsRegistry* registry_ = nullptr;
  std::string prefix_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* stale_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  // Contention site for lost insert races (writer already in the slot
  // or CAS lost); see obs/prof/contention.h.
  obs::prof::ContentionSite* insert_cas_losses_ = nullptr;
};

}  // namespace bp::serve
