#include "core/model_io.h"

#include <charconv>
#include <cstdio>

#include "util/csv.h"
#include "util/strings.h"

namespace bp::core {

namespace {

constexpr std::string_view kHeader = "browser-polygraph-model v1";

void emit_vector(std::string& out, std::string_view name,
                 const std::vector<double>& values) {
  out += name;
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    out += buf;
  }
  out += '\n';
}

void emit_matrix(std::string& out, std::string_view name,
                 const ml::Matrix& m) {
  out += name;
  out += ' ';
  out += std::to_string(m.rows());
  out += ' ';
  out += std::to_string(m.cols());
  out += '\n';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g%c", row[c],
                    c + 1 == m.cols() ? '\n' : ' ');
      out += buf;
    }
  }
}

// Line-cursor over the serialized text.
class Reader {
 public:
  explicit Reader(const std::string& text) : lines_(bp::util::split(text, '\n')) {}

  std::optional<std::string_view> next() {
    while (pos_ < lines_.size()) {
      const std::string_view line = bp::util::trim(lines_[pos_++]);
      if (!line.empty()) return line;
    }
    return std::nullopt;
  }

 private:
  std::vector<std::string_view> lines_;
  std::size_t pos_ = 0;
};

std::optional<std::vector<double>> parse_vector(std::string_view line,
                                                std::string_view name) {
  if (!bp::util::starts_with(line, name)) return std::nullopt;
  std::vector<double> out;
  for (std::string_view tok : bp::util::split(line.substr(name.size()), ' ')) {
    tok = bp::util::trim(tok);
    if (tok.empty()) continue;
    const auto v = bp::util::parse_double(tok);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

std::optional<ml::Matrix> parse_matrix(Reader& reader, std::string_view header,
                                       std::string_view name) {
  if (!bp::util::starts_with(header, name)) return std::nullopt;
  const auto dims = bp::util::split(
      bp::util::trim(header.substr(name.size())), ' ');
  if (dims.size() != 2) return std::nullopt;
  const auto rows = bp::util::parse_int(dims[0]);
  const auto cols = bp::util::parse_int(dims[1]);
  if (!rows || !cols || *rows < 0 || *cols <= 0) return std::nullopt;

  ml::Matrix m(static_cast<std::size_t>(*rows), static_cast<std::size_t>(*cols));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto line = reader.next();
    if (!line) return std::nullopt;
    const auto values = parse_vector(*line, "");
    if (!values || values->size() != m.cols()) return std::nullopt;
    std::copy(values->begin(), values->end(), m.row(r).begin());
  }
  return m;
}

}  // namespace

std::string serialize_model(const Polygraph& model) {
  std::string out;
  out += kHeader;
  out += '\n';

  const PolygraphConfig& config = model.config();
  out += "features";
  for (std::size_t idx : config.feature_indices) {
    out += ' ';
    out += std::to_string(idx);
  }
  out += '\n';
  out += "pca_components " + std::to_string(config.pca_components) + '\n';
  out += "k " + std::to_string(config.k) + '\n';
  out += "vendor_distance " + std::to_string(config.vendor_distance) + '\n';
  out += "version_divisor " + std::to_string(config.version_divisor) + '\n';

  emit_vector(out, "scaler_means", model.scaler().means());
  emit_vector(out, "scaler_stddevs", model.scaler().stddevs());
  emit_vector(out, "pca_mean", model.pca().mean());
  emit_vector(out, "pca_eigenvalues", model.pca().eigenvalues());
  emit_matrix(out, "pca_matrix", model.pca().components());
  emit_matrix(out, "centroids", model.kmeans().centroids());

  out += "table " + std::to_string(model.cluster_table().size()) + '\n';
  for (const auto& [key, cluster] : model.cluster_table().entries()) {
    const auto vendor = static_cast<int>(key >> 16);
    const auto version = static_cast<int>(key & 0xffff);
    out += std::to_string(vendor) + ' ' + std::to_string(version) + ' ' +
           std::to_string(cluster) + '\n';
  }
  return out;
}

std::optional<Polygraph> deserialize_model(const std::string& text) {
  Reader reader(text);
  const auto header = reader.next();
  if (!header || *header != kHeader) return std::nullopt;

  PolygraphConfig config;
  config.feature_indices.clear();

  auto line = reader.next();
  if (!line || !bp::util::starts_with(*line, "features")) return std::nullopt;
  for (std::string_view tok :
       bp::util::split(line->substr(sizeof("features") - 1), ' ')) {
    tok = bp::util::trim(tok);
    if (tok.empty()) continue;
    const auto v = bp::util::parse_int(tok);
    if (!v || *v < 0) return std::nullopt;
    config.feature_indices.push_back(static_cast<std::size_t>(*v));
  }

  auto read_int = [&](std::string_view name) -> std::optional<std::int64_t> {
    const auto l = reader.next();
    if (!l || !bp::util::starts_with(*l, name)) return std::nullopt;
    return bp::util::parse_int(bp::util::trim(l->substr(name.size())));
  };
  const auto pca_components = read_int("pca_components");
  const auto k = read_int("k");
  const auto vendor_distance = read_int("vendor_distance");
  const auto version_divisor = read_int("version_divisor");
  if (!pca_components || !k || !vendor_distance || !version_divisor) {
    return std::nullopt;
  }
  config.pca_components = static_cast<std::size_t>(*pca_components);
  config.k = static_cast<std::size_t>(*k);
  config.vendor_distance = static_cast<int>(*vendor_distance);
  config.version_divisor = static_cast<int>(*version_divisor);

  auto next_vector =
      [&](std::string_view name) -> std::optional<std::vector<double>> {
    const auto l = reader.next();
    if (!l) return std::nullopt;
    return parse_vector(*l, name);
  };
  const auto means = next_vector("scaler_means");
  const auto stddevs = next_vector("scaler_stddevs");
  const auto pca_mean = next_vector("pca_mean");
  const auto eigenvalues = next_vector("pca_eigenvalues");
  if (!means || !stddevs || !pca_mean || !eigenvalues) return std::nullopt;

  auto matrix_header = reader.next();
  if (!matrix_header) return std::nullopt;
  const auto pca_matrix = parse_matrix(reader, *matrix_header, "pca_matrix");
  if (!pca_matrix) return std::nullopt;
  matrix_header = reader.next();
  if (!matrix_header) return std::nullopt;
  const auto centroids = parse_matrix(reader, *matrix_header, "centroids");
  if (!centroids) return std::nullopt;

  const auto table_count = read_int("table");
  if (!table_count || *table_count < 0) return std::nullopt;
  ClusterTable table;
  for (std::int64_t i = 0; i < *table_count; ++i) {
    const auto l = reader.next();
    if (!l) return std::nullopt;
    const auto parts = bp::util::split(*l, ' ');
    if (parts.size() != 3) return std::nullopt;
    const auto vendor = bp::util::parse_int(parts[0]);
    const auto version = bp::util::parse_int(parts[1]);
    const auto cluster = bp::util::parse_int(parts[2]);
    if (!vendor || !version || !cluster) return std::nullopt;
    table.assign(ua::UserAgent{static_cast<ua::Vendor>(*vendor),
                               static_cast<int>(*version)},
                 static_cast<std::size_t>(*cluster));
  }

  ml::KMeansConfig kconfig;
  kconfig.k = config.k;
  return Polygraph::from_parts(
      std::move(config), ml::StandardScaler::from_params(*means, *stddevs),
      ml::Pca::from_params(*pca_mean, *eigenvalues, *pca_matrix),
      ml::KMeans::from_centroids(*centroids, kconfig), std::move(table));
}

bool save_model(const Polygraph& model, const std::string& path) {
  return bp::util::write_file(path, serialize_model(model));
}

std::optional<Polygraph> load_model(const std::string& path) {
  std::string text;
  if (!bp::util::read_file(path, text)) return std::nullopt;
  return deserialize_model(text);
}

}  // namespace bp::core
