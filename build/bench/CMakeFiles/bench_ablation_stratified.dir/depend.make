# Empty dependencies file for bench_ablation_stratified.
# This may be replaced when dependencies are built.
