// Dense row-major matrix of doubles.
//
// The machine-learning substrate of Browser Polygraph (scaling, PCA,
// k-means, isolation forests) operates on datasets of at most a few
// hundred thousand rows and a few hundred columns, so a simple contiguous
// row-major buffer is both the fastest and the simplest representation.
// No expression templates, no BLAS — the pipeline is dominated by the
// O(n*d*k) k-means passes which are written directly against row spans.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace bp::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> data() const noexcept { return data_; }

  // Append a row; the first appended row fixes the column count for an
  // empty matrix.
  void push_row(std::span<const double> values);

  // Keep only the rows whose index passes `keep[i] == true`.
  Matrix filter_rows(const std::vector<bool>& keep) const;

  // Keep only the listed columns, in the given order.
  Matrix select_columns(const std::vector<std::size_t>& cols) const;

  // C = this * other  (naive triple loop, cache-friendly ikj order).
  Matrix multiply(const Matrix& other) const;

  Matrix transposed() const;

  // Per-column mean / (population) standard deviation.
  std::vector<double> column_means() const;
  std::vector<double> column_stddevs(const std::vector<double>& means) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Squared Euclidean distance between two equal-length vectors.
double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept;

// Squared Euclidean distance with an early-exit bound: accumulation is
// abandoned as soon as the partial sum exceeds `bound`, returning that
// partial (> bound).  Callers comparing `result < bound` get exactly the
// same decision as with the full distance — if the partial already
// exceeds the bound, the full sum can only be larger — which is what
// the k-means assignment loops exploit (a nearest-centroid search only
// needs distances below the best seen so far).  When the distance is
// not abandoned the returned value is bit-identical to
// squared_distance(), so results stay deterministic.
double squared_distance_bounded(std::span<const double> a,
                                std::span<const double> b,
                                double bound) noexcept;

}  // namespace bp::ml
