file(REMOVE_RECURSE
  "libbp_bench_common.a"
)
