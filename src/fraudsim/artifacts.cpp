#include "fraudsim/artifacts.h"

#include "util/rng.h"
#include "util/strings.h"

namespace bp::fraudsim {

std::vector<std::string> window_artifacts(const FraudBrowserModel& model,
                                          std::uint64_t profile_salt) {
  std::vector<std::string> out;
  const std::uint64_t h = bp::util::mix64(profile_salt);

  if (model.name == "AntBrowser") {
    // §8: an ANTBROWSER object plus antBrowser-prefixed attributes.
    out = {"ANTBROWSER", "antBrowserProfile", "antBrowserVersion"};
    if (h % 2 == 0) out.push_back("antBrowserCanvasNoise");
    return out;
  }
  if (model.name == "Linken Sphere-8.93") {
    // Custom engine builds leave injection scaffolding behind.
    out = {"__ls_profile", "__ls_geo"};
    return out;
  }
  if (model.name == "ClonBrowser-4.6.6") {
    out = {"clonEnv"};
    return out;
  }
  if (bp::util::contains(model.name, "AdsPower")) {
    // Category-3 tools drive a stock engine; their controller leaks a
    // webdriver-style flag on a minority of builds.
    if (h % 5 == 0) out.push_back("cdc_adspower_hook");
    return out;
  }
  // The remaining commodity tools keep the namespace clean — detecting
  // them is exactly what the coarse-grained pipeline is for.
  return out;
}

std::vector<std::string> stock_window_globals(browser::Engine engine) {
  std::vector<std::string> out = {
      "window",    "self",      "document",  "location",  "navigator",
      "history",   "screen",    "localStorage", "sessionStorage",
      "fetch",     "setTimeout", "requestAnimationFrame",
  };
  if (engine == browser::Engine::kBlink) {
    out.push_back("chrome");
    out.push_back("webkitRequestFileSystem");
  } else if (engine == browser::Engine::kGecko) {
    out.push_back("InstallTrigger");
    out.push_back("netscape");
  }
  return out;
}

}  // namespace bp::fraudsim
