file(REMOVE_RECURSE
  "CMakeFiles/bp_stats.dir/entropy.cpp.o"
  "CMakeFiles/bp_stats.dir/entropy.cpp.o.d"
  "libbp_stats.a"
  "libbp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
