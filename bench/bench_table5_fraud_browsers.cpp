// Reproduces Table 5: fraud browsers' detection capability (§7.2).
//
// Following the paper's protocol, browser profiles are created per
// cluster of Table 3 (two per cluster where the tool allows it, fewer
// where the tier limits customization, built-in UAs where the tool
// overrides the operator), a private test site collects the coarse
// fingerprints, and the trained detector scores each visit.
//
// Also includes the DESIGN.md ablation: Algorithm 1 without the
// version-distance division (divisor = 1), to show the false-negative
// pressure the "/4" relieves.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "fraudsim/fraud_browser.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace bp;

// Representative victim UAs: up to `per_cluster` user-agents from every
// populated cluster of the trained table.
std::vector<ua::UserAgent> cluster_representative_uas(
    const core::Polygraph& model, int per_cluster) {
  std::vector<ua::UserAgent> out;
  for (std::size_t cluster : model.cluster_table().populated_clusters()) {
    const auto& uas = model.cluster_table().user_agents_in(cluster);
    // Spread picks across the cluster's version range: first and last.
    if (uas.empty()) continue;
    out.push_back(uas.front());
    if (per_cluster > 1 && uas.size() > 1) out.push_back(uas.back());
  }
  return out;
}

struct EvalResult {
  std::size_t flagged = 0;
  std::size_t not_flagged = 0;
  double risk_sum = 0.0;

  double recall() const {
    const std::size_t total = flagged + not_flagged;
    return total == 0 ? 0.0
                      : static_cast<double>(flagged) /
                            static_cast<double>(total);
  }
  double avg_risk() const {
    return flagged == 0 ? 0.0 : risk_sum / static_cast<double>(flagged);
  }
};

EvalResult evaluate(const core::Polygraph& model,
                    const std::vector<fraudsim::FraudProfile>& profiles) {
  const auto& indices = model.config().feature_indices;
  EvalResult result;
  for (const auto& profile : profiles) {
    const browser::FinalValues features =
        browser::select_features(profile.candidate_values, indices);
    const core::Detection detection =
        model.score(features, profile.claimed_ua);
    if (detection.flagged) {
      ++result.flagged;
      result.risk_sum += detection.risk_factor;
    } else {
      ++result.not_flagged;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Table 5: fraud browsers' detection capability ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto trained = benchmark_support::train_production(data);

  // Per-browser protocol of §7.2: profile counts mirror what each tool's
  // customization tier allowed the authors to create.
  struct Protocol {
    const char* name;
    int per_cluster;  // profiles per cluster of Table 3
  };
  const Protocol protocols[] = {
      {"GoLogin-3.3.23", 2},
      {"Incogniton-3.2.7.7", 1},
      {"Octo Browser-1.10", 2},
      {"Sphere-1.3", 1},
  };

  util::Rng rng(0x7AB1E5ULL);
  util::TextTable table({"Browser", "Flagged Num", "Not-Flagged Num",
                         "Avg. risk factor", "Recall"});
  util::TextTable ablation({"Browser", "Sessions w/ risk>1 (divisor=4)",
                            "Sessions w/ risk>1 (no division)",
                            "Not flagged (cluster-mate UAs)"});

  for (const Protocol& protocol : protocols) {
    const auto* model_spec = fraudsim::find_model(protocol.name);
    if (model_spec == nullptr) continue;
    const auto victim_uas =
        cluster_representative_uas(trained.model, protocol.per_cluster);
    const auto profiles = fraudsim::make_evaluation_profiles(
        *model_spec, victim_uas,
        /*per_ua=*/1, rng);
    const EvalResult result = evaluate(trained.model, profiles);

    table.add_row({protocol.name, std::to_string(result.flagged),
                   std::to_string(result.not_flagged),
                   util::format_double(result.avg_risk(), 2),
                   util::format_double(100.0 * result.recall(), 0) + "%"});

    // Ablation: risk with version_divisor = 1 — identical flag decisions
    // (flagging is a cluster comparison), but the risk distribution
    // shifts, so threshold-based batches (Table 4's risk>1 / risk>4)
    // would over-penalize near-miss versions without the division.
    core::PolygraphConfig ablated_config = trained.model.config();
    ablated_config.version_divisor = 1;
    std::size_t high_risk_default = 0;
    std::size_t high_risk_ablated = 0;
    for (const auto& profile : profiles) {
      const auto features = browser::select_features(
          profile.candidate_values, trained.model.config().feature_indices);
      const auto detection = trained.model.score(features, profile.claimed_ua);
      if (!detection.flagged) continue;
      if (detection.risk_factor > 1) ++high_risk_default;
      // Recompute Algorithm 1 with no division.
      const int raw = trained.model.risk_factor(
          profile.claimed_ua, detection.predicted_cluster);
      // divisor=1 multiplies same-vendor distances by 4 (20 caps stay).
      const int undivided = raw >= trained.model.config().vendor_distance
                                ? raw
                                : raw * trained.model.config().version_divisor;
      if (undivided > 1) ++high_risk_ablated;
    }
    ablation.add_row(
        {protocol.name, std::to_string(high_risk_default),
         std::to_string(high_risk_ablated),
         std::to_string(result.not_flagged)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\npaper reference: recall 75%% / 78%% / 84%% / 67%%, average "
              "risk factors 8.85-11.66\n");

  std::printf("\n--- Ablation: flagged sessions with risk > 1, with and "
              "without Algorithm 1's /4 ---\n");
  std::fputs(ablation.render().c_str(), stdout);
  return 0;
}
