// Exporters for the observability plane.
//
// Rendering is pull-based — `MetricsRegistry::render_prometheus()` /
// `render_json()` are plain functions an HTTP handler (or a test, or a
// bench) calls on demand.  For deployments without a scrape endpoint,
// PeriodicDumper runs one background thread that renders the registry
// to a file on a fixed cadence (write-to-temp + atomic rename, so a
// scraper never reads a torn file).  All file I/O happens on the dumper
// thread; nothing here touches a scoring hot path.
//
// register_fault_metrics bridges the fault-injection registry
// (util/fault.h) into a MetricsRegistry as callback gauges, so chaos
// posture — how many points are armed, how often they fired — shows up
// in the same exposition as serving and training telemetry.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics_registry.h"

namespace bp::net {
class HttpListener;
}  // namespace bp::net

namespace bp::obs {

enum class DumpFormat : std::uint8_t { kPrometheus, kJson };

class PeriodicDumper {
 public:
  // Starts dumping immediately and then every `period`.  `registry`
  // must outlive the dumper.
  PeriodicDumper(const MetricsRegistry& registry, std::string path,
                 std::chrono::milliseconds period,
                 DumpFormat format = DumpFormat::kPrometheus);
  ~PeriodicDumper();

  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  // Render and write one dump synchronously; returns false on I/O
  // failure.  Also usable standalone for a final flush before exit.
  bool dump_now() const;

  std::uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

  // Stops the background thread, then performs one final synchronous
  // dump_now() so the tail of the last period is never lost on
  // shutdown.  Idempotent (destructor calls it); only the stopping
  // call flushes.
  void stop();

 private:
  void loop();

  const MetricsRegistry& registry_;
  const std::string path_;
  const std::chrono::milliseconds period_;
  const DumpFormat format_;

  // Mutated by the logically-const dump_now(): dump bookkeeping, not
  // observable registry state.
  mutable std::atomic<std::uint64_t> dumps_{0};
  mutable std::atomic<std::uint64_t> failures_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// Export the process-wide FaultRegistry through `registry` as callback
// gauges: bp_fault_points_armed and bp_fault_fires_total.  Values are
// read live at render time.
void register_fault_metrics(MetricsRegistry& registry);

// Export an HttpListener's serving + hardening counters through
// `registry` as callback gauges: "<prefix>_requests_total",
// "<prefix>_overloaded_total" (connections shed at accept),
// "<prefix>_reaped_total" (keep-alive connections closed by the idle /
// lifetime / request-cap reaper) and "<prefix>_slowloris_total" (heads
// cut off 408 at the header deadline).  The listener must outlive the
// registration — call remove_http_listener_metrics before it dies.
void register_http_listener_metrics(MetricsRegistry& registry,
                                    const net::HttpListener& listener,
                                    const std::string& prefix = "bp_http");
void remove_http_listener_metrics(MetricsRegistry& registry,
                                  const std::string& prefix = "bp_http");

}  // namespace bp::obs
