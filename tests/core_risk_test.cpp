// Tests for Algorithm 1: the risk-factor computation, in isolation from
// training (the cluster table is constructed by hand).
#include <gtest/gtest.h>

#include "core/polygraph.h"

namespace bp::core {
namespace {

ua::UserAgent chrome(int v) { return {ua::Vendor::kChrome, v, ua::Os::kWindows10}; }
ua::UserAgent firefox(int v) {
  return {ua::Vendor::kFirefox, v, ua::Os::kWindows10};
}
ua::UserAgent edge(int v) { return {ua::Vendor::kEdge, v, ua::Os::kWindows10}; }
ua::UserAgent edge_legacy(int v) {
  return {ua::Vendor::kEdgeLegacy, v, ua::Os::kWindows10};
}

// A Polygraph with only the risk machinery exercised: a hand-built table
// mirroring Table 3's cluster 0 and 1.
Polygraph hand_built() {
  ClusterTable table;
  for (int v = 110; v <= 113; ++v) {
    table.assign(chrome(v), 0);
    table.assign(edge(v), 0);
  }
  for (int v = 101; v <= 114; ++v) table.assign(firefox(v), 1);
  table.assign(edge_legacy(18), 6);

  PolygraphConfig config = PolygraphConfig::production();
  return Polygraph::from_parts(config, ml::StandardScaler(), ml::Pca(),
                               ml::KMeans(), std::move(table));
}

TEST(Algorithm1, ExactMatchIsZero) {
  const Polygraph model = hand_built();
  EXPECT_EQ(model.risk_factor(chrome(112), 0), 0);
}

TEST(Algorithm1, SameVendorDistanceIsFlooredQuarter) {
  const Polygraph model = hand_built();
  // Closest cluster-0 member to Chrome 120 is Chrome/Edge 113: |7|/4 = 1.
  EXPECT_EQ(model.risk_factor(chrome(120), 0), 1);
  // Chrome 90 vs closest 110: 20/4 = 5.
  EXPECT_EQ(model.risk_factor(chrome(90), 0), 5);
  // Distances below the divisor floor to zero (the false-negative
  // reduction the paper tuned for).
  EXPECT_EQ(model.risk_factor(chrome(109), 0), 0);
}

TEST(Algorithm1, VendorMismatchIsTwenty) {
  const Polygraph model = hand_built();
  EXPECT_EQ(model.risk_factor(firefox(112), 0), 20);
  EXPECT_EQ(model.risk_factor(chrome(112), 1), 20);
}

TEST(Algorithm1, MinimumOverClusterMembers) {
  const Polygraph model = hand_built();
  // Firefox 120 against cluster 1 (Firefox 101-114): |120-114|/4 = 1,
  // not |120-101|/4.
  EXPECT_EQ(model.risk_factor(firefox(120), 1), 1);
}

TEST(Algorithm1, EdgeLineagesAreSameVendor) {
  const Polygraph model = hand_built();
  // EdgeHTML 18 claiming a cluster with Chromium Edge 110-113:
  // same-vendor distance |110-18|/4 = 23... but Chrome members give the
  // same value; it is NOT the vendor mismatch constant.
  EXPECT_EQ(model.risk_factor(edge_legacy(110), 0), 0);
  EXPECT_EQ(model.risk_factor(edge(18), 6), 0);
}

TEST(Algorithm1, EmptyClusterCapsAtVendorDistance) {
  const Polygraph model = hand_built();
  // Cluster 7 holds no UAs (noise cluster): maximum risk.
  EXPECT_EQ(model.risk_factor(chrome(112), 7), 20);
}

TEST(Algorithm1, CustomDivisorAndVendorDistance) {
  ClusterTable table;
  table.assign(chrome(100), 0);
  PolygraphConfig config = PolygraphConfig::production();
  config.version_divisor = 2;
  config.vendor_distance = 50;
  const Polygraph model = Polygraph::from_parts(
      config, ml::StandardScaler(), ml::Pca(), ml::KMeans(), std::move(table));
  EXPECT_EQ(model.risk_factor(chrome(106), 0), 3);
  EXPECT_EQ(model.risk_factor(firefox(100), 0), 50);
}

// Properties of Algorithm 1 over version sweeps.
class RiskMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(RiskMonotonicity, NonDecreasingInVersionGap) {
  const Polygraph model = hand_built();
  const int base = GetParam();
  int previous = model.risk_factor(chrome(base), 0);
  for (int v = base + 1; v <= base + 40; ++v) {
    if (v >= 110 && v <= 113) continue;  // inside the cluster: risk 0
    const int risk = model.risk_factor(chrome(v), 0);
    if (v > 113) {
      EXPECT_GE(risk, previous);
      previous = risk;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, RiskMonotonicity,
                         ::testing::Values(114, 115, 120, 130));

class RiskSymmetrySweep : public ::testing::TestWithParam<int> {};

TEST_P(RiskSymmetrySweep, BoundedByVendorDistance) {
  const Polygraph model = hand_built();
  const int v = GetParam();
  for (std::size_t cluster = 0; cluster < 11; ++cluster) {
    const int risk = model.risk_factor(chrome(v), cluster);
    EXPECT_GE(risk, 0);
    EXPECT_LE(risk, 23);  // |113-20|/4 = 23 caps same-vendor gaps here
  }
}

INSTANTIATE_TEST_SUITE_P(Versions, RiskSymmetrySweep,
                         ::testing::Values(20, 59, 80, 100, 113, 119, 140));

}  // namespace
}  // namespace bp::core
