# Empty dependencies file for bench_table14_synthetic_macos.
# This may be replaced when dependencies are built.
