#include "baseline/encode.h"

#include <map>
#include <set>

#include "util/strings.h"

namespace bp::baseline {

EncodedDataset encode_profiles(const std::vector<ProfileValue>& profiles,
                               EncodeOptions options) {
  EncodedDataset out;
  const std::size_t n = profiles.size();

  // Pass 1: flatten everything, collect the path union and raw values.
  // Raw cell representation: numeric value, or a string needing a
  // categorical code, or missing.
  struct Cell {
    enum class Kind { kMissing, kNumber, kString } kind = Kind::kMissing;
    double number = 0.0;
    std::string text;
  };
  std::map<std::string, std::vector<Cell>> columns;

  for (std::size_t r = 0; r < n; ++r) {
    for (const FlatLeaf& leaf : flatten_profile(profiles[r])) {
      auto& column = columns[leaf.path];
      column.resize(n);  // default-filled with kMissing
      Cell& cell = column[r];
      if (leaf.value.is_number()) {
        cell.kind = Cell::Kind::kNumber;
        cell.number = leaf.value.as_number();
      } else if (leaf.value.is_bool()) {
        cell.kind = Cell::Kind::kNumber;
        cell.number = leaf.value.as_bool() ? 1.0 : 0.0;
      } else if (leaf.value.is_string()) {
        cell.kind = Cell::Kind::kString;
        cell.text = leaf.value.as_string();
      }  // nulls stay missing -> -1
    }
  }
  out.columns_before_filtering = columns.size();

  // Pass 2: encode column-by-column, applying the exclusion filters.
  std::vector<std::vector<double>> kept;
  for (auto& [path, cells] : columns) {
    cells.resize(n);

    bool excluded = false;
    for (const auto& prefix : options.exclude_prefixes) {
      if (bp::util::starts_with(path, prefix)) {
        excluded = true;
        break;
      }
    }
    if (excluded) {
      ++out.dropped_excluded;
      continue;
    }

    // Categorical coding for strings: codes by first appearance.
    std::map<std::string, double> codes;
    std::vector<double> encoded(n, -1.0);
    for (std::size_t r = 0; r < n; ++r) {
      const Cell& cell = cells[r];
      switch (cell.kind) {
        case Cell::Kind::kMissing:
          encoded[r] = -1.0;
          break;
        case Cell::Kind::kNumber:
          encoded[r] = cell.number;
          break;
        case Cell::Kind::kString: {
          const auto [it, inserted] =
              codes.emplace(cell.text, static_cast<double>(codes.size()));
          encoded[r] = it->second;
          break;
        }
      }
    }

    std::set<double> distinct(encoded.begin(), encoded.end());
    if (options.drop_constant && distinct.size() <= 1) {
      ++out.dropped_constant;
      continue;
    }
    if (options.drop_all_unique && n > 1 && distinct.size() == n) {
      ++out.dropped_all_unique;
      continue;
    }

    out.column_names.push_back(path);
    kept.push_back(std::move(encoded));
  }

  out.features = ml::Matrix(n, kept.size());
  for (std::size_t c = 0; c < kept.size(); ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      out.features(r, c) = kept[c][r];
    }
  }
  return out;
}

}  // namespace bp::baseline
