# Empty compiler generated dependencies file for bp_ua.
# This may be replaced when dependencies are built.
