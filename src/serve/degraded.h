// UA-prior fallback scoring for degraded mode.
//
// When no fingerprint model is published (first boot before a model
// lands, or every candidate failed validation and the registry is
// empty), the engine can still answer something better than nothing:
// judge the *claimed* user-agent alone against the release database.
// A UA that names a version that never shipped is fraudulent no matter
// what its fingerprint would have said; a plausible UA passes, un-
// flagged, with the caveat carried in ResponseStatus::kDegraded so the
// caller knows the verdict used no fingerprint evidence.
//
// The risk factor mirrors Algorithm 1's shape: vendor mismatch costs
// `vendor_distance`, a version gap costs gap / `version_divisor`
// (defaults match PolygraphConfig).
#pragma once

#include "core/polygraph.h"
#include "ua/user_agent.h"

namespace bp::serve {

core::Detection degraded_score(const ua::UserAgent& claimed,
                               int vendor_distance = 20,
                               int version_divisor = 4);

}  // namespace bp::serve
