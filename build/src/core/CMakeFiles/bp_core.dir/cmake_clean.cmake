file(REMOVE_RECURSE
  "CMakeFiles/bp_core.dir/artifact_scan.cpp.o"
  "CMakeFiles/bp_core.dir/artifact_scan.cpp.o.d"
  "CMakeFiles/bp_core.dir/drift.cpp.o"
  "CMakeFiles/bp_core.dir/drift.cpp.o.d"
  "CMakeFiles/bp_core.dir/model_io.cpp.o"
  "CMakeFiles/bp_core.dir/model_io.cpp.o.d"
  "CMakeFiles/bp_core.dir/polygraph.cpp.o"
  "CMakeFiles/bp_core.dir/polygraph.cpp.o.d"
  "CMakeFiles/bp_core.dir/preprocessing.cpp.o"
  "CMakeFiles/bp_core.dir/preprocessing.cpp.o.d"
  "libbp_core.a"
  "libbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
