// Shared implementation for the Appendix-5 synthetic comparisons
// (Tables 13 & 14): BrowserStack-style sweeps of Chrome/Edge/Firefox
// across two OSes, fingerprinted by Browser Polygraph and by the
// fine-grained baselines, each clustered by the §6.4 procedure.
#pragma once

#include <string>
#include <vector>

#include "ua/user_agent.h"

namespace bp::appendix5 {

struct ComparisonRow {
  std::string technique;
  std::size_t dataset_size = 0;
  std::size_t features = 0;
  std::size_t pca_components = 0;
  std::size_t k = 0;
  double accuracy = 0.0;
};

// Run the full comparison on the given OS pair and return the three rows
// (Browser Polygraph, FingerprintJS, ClientJS).
std::vector<ComparisonRow> run_comparison(ua::Os os_a, ua::Os os_b,
                                          std::uint64_t seed);

// Render rows in the paper's table layout to stdout.
void print_comparison(const char* title,
                      const std::vector<ComparisonRow>& rows);

}  // namespace bp::appendix5
