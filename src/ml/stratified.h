// Stratified sampling (§8 "Scale of the database").
//
// When the training corpus outgrows what retraining budgets allow, the
// paper proposes stratified sampling: cap the rows kept per stratum
// (user-agent label) while guaranteeing representation of rare strata —
// so the Chrome-81-class long tail survives while the newest release's
// hundred-thousand rows shrink to a manageable cap.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace bp::ml {

struct StratifiedConfig {
  // Keep at most this many rows per stratum...
  std::size_t max_per_stratum = 2'000;
  // ...but never fewer than this many (when the stratum has them).
  std::size_t min_per_stratum = 25;
  // Additionally keep at least this fraction of each stratum.
  double keep_fraction = 0.0;
  std::uint64_t seed = 13;
};

// Row indices to keep, given each row's stratum label.  Within a stratum
// the kept rows are a uniform random subset; output indices are sorted.
std::vector<std::size_t> stratified_sample(
    const std::vector<std::uint32_t>& strata, const StratifiedConfig& config);

}  // namespace bp::ml
