// Tests for string helpers and the RFC-4180 CSV reader/writer.
#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/rng.h"
#include "util/strings.h"

namespace bp::util {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyInputIsOneEmptyField) {
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsWith, Matches) {
  EXPECT_TRUE(starts_with("Mozilla/5.0", "Mozilla"));
  EXPECT_FALSE(starts_with("Moz", "Mozilla"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Contains, FindsSubstrings) {
  EXPECT_TRUE(contains("Chrome/112.0", "Chrome/"));
  EXPECT_FALSE(contains("Firefox", "Chrome"));
}

TEST(IEquals, IgnoresCase) {
  EXPECT_TRUE(iequals("ChRoMe", "chrome"));
  EXPECT_FALSE(iequals("chrome", "chrom"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("  -7 "), -7);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("four").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(to_lower("ChRoMe 112"), "chrome 112"); }

TEST(ToHex, FixedWidth) {
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xdeadbeef), "00000000deadbeef");
}

// ------------------------- CSV -------------------------

TEST(CsvEscape, PlainFieldsUntouched) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, HeaderAndRows) {
  const CsvTable table = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(Csv, ColumnLookup) {
  const CsvTable table = parse_csv("x,y,z\n1,2,3\n");
  EXPECT_EQ(table.column("y"), 1u);
  EXPECT_EQ(table.column("missing"), CsvTable::npos);
}

TEST(Csv, QuotedFieldWithDelimiter) {
  const CsvTable table = parse_csv("ua\n\"Mozilla/5.0 (X; Y, Z)\"\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "Mozilla/5.0 (X; Y, Z)");
}

TEST(Csv, EscapedQuotes) {
  const CsvTable table = parse_csv("f\n\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(table.rows[0][0], "he said \"hi\"");
}

TEST(Csv, CrLfTerminators) {
  const CsvTable table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "1");
}

TEST(Csv, NoHeaderMode) {
  const CsvTable table = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_TRUE(table.header.empty());
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(Csv, MissingTrailingNewline) {
  const CsvTable table = parse_csv("a\n1");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "1");
}

TEST(Csv, EmbeddedNewlineInQuotedField) {
  const CsvTable table = parse_csv("a,b\n\"x\ny\",2\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "x\ny");
}

TEST(Csv, RoundTripPreservesStructure) {
  CsvTable table;
  table.header = {"name", "value"};
  table.rows = {{"plain", "1"},
                {"with,comma", "2"},
                {"with\"quote", "3"},
                {"multi\nline", "4"}};
  const CsvTable parsed = parse_csv(to_csv(table));
  EXPECT_EQ(parsed.header, table.header);
  EXPECT_EQ(parsed.rows, table.rows);
}

// Property: random tables survive a serialize/parse round trip.
class CsvRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvRoundTrip, RandomTable) {
  Rng rng(GetParam());
  CsvTable table;
  const std::size_t cols = 1 + rng.below(6);
  for (std::size_t c = 0; c < cols; ++c) {
    table.header.push_back("col" + std::to_string(c));
  }
  const std::size_t rows = rng.below(20);
  const char alphabet[] = "ab,\"\n x9";
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < cols; ++c) {
      std::string field;
      const std::size_t len = rng.below(12);
      for (std::size_t i = 0; i < len; ++i) {
        field += alphabet[rng.below(sizeof(alphabet) - 1)];
      }
      // A single-column row whose only field is empty serializes to a
      // blank line, which readers (ours included) treat as no row at all
      // — keep single-column fields non-empty.
      if (cols == 1 && field.empty()) field = "x";
      row.push_back(std::move(field));
    }
    table.rows.push_back(std::move(row));
  }
  const CsvTable parsed = parse_csv(to_csv(table));
  EXPECT_EQ(parsed.header, table.header);
  EXPECT_EQ(parsed.rows, table.rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace bp::util
