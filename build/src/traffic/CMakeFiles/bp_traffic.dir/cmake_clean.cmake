file(REMOVE_RECURSE
  "CMakeFiles/bp_traffic.dir/dataset.cpp.o"
  "CMakeFiles/bp_traffic.dir/dataset.cpp.o.d"
  "CMakeFiles/bp_traffic.dir/session_generator.cpp.o"
  "CMakeFiles/bp_traffic.dir/session_generator.cpp.o.d"
  "libbp_traffic.a"
  "libbp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
