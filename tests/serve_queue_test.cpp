// Tests for the serving tier's bounded MPMC queue and overflow
// policies (serve/bounded_queue.h).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "serve/bounded_queue.h"

namespace bp::serve {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue(8, OverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(queue.push(i), PushResult::kAccepted);
  EXPECT_EQ(queue.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, PopBatchCapsAtMaxAndDrainsFifo) {
  BoundedQueue<int> queue(16, OverflowPolicy::kBlock);
  for (int i = 0; i < 10; ++i) queue.push(i);
  std::vector<int> batch;
  ASSERT_TRUE(queue.pop_batch(batch, 4));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_TRUE(queue.pop_batch(batch, 100));
  EXPECT_EQ(batch.size(), 6u);
  EXPECT_EQ(batch.front(), 4);
  EXPECT_EQ(batch.back(), 9);
}

TEST(BoundedQueue, DropOldestReturnsDisplacedItem) {
  BoundedQueue<int> queue(3, OverflowPolicy::kDropOldest);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(queue.push(i), PushResult::kAccepted);
  std::optional<int> displaced;
  EXPECT_EQ(queue.push(3, displaced), PushResult::kDisplacedOldest);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(*displaced, 0);  // oldest shed; freshest kept
  EXPECT_EQ(queue.size(), 3u);
  int out = -1;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
}

TEST(BoundedQueue, RejectRefusesWhenFull) {
  BoundedQueue<int> queue(2, OverflowPolicy::kReject);
  EXPECT_EQ(queue.push(0), PushResult::kAccepted);
  EXPECT_EQ(queue.push(1), PushResult::kAccepted);
  std::optional<int> displaced;
  EXPECT_EQ(queue.push(2, displaced), PushResult::kRejected);
  EXPECT_FALSE(displaced.has_value());
  EXPECT_EQ(queue.size(), 2u);  // rejected item was not enqueued
  int out = -1;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(queue.push(2), PushResult::kAccepted);  // space freed
}

TEST(BoundedQueue, BlockPolicyWaitsForSpace) {
  BoundedQueue<int> queue(1, OverflowPolicy::kBlock);
  EXPECT_EQ(queue.push(0), PushResult::kAccepted);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.push(1), PushResult::kAccepted);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  int out = -1;
  ASSERT_TRUE(queue.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
}

TEST(BoundedQueue, CloseUnblocksBlockedProducer) {
  BoundedQueue<int> queue(1, OverflowPolicy::kBlock);
  queue.push(0);
  std::thread blocked_producer([&] {
    // Nobody ever pops, so the only way out of the full-queue wait is
    // the close.
    EXPECT_EQ(queue.push(1), PushResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  blocked_producer.join();
  EXPECT_EQ(queue.push(7), PushResult::kClosed);
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, CloseUnblocksConsumerAfterDraining) {
  BoundedQueue<int> queue(4, OverflowPolicy::kBlock);
  queue.push(42);
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    int out = -1;
    while (queue.pop(out)) popped.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();  // wakes the empty-queue wait; pop returns false
  consumer.join();
  EXPECT_EQ(popped.load(), 1);  // the queued item was drained, not lost
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2'000;
  BoundedQueue<int> queue(64, OverflowPolicy::kBlock);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (queue.pop_batch(batch, 16)) {
        for (int v : batch) {
          sum.fetch_add(static_cast<std::uint64_t>(v));
          count.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_EQ(queue.push(p * kPerProducer + i), PushResult::kAccepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), kTotal);
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace bp::serve
