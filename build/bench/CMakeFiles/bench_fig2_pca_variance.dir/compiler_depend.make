# Empty compiler generated dependencies file for bench_fig2_pca_variance.
# This may be replaced when dependencies are built.
