// The versioned wire format POST /score carries: one compact ASCII
// line per request and per response.
//
// A fraud check rides on every page load, so the frame must be cheap
// to produce in client-side JavaScript, cheap to eyeball in a packet
// capture, and cheap to parse — the parser allocates nothing per frame
// in steady state (fields are views into the input; the feature vector
// reuses its capacity across parses) and rejects malformed input with
// a *typed* error, so the ingress can answer 400 with a name the
// client can act on and tests can pin every rejection path.
//
// Version 1 grammar ('|' is the field delimiter and is reserved —
// it cannot appear inside a field):
//
//   request:   bp1|<session_id>|<claimed-ua>|<f0 f1 ... fN-1>
//   response:  bp1|<session_id>|<status>|<flagged>|<risk>|<cluster>|
//              <model_version>|<latency_us>              (one line)
//
//   session_id  decimal uint64, echoed verbatim in the response
//   claimed-ua  the browser's User-Agent header, or the short label
//               form the paper's tables use ("Chrome 112");
//               unparseable vendors are *not* an error — an unknown
//               claimed UA is a legitimate scoring scenario (the
//               engine's risk path handles it) — only an empty field is
//   f0..fN-1    space-separated int32 fingerprint features, in the
//               model's feature-index order (1..kMaxWireFeatures)
//   status      scored | shed | deadline | degraded
//
// A trailing '\n' is tolerated on both frames.  A version bump changes
// the digits after "bp"; an ingress refuses versions it does not speak
// with kBadVersion rather than guessing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/scoring_engine.h"
#include "ua/user_agent.h"

namespace bp::net {

inline constexpr int kWireVersion = 1;
// An over-size frame is refused before field parsing begins: the
// production feature vector is 28 ints, so legitimate frames are a few
// hundred bytes.
inline constexpr std::size_t kMaxFrameBytes = 8192;
inline constexpr std::size_t kMaxWireFeatures = 512;

// Every way a frame can be refused.  Names (wire_error_name) are what
// the ingress puts in its 400 body.
enum class WireError : std::uint8_t {
  kOk = 0,
  kEmptyFrame,       // zero bytes (or only the tolerated newline)
  kOversized,        // frame longer than kMaxFrameBytes
  kBadMagic,         // does not start with "bp" — garbage bytes
  kBadVersion,       // "bp" followed by a version this parser is not
  kTruncated,        // fewer fields than the grammar requires
  kBadSessionId,     // session id not a decimal uint64
  kBadUserAgent,     // empty claimed-ua field
  kNoFeatures,       // empty feature field
  kBadFeature,       // feature not a decimal int32 (or '|' inside)
  kTooManyFeatures,  // more than kMaxWireFeatures
  kBadStatus,        // response status token unknown (response parse)
};

std::string_view wire_error_name(WireError error) noexcept;

struct WireScoreRequest {
  std::uint64_t session_id = 0;
  ua::UserAgent claimed;
  // Reused across parses: parse_score_request clears it but never
  // shrinks, so steady-state parsing performs no allocation.
  std::vector<std::int32_t> features;
};

// Parse one request frame.  On any error the out-params are
// unspecified.  `frame` may end in '\n'.
WireError parse_score_request(std::string_view frame, WireScoreRequest* out);

// Render one request frame into `out` (cleared first; capacity reused).
// `claimed_ua` is written verbatim — pass a full User-Agent header or a
// short label.
void render_score_request(std::uint64_t session_id,
                          std::string_view claimed_ua,
                          std::span<const std::int32_t> features,
                          std::string* out);

struct WireScoreResponse {
  std::uint64_t session_id = 0;
  serve::ResponseStatus status = serve::ResponseStatus::kScored;
  bool flagged = false;
  int risk_factor = 0;
  std::uint32_t predicted_cluster = 0;
  std::uint64_t model_version = 0;
  std::uint64_t latency_micros = 0;
};

std::string_view wire_status_token(serve::ResponseStatus status) noexcept;

// Render one response frame into `out` (cleared first; capacity
// reused).
void render_score_response(const WireScoreResponse& response,
                           std::string* out);

// Parse one response frame (the client half: load generator, tests).
WireError parse_score_response(std::string_view frame,
                               WireScoreResponse* out);

}  // namespace bp::net
