// EngineRouter tests: shard affinity (observed through per-shard
// metrics), aggregate folds, hot swap under routed load with zero lost
// responses, and ordered/idempotent teardown.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "net/engine_router.h"
#include "obs/metrics_registry.h"
#include "serve/model_registry.h"

namespace bp::net {
namespace {

// The hand-assembled two-cluster model the serve tests use: Chrome 100
// is expected in cluster 0; features near (10,10) land in cluster 1.
core::Polygraph tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign({ua::Vendor::kChrome, 100, ua::Os::kWindows10}, 0);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

serve::ScoreRequest make_request(std::uint64_t id) {
  serve::ScoreRequest request;
  request.id = id;
  request.features = {0, 0};
  request.claimed = {ua::Vendor::kChrome, 100, ua::Os::kWindows10};
  return request;
}

RouterConfig small_router(std::size_t shards) {
  RouterConfig config;
  config.shards = shards;
  config.engine.workers = 1;
  config.engine.queue_capacity = 4096;
  return config;
}

TEST(NetRouter, ResolvesShardCountAndAffinityIsStable) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  EngineRouter router(models, small_router(4),
                      [](const serve::ScoreResponse&) {});
  EXPECT_EQ(router.shards(), 4u);
  // Affinity is pure: the same session id always lands the same shard,
  // and a spread of ids reaches every shard.
  std::set<std::size_t> hit;
  for (std::uint64_t session = 0; session < 64; ++session) {
    const std::size_t shard = router.shard_of(session);
    EXPECT_LT(shard, router.shards());
    EXPECT_EQ(shard, router.shard_of(session));
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(NetRouter, RoutesSessionsToTheirShardOnly) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  obs::MetricsRegistry metrics;

  RouterConfig config = small_router(3);
  config.engine.registry = &metrics;
  config.engine.metrics_prefix = "bp_rt";

  std::atomic<std::uint64_t> responses{0};
  EngineRouter router(models, config, [&](const serve::ScoreResponse&) {
    responses.fetch_add(1, std::memory_order_relaxed);
  });

  // 30 requests for one session, 20 for another on a different shard.
  std::uint64_t session_a = 1;
  std::uint64_t session_b = 2;
  while (router.shard_of(session_b) == router.shard_of(session_a)) {
    ++session_b;
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(router.submit(session_a, make_request(100 + i)),
              serve::SubmitResult::kAdmitted);
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(router.submit(session_b, make_request(200 + i)),
              serve::SubmitResult::kAdmitted);
  }
  router.drain();
  EXPECT_EQ(responses.load(), 50u);

  // Per-shard metrics prove affinity: all of a session's requests were
  // scored by its shard, and uninvolved shards scored nothing.
  EXPECT_EQ(router.shard_metrics(router.shard_of(session_a)).scored +
                router.shard_metrics(router.shard_of(session_b)).scored,
            50u);
  for (std::size_t shard = 0; shard < router.shards(); ++shard) {
    if (shard == router.shard_of(session_a)) {
      EXPECT_EQ(router.shard_metrics(shard).scored, 30u);
    } else if (shard == router.shard_of(session_b)) {
      EXPECT_EQ(router.shard_metrics(shard).scored, 20u);
    } else {
      EXPECT_EQ(router.shard_metrics(shard).scored, 0u);
    }
  }

  // The aggregate fold sums shards; the registry carries per-shard
  // spellings of the same counters.
  const serve::MetricsSnapshot total = router.metrics();
  EXPECT_EQ(total.scored, 50u);
  EXPECT_EQ(total.model_version, 1u);
  const std::string prometheus = metrics.render_prometheus();
  EXPECT_NE(prometheus.find("bp_rt_shard0_scored_total"), std::string::npos);
  EXPECT_NE(prometheus.find("bp_rt_shard2_scored_total"), std::string::npos);
}

TEST(NetRouter, HotSwapUnderRoutedLoadLosesNothing) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));

  std::atomic<std::uint64_t> responses{0};
  std::mutex versions_mutex;
  std::set<std::uint64_t> versions;
  EngineRouter router(models, small_router(3),
                      [&](const serve::ScoreResponse& response) {
                        ASSERT_EQ(response.status,
                                  serve::ResponseStatus::kScored);
                        responses.fetch_add(1, std::memory_order_relaxed);
                        std::lock_guard lock(versions_mutex);
                        versions.insert(response.model_version);
                      });

  constexpr int kPerThread = 400;
  std::atomic<bool> swapped{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t session =
            static_cast<std::uint64_t>(t) * kPerThread + i;
        while (router.submit(session, make_request(session)) !=
               serve::SubmitResult::kAdmitted) {
          std::this_thread::yield();
        }
        if (t == 0 && i == kPerThread / 2) {
          ASSERT_TRUE(models.publish(tiny_model()));
          swapped.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  ASSERT_TRUE(swapped.load());
  router.drain();

  // Zero lost: every admitted request was answered, on one of exactly
  // the two versions that ever existed.
  EXPECT_EQ(responses.load(), 3u * kPerThread);
  EXPECT_EQ(router.metrics().scored, 3u * kPerThread);
  for (const std::uint64_t version : versions) {
    EXPECT_TRUE(version == 1 || version == 2) << "version " << version;
  }
  EXPECT_TRUE(versions.count(2)) << "no response ever saw the new model";
  EXPECT_EQ(router.model_version(), 2u);
}

TEST(NetRouter, StopIsOrderedAndIdempotent) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  std::atomic<std::uint64_t> responses{0};
  EngineRouter router(models, small_router(2),
                      [&](const serve::ScoreResponse&) {
                        responses.fetch_add(1, std::memory_order_relaxed);
                      });
  for (std::uint64_t session = 0; session < 40; ++session) {
    ASSERT_EQ(router.submit(session, make_request(session)),
              serve::SubmitResult::kAdmitted);
  }
  router.stop();  // scores what was admitted, then refuses
  EXPECT_EQ(responses.load(), 40u);
  EXPECT_EQ(router.submit(1, make_request(99)),
            serve::SubmitResult::kStopped);
  router.stop();  // second stop is a no-op
  EXPECT_EQ(responses.load(), 40u);
}

}  // namespace
}  // namespace bp::net
