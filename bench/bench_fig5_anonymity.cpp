// Reproduces Figure 5: percentage of fingerprints in anonymity sets of
// varying sizes (§7.4).  A fingerprint here is the concatenation of the
// 28 production feature values; the paper reports only 0.3% unique
// fingerprints and 95.6% in sets larger than 50 — coarse-grained
// fingerprints cannot track individuals.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "browser/feature_catalog.h"
#include "stats/entropy.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Figure 5: fingerprints per anonymity-set size ===\n");
  const auto data = benchmark_support::make_training_dataset(n);

  // Fingerprint string = the production 28 values only.
  const auto& catalog = browser::FeatureCatalog::instance();
  const ml::Matrix features = data.feature_matrix(catalog.final_indices());
  std::vector<std::string> fingerprints;
  fingerprints.reserve(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    std::string s;
    for (const double v : features.row(r)) {
      s += std::to_string(static_cast<long long>(v));
      s += ',';
    }
    fingerprints.push_back(std::move(s));
  }

  const stats::AnonymitySetStats sets = stats::anonymity_sets(fingerprints);

  std::vector<std::pair<std::string, double>> series = {
      {"unique (size 1)", sets.pct_unique},
      {"size 2-10", sets.pct_2_to_10},
      {"size 11-50", sets.pct_11_to_50},
      {"size > 50", sets.pct_over_50},
  };
  std::fputs(util::ascii_chart(series).c_str(), stdout);

  std::printf(
      "\n%zu fingerprints, %zu distinct values\n"
      "unique rate: %.2f%% (paper: 0.3%%; AmIUnique-scale studies: ~33.6%%)\n"
      "in sets > 50: %.1f%% (paper: 95.6%%; prior fine-grained study: 8%%)\n",
      sets.observations, sets.distinct_values, sets.pct_unique,
      sets.pct_over_50);
  return 0;
}
