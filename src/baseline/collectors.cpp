#include "baseline/collectors.h"

#include <array>
#include <cmath>
#include <cstdio>

#include "browser/engine_timelines.h"
#include "util/rng.h"

namespace bp::baseline {

namespace {

using browser::Engine;
using browser::Environment;
using bp::util::fnv1a;
using bp::util::mix64;

// OS *family*: Windows 10 and 11 (and the two macOS releases) share font
// libraries, GPU stacks, and raster behaviour almost exactly — lumping
// them is what keeps fine-grained fingerprints consistent across sibling
// OS versions, as the paper's BrowserStack sweeps rely on.
std::uint64_t os_family(ua::Os os) {
  switch (os) {
    case ua::Os::kWindows10:
    case ua::Os::kWindows11:
      return 1;
    case ua::Os::kMacSonoma:
    case ua::Os::kMacSequoia:
      return 2;
    case ua::Os::kLinux:
      return 3;
  }
  return 1;
}

std::uint64_t env_hash(const Environment& env, std::uint64_t domain) {
  return mix64(mix64(static_cast<std::uint64_t>(env.release->engine) * 131 +
                     static_cast<std::uint64_t>(env.release->engine_version)) ^
               mix64(os_family(env.os) * 977) ^ domain);
}

std::uint64_t install_hash(const Environment& env, std::uint64_t domain) {
  return mix64(env_hash(env, domain) ^ mix64(env.session_salt));
}

// Skewed install-level category: most machines look alike; a small
// minority carries the odd value.  `skew_pct` of installs take index 0.
std::size_t skewed_pick(const Environment& env, std::uint64_t domain,
                        int skew_pct, std::size_t n_alternatives) {
  const std::uint64_t h = install_hash(env, domain);
  if (static_cast<int>(h % 100) < skew_pct) return 0;
  return 1 + static_cast<std::size_t>((h >> 32) % n_alternatives);
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// The candidate font library the probes measure against.
const std::vector<std::string>& font_library() {
  static const std::vector<std::string> fonts = [] {
    std::vector<std::string> out = {
        "Arial",          "Arial Black",  "Calibri",       "Cambria",
        "Comic Sans MS",  "Consolas",     "Courier New",   "Georgia",
        "Helvetica",      "Impact",       "Lucida Console", "Palatino",
        "Segoe UI",       "Tahoma",       "Times New Roman", "Trebuchet MS",
        "Verdana",        "Garamond",     "Bookman",       "Candara",
    };
    for (int i = 0; i < 180; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "VendorFont %03d", i);
      out.emplace_back(name);
    }
    return out;
  }();
  return fonts;
}

constexpr std::string_view kReferenceText =
    "mmmmmmmmmmlli0123456789 The quick brown fox jumps over the lazy dog";

// Per-character advance width of a font in this environment; the real
// probe renders the reference string twice and compares widths.
double char_width(std::uint64_t font_env_hash, char c) {
  const std::uint64_t h = mix64(font_env_hash ^ static_cast<std::uint64_t>(
                                                    static_cast<unsigned char>(c)));
  return 4.0 + static_cast<double>(h % 1024) / 128.0;
}

}  // namespace

std::string_view collector_name(Collector c) noexcept {
  switch (c) {
    case Collector::kFingerprintJs:
      return "FingerprintJS";
    case Collector::kClientJs:
      return "ClientJS";
    case Collector::kAmIUnique:
      return "AmIUnique";
  }
  return "FingerprintJS";
}

std::uint64_t canvas_probe(const Environment& env, int width, int height) {
  // Raster a gradient + glyph-like interference pattern.  Engine version
  // shifts the pattern (text metrics and anti-aliasing change between
  // releases); install salt perturbs low-order bits (GPU/driver noise).
  const std::uint64_t pattern = env_hash(env, fnv1a("canvas"));
  const std::uint64_t noise = install_hash(env, fnv1a("raster-noise"));

  std::vector<std::uint32_t> pixels(
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const std::uint32_t r =
          static_cast<std::uint32_t>((x * 255) / std::max(width - 1, 1));
      const std::uint32_t g =
          static_cast<std::uint32_t>((y * 255) / std::max(height - 1, 1));
      // Glyph interference: engine-dependent stripe pattern.
      const std::uint32_t b = static_cast<std::uint32_t>(
          (pattern >> ((x + y) % 48)) & 0xff);
      std::uint32_t a = 255;
      // Sub-pixel driver noise on a sparse set of pixels.
      if (((noise >> (x % 59)) & 1) != 0 && (y % 37) == 0) a -= 1;
      pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
             static_cast<std::size_t>(x)] =
          (a << 24) | (b << 16) | (g << 8) | r;
    }
  }

  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint32_t px : pixels) {
    h ^= px;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t audio_probe(const Environment& env, int samples) {
  // 10 kHz triangle oscillator through a soft-knee compressor; DSP
  // rounding differs per engine build and slightly per install.
  const double engine_gain =
      1.0 + static_cast<double>(env_hash(env, fnv1a("audio")) % 97) * 1e-4;
  const double install_jitter =
      static_cast<double>(install_hash(env, fnv1a("audio-jitter")) % 17) * 1e-7;

  std::uint64_t h = 0xcbf29ce484222325ULL;
  double state = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / 44100.0;
    double sample = std::sin(2.0 * 3.14159265358979 * 10000.0 * t);
    // Compressor: soft clipping with engine-specific gain.
    sample = std::tanh(sample * engine_gain) + install_jitter;
    state = 0.95 * state + 0.05 * sample;
    const auto bits = static_cast<std::uint64_t>(
        std::llround(state * 1e9));
    h ^= bits;
    h *= 0x100000001b3ULL;
  }
  // The DSP residue is effectively unique per install — which is exactly
  // why hash columns get dropped by the Appendix-5 encoder as
  // all-distinct identifiers.
  return h ^ install_hash(env, fnv1a("audio-residue"));
}

std::vector<std::string> font_probe(const Environment& env, int n_fonts) {
  const auto& library = font_library();
  const std::uint64_t os_hash = mix64(os_family(env.os) * 0x9e3779b9ULL);

  std::vector<std::string> installed;
  const int limit = std::min<int>(n_fonts, static_cast<int>(library.size()));
  for (int i = 0; i < limit; ++i) {
    const std::string& font = library[static_cast<std::size_t>(i)];
    const std::uint64_t font_hash = mix64(fnv1a(font) ^ os_hash);
    // Measure the reference string in this font and in the fallback; a
    // width difference means the font is installed.
    double width_font = 0.0;
    double width_fallback = 0.0;
    for (char c : kReferenceText) {
      width_font += char_width(font_hash, c);
      width_fallback += char_width(mix64(os_hash ^ fnv1a("fallback")), c);
    }
    const bool installed_here =
        (font_hash % 100) < 55 && width_font != width_fallback;
    if (installed_here) installed.push_back(font);
  }
  return installed;
}

ProfileValue webgl_probe(const Environment& env) {
  ProfileValue::Object webgl;
  const bool mac = env.os == ua::Os::kMacSonoma || env.os == ua::Os::kMacSequoia;
  webgl["vendor"] = std::string(mac ? "Apple Inc." : "Google Inc. (NVIDIA)");
  webgl["renderer"] = std::string(
      mac ? "ANGLE (Apple, Apple M2, OpenGL 4.1)"
          : "ANGLE (NVIDIA, NVIDIA GeForce GTX 1660 Direct3D11 vs_5_0)");

  const int v = env.release->engine_version;
  const int era = env.release->engine == Engine::kGecko
                      ? browser::gecko_era(v)
                      : browser::blink_era(v);
  webgl["maxTextureSize"] = 8192 + era * 2048;
  webgl["maxRenderbufferSize"] = 8192 + era * 2048;
  webgl["maxVertexAttribs"] = 16;
  webgl["maxVaryingVectors"] = 30 + era;
  webgl["maxFragmentUniforms"] = 1024 + era * 64;
  webgl["aliasedLineWidthRange"] = ProfileValue::Array{1, 1};
  webgl["shadingLanguageVersion"] =
      std::string("WebGL GLSL ES 3.00 (OpenGL ES GLSL ES 3.0 Chromium)");
  webgl["extensions"] = 24 + era * 2;
  return ProfileValue(std::move(webgl));
}

namespace {

ProfileValue collect_fingerprintjs(const Environment& env) {
  ProfileValue p;
  const int v = env.release->engine_version;
  const int era = env.release->engine == Engine::kGecko
                      ? browser::gecko_era(v)
                      : browser::blink_era(v);
  const bool mac = env.os == ua::Os::kMacSonoma || env.os == ua::Os::kMacSequoia;

  p["canvas"]["hash"] = hex16(canvas_probe(env, 122, 110));
  p["canvas"]["winding"] = true;
  p["audio"]["hash"] = hex16(audio_probe(env, 5000));

  ProfileValue::Array fonts;
  for (auto& f : font_probe(env, 60)) fonts.emplace_back(std::move(f));
  p["fonts"] = ProfileValue(std::move(fonts));

  p["webgl"] = webgl_probe(env);

  p["screen"]["width"] = mac ? 1728 : 1920;
  p["screen"]["height"] = mac ? 1117 : 1080;
  p["screen"]["colorDepth"] = mac ? 30 : 24;
  // Install-level categorical noise: display scaling (most machines run
  // 100%; the long tail is what costs fine-grained clustering accuracy).
  p["screen"]["pixelRatio"] =
      std::array<double, 4>{1.0, 1.25, 1.5, 2.0}[skewed_pick(
          env, fnv1a("dpr"), 97, 3)];

  p["hardwareConcurrency"] = static_cast<int>(
      std::array<int, 3>{8, 4, 16}[skewed_pick(env, fnv1a("cores"), 95, 2)]);
  p["deviceMemory"] = env.release->engine == Engine::kBlink
                          ? ProfileValue(8)
                          : ProfileValue(nullptr);
  p["timezone"] = std::string(
      std::array<const char*, 5>{"America/New_York", "America/Chicago",
                                 "America/Phoenix", "America/Los_Angeles",
                                 "Europe/Madrid"}[skewed_pick(env, fnv1a("tz"),
                                                              92, 4)]);
  p["languages"] = ProfileValue::Array{std::string("en-US"), std::string("en")};

  // Engine-build constants: how Math functions round differs by engine.
  const double engine_eps =
      static_cast<double>(env_hash(env, fnv1a("math")) % 7) * 1e-16;
  p["math"]["tan"] = -1.4214488238747245 + engine_eps;
  p["math"]["sinh"] = 1.1752011936438014;
  p["math"]["expm1"] = 1.718281828459045 + engine_eps;

  p["plugins"]["count"] = era >= 2 ? 5 : 3;  // PDF viewer consolidation

  // Supported CSS properties (era-dependent tail) and media codecs — the
  // bulky enumerations that dominate FingerprintJS's serialized size.
  {
    ProfileValue::Array css;
    const int n_props = 380 + era * 12;
    for (int i = 0; i < n_props; ++i) {
      css.emplace_back("css-property-" + std::to_string(i));
    }
    p["cssProperties"] = ProfileValue(std::move(css));

    ProfileValue::Array codecs;
    for (int i = 0; i < 48 + era * 2; ++i) {
      codecs.emplace_back("video/codec-profile-" + std::to_string(i));
    }
    p["mediaCodecs"] = ProfileValue(std::move(codecs));

    ProfileValue::Array voices;
    for (int i = 0; i < 22; ++i) {
      voices.emplace_back("Microsoft Voice " + std::to_string(i));
    }
    p["speechVoices"] = ProfileValue(std::move(voices));
  }

  // Capability sweep: FingerprintJS probes hundreds of API/CSS feature
  // flags; each appeared at some engine version, so collectively they
  // carry fine per-version structure (this is the bulk of the ~268
  // columns Appendix-5 extracted).
  ProfileValue::Object capabilities;
  for (int i = 0; i < 220; ++i) {
    const std::uint64_t h =
        mix64(fnv1a("capability") ^ (static_cast<std::uint64_t>(i) * 0x9e3779b9ULL) ^
              mix64(static_cast<std::uint64_t>(env.release->engine) + 1));
    const int introduced = 40 + static_cast<int>(h % 90);
    bool present = env.release->engine_version >= introduced;
    // A handful of capabilities are user-toggleable (hardware
    // acceleration, WebGPU flags, accessibility forks): a small install
    // minority reports them flipped, which is what keeps fine-grained
    // clustering just below perfect in Tables 13/14.
    if (h % 13 == 0 && install_hash(env, h) % 100 < 10) {
      present = !present;
    }
    capabilities["cap" + std::to_string(i)] = present;
  }
  p["capabilities"] = ProfileValue(std::move(capabilities));

  p["touchSupport"]["maxTouchPoints"] = 0;
  p["vendorFlavors"] = env.release->engine == Engine::kBlink
                           ? ProfileValue::Array{std::string("chrome")}
                           : ProfileValue::Array{};
  p["cookiesEnabled"] = true;
  p["colorGamut"] = std::string(mac ? "p3" : "srgb");
  return p;
}

ProfileValue collect_clientjs(const Environment& env) {
  // ClientJS derives most of its "fingerprint" from the user-agent; those
  // leaves live under uaDerived.* and are excluded by the Appendix-5
  // encoder, leaving only a handful of weak device features.
  ProfileValue p;
  const ua::UserAgent ua = env.presented_user_agent();
  const bool mac = env.os == ua::Os::kMacSonoma || env.os == ua::Os::kMacSequoia;
  const int v = env.release->engine_version;
  const int era = env.release->engine == Engine::kGecko
                      ? browser::gecko_era(v)
                      : browser::blink_era(v);

  p["uaDerived"]["browser"] = std::string(ua::vendor_name(ua.vendor));
  p["uaDerived"]["browserVersion"] = ua.major_version;
  p["uaDerived"]["os"] = std::string(mac ? "Mac" : "Windows");
  p["uaDerived"]["engine"] =
      std::string(browser::engine_name(env.release->engine));
  p["uaDerived"]["isMobile"] = false;

  // The handful of non-UA device features ClientJS actually has: weakly
  // version-correlated (plugins), mostly install-level (screen, DPI,
  // timezone).  Their blend of low cardinality and install noise is what
  // caps ClientJS's clustering accuracy in Tables 13/14.
  p["screen"]["width"] =
      mac ? 1728
          : std::array<int, 3>{1920, 2560, 1366}[skewed_pick(
                env, fnv1a("resw"), 95, 2)];
  p["screen"]["height"] = mac ? 1117 : 1080;
  p["screen"]["colorDepth"] =
      std::array<int, 2>{24, 30}[skewed_pick(env, fnv1a("depth"), 97, 1)];
  p["deviceXDPI"] = 96;
  p["timezoneOffset"] =
      static_cast<int>(skewed_pick(env, fnv1a("tzoff"), 90, 4)) * 60 - 300;
  p["language"] = std::string("en-US");
  p["plugins"]["count"] = era >= 2 ? 5 : 3;
  p["localStorage"] = true;
  p["sessionStorage"] = true;
  p["canvasSupported"] = true;
  p["flashVersion"] = ProfileValue(nullptr);
  p["fontsCount"] =
      static_cast<int>(font_probe(env, 20).size()) +
      (install_hash(env, fnv1a("userfonts")) % 100 < 4 ? 1 : 0);

  // ClientJS bundles a full font sweep, a canvas print, and plugin/mime
  // enumerations into its pre-hash datastructure — this is most of the
  // ~10KB the paper measured, and most of its 37ms service time.
  {
    ProfileValue::Array fonts;
    for (auto& f : font_probe(env, 160)) fonts.emplace_back(std::move(f));
    p["fontList"] = ProfileValue(std::move(fonts));
    p["canvasPrint"] = hex16(canvas_probe(env, 100, 50));

    ProfileValue::Array plugin_details;
    const int n_plugins = era >= 2 ? 5 : 3;
    for (int i = 0; i < n_plugins; ++i) {
      ProfileValue::Object plugin;
      plugin["name"] = "Plugin " + std::to_string(i);
      plugin["description"] =
          "Portable Document Format and embedded content handler, build " +
          std::to_string(1000 + i);
      plugin_details.emplace_back(std::move(plugin));
    }
    p["pluginDetails"] = ProfileValue(std::move(plugin_details));

    ProfileValue::Array mimes;
    for (int i = 0; i < 12; ++i) {
      mimes.emplace_back("application/x-mime-type-" + std::to_string(i));
    }
    p["mimeTypes"] = ProfileValue(std::move(mimes));
  }
  return p;
}

ProfileValue collect_amiunique(const Environment& env) {
  // Superset of FingerprintJS with the heavyweight extras the extension
  // gathers: full font sweep with measured widths, the raw canvas data
  // URL, HTTP header echoes.
  ProfileValue p = collect_fingerprintjs(env);

  ProfileValue::Array font_details;
  const std::uint64_t os_hash = mix64(os_family(env.os) * 0x9e3779b9ULL);
  for (auto& font : font_probe(env, 200)) {
    double width = 0.0;
    for (char c : kReferenceText) width += char_width(mix64(fnv1a(font) ^ os_hash), c);
    ProfileValue::Object entry;
    entry["name"] = std::move(font);
    entry["width"] = width;
    font_details.emplace_back(std::move(entry));
  }
  p["fontDetails"] = ProfileValue(std::move(font_details));

  // Raw canvas data URL (large): re-render at extension resolution and
  // expand the hash into a base64-like body.
  const std::uint64_t big_canvas = canvas_probe(env, 500, 200);
  std::string data_url = "data:image/png;base64,";
  std::uint64_t h = big_canvas;
  for (int i = 0; i < 40000 / 16; ++i) {
    data_url += hex16(h);
    h = mix64(h);
  }
  p["canvas"]["dataUrl"] = std::move(data_url);

  p["headers"]["accept"] =
      std::string("text/html,application/xhtml+xml,application/xml;q=0.9");
  p["headers"]["acceptEncoding"] = std::string("gzip, deflate, br");
  p["headers"]["acceptLanguage"] = std::string("en-US,en;q=0.5");
  p["headers"]["userAgent"] =
      ua::format_user_agent(env.presented_user_agent());
  p["webglData"]["second"] = webgl_probe(env);
  p["audio"]["fullHash"] = hex16(audio_probe(env, 44100));
  return p;
}

}  // namespace

ProfileValue collect(Collector collector, const Environment& env) {
  switch (collector) {
    case Collector::kFingerprintJs:
      return collect_fingerprintjs(env);
    case Collector::kClientJs:
      return collect_clientjs(env);
    case Collector::kAmIUnique:
      return collect_amiunique(env);
  }
  return collect_fingerprintjs(env);
}

}  // namespace bp::baseline
