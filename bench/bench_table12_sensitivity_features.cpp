// Reproduces Table 12 (Appendix-4): sensitivity of the model to feature-
// set growth.  Starting from the production 28, four (then four, then
// six) extra deviation-based features are added in the paper's order; for
// each set the optimal k is re-derived from the relative-WCSS view and
// accuracy reported.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "browser/feature_catalog.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "ml/scaler.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace bp;

// Re-derive the elbow for a feature set (the §6.4.3 reading of Figure 4:
// first pronounced late-stage relative-WCSS peak).
std::size_t derive_optimal_k(const ml::Matrix& projected) {
  const std::vector<double> wcss = ml::wcss_curve(projected, 6, 16, 97);
  return ml::elbow_k(wcss, 6);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 60'000;

  std::printf("=== Table 12: sensitivity to the number of features ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto& catalog = browser::FeatureCatalog::instance();

  util::TextTable table(
      {"Features", "PCA", "k", "Model accuracy", "Added (last step)"});

  std::string last_added = "(Table 8 production set)";
  for (const std::size_t target : {28u, 32u, 36u, 42u}) {
    std::vector<std::size_t> indices = catalog.final_indices();
    const auto extras = catalog.appendix4_extension(target);
    for (std::size_t idx : extras) indices.push_back(idx);

    // Derive the optimal k for this feature set from the elbow, then
    // train the full pipeline at that k.
    core::PolygraphConfig config = core::PolygraphConfig::production();
    config.feature_indices = indices;

    // Quick projection for the k derivation.
    {
      const ml::Matrix raw = data.feature_matrix(indices);
      std::vector<bool> scale_column;
      for (std::size_t idx : indices) {
        scale_column.push_back(catalog.spec(idx).kind ==
                               browser::FeatureKind::kDeviationBased);
      }
      ml::StandardScaler scaler;
      scaler.fit(raw, scale_column);
      ml::Pca pca;
      const ml::Matrix projected =
          pca.fit_transform(scaler.transform(raw), config.pca_components);
      config.k = derive_optimal_k(projected);
    }

    const auto trained = benchmark_support::train_production(data, config);
    if (target > 28) {
      last_added.clear();
      const std::size_t step_begin = target == 32 ? 0 : (target == 36 ? 4 : 8);
      for (std::size_t i = step_begin; i < extras.size(); ++i) {
        if (!last_added.empty()) last_added += "; ";
        last_added += browser::FeatureCatalog::interface_of(
            catalog.spec(extras[i]).name);
      }
    }
    table.add_row(
        {std::to_string(indices.size()), std::to_string(config.pca_components),
         std::to_string(config.k),
         util::format_double(100.0 * trained.summary.clustering_accuracy, 2) +
             "%",
         last_added});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper reference: 28 -> 42 features drifts k from 11 to 14 and "
      "accuracy from 99.60%% to 99.41%% — more features add noise "
      "dimensions, not fraud signal.\n");
  return 0;
}
