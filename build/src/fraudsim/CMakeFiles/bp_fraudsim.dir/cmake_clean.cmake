file(REMOVE_RECURSE
  "CMakeFiles/bp_fraudsim.dir/artifacts.cpp.o"
  "CMakeFiles/bp_fraudsim.dir/artifacts.cpp.o.d"
  "CMakeFiles/bp_fraudsim.dir/fraud_browser.cpp.o"
  "CMakeFiles/bp_fraudsim.dir/fraud_browser.cpp.o.d"
  "libbp_fraudsim.a"
  "libbp_fraudsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_fraudsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
