#include "browser/extractor.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

#include "browser/engine_timelines.h"
#include "util/rng.h"

namespace bp::browser {

namespace {

// Candidate indices of the interfaces that environment modifiers touch,
// resolved once against the catalog.
struct ModifierTargets {
  std::size_t element;
  std::size_t document;
  std::size_t canvas2d;
  std::size_t audio_context;
  std::size_t webgl2;
  std::size_t webgl;
  std::size_t navigator;
  std::size_t auth_attestation;
  std::size_t media_devices;
  std::size_t sw_registration;
  std::size_t sw_container;
  std::size_t service_worker;
  std::size_t device_memory_bit;

  static const ModifierTargets& instance() {
    static const ModifierTargets t = [] {
      const auto& c = FeatureCatalog::instance();
      auto dev = [&](std::string_view iface) {
        const std::size_t idx = c.index_of(
            "Object.getOwnPropertyNames(" + std::string(iface) +
            ".prototype).length");
        assert(idx != FeatureCatalog::npos);
        return idx;
      };
      ModifierTargets t2{};
      t2.element = dev("Element");
      t2.document = dev("Document");
      t2.canvas2d = dev("CanvasRenderingContext2D");
      t2.audio_context = dev("AudioContext");
      t2.webgl2 = dev("WebGL2RenderingContext");
      t2.webgl = dev("WebGLRenderingContext");
      t2.navigator = dev("Navigator");
      t2.auth_attestation = dev("AuthenticatorAttestationResponse");
      t2.media_devices = dev("MediaDevices");
      t2.sw_registration = dev("ServiceWorkerRegistration");
      t2.sw_container = dev("ServiceWorkerContainer");
      t2.service_worker = dev("ServiceWorker");
      t2.device_memory_bit =
          c.index_of("Navigator.prototype.hasOwnProperty('deviceMemory')");
      assert(t2.device_memory_bit != FeatureCatalog::npos);
      return t2;
    }();
    return t;
  }
};

void apply_modifiers(const Environment& env, CandidateValues& values) {
  const auto& t = ModifierTargets::instance();
  auto cut = [&](std::size_t idx, int amount) {
    values[idx] = std::max(0, values[idx] - amount);
  };

  if (has_modifier(env.modifiers, Modifier::kDuckDuckGoExtension)) {
    values[t.element] += 2;
  }
  if (has_modifier(env.modifiers, Modifier::kGenericExtension)) {
    const std::uint64_t h = bp::util::mix64(env.session_salt ^ 0xE7);
    values[t.element] += 1 + static_cast<int>(h % 3);
    values[t.document] += static_cast<int>((h >> 8) % 2);
  }
  if (has_modifier(env.modifiers, Modifier::kFirefoxNoServiceWorkers)) {
    values[t.sw_registration] = 0;
    values[t.sw_container] = 0;
    values[t.service_worker] = 0;
  }
  if (has_modifier(env.modifiers, Modifier::kFirefoxTransformGetters)) {
    cut(t.element, 2);
  }
  if (has_modifier(env.modifiers, Modifier::kBraveStandardShields) ||
      has_modifier(env.modifiers, Modifier::kBraveAggressiveShields)) {
    // Standard shields only farble outputs (canvas noise etc.) without
    // reshaping prototypes much — the fingerprint stays near the matching
    // Chrome release, which is what §6.3 observed for Brave vs Chrome 111.
    cut(t.element, 3);
    cut(t.navigator, 2);
    values[t.device_memory_bit] = 0;  // Brave blocks deviceMemory
  }
  if (has_modifier(env.modifiers, Modifier::kBraveAggressiveShields)) {
    // Aggressive shields remove whole API surfaces; these fingerprints
    // sit far from any legitimate release (a noise cluster of Table 3).
    cut(t.document, 6);
    cut(t.audio_context, 4);
    values[t.webgl2] = 0;
    cut(t.webgl, 35);
    cut(t.canvas2d, 22);
    values[t.auth_attestation] = 0;
    values[t.media_devices] = 0;
  }
  if (has_modifier(env.modifiers, Modifier::kTorPatchset)) {
    cut(t.element, 12);
    cut(t.canvas2d, 8);
    values[t.webgl2] = 0;
    cut(t.webgl, 20);
    values[t.audio_context] = 0;
    values[t.media_devices] = 0;
    cut(t.navigator, 6);
  }
}

// Staggered-rollout membership: stable per install (session_salt).
bool in_previous_era_cohort(const Environment& env) {
  const double fraction = rollout_blend_fraction(*env.release);
  if (fraction <= 0.0) return false;
  const std::uint64_t h = bp::util::mix64(env.session_salt ^ 0x5A5A5A5AULL);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < fraction;
}

}  // namespace

const CandidateValues& baseline_candidates(Engine engine, int engine_version,
                                           bool previous_era) {
  // Values are deterministic per (engine, version, cohort); the traffic
  // generator touches them hundreds of thousands of times, so memoize.
  // Keyed caching is safe: the process is single-threaded by design (the
  // simulation is deterministic), and the release set is tiny.
  static std::map<std::tuple<int, int, bool>, CandidateValues> cache;
  const auto key = std::make_tuple(static_cast<int>(engine), engine_version,
                                   previous_era);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const auto& catalog = FeatureCatalog::instance();
  CandidateValues values(catalog.candidate_count());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = previous_era
                    ? previous_era_value(engine, engine_version, i)
                    : baseline_value(engine, engine_version, i);
  }
  return cache.emplace(key, std::move(values)).first->second;
}

CandidateValues extract_candidates(const Environment& env) {
  assert(env.release != nullptr);
  CandidateValues values =
      baseline_candidates(env.release->engine, env.release->engine_version,
                          in_previous_era_cohort(env));
  apply_modifiers(env, values);

  // Residual measurement jitter: §6.3 found "minimal deviations in
  // certain features" among identical browser instances (leftover
  // extensions, accessibility tooling, A/B-tested minor builds).  A
  // small fraction of installs is off by one on a single production
  // feature — within-cluster fuzz, never enough to change eras.
  const std::uint64_t h = bp::util::mix64(env.session_salt ^ 0x11770033ULL);
  if (h % 100 < 10) {
    const auto& finals = FeatureCatalog::instance().final_indices();
    const std::size_t idx = finals[(h >> 8) % 22];  // deviation-based only
    const int delta = ((h >> 16) & 1) != 0 ? 1 : -1;
    values[idx] = std::max(0, values[idx] + delta);
  }
  return values;
}

FinalValues select_features(const CandidateValues& values,
                            const std::vector<std::size_t>& indices) {
  FinalValues out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) {
    assert(idx < values.size());
    out.push_back(static_cast<double>(values[idx]));
  }
  return out;
}

FinalValues extract_final(const Environment& env) {
  return select_features(extract_candidates(env),
                         FeatureCatalog::instance().final_indices());
}

namespace {

template <typename Values>
std::string serialize(const Values& values, const std::string& user_agent,
                      const std::string& session_id) {
  std::string out;
  out.reserve(values.size() * 4 + user_agent.size() + session_id.size() + 8);
  for (const auto v : values) {
    out += std::to_string(static_cast<long long>(v));
    out += ',';
  }
  out += '"';
  out += user_agent;
  out += "\",";
  out += session_id;
  return out;
}

}  // namespace

std::string serialize_payload(const FinalValues& values,
                              const std::string& user_agent,
                              const std::string& session_id) {
  return serialize(values, user_agent, session_id);
}

std::string serialize_payload(const CandidateValues& values,
                              const std::string& user_agent,
                              const std::string& session_id) {
  return serialize(values, user_agent, session_id);
}

SimulatedDom::SimulatedDom(const Environment& env)
    : env_(env),
      property_tables_(FeatureCatalog::instance().candidate_count()),
      built_(FeatureCatalog::instance().candidate_count(), false) {}

const std::vector<std::string>& SimulatedDom::own_property_names(
    std::size_t candidate_index) const {
  assert(candidate_index < property_tables_.size());
  if (!built_[candidate_index]) {
    // Materialize the synthetic property list: the extraction benchmark
    // should pay for name generation + traversal the way a real
    // getOwnPropertyNames call pays for reflection.
    const CandidateValues all = extract_candidates(env_);
    const int count = all[candidate_index];
    const std::string iface = FeatureCatalog::interface_of(
        FeatureCatalog::instance().spec(candidate_index).name);
    auto& table = property_tables_[candidate_index];
    table.reserve(static_cast<std::size_t>(std::max(count, 0)));
    for (int i = 0; i < count; ++i) {
      table.push_back(iface + "_prop" + std::to_string(i));
    }
    built_[candidate_index] = true;
  }
  return property_tables_[candidate_index];
}

FinalValues SimulatedDom::run_production_script() const {
  const auto& catalog = FeatureCatalog::instance();
  const auto& finals = catalog.final_indices();
  const CandidateValues all = extract_candidates(env_);

  FinalValues out;
  out.reserve(finals.size());
  for (std::size_t i = 0; i < finals.size(); ++i) {
    const std::size_t idx = finals[i];
    if (catalog.spec(idx).kind == FeatureKind::kDeviationBased) {
      // Enumerate the property table and count it — the measured work.
      const auto& names = own_property_names(idx);
      std::size_t visible = 0;
      for (const auto& name : names) {
        visible += name.empty() ? 0 : 1;
      }
      out.push_back(static_cast<double>(visible));
    } else {
      out.push_back(static_cast<double>(all[idx]));
    }
  }
  return out;
}

}  // namespace bp::browser
