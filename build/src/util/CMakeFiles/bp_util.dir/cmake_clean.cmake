file(REMOVE_RECURSE
  "CMakeFiles/bp_util.dir/csv.cpp.o"
  "CMakeFiles/bp_util.dir/csv.cpp.o.d"
  "CMakeFiles/bp_util.dir/rng.cpp.o"
  "CMakeFiles/bp_util.dir/rng.cpp.o.d"
  "CMakeFiles/bp_util.dir/strings.cpp.o"
  "CMakeFiles/bp_util.dir/strings.cpp.o.d"
  "CMakeFiles/bp_util.dir/table.cpp.o"
  "CMakeFiles/bp_util.dir/table.cpp.o.d"
  "libbp_util.a"
  "libbp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
