// Tests for the Browser Polygraph training pipeline and detection.
//
// A single model trained on a mid-size synthetic corpus is shared across
// the suite (training is the expensive step); every test then probes a
// distinct contract of the trained system.
#include <gtest/gtest.h>

#include "core/polygraph.h"
#include "traffic/session_generator.h"

namespace bp::core {
namespace {

struct SharedModel {
  traffic::Dataset data;
  Polygraph model;
  TrainingSummary summary;
};

const SharedModel& shared() {
  static const SharedModel* instance = [] {
    auto* s = new SharedModel{traffic::Dataset{}, Polygraph{}, {}};
    traffic::TrafficConfig config;
    config.n_sessions = 40'000;
    traffic::SessionGenerator gen(config);
    s->data = gen.generate(traffic::experiment_feature_indices());
    const ml::Matrix features =
        s->data.feature_matrix(s->model.config().feature_indices);
    std::vector<ua::UserAgent> uas;
    for (const auto& r : s->data.records()) uas.push_back(r.claimed);
    s->summary = s->model.train(features, uas);
    return s;
  }();
  return *instance;
}

ua::UserAgent chrome(int v) { return {ua::Vendor::kChrome, v, ua::Os::kWindows10}; }
ua::UserAgent firefox(int v) {
  return {ua::Vendor::kFirefox, v, ua::Os::kWindows10};
}
ua::UserAgent edge(int v) { return {ua::Vendor::kEdge, v, ua::Os::kWindows10}; }

std::vector<double> baseline_of(ua::Vendor vendor, int version) {
  const auto* release = browser::ReleaseDatabase::instance().find(vendor, version);
  EXPECT_NE(release, nullptr);
  return shared().model.baseline_features(*release);
}

TEST(Training, AccuracyMatchesPaperBand) {
  // Paper: 99.6% on the production parameters.
  EXPECT_GT(shared().summary.clustering_accuracy, 0.985);
  EXPECT_LE(shared().summary.clustering_accuracy, 1.0);
}

TEST(Training, OutlierFilterRemovesConfiguredFraction) {
  const auto& s = shared();
  const double fraction = static_cast<double>(s.summary.rows_outliers_removed) /
                          static_cast<double>(s.summary.rows_total);
  EXPECT_NEAR(fraction, s.model.config().contamination, 0.0005);
}

TEST(Training, ProducesElevenClusters) {
  EXPECT_EQ(shared().model.kmeans().k(), 11u);
  EXPECT_EQ(shared().model.kmeans().centroids().rows(), 11u);
}

TEST(Training, WcssIsPositive) { EXPECT_GT(shared().summary.wcss, 0.0); }

TEST(ClusterTable, Table3PartitionHolds) {
  // The partition of Table 3, expressed as same/different-cluster
  // relations (cluster ids themselves are seed-arbitrary).
  const auto& table = shared().model.cluster_table();
  auto cluster = [&](const ua::UserAgent& ua) {
    const auto c = table.expected_cluster(ua);
    EXPECT_TRUE(c.has_value()) << ua.label();
    return c.value_or(9999);
  };

  // Within-cluster pairs.
  EXPECT_EQ(cluster(chrome(110)), cluster(edge(113)));     // cluster 0
  EXPECT_EQ(cluster(firefox(101)), cluster(firefox(114))); // cluster 1
  EXPECT_EQ(cluster(chrome(60)), cluster(firefox(80)));    // cluster 2
  EXPECT_EQ(cluster(chrome(114)), cluster(edge(114)));     // cluster 3
  EXPECT_EQ(cluster(chrome(70)), cluster(edge(85)));       // cluster 4
  EXPECT_EQ(cluster(chrome(105)), cluster(edge(102)));     // cluster 5
  EXPECT_EQ(cluster(firefox(47)),
            cluster({ua::Vendor::kEdgeLegacy, 18, ua::Os::kWindows10}));
  EXPECT_EQ(cluster(firefox(95)), cluster(firefox(99)));   // cluster 9
  EXPECT_EQ(cluster(chrome(95)), cluster(edge(95)));       // cluster 10

  // Cross-cluster separations.
  EXPECT_NE(cluster(chrome(110)), cluster(chrome(114)));
  EXPECT_NE(cluster(chrome(105)), cluster(chrome(110)));
  EXPECT_NE(cluster(chrome(95)), cluster(chrome(105)));
  EXPECT_NE(cluster(chrome(70)), cluster(chrome(95)));
  EXPECT_NE(cluster(chrome(60)), cluster(chrome(70)));
  EXPECT_NE(cluster(firefox(95)), cluster(firefox(101)));
  EXPECT_NE(cluster(firefox(80)), cluster(firefox(95)));
  EXPECT_NE(cluster(firefox(48)), cluster(firefox(80)));
}

TEST(ClusterTable, UnknownUaHasNoExpectedCluster) {
  EXPECT_FALSE(shared().model.cluster_table()
                   .expected_cluster(chrome(200))
                   .has_value());
}

TEST(ClusterTable, PopulatedClustersAtMostNine) {
  // k=11 with two (or more) noise clusters holding no UA majority.
  const auto populated = shared().model.cluster_table().populated_clusters();
  EXPECT_LE(populated.size(), 9u);
  EXPECT_GE(populated.size(), 8u);
}

TEST(ClusterTable, ReassignmentMovesUa) {
  ClusterTable table;
  table.assign(chrome(100), 1);
  table.assign(chrome(100), 2);
  EXPECT_EQ(table.expected_cluster(chrome(100)), 2u);
  EXPECT_TRUE(table.user_agents_in(1).empty());
  ASSERT_EQ(table.user_agents_in(2).size(), 1u);
}

TEST(Detection, LegitimateBaselinesAreNotFlagged) {
  for (const auto ua : {chrome(60), chrome(80), chrome(95), chrome(105),
                        chrome(112), chrome(114), firefox(48), firefox(80),
                        firefox(95), firefox(110), edge(90), edge(113)}) {
    const auto features = baseline_of(ua.vendor, ua.major_version);
    const Detection d = shared().model.score(features, ua);
    EXPECT_FALSE(d.flagged) << ua.label();
    EXPECT_EQ(d.risk_factor, 0) << ua.label();
  }
}

TEST(Detection, Category2SpoofIsFlagged) {
  // A frozen Chrome 110 fingerprint claiming Firefox 110: vendor-level
  // mismatch, maximum risk.
  const auto features = baseline_of(ua::Vendor::kChrome, 110);
  const Detection d = shared().model.score(features, firefox(110));
  EXPECT_TRUE(d.flagged);
  EXPECT_EQ(d.risk_factor, shared().model.config().vendor_distance);
}

TEST(Detection, NearVersionSpoofGetsLowRisk) {
  // Chrome 105 fingerprint claiming Chrome 112: flagged (different
  // cluster) but the claimed UA is close to cluster-5 members, so the
  // risk is the version gap over 4.
  const auto features = baseline_of(ua::Vendor::kChrome, 105);
  const Detection d = shared().model.score(features, chrome(112));
  EXPECT_TRUE(d.flagged);
  EXPECT_GE(d.risk_factor, 0);
  EXPECT_LE(d.risk_factor, 2);
}

TEST(Detection, StaleVictimProfileGetsHighRisk) {
  // Chrome 112 fingerprint claiming Chrome 70 (a very stale stolen
  // profile): large version gap.
  const auto features = baseline_of(ua::Vendor::kChrome, 112);
  const Detection d = shared().model.score(features, chrome(70));
  EXPECT_TRUE(d.flagged);
  EXPECT_GE(d.risk_factor, (110 - 70) / 4 - 2);
}

TEST(Detection, UnknownUaIsNotFlagged) {
  const auto features = baseline_of(ua::Vendor::kChrome, 112);
  const Detection d = shared().model.score(features, chrome(250));
  EXPECT_FALSE(d.flagged);
  EXPECT_FALSE(d.expected_cluster.has_value());
}

TEST(Detection, EdgeAndChromeShareClustersSoCrossClaimsPass) {
  // Edge 112 fingerprint claiming Chrome 112 is cluster-consistent —
  // coarse-grained fingerprints cannot separate same-era Chromium
  // lineages, by design.
  const auto features = baseline_of(ua::Vendor::kEdge, 112);
  EXPECT_FALSE(shared().model.score(features, chrome(112)).flagged);
}

TEST(Prediction, BatchMatchesSingle) {
  const auto& s = shared();
  const ml::Matrix features =
      s.data.feature_matrix(s.model.config().feature_indices);
  const auto batch = s.model.predict_clusters(features);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(batch[i], s.model.predict_cluster(features.row(i)));
  }
}

TEST(Prediction, ScratchPathMatchesAllocatingPath) {
  // The serving tier's allocation-free overloads must be bit-identical
  // to the original entry points.
  const auto& s = shared();
  const ml::Matrix features =
      s.data.feature_matrix(s.model.config().feature_indices);
  ScoringScratch scratch;
  for (std::size_t i = 0; i < 500; ++i) {
    const auto& claimed = s.data.records()[i].claimed;
    const Detection baseline = s.model.score(features.row(i), claimed);
    const Detection scratch_path =
        s.model.score(features.row(i), claimed, scratch);
    EXPECT_EQ(scratch_path.predicted_cluster, baseline.predicted_cluster);
    EXPECT_EQ(scratch_path.expected_cluster, baseline.expected_cluster);
    EXPECT_EQ(scratch_path.flagged, baseline.flagged);
    EXPECT_EQ(scratch_path.risk_factor, baseline.risk_factor);
  }
}

TEST(Prediction, NativeIntFeaturesMatchDoublePath) {
  // Sessions store int32 features; the serving engine scores them
  // without building a std::vector<double> per call.
  const auto& s = shared();
  const ml::Matrix features =
      s.data.feature_matrix(s.model.config().feature_indices);
  ScoringScratch scratch;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto row = features.row(i);
    std::vector<std::int32_t> native(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      native[c] = static_cast<std::int32_t>(row[c]);
    }
    const auto& claimed = s.data.records()[i].claimed;
    const Detection baseline = s.model.score(row, claimed);
    const Detection native_path = s.model.score(
        std::span<const std::int32_t>(native), claimed, scratch);
    EXPECT_EQ(native_path.predicted_cluster, baseline.predicted_cluster);
    EXPECT_EQ(native_path.flagged, baseline.flagged);
    EXPECT_EQ(native_path.risk_factor, baseline.risk_factor);
  }
}

TEST(Config, ProductionDefaults) {
  const PolygraphConfig config = PolygraphConfig::production();
  EXPECT_EQ(config.feature_indices.size(), 28u);
  EXPECT_EQ(config.pca_components, 7u);
  EXPECT_EQ(config.k, 11u);
  EXPECT_EQ(config.vendor_distance, 20);
  EXPECT_EQ(config.version_divisor, 4);
}

}  // namespace
}  // namespace bp::core
