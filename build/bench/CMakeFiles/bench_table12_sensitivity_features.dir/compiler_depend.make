# Empty compiler generated dependencies file for bench_table12_sensitivity_features.
# This may be replaced when dependencies are built.
