// Civil-date arithmetic (proleptic Gregorian).
//
// Release dates of browser versions and session timestamps drive the
// traffic generator, the popularity model, and the drift-detection
// schedule.  We only ever need day granularity, so dates are stored as a
// day count since 1970-01-01 using Howard Hinnant's public-domain civil
// calendar algorithms.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace bp::util {

struct Date {
  std::int32_t days_since_epoch = 0;  // 1970-01-01 == 0

  constexpr Date() = default;
  constexpr explicit Date(std::int32_t days) : days_since_epoch(days) {}

  static constexpr Date from_ymd(int y, unsigned m, unsigned d) noexcept {
    y -= m <= 2;
    const int era = (y >= 0 ? y : y - 399) / 400;
    const auto yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
    const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;      // [0, 146096]
    return Date{era * 146097 + static_cast<std::int32_t>(doe) - 719468};
  }

  struct Ymd {
    int year;
    unsigned month;
    unsigned day;
  };

  constexpr Ymd to_ymd() const noexcept {
    std::int32_t z = days_since_epoch + 719468;
    const std::int32_t era = (z >= 0 ? z : z - 146096) / 146097;
    const auto doe = static_cast<unsigned>(z - era * 146097);        // [0, 146096]
    const unsigned yoe =
        (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;       // [0, 399]
    const int y = static_cast<int>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);    // [0, 365]
    const unsigned mp = (5 * doy + 2) / 153;                         // [0, 11]
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;                 // [1, 31]
    const unsigned m = mp + (mp < 10 ? 3 : -9);                      // [1, 12]
    return {y + (m <= 2), m, d};
  }

  constexpr Date operator+(int days) const noexcept {
    return Date{days_since_epoch + days};
  }
  constexpr Date operator-(int days) const noexcept {
    return Date{days_since_epoch - days};
  }
  constexpr int operator-(Date other) const noexcept {
    return days_since_epoch - other.days_since_epoch;
  }
  constexpr auto operator<=>(const Date&) const = default;

  // "YYYY-MM-DD".
  std::string to_string() const {
    const Ymd ymd = to_ymd();
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", ymd.year, ymd.month,
                  ymd.day);
    return buf;
  }
};

}  // namespace bp::util
