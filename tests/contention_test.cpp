// Contention attribution (src/obs/prof/contention.h) and its three
// wired sites: BoundedQueue block time, ModelRegistry swap stalls, and
// VerdictCache insert CAS losses.
//
// The cache test pins down an exact invariant instead of "some events
// happened": every insert() call either lands (inserts_total moves) or
// records a CAS-loss event, so across any concurrent hammer
//   events_delta == attempts - inserts_delta
// holds exactly.  A miscounted loser path breaks the equality.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof/contention.h"
#include "serve/bounded_queue.h"
#include "serve/verdict_cache.h"

namespace prof = bp::obs::prof;

namespace {

TEST(ContentionSite, BucketBoundaries) {
  // Buckets double from 1us: [0,1us) is bucket 0, the last is open.
  EXPECT_EQ(prof::ContentionSite::bucket_of(0), 0u);
  EXPECT_EQ(prof::ContentionSite::bucket_of(999), 0u);
  EXPECT_EQ(prof::ContentionSite::bucket_of(1'000), 1u);
  EXPECT_EQ(prof::ContentionSite::bucket_of(1'999), 1u);
  EXPECT_EQ(prof::ContentionSite::bucket_of(2'000), 2u);
  // Doubling bounds: 1ms falls in the [512us, 1024us) bucket, one past
  // where 511us lands.
  EXPECT_EQ(prof::ContentionSite::bucket_of(1'000'000),
            prof::ContentionSite::bucket_of(511'000) + 1);
  // Far past the last bound: clamped into the open-ended bucket.
  EXPECT_EQ(prof::ContentionSite::bucket_of(UINT64_MAX),
            prof::kContentionBuckets - 1);
}

TEST(ContentionSite, RecordAccumulates) {
  prof::ContentionRegistry& registry = prof::ContentionRegistry::instance();
  prof::ContentionSite& site = registry.site("test.accumulate");
  const std::uint64_t events0 = site.events();
  const std::uint64_t blocks0 = site.blocks();
  const std::uint64_t ns0 = site.total_ns();
  site.record_event();
  site.record_block(5'000);  // 5us
  site.record_block(3'000'000);
  EXPECT_EQ(site.events(), events0 + 3);  // blocks are events too
  EXPECT_EQ(site.blocks(), blocks0 + 2);
  EXPECT_EQ(site.total_ns(), ns0 + 3'005'000);
}

TEST(ContentionRegistry, FindOrCreateIsStableByName) {
  prof::ContentionRegistry& registry = prof::ContentionRegistry::instance();
  prof::ContentionSite& a = registry.site("test.stable");
  prof::ContentionSite& b = registry.site("test.stable");
  EXPECT_EQ(&a, &b);
  a.record_event();
  const std::string rendered = registry.render();
  EXPECT_NE(rendered.find("site test.stable"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("contention sites:"), std::string::npos);
}

TEST(ContentionQueue, BlockedProducerAndIdleConsumerAreAttributed) {
  prof::ContentionRegistry& registry = prof::ContentionRegistry::instance();
  prof::ContentionSite& push_site = registry.site("test.queue.push");
  prof::ContentionSite& pop_site = registry.site("test.queue.pop");
  const std::uint64_t push_blocks0 = push_site.blocks();
  const std::uint64_t pop_blocks0 = pop_site.blocks();

  bp::serve::BoundedQueue<int> queue(1, bp::serve::OverflowPolicy::kBlock);
  queue.set_contention_sites(&push_site, &pop_site);

  ASSERT_EQ(queue.push(1), bp::serve::PushResult::kAccepted);
  std::thread producer([&] {
    // Queue is full: this push parks until the consumer drains.
    EXPECT_EQ(queue.push(2), bp::serve::PushResult::kAccepted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int out = 0;
  ASSERT_TRUE(queue.pop(out));
  producer.join();
  EXPECT_GE(push_site.blocks(), push_blocks0 + 1);

  // Consumer side: pop on an empty queue parks until a push arrives.
  ASSERT_TRUE(queue.pop(out));  // drain item 2 first
  std::thread consumer([&] {
    int v = 0;
    EXPECT_TRUE(queue.pop(v));
    EXPECT_EQ(v, 3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(queue.push(3), bp::serve::PushResult::kAccepted);
  consumer.join();
  EXPECT_GE(pop_site.blocks(), pop_blocks0 + 1);
}

TEST(ContentionCache, CasLossAccountingIsExact) {
  prof::ContentionRegistry& registry = prof::ContentionRegistry::instance();
  prof::ContentionSite& cas_site = registry.site("serve.cache.insert_cas");
  const std::uint64_t events0 = cas_site.events();

  bp::serve::VerdictCacheConfig config;
  config.capacity = 4;  // tiny: every key collides onto few slots
  bp::serve::VerdictCache cache(config);

  bp::core::Detection detection;
  detection.predicted_cluster = 3;
  detection.flagged = true;

  // Two distinct keys that map to the same slot (mask is capacity-1;
  // craft primaries congruent mod 4).
  bp::serve::VerdictCache::Key key_a{0x10, 0x1111};
  bp::serve::VerdictCache::Key key_b{0x20, 0x2222};

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::atomic<int> go{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      go.fetch_add(1);
      while (go.load() < kThreads) {}
      const auto key = (t % 2 == 0) ? key_a : key_b;
      for (int i = 0; i < kPerThread; ++i) {
        cache.insert(key, /*version=*/1, detection, /*stripe_hint=*/t);
      }
    });
  }
  for (auto& w : writers) w.join();

  const bp::serve::CacheStats stats = cache.stats();
  const std::uint64_t attempts =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  // Exactness: every attempt either inserted or recorded a loss.  The
  // cache was fresh, so its inserts counter IS the delta.
  EXPECT_EQ(cas_site.events() - events0, attempts - stats.inserts);
  EXPECT_GT(stats.inserts, 0u);
}

TEST(ContentionRegistry, RenderListsWiredServingSites) {
  // Constructing a VerdictCache resolves its site eagerly, so the
  // render names it even before any loss happens.
  bp::serve::VerdictCache cache;
  const std::string rendered =
      prof::ContentionRegistry::instance().render();
  EXPECT_NE(rendered.find("serve.cache.insert_cas"), std::string::npos)
      << rendered;
}

}  // namespace
