// Chaos soak for the fault-tolerant model lifecycle.
//
// Two layers:
//   1. Determinism: the same BP_FAULTS spec replays the exact same
//      injected-fault trace over a fixed single-threaded lifecycle
//      (save -> publish_from_file -> rollback), so a failing soak can
//      be re-run under a debugger with identical faults.
//   2. The soak proper: producers hammer a live engine while a
//      lifecycle thread saves/publishes/rolls back models with write,
//      torn-write, read and validation faults armed.  Invariants:
//      every admitted request gets exactly one response, every scored
//      response is attributable to a model that really was published
//      (never a corrupt one), and after the faults clear the system
//      recovers to a freshly published good model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"
#include "util/fault.h"

namespace bp::serve {
namespace {

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100, ua::Os::kWindows10};

// Model A (swapped=false) expects Chrome 100 at cluster 0 == origin:
// a session at (0,0) claiming Chrome 100 is clean under A, flagged
// under B.  The flag bit of a scored response therefore reveals which
// table the scoring model carried.
core::Polygraph make_model(bool swapped_table) {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign(kChrome100, swapped_table ? 1 : 0);
  table.assign(kFirefox100, swapped_table ? 0 : 1);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

class ChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override { bp::util::FaultRegistry::instance().disarm_all(); }
  void TearDown() override {
    bp::util::FaultRegistry::instance().disarm_all();
    ::unsetenv("BP_FAULTS");
  }
};

// A fixed, fault-dependent but otherwise deterministic model lifecycle.
// Returns an event log ('S'/'s' save ok/failed, 'P'/'p' publish
// ok/refused, 'R'/'r' rollback ok/no-op) so the replay check covers
// observable behaviour as well as the fault trace.
std::string run_lifecycle(const std::string& path) {
  ModelRegistry registry;
  std::string log;
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
  for (int i = 0; i < 80; ++i) {
    const bool saved = core::save_model(make_model(i % 2 == 1), path);
    log += saved ? 'S' : 's';
    if (!saved) continue;
    const auto report = registry.publish_from_file(path);
    log += report ? 'P' : 'p';
    if (!report && i % 5 == 0) {
      log += registry.rollback() != 0 ? 'R' : 'r';
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
  return log;
}

TEST_F(ChaosSoakTest, SameFaultSpecReplaysSameTraceAndBehaviour) {
  auto& faults = bp::util::FaultRegistry::instance();
  ::setenv("BP_FAULTS",
           "model_io.write:0.3:7,model_io.torn_write:0.25:11,"
           "model_io.read:0.15:13,registry.publish_validate:0.2:17",
           1);
  ASSERT_TRUE(faults.arm_from_env());

  const std::string first_log = run_lifecycle("/tmp/bp_chaos_replay.model");
  const auto first_trace = faults.trace();
  ASSERT_GT(faults.total_fires(), 0u);  // chaos actually happened

  faults.reset_counters();  // same armed points, fresh indices
  const std::string second_log = run_lifecycle("/tmp/bp_chaos_replay.model");
  const auto second_trace = faults.trace();

  EXPECT_EQ(first_trace, second_trace);
  EXPECT_EQ(first_log, second_log);

  // A different seed produces a different run (the spec matters).
  faults.disarm_all();
  ASSERT_TRUE(faults.arm_from_spec(
      "model_io.write:0.3:8,model_io.torn_write:0.25:12,"
      "model_io.read:0.15:14,registry.publish_validate:0.2:18"));
  const std::string reseeded_log = run_lifecycle("/tmp/bp_chaos_replay.model");
  EXPECT_NE(faults.trace(), first_trace);
  (void)reseeded_log;
}

// The soak proper, parameterized on the verdict cache: with
// `cache_capacity` > 0 most repeat sessions are answered from the
// cache, and the flag-parity proof then covers the cache's invalidation
// protocol too — a cached verdict carrying version v with a flag that
// does not match mirror[v] (version v's table) would mean a verdict
// from one version was replayed under another.
void run_soak(std::size_t cache_capacity, const std::string& path) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 1'500;
  constexpr int kTotal = kProducers * kPerProducer;
  constexpr int kPostRecovery = 200;  // scored after the final publish
  constexpr int kLifecycleIterations = 60;
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());

  ModelRegistry registry;
  ASSERT_EQ(registry.publish(make_model(false)), 1u);  // last-good v1
  // Single lifecycle thread == single publisher, so this mirror of
  // swapped-ness per version is exact: mirror[v] is the table the model
  // at version v carried.  Index 0 unused.
  std::vector<bool> mirror = {false, false};

  auto& faults = bp::util::FaultRegistry::instance();
  ASSERT_TRUE(faults.arm_from_spec(
      "model_io.write:0.2:21,model_io.torn_write:0.25:22,"
      "model_io.read:0.1:23,registry.publish_validate:0.15:24,"
      "engine.worker_stall:0.05:25"));

  // +1 slot for the final guaranteed-cache-hit probe request.
  constexpr int kIds = kTotal + kPostRecovery + 1;
  std::vector<std::atomic<int>> response_count(kIds);
  std::vector<std::atomic<std::uint64_t>> response_version(kIds);
  std::vector<std::atomic<int>> response_flagged(kIds);
  std::vector<std::atomic<int>> response_status(kIds);
  std::vector<std::atomic<int>> response_cached(kIds);
  for (int i = 0; i < kIds; ++i) {
    response_count[i].store(0);
    response_version[i].store(0);
    response_flagged[i].store(0);
    response_status[i].store(-1);
    response_cached[i].store(0);
  }

  EngineConfig config;
  config.workers = 3;
  config.queue_capacity = 256;
  config.max_batch = 16;
  config.overflow_policy = OverflowPolicy::kBlock;
  config.watchdog_interval = std::chrono::milliseconds(5);
  config.stall_threshold = std::chrono::milliseconds(5);
  config.cache_capacity = cache_capacity;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    response_count[r.id].fetch_add(1, std::memory_order_relaxed);
    response_version[r.id].store(r.model_version, std::memory_order_relaxed);
    response_flagged[r.id].store(r.detection.flagged ? 1 : 0,
                                 std::memory_order_relaxed);
    response_status[r.id].store(static_cast<int>(r.status),
                                std::memory_order_relaxed);
    response_cached[r.id].store(r.cached ? 1 : 0, std::memory_order_relaxed);
  });

  std::uint64_t lifecycle_failures = 0;
  std::thread lifecycle([&] {
    for (int i = 0; i < kLifecycleIterations; ++i) {
      const bool swapped = i % 2 == 1;
      if (core::save_model(make_model(swapped), path)) {
        const auto report = registry.publish_from_file(path);
        if (report) {
          ASSERT_EQ(report.version, mirror.size());
          mirror.push_back(swapped);
        } else {
          ++lifecycle_failures;
          if (i % 7 == 0) {
            const std::uint64_t rolled = registry.rollback();
            if (rolled != 0) {
              ASSERT_EQ(rolled, mirror.size());
              mirror.push_back(mirror[mirror.size() - 2]);
            }
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ScoreRequest request;
        request.id = static_cast<std::uint64_t>(p) * kPerProducer + i;
        request.features = {0, 0};
        request.claimed = kChrome100;
        ASSERT_EQ(engine.submit(std::move(request)), SubmitResult::kAdmitted);
      }
    });
  }
  for (auto& t : producers) t.join();
  lifecycle.join();
  engine.drain();
  faults.disarm_all();

  // --- zero lost responses: every admitted id answered exactly once ---
  for (int id = 0; id < kTotal; ++id) {
    ASSERT_EQ(response_count[id].load(), 1) << "id " << id;
    ASSERT_EQ(response_status[id].load(),
              static_cast<int>(ResponseStatus::kScored))
        << "id " << id;
  }
  const MetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.scored, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(metrics.shed, 0u);
  EXPECT_EQ(metrics.degraded, 0u);

  // --- never a corrupt model: every response's version was really ---
  // --- published, and its flag matches that version's table        ---
  const std::uint64_t last_version = mirror.size() - 1;
  EXPECT_EQ(registry.version(), last_version);
  for (int id = 0; id < kTotal; ++id) {
    const std::uint64_t v = response_version[id].load();
    ASSERT_GE(v, 1u) << "id " << id;
    ASSERT_LE(v, last_version) << "id " << id;
    EXPECT_EQ(response_flagged[id].load(), mirror[v] ? 1 : 0)
        << "id " << id << " scored by version " << v;
  }

  // Refused publishes were counted, and every refusal left the serving
  // snapshot intact (proved by the attribution loop above).
  EXPECT_EQ(registry.publish_failures(), lifecycle_failures);

  // --- recovery: with faults cleared, a good model publishes and ---
  // --- the registry serves it                                    ---
  ASSERT_TRUE(core::save_model(make_model(false), path));
  const auto recovered = registry.publish_from_file(path);
  ASSERT_TRUE(recovered);
  EXPECT_EQ(recovered.version, last_version + 1);
  const ModelSnapshot serving = registry.current();
  ASSERT_TRUE(serving);
  EXPECT_EQ(serving.version, last_version + 1);
  core::ScoringScratch scratch;
  const std::vector<std::int32_t> origin{0, 0};
  EXPECT_FALSE(serving.model
                   ->score(std::span<const std::int32_t>(origin), kChrome100,
                           scratch)
                   .flagged);

  // --- no verdict from version K after K+1 publishes: everything ---
  // --- scored after the final publish carries the final version  ---
  // The engine is still live and (in the cached variant) its cache is
  // full of entries stamped with soak-era versions <= last_version.
  // Every one of those entries is now stale; a hit on any of them here
  // would surface as a response with an old model_version or (worse)
  // model B's flag from a model-A serving table.
  for (int i = 0; i < kPostRecovery; ++i) {
    ScoreRequest request;
    request.id = static_cast<std::uint64_t>(kTotal + i);
    request.features = {0, 0};
    request.claimed = kChrome100;
    ASSERT_EQ(engine.submit(std::move(request)), SubmitResult::kAdmitted);
  }
  engine.drain();
  for (int id = kTotal; id < kTotal + kPostRecovery; ++id) {
    ASSERT_EQ(response_count[id].load(), 1) << "id " << id;
    ASSERT_EQ(response_status[id].load(),
              static_cast<int>(ResponseStatus::kScored))
        << "id " << id;
    EXPECT_EQ(response_version[id].load(), last_version + 1) << "id " << id;
    EXPECT_EQ(response_flagged[id].load(), 0) << "id " << id;
  }

  if (cache_capacity > 0) {
    // drain() returned after a worker scored-and-inserted this exact
    // key at last_version + 1, so one more submit is a guaranteed
    // submit-side hit — and it must replay the *current* version.
    ScoreRequest probe;
    probe.id = static_cast<std::uint64_t>(kTotal + kPostRecovery);
    probe.features = {0, 0};
    probe.claimed = kChrome100;
    ASSERT_EQ(engine.submit(std::move(probe)), SubmitResult::kAdmitted);
    const int probe_id = kTotal + kPostRecovery;
    ASSERT_EQ(response_count[probe_id].load(), 1);
    EXPECT_EQ(response_cached[probe_id].load(), 1);
    EXPECT_EQ(response_version[probe_id].load(), last_version + 1);
    EXPECT_EQ(response_flagged[probe_id].load(), 0);

    // The soak exercised the cache for real: entries were inserted,
    // replayed, and invalidated by hot swaps (at minimum the recovery
    // publish stales every soak-era entry for this key).
    const CacheStats stats = engine.cache_stats();
    EXPECT_GT(stats.inserts, 0u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.stale, 0u);
  } else {
    const CacheStats stats = engine.cache_stats();
    EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
    for (int id = 0; id < kIds; ++id) {
      ASSERT_EQ(response_cached[id].load(), 0) << "id " << id;
    }
  }

  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
}

TEST_F(ChaosSoakTest, SoakLosesNothingServesNoCorruptModelAndRecovers) {
  run_soak(/*cache_capacity=*/0, "/tmp/bp_chaos_soak.model");
}

// Same soak with the verdict cache hot: flag parity per version now
// proves the cache's version-keyed invalidation — a swap must stale
// every prior entry atomically, and no verdict minted under version K
// may be replayed once K+1 is published.
TEST_F(ChaosSoakTest, CachedSoakServesNoStaleVerdictAcrossSwaps) {
  run_soak(/*cache_capacity=*/512, "/tmp/bp_chaos_soak_cached.model");
}

}  // namespace
}  // namespace bp::serve
