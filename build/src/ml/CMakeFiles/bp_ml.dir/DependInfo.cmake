
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/isolation_forest.cpp" "src/ml/CMakeFiles/bp_ml.dir/isolation_forest.cpp.o" "gcc" "src/ml/CMakeFiles/bp_ml.dir/isolation_forest.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/bp_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/bp_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/bp_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/bp_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/bp_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/bp_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/bp_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/bp_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/bp_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/bp_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/stratified.cpp" "src/ml/CMakeFiles/bp_ml.dir/stratified.cpp.o" "gcc" "src/ml/CMakeFiles/bp_ml.dir/stratified.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
