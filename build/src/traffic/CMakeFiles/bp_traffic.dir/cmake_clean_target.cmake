file(REMOVE_RECURSE
  "libbp_traffic.a"
)
