file(REMOVE_RECURSE
  "libbp_util.a"
)
