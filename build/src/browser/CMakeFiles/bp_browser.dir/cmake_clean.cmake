file(REMOVE_RECURSE
  "CMakeFiles/bp_browser.dir/engine_timelines.cpp.o"
  "CMakeFiles/bp_browser.dir/engine_timelines.cpp.o.d"
  "CMakeFiles/bp_browser.dir/extractor.cpp.o"
  "CMakeFiles/bp_browser.dir/extractor.cpp.o.d"
  "CMakeFiles/bp_browser.dir/feature_catalog.cpp.o"
  "CMakeFiles/bp_browser.dir/feature_catalog.cpp.o.d"
  "CMakeFiles/bp_browser.dir/release_db.cpp.o"
  "CMakeFiles/bp_browser.dir/release_db.cpp.o.d"
  "libbp_browser.a"
  "libbp_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
