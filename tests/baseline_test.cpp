// Tests for the fine-grained fingerprinting baselines and the Appendix-5
// flatten/encode pipeline.
#include <gtest/gtest.h>

#include "baseline/collectors.h"
#include "baseline/encode.h"
#include "browser/release_db.h"

namespace bp::baseline {
namespace {

browser::Environment make_env(ua::Vendor vendor, int version,
                              ua::Os os = ua::Os::kWindows10,
                              std::uint64_t salt = 5) {
  browser::Environment env;
  env.release = browser::ReleaseDatabase::instance().find(vendor, version);
  EXPECT_NE(env.release, nullptr);
  env.os = os;
  env.session_salt = salt;
  return env;
}

// ------------------------- profile tree -------------------------

TEST(Profile, JsonScalars) {
  EXPECT_EQ(ProfileValue(nullptr).to_json(), "null");
  EXPECT_EQ(ProfileValue(true).to_json(), "true");
  EXPECT_EQ(ProfileValue(42).to_json(), "42");
  EXPECT_EQ(ProfileValue(2.5).to_json(), "2.5");
  EXPECT_EQ(ProfileValue("hi").to_json(), "\"hi\"");
}

TEST(Profile, JsonEscapesQuotes) {
  EXPECT_EQ(ProfileValue("a\"b").to_json(), "\"a\\\"b\"");
}

TEST(Profile, JsonNestedStructure) {
  ProfileValue p;
  p["a"]["b"] = 1;
  p["c"] = ProfileValue::Array{1, 2};
  EXPECT_EQ(p.to_json(), "{\"a\":{\"b\":1},\"c\":[1,2]}");
}

TEST(Profile, SerializedSizeMatchesJson) {
  ProfileValue p;
  p["x"] = "y";
  EXPECT_EQ(p.serialized_size(), p.to_json().size());
}

TEST(Flatten, DottedPaths) {
  ProfileValue p;
  p["screen"]["width"] = 1920;
  p["fonts"] = ProfileValue::Array{std::string("Arial")};
  const auto leaves = flatten_profile(p);

  bool saw_width = false;
  bool saw_font0 = false;
  bool saw_length = false;
  for (const auto& leaf : leaves) {
    if (leaf.path == "screen.width") saw_width = true;
    if (leaf.path == "fonts.0") saw_font0 = true;
    if (leaf.path == "fonts.length") saw_length = true;
  }
  EXPECT_TRUE(saw_width);
  EXPECT_TRUE(saw_font0);
  EXPECT_TRUE(saw_length);
}

// ------------------------- collectors -------------------------

TEST(Collectors, DeterministicGivenEnvironment) {
  const auto env = make_env(ua::Vendor::kChrome, 112);
  EXPECT_EQ(collect(Collector::kFingerprintJs, env).to_json(),
            collect(Collector::kFingerprintJs, env).to_json());
}

TEST(Collectors, CanvasHashVariesByInstall) {
  const auto a = make_env(ua::Vendor::kChrome, 112, ua::Os::kWindows10, 1);
  const auto b = make_env(ua::Vendor::kChrome, 112, ua::Os::kWindows10, 2);
  EXPECT_NE(canvas_probe(a, 64, 32), canvas_probe(b, 64, 32));
}

TEST(Collectors, CanvasHashVariesByEngineVersionEra) {
  const auto a = make_env(ua::Vendor::kChrome, 100, ua::Os::kWindows10, 1);
  const auto b = make_env(ua::Vendor::kChrome, 119, ua::Os::kWindows10, 1);
  EXPECT_NE(canvas_probe(a, 64, 32), canvas_probe(b, 64, 32));
}

TEST(Collectors, AudioProbeIsEngineSensitive) {
  const auto chrome = make_env(ua::Vendor::kChrome, 110);
  const auto firefox = make_env(ua::Vendor::kFirefox, 110);
  EXPECT_NE(audio_probe(chrome, 2000), audio_probe(firefox, 2000));
}

TEST(Collectors, FontProbeSharedWithinOsFamily) {
  const auto win10 = make_env(ua::Vendor::kChrome, 112, ua::Os::kWindows10);
  const auto win11 = make_env(ua::Vendor::kChrome, 112, ua::Os::kWindows11);
  const auto mac = make_env(ua::Vendor::kChrome, 112, ua::Os::kMacSonoma);
  EXPECT_EQ(font_probe(win10, 100), font_probe(win11, 100));
  EXPECT_NE(font_probe(win10, 100), font_probe(mac, 100));
}

TEST(Collectors, PayloadSizeOrdering) {
  // Table 2's storage ordering is a property of the collectors.
  const auto env = make_env(ua::Vendor::kChrome, 112);
  const std::size_t amiunique =
      collect(Collector::kAmIUnique, env).serialized_size();
  const std::size_t fpjs =
      collect(Collector::kFingerprintJs, env).serialized_size();
  const std::size_t clientjs =
      collect(Collector::kClientJs, env).serialized_size();
  EXPECT_GT(amiunique, fpjs);
  EXPECT_GT(fpjs, clientjs);
  EXPECT_GT(clientjs, 1024u);     // all fine-grained payloads exceed 1KB
  EXPECT_GT(amiunique, 40'000u);  // ~60KB in the paper
}

TEST(Collectors, ClientJsUaDerivedSubtreePresent) {
  const auto env = make_env(ua::Vendor::kFirefox, 102);
  const ProfileValue p = collect(Collector::kClientJs, env);
  const auto& ua_derived = p.as_object().at("uaDerived");
  EXPECT_EQ(ua_derived.as_object().at("browser").as_string(), "Firefox");
  EXPECT_EQ(ua_derived.as_object().at("browserVersion").as_number(), 102.0);
}

TEST(Collectors, NamesAreStable) {
  EXPECT_EQ(collector_name(Collector::kFingerprintJs), "FingerprintJS");
  EXPECT_EQ(collector_name(Collector::kClientJs), "ClientJS");
  EXPECT_EQ(collector_name(Collector::kAmIUnique), "AmIUnique");
}

// ------------------------- encoder -------------------------

TEST(Encode, NumbersPassThrough) {
  ProfileValue a;
  a["x"] = 3;
  ProfileValue b;
  b["x"] = 5;
  ProfileValue c;
  c["x"] = 3;  // repeat: the column is neither constant nor all-unique
  const auto encoded = encode_profiles({a, b, c});
  ASSERT_EQ(encoded.column_names.size(), 1u);
  EXPECT_DOUBLE_EQ(encoded.features(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(encoded.features(1, 0), 5.0);
}

TEST(Encode, BooleansBecomeZeroOne) {
  ProfileValue a;
  a["b"] = true;
  ProfileValue b;
  b["b"] = false;
  ProfileValue c;
  c["b"] = true;
  const auto encoded = encode_profiles({a, b, c});
  ASSERT_EQ(encoded.column_names.size(), 1u);
  EXPECT_DOUBLE_EQ(encoded.features(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(encoded.features(1, 0), 0.0);
}

TEST(Encode, StringsBecomeCategories) {
  ProfileValue a;
  a["s"] = "x";
  ProfileValue b;
  b["s"] = "y";
  ProfileValue c;
  c["s"] = "x";
  const auto encoded = encode_profiles({a, b, c});
  EXPECT_DOUBLE_EQ(encoded.features(0, 0), encoded.features(2, 0));
  EXPECT_NE(encoded.features(0, 0), encoded.features(1, 0));
}

TEST(Encode, MissingValuesAreMinusOne) {
  ProfileValue a;
  a["p"] = 1;
  a["q"] = 7;
  ProfileValue b;
  b["q"] = 9;  // "p" missing
  ProfileValue c;
  c["p"] = 1;
  c["q"] = 7;
  const auto encoded = encode_profiles({a, b, c});
  ASSERT_EQ(encoded.column_names.size(), 2u);
  // Columns are path-sorted: p before q.
  EXPECT_DOUBLE_EQ(encoded.features(1, 0), -1.0);
}

TEST(Encode, DropsConstantColumns) {
  ProfileValue a;
  a["c"] = 1;
  a["v"] = 1;
  ProfileValue b;
  b["c"] = 1;
  b["v"] = 2;
  ProfileValue c2;
  c2["c"] = 1;
  c2["v"] = 2;
  const auto encoded = encode_profiles({a, b, c2});
  EXPECT_EQ(encoded.column_names, std::vector<std::string>{"v"});
  EXPECT_EQ(encoded.dropped_constant, 1u);
}

TEST(Encode, DropsAllUniqueColumns) {
  ProfileValue a;
  a["hash"] = "aaa";
  a["v"] = 1;
  ProfileValue b;
  b["hash"] = "bbb";
  b["v"] = 1;
  ProfileValue c;
  c["hash"] = "ccc";
  c["v"] = 2;
  const auto encoded = encode_profiles({a, b, c});
  EXPECT_EQ(encoded.column_names, std::vector<std::string>{"v"});
  EXPECT_EQ(encoded.dropped_all_unique, 1u);
}

TEST(Encode, ExcludePrefixes) {
  ProfileValue a;
  a["uaDerived"]["browser"] = "Chrome";
  a["keep"] = 1;
  ProfileValue b;
  b["uaDerived"]["browser"] = "Firefox";
  b["keep"] = 2;
  ProfileValue c;
  c["uaDerived"]["browser"] = "Chrome";
  c["keep"] = 2;
  EncodeOptions options;
  options.exclude_prefixes = {"uaDerived."};
  const auto encoded = encode_profiles({a, b, c}, options);
  EXPECT_EQ(encoded.column_names, std::vector<std::string>{"keep"});
  EXPECT_EQ(encoded.dropped_excluded, 1u);
}

TEST(Encode, HashColumnsFromCollectorsAreDropped) {
  // Canvas/audio hashes differ per install: across distinct installs
  // they are all-unique and must not survive encoding.
  std::vector<ProfileValue> profiles;
  for (std::uint64_t salt = 1; salt <= 6; ++salt) {
    profiles.push_back(collect(
        Collector::kFingerprintJs,
        make_env(ua::Vendor::kChrome, 112, ua::Os::kWindows10, salt)));
  }
  const auto encoded = encode_profiles(profiles);
  for (const auto& name : encoded.column_names) {
    EXPECT_EQ(name.find("canvas.hash"), std::string::npos) << name;
    EXPECT_EQ(name.find("audio.hash"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace bp::baseline
