#include "obs/slo/time_series.h"

#include <algorithm>

namespace bp::obs::slo {

TimeSeriesWindow::TimeSeriesWindow(const MetricsRegistry& registry,
                                   std::size_t capacity)
    : registry_(registry), capacity_(std::max<std::size_t>(capacity, 2)) {}

void TimeSeriesWindow::track(std::string series, std::string metric) {
  std::lock_guard lock(mutex_);
  Series s;
  s.kind = SourceKind::kValue;
  s.metrics = {std::move(metric)};
  series_.insert_or_assign(std::move(series), std::move(s));
}

void TimeSeriesWindow::track_sum(std::string series,
                                 std::vector<std::string> metrics) {
  std::lock_guard lock(mutex_);
  Series s;
  s.kind = SourceKind::kSum;
  s.metrics = std::move(metrics);
  series_.insert_or_assign(std::move(series), std::move(s));
}

void TimeSeriesWindow::track_histogram_over(std::string series,
                                            std::string metric,
                                            std::uint64_t threshold) {
  std::lock_guard lock(mutex_);
  Series s;
  s.kind = SourceKind::kHistogramOver;
  s.metrics = {std::move(metric)};
  s.threshold = threshold;
  series_.insert_or_assign(std::move(series), std::move(s));
}

double TimeSeriesWindow::read_source(const Series& series) const {
  switch (series.kind) {
    case SourceKind::kValue:
      return registry_.read_value(series.metrics.front()).value_or(0.0);
    case SourceKind::kSum: {
      double total = 0.0;
      for (const std::string& metric : series.metrics) {
        total += registry_.read_value(metric).value_or(0.0);
      }
      return total;
    }
    case SourceKind::kHistogramOver:
      return registry_
          .read_histogram_over(series.metrics.front(), series.threshold)
          .value_or(0.0);
  }
  return 0.0;
}

void TimeSeriesWindow::sample(std::int64_t now_ms) {
  std::lock_guard lock(mutex_);
  for (auto& [name, series] : series_) {
    Point point;
    point.at_ms = now_ms;
    point.value = read_source(series);
    if (series.ring.size() < capacity_) {
      series.ring.push_back(point);
      ++series.size;
    } else {
      series.ring[series.next] = point;
    }
    series.next = (series.next + 1) % capacity_;
  }
  last_sample_ms_ = now_ms;
  ++samples_;
}

bool TimeSeriesWindow::span(const Series& series, std::int64_t lookback_ms,
                            Point* oldest, Point* newest) const {
  if (series.size == 0) return false;
  const std::size_t begin =
      series.size == capacity_ ? series.next : 0;  // oldest retained slot
  *newest = series.ring[(begin + series.size - 1) % series.ring.size()];
  const std::int64_t horizon = newest->at_ms - lookback_ms;
  *oldest = *newest;
  for (std::size_t i = 0; i < series.size; ++i) {
    const Point& p = series.ring[(begin + i) % series.ring.size()];
    if (p.at_ms >= horizon) {
      *oldest = p;
      break;
    }
  }
  return true;
}

double TimeSeriesWindow::latest(std::string_view series) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(series);
  if (it == series_.end()) return 0.0;
  Point oldest, newest;
  if (!span(it->second, 0, &oldest, &newest)) return 0.0;
  return newest.value;
}

double TimeSeriesWindow::delta(std::string_view series,
                               std::int64_t lookback_ms) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(series);
  if (it == series_.end()) return 0.0;
  Point oldest, newest;
  if (!span(it->second, lookback_ms, &oldest, &newest)) return 0.0;
  return std::max(0.0, newest.value - oldest.value);
}

double TimeSeriesWindow::rate_per_second(std::string_view series,
                                         std::int64_t lookback_ms) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(series);
  if (it == series_.end()) return 0.0;
  Point oldest, newest;
  if (!span(it->second, lookback_ms, &oldest, &newest)) return 0.0;
  const std::int64_t elapsed_ms = newest.at_ms - oldest.at_ms;
  if (elapsed_ms <= 0) return 0.0;
  return std::max(0.0, newest.value - oldest.value) /
         (static_cast<double>(elapsed_ms) / 1000.0);
}

std::int64_t TimeSeriesWindow::last_sample_ms() const {
  std::lock_guard lock(mutex_);
  return last_sample_ms_;
}

std::uint64_t TimeSeriesWindow::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

}  // namespace bp::obs::slo
