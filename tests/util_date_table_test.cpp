// Tests for civil-date arithmetic and the ASCII table renderer.
#include <gtest/gtest.h>

#include "util/date.h"
#include "util/table.h"

namespace bp::util {
namespace {

TEST(Date, EpochIsZero) {
  EXPECT_EQ(Date::from_ymd(1970, 1, 1).days_since_epoch, 0);
}

TEST(Date, KnownOffsets) {
  EXPECT_EQ(Date::from_ymd(1970, 1, 2).days_since_epoch, 1);
  EXPECT_EQ(Date::from_ymd(1969, 12, 31).days_since_epoch, -1);
  // 2000-01-01 is a well-known anchor: 10957 days after the epoch.
  EXPECT_EQ(Date::from_ymd(2000, 1, 1).days_since_epoch, 10957);
}

TEST(Date, RoundTripYmd) {
  const Date d = Date::from_ymd(2023, 7, 2);
  const auto ymd = d.to_ymd();
  EXPECT_EQ(ymd.year, 2023);
  EXPECT_EQ(ymd.month, 7u);
  EXPECT_EQ(ymd.day, 2u);
}

TEST(Date, LeapYearHandling) {
  const Date feb29 = Date::from_ymd(2024, 2, 29);
  const Date mar1 = Date::from_ymd(2024, 3, 1);
  EXPECT_EQ(mar1 - feb29, 1);
  // 2023 is not a leap year.
  EXPECT_EQ(Date::from_ymd(2023, 3, 1) - Date::from_ymd(2023, 2, 28), 1);
}

TEST(Date, Arithmetic) {
  const Date d = Date::from_ymd(2023, 3, 1);
  EXPECT_EQ((d + 31).to_string(), "2023-04-01");
  EXPECT_EQ((d - 1).to_string(), "2023-02-28");
  EXPECT_EQ((d + 365) - d, 365);
}

TEST(Date, Comparisons) {
  EXPECT_LT(Date::from_ymd(2023, 3, 1), Date::from_ymd(2023, 3, 2));
  EXPECT_EQ(Date::from_ymd(2023, 3, 1), Date::from_ymd(2023, 3, 1));
  EXPECT_GT(Date::from_ymd(2024, 1, 1), Date::from_ymd(2023, 12, 31));
}

TEST(Date, ToStringPadsZeroes) {
  EXPECT_EQ(Date::from_ymd(2023, 7, 4).to_string(), "2023-07-04");
}

// Property: every day over several decades round-trips through Ymd.
class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, YearSweep) {
  const int year = GetParam();
  Date d = Date::from_ymd(year, 1, 1);
  const Date end = Date::from_ymd(year + 1, 1, 1);
  int days = 0;
  while (d < end) {
    const auto ymd = d.to_ymd();
    EXPECT_EQ(Date::from_ymd(ymd.year, ymd.month, ymd.day), d);
    EXPECT_EQ(ymd.year, year);
    d = d + 1;
    ++days;
  }
  const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  EXPECT_EQ(days, leap ? 366 : 365);
}

INSTANTIATE_TEST_SUITE_P(Years, DateRoundTrip,
                         ::testing::Values(1970, 1999, 2000, 2016, 2020, 2023,
                                           2024, 2100));

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"A", "Long header"});
  table.add_row({"1", "x"});
  table.add_row({"22", "yy"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| A  | Long header |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | yy          |"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable table({"A", "B", "C"});
  table.add_row({"1"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(TextTable, RowCount) {
  TextTable table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(AsciiChart, ScalesToMax) {
  const std::string out =
      ascii_chart({{"a", 10.0}, {"b", 5.0}}, /*width=*/10, '#');
  // "a" gets the full width, "b" half of it.
  EXPECT_NE(out.find("a |##########"), std::string::npos);
  EXPECT_NE(out.find("b |#####"), std::string::npos);
}

TEST(AsciiChart, AllZeroYieldsNoBars) {
  const std::string out = ascii_chart({{"a", 0.0}}, 10, '#');
  EXPECT_EQ(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace bp::util
