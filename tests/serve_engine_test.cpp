// Tests for the serving subsystem: ModelRegistry hot-swap semantics and
// the ScoringEngine's concurrency invariants.
//
// The models here are hand-assembled via Polygraph::from_parts (identity
// scaler/PCA over 2 features, two fixed centroids) so the suite runs in
// milliseconds and stays meaningful under TSan: model A and model B
// differ only in their UA<->cluster tables, so whether a response is
// flagged reveals exactly which published version scored it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/scoring_engine.h"

namespace bp::serve {
namespace {

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100, ua::Os::kWindows10};

// Cluster 0 sits at (0, 0), cluster 1 at (10, 10).  Model A expects
// Chrome 100 in cluster 0; model B expects it in cluster 1.  A session
// with features (0, 0) claiming Chrome 100 is therefore clean under A
// and flagged under B.
core::Polygraph make_model(bool swapped_table) {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;

  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;

  core::ClusterTable table;
  table.assign(kChrome100, swapped_table ? 1 : 0);
  table.assign(kFirefox100, swapped_table ? 0 : 1);

  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

ScoreRequest request_at_origin(std::uint64_t id) {
  ScoreRequest request;
  request.id = id;
  request.features = {0, 0};
  request.claimed = kChrome100;
  return request;
}

// ------------------------------ registry ------------------------------

TEST(ServeRegistry, EmptyUntilFirstPublish) {
  ModelRegistry registry;
  EXPECT_EQ(registry.version(), 0u);
  const ModelSnapshot snapshot = registry.current();
  EXPECT_FALSE(snapshot);
  EXPECT_EQ(snapshot.model, nullptr);
  EXPECT_EQ(snapshot.version, 0u);
}

TEST(ServeRegistry, PublishAssignsMonotonicVersions) {
  ModelRegistry registry;
  EXPECT_EQ(registry.publish(make_model(false)), 1u);
  EXPECT_EQ(registry.publish(make_model(true)), 2u);
  EXPECT_EQ(registry.publish(make_model(false)), 3u);
  EXPECT_EQ(registry.version(), 3u);
  const ModelSnapshot snapshot = registry.current();
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot.version, 3u);
}

TEST(ServeRegistry, RejectsNullAndUntrainedModels) {
  ModelRegistry registry;
  EXPECT_EQ(registry.publish(std::shared_ptr<const core::Polygraph>{}), 0u);
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  EXPECT_EQ(registry.publish(core::Polygraph(config)), 0u);  // never trained
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_FALSE(registry.current());
}

TEST(ServeRegistry, SnapshotSurvivesSupersedingPublish) {
  ModelRegistry registry;
  registry.publish(make_model(false));
  const ModelSnapshot held = registry.current();
  registry.publish(make_model(true));
  // The old snapshot keeps scoring consistently even after the swap.
  ASSERT_TRUE(held);
  EXPECT_EQ(held.version, 1u);
  core::ScoringScratch scratch;
  const auto detection =
      held.model->score(std::span<const std::int32_t>(
                            std::vector<std::int32_t>{0, 0}),
                        kChrome100, scratch);
  EXPECT_FALSE(detection.flagged);
}

// ------------------------------- engine -------------------------------

TEST(ServeEngine, ScoresMatchDirectModelCalls) {
  ModelRegistry registry;
  registry.publish(make_model(false));
  const ModelSnapshot snapshot = registry.current();

  std::mutex mutex;
  std::vector<ScoreResponse> responses;
  EngineConfig config;
  config.workers = 2;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    std::lock_guard lock(mutex);
    responses.push_back(r);
  });

  std::vector<ScoreRequest> sent;
  for (std::uint64_t i = 0; i < 200; ++i) {
    ScoreRequest request;
    request.id = i;
    const bool near_far_cluster = i % 3 == 0;
    request.features = near_far_cluster ? std::vector<std::int32_t>{9, 11}
                                        : std::vector<std::int32_t>{1, 0};
    request.claimed = i % 2 == 0 ? kChrome100 : kFirefox100;
    sent.push_back(request);
    EXPECT_EQ(engine.submit(request), SubmitResult::kAdmitted);
  }
  engine.drain();
  engine.stop();

  ASSERT_EQ(responses.size(), sent.size());
  core::ScoringScratch scratch;
  for (const ScoreResponse& response : responses) {
    const ScoreRequest& original = sent[response.id];
    EXPECT_EQ(response.status, ResponseStatus::kScored);
    EXPECT_EQ(response.model_version, 1u);
    const core::Detection expected = snapshot.model->score(
        std::span<const std::int32_t>(original.features), original.claimed,
        scratch);
    EXPECT_EQ(response.detection.predicted_cluster, expected.predicted_cluster);
    EXPECT_EQ(response.detection.expected_cluster, expected.expected_cluster);
    EXPECT_EQ(response.detection.flagged, expected.flagged);
    EXPECT_EQ(response.detection.risk_factor, expected.risk_factor);
  }
  const MetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.scored, sent.size());
  EXPECT_EQ(metrics.shed, 0u);
  EXPECT_EQ(metrics.rejected, 0u);
}

// The tentpole invariant: hammer the engine from several producers while
// a swapper republishes alternating models mid-flight.  No response may
// be lost or duplicated, and every detection must be attributable to
// exactly one published version (here: parity of the version number
// predicts the flag, because A and B invert the cluster table).
TEST(ServeEngine, HotSwapUnderLoadLosesNothingAndVersionsEveryDetection) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2'500;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  constexpr int kSwaps = 40;

  ModelRegistry registry;
  ASSERT_EQ(registry.publish(make_model(false)), 1u);  // odd versions = A

  std::vector<std::atomic<std::uint64_t>> seen_version(kTotal);
  std::vector<std::atomic<int>> seen_count(kTotal);
  std::atomic<std::uint64_t> flag_mismatches{0};

  EngineConfig config;
  config.workers = 4;
  config.queue_capacity = 256;
  config.max_batch = 16;
  config.overflow_policy = OverflowPolicy::kBlock;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    seen_count[r.id].fetch_add(1, std::memory_order_relaxed);
    seen_version[r.id].store(r.model_version, std::memory_order_relaxed);
    if (r.status == ResponseStatus::kScored) {
      // Version parity fully determines the expected verdict.
      const bool expect_flagged = r.model_version % 2 == 0;
      if (r.detection.flagged != expect_flagged) {
        flag_mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::atomic<bool> swapping{true};
  std::thread swapper([&] {
    for (int s = 0; s < kSwaps && swapping.load(); ++s) {
      const bool publish_b = s % 2 == 0;  // versions 2,3,4,... alternate
      EXPECT_GT(registry.publish(make_model(publish_b)), 1u);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    swapping.store(false);
  });

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        EXPECT_EQ(engine.submit(request_at_origin(p * kPerProducer + i)),
                  SubmitResult::kAdmitted);
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.drain();
  swapping.store(false);
  swapper.join();
  const std::uint64_t last_version = registry.version();
  engine.stop();

  // Exactly one response per admitted request, no lost, no duplicated.
  for (std::uint64_t id = 0; id < kTotal; ++id) {
    ASSERT_EQ(seen_count[id].load(), 1) << "request " << id;
    const std::uint64_t version = seen_version[id].load();
    EXPECT_GE(version, 1u) << "request " << id;
    EXPECT_LE(version, last_version) << "request " << id;
  }
  // Every detection matched the verdict of the version it claims.
  EXPECT_EQ(flag_mismatches.load(), 0u);

  const MetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.scored, kTotal);  // Block policy: lossless
  EXPECT_EQ(metrics.shed, 0u);
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.queue_depth, 0u);
  EXPECT_GE(metrics.model_version, 1u);
  EXPECT_GT(metrics.batches, 0u);
}

TEST(ServeEngine, DropOldestShedsExplicitlyAndAccountsEveryRequest) {
  constexpr std::uint64_t kTotal = 1'000;
  ModelRegistry registry;
  registry.publish(make_model(false));

  std::vector<std::atomic<int>> scored(kTotal);
  std::vector<std::atomic<int>> shed(kTotal);

  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.max_batch = 4;
  config.overflow_policy = OverflowPolicy::kDropOldest;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    (r.status == ResponseStatus::kScored ? scored : shed)[r.id].fetch_add(1);
  });

  for (std::uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(engine.submit(request_at_origin(i)), SubmitResult::kAdmitted);
  }
  engine.drain();
  engine.stop();

  std::uint64_t n_scored = 0;
  std::uint64_t n_shed = 0;
  for (std::uint64_t id = 0; id < kTotal; ++id) {
    const int responses = scored[id].load() + shed[id].load();
    ASSERT_EQ(responses, 1) << "request " << id;
    n_scored += static_cast<std::uint64_t>(scored[id].load());
    n_shed += static_cast<std::uint64_t>(shed[id].load());
  }
  EXPECT_EQ(n_scored + n_shed, kTotal);

  const MetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.scored, n_scored);
  EXPECT_EQ(metrics.shed, n_shed);
  EXPECT_EQ(metrics.rejected, 0u);
}

TEST(ServeEngine, RejectPolicyRefusesOverloadSynchronously) {
  constexpr std::uint64_t kOffered = 100;
  ModelRegistry registry;  // nothing published yet: workers must wait

  std::vector<std::atomic<int>> responses(kOffered);
  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.max_batch = 4;
  config.overflow_policy = OverflowPolicy::kReject;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    responses[r.id].fetch_add(1);
  });

  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    switch (engine.submit(request_at_origin(i))) {
      case SubmitResult::kAdmitted:
        ++admitted;
        break;
      case SubmitResult::kRejected:
        ++rejected;
        break;
      case SubmitResult::kStopped:
        FAIL() << "engine is running";
    }
  }
  // With no model published, the worker can hold at most one batch while
  // the queue buffers `capacity` more; everything else must bounce.
  EXPECT_LE(admitted, config.queue_capacity + config.max_batch);
  EXPECT_GE(rejected, kOffered - config.queue_capacity - config.max_batch);

  registry.publish(make_model(false));  // un-gate the worker
  engine.drain();
  engine.stop();

  std::uint64_t answered = 0;
  for (std::uint64_t id = 0; id < kOffered; ++id) {
    const int n = responses[id].load();
    ASSERT_LE(n, 1) << "request " << id;
    answered += static_cast<std::uint64_t>(n);
  }
  EXPECT_EQ(answered, admitted);  // rejected submissions get no response
  const MetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.rejected, rejected);
  EXPECT_EQ(metrics.scored, admitted);
}

TEST(ServeEngine, StopWithoutModelShedsAdmittedRequests) {
  ModelRegistry registry;
  std::vector<std::atomic<int>> shed(10);
  EngineConfig config;
  config.workers = 2;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    EXPECT_EQ(r.status, ResponseStatus::kShed);
    shed[r.id].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(engine.submit(request_at_origin(i)), SubmitResult::kAdmitted);
  }
  engine.stop();
  for (std::uint64_t id = 0; id < 10; ++id) {
    EXPECT_EQ(shed[id].load(), 1) << "request " << id;
  }
  EXPECT_EQ(engine.submit(request_at_origin(0)), SubmitResult::kStopped);
}

TEST(ServeEngine, LatencyHistogramFeedsPercentiles) {
  ModelRegistry registry;
  registry.publish(make_model(false));
  EngineConfig config;
  config.workers = 1;
  ScoringEngine engine(registry, config, nullptr);
  for (std::uint64_t i = 0; i < 500; ++i) {
    engine.submit(request_at_origin(i));
  }
  engine.drain();
  engine.stop();
  const MetricsSnapshot metrics = engine.metrics();
  EXPECT_EQ(metrics.scored, 500u);
  std::uint64_t histogram_total = 0;
  for (std::uint64_t c : metrics.latency_histogram) histogram_total += c;
  EXPECT_EQ(histogram_total, 500u);
  EXPECT_GT(metrics.p99_micros(), 0.0);
  EXPECT_LE(metrics.p50_micros(), metrics.p95_micros());
  EXPECT_LE(metrics.p95_micros(), metrics.p99_micros());
  // A 2-feature toy model on an idle box sits far inside the paper's
  // 100 ms budget.
  EXPECT_TRUE(metrics.within_budget());
  EXPECT_FALSE(metrics.summary().empty());
}

}  // namespace
}  // namespace bp::serve
