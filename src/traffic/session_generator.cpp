#include "traffic/session_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "browser/engine_timelines.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace bp::traffic {

namespace {

using browser::Environment;
using browser::Modifier;
using bp::util::Date;

std::vector<std::int32_t> store_features(
    const browser::CandidateValues& all,
    const std::vector<std::size_t>& stored_indices) {
  std::vector<std::int32_t> out;
  out.reserve(stored_indices.size());
  for (std::size_t idx : stored_indices) {
    out.push_back(static_cast<std::int32_t>(all[idx]));
  }
  return out;
}

}  // namespace

std::vector<std::size_t> experiment_feature_indices() {
  const auto& catalog = browser::FeatureCatalog::instance();
  std::vector<std::size_t> indices = catalog.final_indices();
  for (std::size_t idx : catalog.appendix4_extension(42)) {
    if (std::find(indices.begin(), indices.end(), idx) == indices.end()) {
      indices.push_back(idx);
    }
  }
  return indices;
}

SessionGenerator::SessionGenerator(TrafficConfig config)
    : config_(config), rng_(config.seed) {}

std::string SessionGenerator::session_id_for(
    std::uint64_t session_index) const {
  // Opaque and randomized (Appendix A): hash of the row index and the
  // seed, never derived from any session attribute.  Index-keyed so the
  // sharded batch path and the streaming path agree.
  const std::uint64_t raw =
      bp::util::mix64(config_.seed ^ (0x5E551D00ULL + session_index));
  return bp::util::to_hex(raw);
}

ua::Vendor SessionGenerator::sample_vendor(bp::util::Rng& rng) {
  const double weights[4] = {config_.chrome_share, config_.edge_share,
                             config_.firefox_share, config_.edge_legacy_share};
  switch (rng.weighted(std::span<const double>(weights, 4))) {
    case 1:
      return ua::Vendor::kEdge;
    case 2:
      return ua::Vendor::kFirefox;
    case 3:
      return ua::Vendor::kEdgeLegacy;
    default:
      return ua::Vendor::kChrome;
  }
}

const browser::BrowserRelease* SessionGenerator::sample_release(
    ua::Vendor vendor, Date date, double tau_days, double straggler_tail,
    bp::util::Rng& rng) {
  const auto& db = browser::ReleaseDatabase::instance();
  std::vector<const browser::BrowserRelease*> candidates;
  for (const auto& r : db.releases()) {
    if (r.vendor == vendor && r.release_date <= date) {
      candidates.push_back(&r);
    }
  }
  if (candidates.empty()) return nullptr;

  if (rng.chance(straggler_tail)) {
    // Straggler: any historical release, uniformly — this is what keeps
    // Chrome 81-era UAs alive at double-digit row counts.
    return candidates[rng.below(candidates.size())];
  }

  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const auto* r : candidates) {
    const double age_days = static_cast<double>(date - r->release_date);
    weights.push_back(std::exp(-age_days / tau_days));
  }
  const std::size_t pick = rng.weighted(weights);
  return candidates[pick < candidates.size() ? pick : candidates.size() - 1];
}

void SessionGenerator::assign_tags(SessionRecord& record, bp::util::Rng& rng) {
  const TagRates* rates = &config_.benign_rates;
  switch (record.kind) {
    case SessionKind::kBenign:
    case SessionKind::kBenignModified:
      rates = &config_.benign_rates;
      break;
    case SessionKind::kPrivacyBrowser:
      rates = &config_.privacy_rates;
      break;
    case SessionKind::kFraudBrowser:
      rates = &config_.fraud_rates;
      break;
  }
  record.untrusted_ip = rng.chance(rates->untrusted_ip);
  record.untrusted_cookie = rng.chance(rates->untrusted_cookie);
  record.ato = rng.chance(rates->ato);
}

SessionRecord SessionGenerator::make_benign(
    const std::vector<std::size_t>& stored_indices, Date date,
    bp::util::Rng& rng, std::uint64_t session_index) {
  SessionRecord record;
  record.date = date;
  record.session_id = session_id_for(session_index);

  const ua::Vendor vendor = sample_vendor(rng);
  const auto* release = sample_release(vendor, date,
                                       config_.release_age_tau_days,
                                       config_.straggler_tail, rng);
  assert(release != nullptr);

  Environment env;
  env.release = release;
  env.os = rng.chance(0.78) ? ua::Os::kWindows10 : ua::Os::kMacSonoma;
  env.session_salt = rng.next();

  record.kind = SessionKind::kBenign;
  if (release->engine == browser::Engine::kBlink) {
    if (rng.chance(config_.p_duckduckgo)) {
      env.modifiers = env.modifiers | Modifier::kDuckDuckGoExtension;
      record.kind = SessionKind::kBenignModified;
    }
    if (rng.chance(config_.p_generic_extension)) {
      env.modifiers = env.modifiers | Modifier::kGenericExtension;
      record.kind = SessionKind::kBenignModified;
    }
  } else if (release->engine == browser::Engine::kGecko) {
    if (rng.chance(config_.p_ff_no_service_workers)) {
      env.modifiers = env.modifiers | Modifier::kFirefoxNoServiceWorkers;
      record.kind = SessionKind::kBenignModified;
    }
    if (rng.chance(config_.p_ff_transform_getters)) {
      env.modifiers = env.modifiers | Modifier::kFirefoxTransformGetters;
      record.kind = SessionKind::kBenignModified;
    }
  }

  ua::UserAgent claimed = env.presented_user_agent();

  // Update inconsistency: the UA header reports the next major while the
  // engine still runs this build (staged rollout windows).  Only applies
  // when the next major exists.
  bool mid_update = false;
  if (rng.chance(config_.p_update_inconsistency)) {
    const auto* next = browser::ReleaseDatabase::instance().find(
        claimed.vendor, claimed.major_version + 1);
    if (next != nullptr && next->release_date <= date) {
      ++claimed.major_version;
      mid_update = true;
    }
  }

  record.claimed = claimed;
  record.user_agent = ua::format_user_agent(claimed);
  record.features =
      store_features(browser::extract_candidates(env), stored_indices);
  record.origin = release->label();
  if (mid_update) {
    record.origin += " (mid-update)";
    record.untrusted_ip =
        rng.chance(config_.update_inconsistency_rates.untrusted_ip);
    record.untrusted_cookie =
        rng.chance(config_.update_inconsistency_rates.untrusted_cookie);
    record.ato = rng.chance(config_.update_inconsistency_rates.ato);
  } else {
    assign_tags(record, rng);
  }
  return record;
}

SessionRecord SessionGenerator::make_privacy(
    const std::vector<std::size_t>& stored_indices, Date date,
    bool aggressive_brave, bool tor, bp::util::Rng& rng,
    std::uint64_t session_index) {
  SessionRecord record;
  record.date = date;
  record.session_id = session_id_for(session_index);
  record.kind = SessionKind::kPrivacyBrowser;

  const auto& db = browser::ReleaseDatabase::instance();
  Environment env;
  env.os = rng.chance(0.7) ? ua::Os::kWindows10 : ua::Os::kMacSonoma;
  env.session_salt = rng.next();

  if (tor) {
    // Tor Browser tracks Firefox ESR, roughly a year behind current
    // (§6.3 found it presenting Firefox 102 while current was ~113).
    env.release = db.find(ua::Vendor::kFirefox, 102);
    env.modifiers = env.modifiers | Modifier::kTorPatchset;
    record.origin = "Tor Browser (ESR 102 base)";
  } else {
    // Brave tracks current Chromium closely.
    const auto* latest = db.latest(ua::Vendor::kChrome, date);
    env.release = latest;
    env.modifiers = env.modifiers | (aggressive_brave
                                         ? Modifier::kBraveAggressiveShields
                                         : Modifier::kBraveStandardShields);
    record.origin = aggressive_brave ? "Brave (aggressive shields)"
                                     : "Brave (standard shields)";
  }
  assert(env.release != nullptr);

  const ua::UserAgent claimed = env.presented_user_agent();
  record.claimed = claimed;
  record.user_agent = ua::format_user_agent(claimed);
  record.features =
      store_features(browser::extract_candidates(env), stored_indices);
  assign_tags(record, rng);
  return record;
}

SessionRecord SessionGenerator::make_fraud(
    const std::vector<std::size_t>& stored_indices, Date date,
    bp::util::Rng& rng, std::uint64_t session_index) {
  SessionRecord record;
  record.date = date;
  record.session_id = session_id_for(session_index);
  record.kind = SessionKind::kFraudBrowser;

  // Pick a tool: categories 1/2 with weight fraud_cat12_weight, the
  // internally-consistent categories 3/4 otherwise.
  const auto roster = fraudsim::table1_roster();
  std::vector<const fraudsim::FraudBrowserModel*> cat12;
  std::vector<const fraudsim::FraudBrowserModel*> cat34;
  for (const auto& m : roster) {
    if (m.release_date > date) continue;
    if (m.category == fraudsim::FraudCategory::kCategory1 ||
        m.category == fraudsim::FraudCategory::kCategory2) {
      cat12.push_back(&m);
    } else {
      cat34.push_back(&m);
    }
  }
  const bool use_cat12 =
      !cat12.empty() && (cat34.empty() || rng.chance(config_.fraud_cat12_weight));
  const auto& pool = use_cat12 ? cat12 : cat34;
  const auto* model = pool[rng.below(pool.size())];

  // The victim's user-agent: drawn from the population's popularity model
  // but skewed older — marketplace profiles were harvested weeks to
  // months before the fraudster loads them.
  const ua::Vendor vendor = sample_vendor(rng);
  const auto* victim_release = sample_release(
      vendor, date,
      config_.release_age_tau_days * config_.victim_staleness_multiplier,
      config_.victim_straggler_tail, rng);
  assert(victim_release != nullptr);
  const ua::UserAgent victim_ua = victim_release->user_agent(
      rng.chance(0.78) ? ua::Os::kWindows10 : ua::Os::kMacSonoma);

  const fraudsim::FraudProfile profile =
      fraudsim::make_profile(*model, victim_ua, rng);

  record.claimed = profile.claimed_ua;
  record.user_agent = ua::format_user_agent(profile.claimed_ua);
  record.features = store_features(profile.candidate_values, stored_indices);
  record.origin = model->name;
  assign_tags(record, rng);
  if (model->category == fraudsim::FraudCategory::kCategory1) {
    record.ato = rng.chance(config_.fraud_category1_ato);
  }
  return record;
}

SessionRecord SessionGenerator::synthesize(
    const std::vector<std::size_t>& stored_indices, bp::util::Rng& rng,
    std::uint64_t session_index) {
  const int span_days =
      std::max(config_.end_date - config_.start_date, 0);
  const Date date =
      config_.start_date + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(span_days + 1)));

  const double p_privacy = config_.p_brave_standard +
                           config_.p_brave_aggressive + config_.p_tor;
  const double roll = rng.uniform();
  if (roll < config_.p_fraud) {
    return make_fraud(stored_indices, date, rng, session_index);
  }
  if (roll < config_.p_fraud + p_privacy) {
    const double r = rng.uniform() * p_privacy;
    if (r < config_.p_tor) {
      return make_privacy(stored_indices, date, false, true, rng,
                          session_index);
    }
    return make_privacy(stored_indices, date,
                        r < config_.p_tor + config_.p_brave_aggressive, false,
                        rng, session_index);
  }
  return make_benign(stored_indices, date, rng, session_index);
}

SessionRecord SessionGenerator::next_session(
    const std::vector<std::size_t>& stored_indices) {
  return synthesize(stored_indices, rng_, session_counter_++);
}

Dataset SessionGenerator::generate(std::vector<std::size_t> stored_indices) {
  Dataset dataset(std::move(stored_indices));
  std::vector<SessionRecord>& records = dataset.records();
  records.resize(config_.n_sessions);

  // Fixed-size shards, each with an RNG stream split off the seed: the
  // decomposition never depends on the thread count, so the synthetic
  // corpus — and every model trained from it — is reproducible at any
  // BP_THREADS setting.
  const bp::util::Rng root(config_.seed);
  bp::util::parallel_for(
      std::size_t{0}, config_.n_sessions, kGenerateShard,
      [&](std::size_t begin, std::size_t end) {
        const std::size_t shard = begin / kGenerateShard;
        bp::util::Rng shard_rng = root.split(shard);
        for (std::size_t i = begin; i < end; ++i) {
          records[i] =
              synthesize(dataset.stored_indices(), shard_rng, i);
        }
      });
  return dataset;
}

Dataset SessionGenerator::generate() {
  const auto& catalog = browser::FeatureCatalog::instance();
  std::vector<std::size_t> all(catalog.candidate_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return generate(std::move(all));
}

}  // namespace bp::traffic
