// ScoreClient tests: the resilient /score client tier — typed
// outcomes, deadline budgets, deterministic backoff, hedging, the
// circuit breaker, connection pooling, and bp_client_* metrics.
//
// Server behavior is scripted with a plain HttpListener whose handler
// speaks the wire format directly, so every failure mode (503 forever,
// garbage frames, wrong session echo, a stalled first request) is
// produced on demand; the happy path also runs against the real
// ScoreServer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "net/chaos_proxy.h"
#include "net/http_common.h"
#include "net/score_client.h"
#include "net/score_server.h"
#include "net/wire.h"
#include "obs/metrics_registry.h"
#include "serve/model_registry.h"
#include "util/fault.h"

namespace bp::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

// Same tiny model as the score-server suite: Chrome 100 expects
// cluster 0 at (0,0); (10,10) lands in cluster 1 and flags.
core::Polygraph tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign({ua::Vendor::kChrome, 100, ua::Os::kWindows10}, 0);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

// A handler that answers every well-formed /score frame with a valid
// verdict echoing the session — the minimal healthy upstream.
HttpResponse healthy_verdict(const HttpRequest& request,
                             std::uint64_t session_offset = 0) {
  HttpResponse response;
  WireScoreRequest parsed;
  if (parse_score_request(request.body, &parsed) != WireError::kOk) {
    response.status = 400;
    response.body = "bad frame\n";
    return response;
  }
  WireScoreResponse verdict;
  verdict.session_id = parsed.session_id + session_offset;
  verdict.status = serve::ResponseStatus::kScored;
  verdict.flagged = false;
  verdict.risk_factor = 1;
  verdict.predicted_cluster = 0;
  verdict.model_version = 1;
  verdict.latency_micros = 5;
  response.content_type = "application/x-bpwire";
  render_score_response(verdict, &response.body);
  return response;
}

std::unique_ptr<HttpListener> scripted_listener(HttpListener::Handler fn) {
  ListenerConfig config;
  config.keep_alive = true;
  auto listener = std::make_unique<HttpListener>(config, std::move(fn));
  EXPECT_TRUE(listener->running()) << listener->error();
  return listener;
}

ScoreClientConfig client_config(std::uint16_t port) {
  ScoreClientConfig config;
  config.port = port;
  config.io_timeout = 2000ms;
  config.deadline = 5000ms;
  config.sleep_fn = [](std::chrono::milliseconds) {};  // no real backoff wait
  return config;
}

TEST(ScoreClient, ScoresAgainstTheRealScoreServer) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  ScoreServerConfig server_config;
  server_config.router.shards = 1;
  server_config.router.engine.workers = 1;
  server_config.expected_features = 2;
  ScoreServer server(models, server_config);
  ASSERT_TRUE(server.running()) << server.error();

  ScoreClient client(client_config(server.port()));
  const std::int32_t clean[] = {0, 0};
  const ScoreCallResult result = client.score(7, "Chrome 100", clean);
  ASSERT_EQ(result.outcome, ScoreClientOutcome::kOk) << result.error;
  EXPECT_EQ(result.response.session_id, 7u);
  EXPECT_FALSE(result.response.flagged);
  EXPECT_EQ(result.response.predicted_cluster, 0u);
  EXPECT_EQ(result.attempts, 1);

  const std::int32_t fraud[] = {10, 10};
  const ScoreCallResult flagged = client.score(8, "Chrome 100", fraud);
  ASSERT_EQ(flagged.outcome, ScoreClientOutcome::kOk) << flagged.error;
  EXPECT_TRUE(flagged.response.flagged);
  EXPECT_EQ(flagged.response.predicted_cluster, 1u);

  const ScoreClientStats stats = client.stats();
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_FALSE(client.breaker_open());
}

// Three calls ride one pooled keep-alive connection — observed from
// the outside by a pass-through chaos proxy counting TCP connections.
TEST(ScoreClient, PoolsKeepAliveConnections) {
  auto listener =
      scripted_listener([](const HttpRequest& r) { return healthy_verdict(r); });
  ChaosProxyConfig proxy_config;
  proxy_config.upstream_port = listener->port();
  ChaosProxy proxy(proxy_config);
  ASSERT_TRUE(proxy.running()) << proxy.error();

  ScoreClient client(client_config(proxy.port()));
  const std::int32_t features[] = {1, 2};
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_EQ(client.score(s, "Chrome 100", features).outcome,
              ScoreClientOutcome::kOk);
  }
  proxy.stop();
  EXPECT_EQ(proxy.stats().connections, 1u);
  EXPECT_EQ(client.stats().ok, 3u);
}

TEST(ScoreClient, ShedIsRetriedUpToMaxAttempts) {
  auto listener = scripted_listener([](const HttpRequest&) {
    HttpResponse response;
    response.status = 503;
    response.body = "shed\n";
    return response;
  });
  std::vector<std::chrono::milliseconds> sleeps;
  ScoreClientConfig config = client_config(listener->port());
  config.max_attempts = 3;
  config.sleep_fn = [&sleeps](std::chrono::milliseconds d) {
    sleeps.push_back(d);
  };
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};
  const ScoreCallResult result = client.score(5, "Chrome 100", features);
  EXPECT_EQ(result.outcome, ScoreClientOutcome::kShed);
  EXPECT_EQ(result.attempts, 3);
  // Two backoffs: initial 10ms then 20ms, each jittered into
  // [0.5, 1.0) of its base.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_GE(sleeps[0], 5ms);
  EXPECT_LT(sleeps[0], 10ms);
  EXPECT_GE(sleeps[1], 10ms);
  EXPECT_LT(sleeps[1], 20ms);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().shed, 1u);
}

TEST(ScoreClient, BackoffJitterIsDeterministicPerSeed) {
  auto listener = scripted_listener([](const HttpRequest&) {
    HttpResponse response;
    response.status = 503;
    return response;
  });
  const auto schedule_for = [&](std::uint64_t seed) {
    std::vector<std::chrono::milliseconds> sleeps;
    ScoreClientConfig config = client_config(listener->port());
    config.max_attempts = 4;
    config.jitter_seed = seed;
    config.sleep_fn = [&sleeps](std::chrono::milliseconds d) {
      sleeps.push_back(d);
    };
    ScoreClient client(config);
    const std::int32_t features[] = {1};
    client.score(1, "Chrome 100", features);
    return sleeps;
  };
  EXPECT_EQ(schedule_for(42), schedule_for(42));
}

TEST(ScoreClient, RejectionIsTerminalAndDoesNotTripTheBreaker) {
  auto listener = scripted_listener([](const HttpRequest&) {
    HttpResponse response;
    response.status = 400;
    response.body = "bad frame: feature_count\n";
    return response;
  });
  ScoreClientConfig config = client_config(listener->port());
  config.breaker_threshold = 1;  // would open on any counted failure
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};
  const ScoreCallResult result = client.score(5, "Chrome 100", features);
  EXPECT_EQ(result.outcome, ScoreClientOutcome::kRejected);
  EXPECT_EQ(result.attempts, 1);  // no retry: the server understood and said no
  EXPECT_NE(result.error.find("400"), std::string::npos);
  EXPECT_FALSE(client.breaker_open());
}

TEST(ScoreClient, GarbageResponseIsTypedCorrupt) {
  auto listener = scripted_listener([](const HttpRequest&) {
    HttpResponse response;
    response.body = "not a wire frame\n";
    return response;
  });
  ScoreClientConfig config = client_config(listener->port());
  config.max_attempts = 2;
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};
  const ScoreCallResult result = client.score(5, "Chrome 100", features);
  EXPECT_EQ(result.outcome, ScoreClientOutcome::kCorruptResponse);
  EXPECT_EQ(result.attempts, 2);  // corrupt responses are retried
  EXPECT_NE(result.error.find("invalid response frame"), std::string::npos);
}

TEST(ScoreClient, WrongSessionEchoIsTypedCorrupt) {
  auto listener = scripted_listener(
      [](const HttpRequest& r) { return healthy_verdict(r, /*offset=*/1); });
  ScoreClientConfig config = client_config(listener->port());
  config.max_attempts = 2;
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};
  const ScoreCallResult result = client.score(5, "Chrome 100", features);
  EXPECT_EQ(result.outcome, ScoreClientOutcome::kCorruptResponse);
  EXPECT_NE(result.error.find("session echo mismatch"), std::string::npos);
}

// Transport failures open the breaker; while open, calls short-circuit
// without network I/O; after the cooldown one half-open probe goes
// through and a success closes it.
TEST(ScoreClient, BreakerOpensShortCircuitsAndRecloses) {
  auto listener =
      scripted_listener([](const HttpRequest& r) { return healthy_verdict(r); });
  ScoreClientConfig config = client_config(listener->port());
  config.max_attempts = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 2;
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};

  {
    util::ScopedFaults faults("net.sock.connect:1");
    EXPECT_EQ(client.score(1, "Chrome 100", features).outcome,
              ScoreClientOutcome::kTransportError);
    EXPECT_FALSE(client.breaker_open());
    EXPECT_EQ(client.score(2, "Chrome 100", features).outcome,
              ScoreClientOutcome::kTransportError);
    EXPECT_TRUE(client.breaker_open());

    // Two short-circuited calls spend the cooldown — no attempts made.
    EXPECT_EQ(client.score(3, "Chrome 100", features).outcome,
              ScoreClientOutcome::kBreakerOpen);
    EXPECT_EQ(client.score(4, "Chrome 100", features).outcome,
              ScoreClientOutcome::kBreakerOpen);
    EXPECT_EQ(client.stats().attempts, 2u);
  }

  // Connects work again: the half-open probe succeeds and closes it.
  EXPECT_EQ(client.score(5, "Chrome 100", features).outcome,
            ScoreClientOutcome::kOk);
  EXPECT_FALSE(client.breaker_open());
  EXPECT_EQ(client.score(6, "Chrome 100", features).outcome,
            ScoreClientOutcome::kOk);

  const ScoreClientStats stats = client.stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_short_circuits, 2u);
  EXPECT_EQ(stats.transport_errors, 2u);
  EXPECT_EQ(stats.ok, 2u);
}

// A failed half-open probe re-arms the cooldown instead of closing.
TEST(ScoreClient, FailedProbeKeepsTheBreakerOpen) {
  auto listener =
      scripted_listener([](const HttpRequest& r) { return healthy_verdict(r); });
  ScoreClientConfig config = client_config(listener->port());
  config.max_attempts = 1;
  config.breaker_threshold = 1;
  config.breaker_cooldown = 1;
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};

  util::ScopedFaults faults("net.sock.connect:1");
  EXPECT_EQ(client.score(1, "Chrome 100", features).outcome,
            ScoreClientOutcome::kTransportError);
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.score(2, "Chrome 100", features).outcome,
            ScoreClientOutcome::kBreakerOpen);
  // Probe (still failing) — breaker stays open, cooldown re-arms.
  EXPECT_EQ(client.score(3, "Chrome 100", features).outcome,
            ScoreClientOutcome::kTransportError);
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.score(4, "Chrome 100", features).outcome,
            ScoreClientOutcome::kBreakerOpen);
}

// The tail-at-scale move: the first request stalls, the hedge answers,
// the call finishes far sooner than the stall.
TEST(ScoreClient, HedgeWinsOverAStalledPrimary) {
  std::atomic<int> served{0};
  auto listener = scripted_listener([&served](const HttpRequest& r) {
    if (served.fetch_add(1) == 0) std::this_thread::sleep_for(400ms);
    return healthy_verdict(r);
  });
  ScoreClientConfig config = client_config(listener->port());
  config.hedge_delay = 20ms;
  config.max_attempts = 1;
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};

  const Clock::time_point start = Clock::now();
  const ScoreCallResult result = client.score(9, "Chrome 100", features);
  const auto elapsed = Clock::now() - start;
  ASSERT_EQ(result.outcome, ScoreClientOutcome::kOk) << result.error;
  EXPECT_EQ(result.response.session_id, 9u);
  EXPECT_TRUE(result.hedged);
  EXPECT_TRUE(result.hedge_won);
  EXPECT_LT(elapsed, 300ms);  // did not wait out the 400ms stall
  EXPECT_EQ(client.stats().hedges, 1u);
  EXPECT_EQ(client.stats().hedge_wins, 1u);
  listener->stop();  // joins the stalled handler before `served` dies
}

// When every request stalls past the budget, the call returns a typed
// kDeadlineExhausted at the deadline — it does not hang on the stall.
TEST(ScoreClient, DeadlineExhaustedIsTypedAndPrompt) {
  auto listener = scripted_listener([](const HttpRequest& r) {
    std::this_thread::sleep_for(400ms);
    return healthy_verdict(r);
  });
  ScoreClientConfig config = client_config(listener->port());
  config.hedge_delay = 20ms;
  config.deadline = 120ms;
  config.max_attempts = 3;
  ScoreClient client(config);
  const std::int32_t features[] = {1, 2};

  const Clock::time_point start = Clock::now();
  const ScoreCallResult result = client.score(9, "Chrome 100", features);
  const auto elapsed = Clock::now() - start;
  EXPECT_EQ(result.outcome, ScoreClientOutcome::kDeadlineExhausted);
  EXPECT_LT(elapsed, 350ms);  // bounded by the budget, not the stall
  EXPECT_EQ(client.stats().deadline_exhausted, 1u);
  listener->stop();
}

TEST(ScoreClient, RegistryCountersTrackOutcomes) {
  auto listener =
      scripted_listener([](const HttpRequest& r) { return healthy_verdict(r); });
  obs::MetricsRegistry registry;
  ScoreClientConfig config = client_config(listener->port());
  config.registry = &registry;
  {
    ScoreClient client(config);
    const std::int32_t features[] = {1, 2};
    ASSERT_EQ(client.score(5, "Chrome 100", features).outcome,
              ScoreClientOutcome::kOk);
    EXPECT_EQ(registry.counter("bp_client_calls_total").value(), 1u);
    EXPECT_EQ(registry.counter("bp_client_attempts_total").value(), 1u);
    EXPECT_EQ(registry.counter("bp_client_ok_total").value(), 1u);
    EXPECT_EQ(registry.counter("bp_client_transport_errors_total").value(),
              0u);
  }
  // The breaker gauge is a callback into the client: the destructor
  // must have removed it, or rendering would dereference a dead object.
  // (Trailing space so the bp_client_breaker_opens_total counter,
  // which survives, does not match.)
  EXPECT_EQ(registry.render_prometheus().find("bp_client_breaker_open "),
            std::string::npos);
}

}  // namespace
}  // namespace bp::net
