// Quickstart: train Browser Polygraph on synthetic traffic and score a
// few sessions — the minimal end-to-end use of the public API.
//
//   1. generate a training corpus (stand-in for your own session logs);
//   2. train the pipeline (scale -> outlier filter -> PCA -> k-means);
//   3. score sessions: a legitimate browser, a fraud browser with a
//      spoofed victim user-agent, and a privacy browser.
#include <cstdio>

#include "core/polygraph.h"
#include "fraudsim/fraud_browser.h"
#include "traffic/session_generator.h"

int main() {
  using namespace bp;

  // 1. Training data: 30k logged-in sessions.  In production this is
  //    your collection pipeline's output — 28 integers, a user-agent
  //    string, and an opaque session id per row.
  traffic::TrafficConfig traffic_config;
  traffic_config.n_sessions = 30'000;
  traffic::SessionGenerator generator(traffic_config);
  const traffic::Dataset dataset =
      generator.generate(traffic::experiment_feature_indices());
  std::printf("generated %zu sessions\n", dataset.size());

  // 2. Train the production configuration (28 features, PCA 7, k=11).
  core::Polygraph polygraph;
  const ml::Matrix features =
      dataset.feature_matrix(polygraph.config().feature_indices);
  std::vector<ua::UserAgent> user_agents;
  for (const auto& record : dataset.records()) {
    user_agents.push_back(record.claimed);
  }
  const core::TrainingSummary summary =
      polygraph.train(features, user_agents);
  std::printf("trained: accuracy %.2f%%, %zu outliers removed, %zu UAs in "
              "the cluster table\n",
              100.0 * summary.clustering_accuracy,
              summary.rows_outliers_removed, polygraph.cluster_table().size());

  // 3a. A legitimate Chrome 112 session.
  const auto* chrome112 =
      browser::ReleaseDatabase::instance().find(ua::Vendor::kChrome, 112);
  browser::Environment honest;
  honest.release = chrome112;
  honest.session_salt = 1;
  const core::Detection ok = polygraph.score(
      browser::extract_final(honest), honest.presented_user_agent());
  std::printf("\nChrome 112, honest UA      -> flagged=%s risk=%d\n",
              ok.flagged ? "YES" : "no", ok.risk_factor);

  // 3b. A category-2 fraud browser claiming a stolen Firefox profile.
  bp::util::Rng rng(7);
  const auto* gologin = fraudsim::find_model("GoLogin-3.3.23");
  const fraudsim::FraudProfile profile = fraudsim::make_profile(
      *gologin, {ua::Vendor::kFirefox, 110, ua::Os::kWindows10}, rng);
  const core::Detection fraud = polygraph.score(
      browser::select_features(profile.candidate_values,
                               polygraph.config().feature_indices),
      profile.claimed_ua);
  std::printf("GoLogin claiming Firefox   -> flagged=%s risk=%d\n",
              fraud.flagged ? "YES" : "no", fraud.risk_factor);

  // 3c. The same tool claiming a Chrome version near its frozen engine:
  // cluster-consistent, so it slips through (the §7.2 recall ceiling).
  const fraudsim::FraudProfile near_miss = fraudsim::make_profile(
      *gologin, {ua::Vendor::kChrome, 111, ua::Os::kWindows10}, rng);
  const core::Detection miss = polygraph.score(
      browser::select_features(near_miss.candidate_values,
                               polygraph.config().feature_indices),
      near_miss.claimed_ua);
  std::printf("GoLogin claiming Chrome 111 -> flagged=%s risk=%d\n",
              miss.flagged ? "YES" : "no", miss.risk_factor);
  return 0;
}
