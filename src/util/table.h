// Fixed-width ASCII table rendering.
//
// Every bench binary reproduces one table or figure of the paper and
// prints it in a form directly comparable with the published artifact.
// This helper keeps that output consistent across binaries.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace bp::util {

class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience for mixed literal rows.
  void add_row(std::initializer_list<std::string> row) {
    rows_.emplace_back(row);
  }

  std::size_t row_count() const { return rows_.size(); }

  // Render with column alignment, `| a | b |` style with a separator rule
  // under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Render a simple two-column "figure" as an ASCII line/bar chart: one row
// per x value, bar length proportional to y.  Used by the bench binaries
// that reproduce the paper's figures (PCA variance, elbow, anonymity sets).
std::string ascii_chart(const std::vector<std::pair<std::string, double>>& series,
                        int width = 60, char bar = '#');

}  // namespace bp::util
