// Shared harness code for the per-table/figure bench binaries.
//
// Every bench reproduces one artifact of the paper's evaluation and
// prints it in the paper's layout.  They all start from the same
// deterministic training corpus (seed fixed in TrafficConfig) so that
// numbers are comparable across binaries and runs.
#pragma once

#include <string>
#include <vector>

#include "core/polygraph.h"
#include "traffic/dataset.h"
#include "traffic/session_generator.h"

namespace bp::benchmark_support {

// The §7.1 training corpus: 205k logged-in sessions, March 1 to
// July 15, 2023.  `n_sessions` can be reduced for quick runs.
traffic::Dataset make_training_dataset(std::size_t n_sessions = 205'000);

// The §7.3 drift corpus: late-July to October 2023.
traffic::Dataset make_drift_dataset(std::size_t n_sessions = 60'000);

// Train the production model (28 features, PCA 7, k=11) on a dataset.
// `obs` (optional) exports per-stage telemetry and spans the run — see
// Polygraph::train.
struct TrainedPolygraph {
  core::Polygraph model;
  core::TrainingSummary summary;
};
TrainedPolygraph train_production(const traffic::Dataset& data,
                                  core::PolygraphConfig config =
                                      core::PolygraphConfig::production(),
                                  const obs::ObsContext* obs = nullptr);

// Per-row parsed user-agents of a dataset.
std::vector<ua::UserAgent> claimed_uas(const traffic::Dataset& data);

// Render a cluster's user-agents in the paper's Table 3 style:
// "Chrome 110-113, Edge 110-113" (consecutive observed versions
// compressed into ranges, vendors sorted Chrome < Edge < Firefox).
std::string describe_cluster_uas(const std::vector<ua::UserAgent>& uas);

// k-means cluster ids are seed-arbitrary; to make bench output directly
// comparable with the paper, remap a trained model's internal cluster ids
// onto Table 3's numbering using anchor user-agents (Chrome 111 -> 0,
// Firefox 110 -> 1, Chrome 60 -> 2, Chrome 114 -> 3, ...).  Clusters
// holding no UA majority get the paper's omitted ids (7, 8, then any
// remaining id).  Returns internal-id -> paper-id.
std::vector<std::size_t> paper_cluster_numbering(const core::Polygraph& model);

}  // namespace bp::benchmark_support
