// Decision audit trail: the Algorithm-1 evidence behind every flag.
//
// Real-traffic fingerprinting studies stress that a detection system is
// only trustworthy when per-decision evidence is inspectable.  The
// trail records, for every flagged session (and a deterministic sample
// of unflagged ones), everything needed to reconstruct the verdict
// offline: the predicted cluster, the claimed UA's table cluster, the
// centroid distance, the risk factor, the tag bits, and — crucially —
// the version of the model that scored it, so a flag raised just
// before a hot swap replays against the right model.
//
// Replay contract (pinned by AuditReplay tests): given a record and the
// model at `record.model_version` (ModelRegistry::at_version keeps
// every published snapshot alive), re-scoring the session's features
// reproduces predicted_cluster, risk_factor and the flag bit exactly —
// scoring is deterministic and every input is either in the record or
// in the versioned snapshot.
//
// The trail is a bounded mutex-protected ring.  It sits on the response
// path, not the scoring hot loop: flagged sessions are rare and the
// unflagged sample rate is small, so the common case is one pure
// sampling decision (no lock).  Like trace sampling, the unflagged
// sample is deterministic in (seed, session id) via Rng::split.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ua/user_agent.h"

namespace bp::obs {

struct AuditRecord {
  // Tag bits.
  static constexpr std::uint8_t kFlagged = 1u << 0;
  static constexpr std::uint8_t kDegraded = 1u << 1;  // UA-prior fallback
  static constexpr std::uint8_t kSampledUnflagged = 1u << 2;
  // Verdict replayed from the serving tier's content-addressed cache.
  // The evidence fields are byte-identical to the original scoring
  // under the same model_version (the cache stores the full Detection),
  // so replay_flag() is unaffected — the bit records provenance only.
  static constexpr std::uint8_t kCached = 1u << 3;

  std::uint64_t session_id = 0;
  std::uint64_t model_version = 0;  // 0 = degraded (no model involved)
  ua::UserAgent claimed{};
  std::uint32_t predicted_cluster = 0;
  std::int32_t expected_cluster = -1;  // -1 = claimed UA absent from table
  std::int32_t risk_factor = 0;
  double centroid_distance2 = 0.0;  // squared distance to winning centroid
  std::uint8_t tags = 0;
  std::int64_t recorded_at_us = 0;  // steady clock; diagnostic only

  bool flagged() const noexcept { return (tags & kFlagged) != 0; }
  bool degraded() const noexcept { return (tags & kDegraded) != 0; }
  bool cached() const noexcept { return (tags & kCached) != 0; }
};

struct AuditConfig {
  std::size_t capacity = 16384;        // ring slots
  double unflagged_sample_rate = 0.01; // fraction of clean sessions kept
  std::uint64_t seed = 0x9d2c5680;
};

class AuditTrail {
 public:
  explicit AuditTrail(AuditConfig config = {});

  // Deterministic decision: should this *unflagged* session be recorded?
  // Pure in (seed, session_id); flagged sessions are always recorded.
  bool sample_unflagged(std::uint64_t session_id) const noexcept;

  void record(const AuditRecord& record);

  // Ring snapshot, oldest first.
  std::vector<AuditRecord> records() const;

  std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t flagged_recorded() const noexcept {
    return flagged_.load(std::memory_order_relaxed);
  }
  // Records displaced by ring wrap-around.
  std::uint64_t overwritten() const noexcept {
    return overwritten_.load(std::memory_order_relaxed);
  }

  // One JSON object per line (JSONL), oldest first.  Timing is opt-in
  // so the output stays deterministic for replay tooling.  `last_n`
  // bounds the render to the most recent N records (the /auditz?n=K
  // introspection query); the default renders the whole ring.
  std::string render_jsonl(bool include_timing = false,
                           std::size_t last_n = SIZE_MAX) const;

  const AuditConfig& config() const noexcept { return config_; }

  void clear();

 private:
  AuditConfig config_;
  mutable std::mutex mutex_;
  std::vector<AuditRecord> ring_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> flagged_{0};
  std::atomic<std::uint64_t> overwritten_{0};
};

}  // namespace bp::obs
