// fraud_detection_service: the deployment workload of §6.5 on the
// serving subsystem (src/serve).
//
// Offline, a model is trained and persisted; the serving tier reloads
// it and publishes it into a ModelRegistry.  A ScoringEngine (sharded
// worker pool over a bounded queue) then scores a live stream of
// sessions within the paper's ~100 ms budget, while:
//
//   * the drift module (§6.6) watches the Firefox/Chrome 119 era and
//     raises the retraining signal,
//   * a RetrainSupervisor runs the drift->train->validate->publish
//     cycle concurrently with serving and hot-swaps the new model
//     mid-stream with zero downtime — in-flight batches finish on the
//     version they hold; every response names the model version that
//     produced it, and
//   * with --listen, a live introspection plane (src/obs/introspect)
//     serves /metrics, /healthz, /readyz, /statusz, /tracez and
//     /auditz over HTTP while an SLO engine evaluates burn-rate,
//     shed-rate and staleness rules against a sampled metrics window.
//
// Usage:
//   fraud_detection_service                     # batch demo, exits
//   fraud_detection_service --listen 127.0.0.1:0
//     Starts the introspection server before anything is published
//     (watch /readyz flip 503 -> 200 on the first publish), prints
//     "introspection server listening on <addr>:<port>", and after
//     the pipeline completes keeps serving until SIGINT/SIGTERM.
//   fraud_detection_service --score-listen 127.0.0.1:0
//     Additionally starts the network scoring plane (src/net): a
//     POST /score ingress in front of a sharded EngineRouter, up
//     before the first publish (early frames get explicit degraded
//     verdicts; watch them flip to scored on v1).  Prints "score
//     server listening on <addr>:<port>".  Try:
//       curl -s -X POST --data-binary \
//         'bp1|7|Chrome 112|0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0' \
//         http://<addr>:<port>/score
//
// Shutdown on SIGINT/SIGTERM is graceful and ordered: stop the score
// ingress (stop intake -> drain shards -> stop shards), stop the
// introspection server, drain and stop the demo scoring engine, then
// flush the final metrics dump.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/drift.h"
#include "core/model_io.h"
#include "net/score_server.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/introspect/server.h"
#include "obs/metrics_registry.h"
#include "obs/prof/contention.h"
#include "obs/prof/prof.h"
#include "obs/slo/health.h"
#include "obs/slo/slo_engine.h"
#include "obs/slo/time_series.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/retrain_supervisor.h"
#include "serve/scoring_engine.h"
#include "traffic/session_generator.h"
#include "util/fault.h"
#include "util/table.h"

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

bool signalled() { return g_signal.load(std::memory_order_relaxed) != 0; }

// --listen / --score-listen take <addr:port> or <port> (addr defaults
// to loopback; port 0 binds ephemerally and the chosen port is
// printed).
struct ListenSpec {
  bool enabled = false;
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;
};

bool parse_listen_value(const char* flag, const std::string& value,
                        ListenSpec* spec) {
  spec->enabled = true;
  const std::size_t colon = value.rfind(':');
  const std::string port_part =
      colon == std::string::npos ? value : value.substr(colon + 1);
  if (colon != std::string::npos && colon > 0) {
    spec->address = value.substr(0, colon);
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_part.c_str(), &end, 10);
  if (end == port_part.c_str() || *end != '\0' || port > 65535) {
    std::fprintf(stderr, "invalid %s value '%s'\n", flag, value.c_str());
    return false;
  }
  spec->port = static_cast<std::uint16_t>(port);
  return true;
}

bool parse_args(int argc, char** argv, ListenSpec* listen,
                ListenSpec* score_listen, bool* soak) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      if (!parse_listen_value("--listen", argv[++i], listen)) return false;
      continue;
    }
    if (arg == "--score-listen" && i + 1 < argc) {
      if (!parse_listen_value("--score-listen", argv[++i], score_listen)) {
        return false;
      }
      continue;
    }
    if (arg == "--soak") {
      *soak = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--listen <addr:port|port>] "
                 "[--score-listen <addr:port|port>] [--soak]\n",
                 argv[0]);
    return false;
  }
  return true;
}

// Everything the risk dashboard accumulates from responses.  The
// callback runs on worker threads, so state is folded under one mutex
// (cheap next to scoring; ServeMetrics handles the hot counters).
struct Dashboard {
  std::mutex mutex;
  std::map<int, std::size_t> risk_histogram;
  std::map<std::uint64_t, std::size_t> scored_by_version;
  std::size_t flagged = 0;
  std::size_t flagged_ato = 0;
};

bp::core::Polygraph train_model(const bp::traffic::TrafficConfig& config,
                                const bp::obs::ObsContext* obs = nullptr) {
  bp::traffic::SessionGenerator generator(config);
  const bp::traffic::Dataset history =
      generator.generate(bp::traffic::experiment_feature_indices());
  bp::core::Polygraph model;
  const bp::ml::Matrix features =
      history.feature_matrix(model.config().feature_indices);
  std::vector<bp::ua::UserAgent> uas;
  uas.reserve(history.size());
  for (const auto& r : history.records()) uas.push_back(r.claimed);
  const auto summary = model.train(features, uas, obs);
  std::printf("  trained: %.2f%% accuracy on %zu sessions\n",
              100.0 * summary.clustering_accuracy, summary.rows_total);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;

  ListenSpec listen;
  ListenSpec score_listen;
  bool soak = false;
  if (!parse_args(argc, argv, &listen, &score_listen, &soak)) return 2;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // ---- the observability plane (src/obs), production posture ----
  // One process-wide registry shared by training, serving, drift and
  // the fault layer; a 1%-sampled request trace; a full-rate sink for
  // the offline training runs; an audit trail holding Algorithm-1
  // evidence for every flagged verdict (1% of clean ones).  A periodic
  // dumper snapshots the registry for scrape-by-file collection (and
  // flushes one final dump on stop()).
  obs::MetricsRegistry metrics;
  obs::register_fault_metrics(metrics);
  obs::TraceSinkConfig request_trace_config;
  request_trace_config.sample_rate = 0.01;
  obs::TraceSink request_trace(request_trace_config);
  obs::TraceSink training_trace;
  obs::AuditTrail audit;
  obs::PeriodicDumper dumper(metrics, "/tmp/browser_polygraph_metrics.prom",
                             std::chrono::seconds(1));

  // ---- serving tier, constructed before anything is published ----
  // The engine idles (and /readyz answers 503) until the first
  // publish lands; liveness is reachable the whole time.
  constexpr std::size_t kPhaseA = 25'000;   // pre-drift era traffic
  constexpr std::size_t kPhaseB1 = 10'000;  // drift era, old model serving
  constexpr std::size_t kPhaseB2 = 15'000;  // drift era, after the hot swap
  constexpr std::size_t kStream = kPhaseA + kPhaseB1 + kPhaseB2;

  std::vector<std::uint8_t> session_ato(kStream, 0);
  Dashboard dashboard;

  serve::ModelRegistry registry;
  serve::EngineConfig engine_config;
  engine_config.workers = 4;
  engine_config.queue_capacity = 1024;
  engine_config.max_batch = 32;
  engine_config.overflow_policy = serve::OverflowPolicy::kBlock;
  // Content-addressed verdict cache: the demo's traffic stream replays
  // popular (fingerprint, UA) sessions, so repeat verdicts answer at
  // submit() without touching the queue.  /statusz shows the hit rate.
  engine_config.cache_capacity = 4096;
  engine_config.registry = &metrics;
  engine_config.trace = &request_trace;
  engine_config.audit = &audit;
  serve::ScoringEngine engine(
      registry, engine_config, [&](const serve::ScoreResponse& response) {
        if (response.status != serve::ResponseStatus::kScored) return;
        std::lock_guard lock(dashboard.mutex);
        ++dashboard.scored_by_version[response.model_version];
        if (!response.detection.flagged) return;
        ++dashboard.flagged;
        // Soak-mode ids start past the pipeline's range; they carry no
        // ground-truth label.
        if (response.id < session_ato.size()) {
          dashboard.flagged_ato += session_ato[response.id];
        }
        ++dashboard.risk_histogram[response.detection.risk_factor];
      });

  // ---- retraining supervisor (§6.6 made survivable) ----
  // The drift detector raises `drift_flag`; the supervisor owns the
  // retrain -> validate -> hot-swap cycle, with retry/backoff and a
  // breaker that health reporting surfaces.
  std::atomic<bool> drift_flag{false};
  serve::RetrainConfig retrain_cfg;
  retrain_cfg.registry = &metrics;
  retrain_cfg.trace = &training_trace;
  serve::RetrainSupervisor supervisor(
      registry, retrain_cfg,
      [&] { return drift_flag.load(std::memory_order_relaxed); },
      [&]() -> std::optional<core::Polygraph> {
        std::printf("retraining in the background (Mar-Nov window):\n");
        traffic::TrafficConfig retrain_config;
        retrain_config.seed = 20231104;
        retrain_config.n_sessions = 20'000;
        retrain_config.end_date = util::Date::from_ymd(2023, 11, 3);
        const obs::ObsContext retrain_obs{&metrics, &training_trace, 2};
        return train_model(retrain_config, &retrain_obs);
      },
      [](const core::Polygraph& m) { return m.trained(); });

  // ---- SLO plane: sampled window + declarative rules ----
  // The sampler thread snapshots the registry every 200 ms; the rules
  // alarm on windowed behaviour, not lifetime averages.
  obs::slo::TimeSeriesWindow window(metrics, /*capacity=*/512);
  window.track_histogram_over("over_budget", "bp_serve_latency_micros",
                              serve::kLatencyBudgetMicros);
  window.track("answered", "bp_serve_latency_micros");  // histogram count
  window.track_sum("bad_responses",
                   {"bp_serve_shed_total", "bp_serve_deadline_exceeded_total",
                    "bp_serve_rejected_total"});
  window.track_sum("responses",
                   {"bp_serve_scored_total", "bp_serve_degraded_total",
                    "bp_serve_shed_total", "bp_serve_rejected_total"});
  window.track("shed", "bp_serve_shed_total");

  std::vector<obs::slo::SloRule> rules(3);
  rules[0].name = "latency_budget_burn";  // p99-style: ≤1% over 100 ms
  rules[0].kind = obs::slo::SloRule::Kind::kBurnRate;
  rules[0].numerator = "over_budget";
  rules[0].denominator = "answered";
  rules[0].budget = 0.01;
  rules[0].short_window_ms = 10'000;
  rules[0].long_window_ms = 60'000;
  rules[0].gate_readiness = true;
  rules[1].name = "shed_rate";
  rules[1].kind = obs::slo::SloRule::Kind::kErrorRate;
  rules[1].numerator = "bad_responses";
  rules[1].denominator = "responses";
  rules[1].short_window_ms = 10'000;
  rules[1].warn_threshold = 0.01;
  rules[1].page_threshold = 0.05;
  rules[1].gate_readiness = true;
  rules[2].name = "model_staleness";  // fleet-wide; informational only
  rules[2].kind = obs::slo::SloRule::Kind::kCeiling;
  rules[2].numerator = "bp_retrain_staleness_cycles";
  rules[2].warn_threshold = 3;
  rules[2].page_threshold = 10;
  obs::slo::SloEngine slo(std::move(rules));

  // ---- health rollup: serving-tier accessors -> one verdict pair ----
  obs::slo::HealthModel health(
      [&] {
        obs::slo::HealthSignals s;
        const serve::MetricsSnapshot m = engine.metrics();
        const serve::SupervisorStatus st = supervisor.status();
        s.model_version = registry.version();
        s.degraded_active =
            engine_config.degrade_without_model && registry.version() == 0;
        s.workers = engine_config.workers;
        s.stalled_workers = m.stalled_workers;
        s.breaker_open = st.breaker_open;
        s.staleness_cycles = st.staleness_cycles;
        s.quarantined = registry.quarantined();
        s.queue_depth = m.queue_depth;
        s.queue_capacity = engine_config.queue_capacity;
        s.shed_per_second = window.rate_per_second("shed", 10'000);
        s.armed_faults = static_cast<std::uint64_t>(
            util::FaultRegistry::instance().armed_points());
        return s;
      },
      &slo);

  std::atomic<bool> sampler_stop{false};
  std::thread sampler([&] {
    const auto t0 = std::chrono::steady_clock::now();
    while (!sampler_stop.load(std::memory_order_acquire)) {
      const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      window.sample(now_ms);
      slo.evaluate(window, now_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });

  // Declared before the introspection server so statusz_extra's
  // by-reference capture is valid and the introspection server (which
  // reads the router's cache stats per scrape) is destroyed first.
  std::optional<net::ScoreServer> score_server;

  // ---- continuous profiler: wall + CPU sampling over every plane ----
  // Started only alongside --listen (its consumers are /profilez and
  // /profilez.json); batch runs pay nothing.
  obs::prof::Profiler profiler;
  if (listen.enabled) {
    profiler.start({});
  }

  // ---- live introspection (--listen): up before the first publish ----
  std::optional<obs::introspect::IntrospectionServer> server;
  if (listen.enabled) {
    obs::introspect::Sources sources;
    sources.metrics = &metrics;
    sources.trace = &request_trace;
    sources.audit = &audit;
    sources.health = &health;
    sources.slo = &slo;
    sources.profiler = &profiler;
    sources.contention = &obs::prof::ContentionRegistry::instance();
    sources.statusz_extra = [&] {
      std::string extra;
      {
        std::lock_guard lock(dashboard.mutex);
        extra = "flagged: " + std::to_string(dashboard.flagged) + "\n";
        for (const auto& [version, count] : dashboard.scored_by_version) {
          extra += "model v" + std::to_string(version) + " scored " +
                   std::to_string(count) + "\n";
        }
      }
      // Verdict-cache health: hit rate and slot occupancy for the demo
      // engine (and the score server's sharded fold when it is up).
      const serve::CacheStats cache = engine.cache_stats();
      char line[160];
      std::snprintf(line, sizeof(line),
                    "verdict cache: hit_rate=%.3f occupancy=%zu/%zu\n",
                    cache.hit_rate(), cache.occupancy, cache.capacity);
      extra += line;
      if (score_server) {
        const serve::CacheStats net_cache = score_server->router().cache_stats();
        std::snprintf(line, sizeof(line),
                      "net verdict cache: hit_rate=%.3f occupancy=%zu/%zu\n",
                      net_cache.hit_rate(), net_cache.occupancy,
                      net_cache.capacity);
        extra += line;
      }
      // How full the SoA batch kernel runs: one line per histogram
      // bucket that saw a drain ("<=N: count").
      const serve::MetricsSnapshot snap = engine.metrics();
      extra += "batch sizes:";
      bool any = false;
      for (std::size_t b = 0; b < snap.batch_size_histogram.size(); ++b) {
        if (snap.batch_size_histogram[b] == 0) continue;
        any = true;
        if (b < serve::kBatchSizeBucketBounds.size()) {
          std::snprintf(line, sizeof(line), " <=%llu: %llu",
                        static_cast<unsigned long long>(
                            serve::kBatchSizeBucketBounds[b]),
                        static_cast<unsigned long long>(
                            snap.batch_size_histogram[b]));
        } else {
          std::snprintf(line, sizeof(line), " >256: %llu",
                        static_cast<unsigned long long>(
                            snap.batch_size_histogram[b]));
        }
        extra += line;
      }
      extra += any ? "\n" : " (none)\n";
      // Present only when the interposing operator-new TU is linked
      // into this binary (it is — see examples/CMakeLists.txt).
      if (obs::prof::alloc_hook_linked()) {
        const obs::prof::AllocCounts allocs = obs::prof::alloc_counts();
        extra += "alloc hook: linked, counting " +
                 std::string(obs::prof::alloc_counting() ? "on" : "off") +
                 ", allocations=" + std::to_string(allocs.allocations) +
                 " bytes=" + std::to_string(allocs.bytes) + "\n";
      }
      return extra;
    };
    obs::introspect::ServerConfig server_config;
    server_config.bind_address = listen.address;
    server_config.port = listen.port;
    server.emplace(std::move(sources), server_config);
    if (!server->running()) {
      std::fprintf(stderr, "introspection server failed: %s\n",
                   server->error().c_str());
      sampler_stop.store(true, std::memory_order_release);
      sampler.join();
      return 1;
    }
    std::printf("introspection server listening on %s:%u\n",
                listen.address.c_str(), server->port());
    std::fflush(stdout);
  }

  // ---- network scoring plane (--score-listen): POST /score over TCP ----
  // Sharded EngineRouter behind the shared HTTP listener, sharing the
  // demo's ModelRegistry — a hot swap lands on both planes atomically.
  // Up before the first publish: degrade_without_model answers early
  // frames with explicit degraded verdicts instead of hanging them.
  if (score_listen.enabled) {
    net::ScoreServerConfig score_config;
    score_config.listener.bind_address = score_listen.address;
    score_config.listener.port = score_listen.port;
    score_config.listener.handler_threads = 4;
    score_config.router.shards = 2;
    score_config.router.engine.workers = 2;
    score_config.router.engine.queue_capacity = 1024;
    score_config.router.engine.overflow_policy = serve::OverflowPolicy::kReject;
    score_config.router.engine.cache_capacity = 4096;  // per shard
    score_config.router.engine.degrade_without_model = true;
    score_config.router.engine.registry = &metrics;
    score_config.router.engine.metrics_prefix = "bp_net";
    // Cross-hop tracing: frames arriving with a t: trace context get
    // their server-side spans (slot admission, queue wait, kernel,
    // serialize) recorded into the same sink /tracez serves — paste a
    // client's trace id into /tracez?trace=<id> to see this half.
    score_config.router.engine.trace = &request_trace;
    score_config.registry = &metrics;
    // Arm the wire-layer feature-count check with the production width
    // (PolygraphConfig's *default-constructed* index list is empty; the
    // Polygraph ctor and production() both resolve it to the Table 8
    // set the demo's model is trained with).
    score_config.expected_features =
        core::PolygraphConfig::production().feature_indices.size();
    score_server.emplace(registry, std::move(score_config));
    if (!score_server->running()) {
      std::fprintf(stderr, "score server failed: %s\n",
                   score_server->error().c_str());
      if (server) server->stop();
      sampler_stop.store(true, std::memory_order_release);
      sampler.join();
      return 1;
    }
    std::printf("score server listening on %s:%u (%zu shards)\n",
                score_listen.address.c_str(), score_server->port(),
                score_server->router().shards());
    std::fflush(stdout);
  }

  // Ordered graceful teardown, shared by the signal path and the
  // normal exit: stop the score ingress (its stop() is itself ordered:
  // stop intake -> drain shards -> stop shards), stop taking scrapes,
  // drain what the demo engine admitted, stop its workers, then flush
  // the final metrics dump.
  const auto graceful_shutdown = [&] {
    if (score_server) score_server->stop();
    if (server) server->stop();
    engine.drain();
    engine.stop();
    sampler_stop.store(true, std::memory_order_release);
    sampler.join();
    dumper.stop();  // joins the dump thread and flushes one last dump
  };

  // ---- offline: train and persist (§6.5's offline/online split) ----
  std::printf("offline training (Mar-Jul 2023 window):\n");
  traffic::TrafficConfig train_config;
  train_config.n_sessions = 40'000;
  const obs::ObsContext train_obs{&metrics, &training_trace, 1};
  const core::Polygraph trained = train_model(train_config, &train_obs);

  const std::string model_path = "/tmp/browser_polygraph.model";
  if (!core::save_model(trained, model_path)) {
    std::fprintf(stderr, "failed to persist model\n");
    graceful_shutdown();
    return 1;
  }

  // ---- online: load, validate, publish, serve ----
  // publish_from_file is fail-closed: the file is checksummed and
  // validated end to end before any swap, and a bad artifact is
  // quarantined aside with a typed reason (try it:
  // BP_FAULTS=model_io.read:1 makes this load fail deterministically).
  // The publish is also the moment /readyz flips from 503 to 200.
  const serve::PublishReport publish_report =
      registry.publish_from_file(model_path);
  if (!publish_report) {
    std::fprintf(stderr, "refusing to serve: %s%s%s\n",
                 publish_report.error->message().c_str(),
                 publish_report.quarantined_to.empty() ? "" : "; quarantined to ",
                 publish_report.quarantined_to.c_str());
    graceful_shutdown();
    return 1;
  }
  const std::uint64_t v1 = publish_report.version;
  std::printf("model persisted to %s, validated and published as v%llu\n\n",
              model_path.c_str(), static_cast<unsigned long long>(v1));

  const auto& indices = trained.config().feature_indices;
  std::uint64_t next_id = 0;
  // Returns false when a shutdown signal arrived mid-stream.
  const auto stream_sessions = [&](traffic::SessionGenerator& generator,
                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (signalled()) return false;
      traffic::SessionRecord session = generator.next_session(indices);
      session_ato[next_id] = session.ato ? 1 : 0;
      serve::ScoreRequest request;
      request.id = next_id++;
      request.features = std::move(session.features);
      request.claimed = session.claimed;
      if (engine.submit(std::move(request)) != serve::SubmitResult::kAdmitted) {
        std::fprintf(stderr, "submission failed\n");
        std::exit(1);
      }
    }
    return true;
  };

  // ---- phase A: the stable summer (no new-era releases) ----
  traffic::TrafficConfig live_config;
  live_config.seed = 0x117E2024;
  live_config.start_date = util::Date::from_ymd(2023, 7, 20);
  live_config.end_date = util::Date::from_ymd(2023, 9, 30);
  traffic::SessionGenerator live(live_config);
  if (!stream_sessions(live, kPhaseA)) {
    std::printf("shutdown signal received mid-stream; draining\n");
    graceful_shutdown();
    return 0;
  }
  engine.drain();
  std::printf("phase A (stable era): %s\n\n", engine.metrics().summary().c_str());

  // A supervision cycle with no drift: staleness grows by one, the
  // frozen model keeps serving.
  if (supervisor.run_cycle() != serve::CycleResult::kNoDrift) {
    std::fprintf(stderr, "expected a no-drift cycle in the stable era\n");
    return 1;
  }

  // ---- drift check (§6.6): the 119 era arrives ----
  traffic::TrafficConfig drift_config;
  drift_config.seed = 20231103;
  drift_config.n_sessions = 15'000;
  drift_config.start_date = util::Date::from_ymd(2023, 10, 20);
  drift_config.end_date = util::Date::from_ymd(2023, 11, 3);
  traffic::SessionGenerator drift_generator(drift_config);
  const traffic::Dataset drift_data =
      drift_generator.generate(traffic::experiment_feature_indices());

  const core::DriftDetector detector(trained, 0.98, &metrics);
  const core::DriftReport report = detector.check(
      drift_data,
      {{ua::Vendor::kFirefox, 119, ua::Os::kWindows10},
       {ua::Vendor::kChrome, 119, ua::Os::kWindows10}},
      util::Date::from_ymd(2023, 11, 2));
  for (const auto& entry : report.entries) {
    std::printf("drift check %s: accuracy %.1f%%%s%s\n",
                entry.release.label().c_str(), 100.0 * entry.accuracy,
                entry.cluster_changed ? " [cluster changed]" : "",
                entry.accuracy_below_threshold ? " [below threshold]" : "");
  }
  if (!report.retraining_required) {
    std::fprintf(stderr, "expected the 119 era to trigger retraining\n");
    return 1;
  }
  drift_flag.store(true, std::memory_order_relaxed);
  std::printf("retraining signal raised; serving continues on v%llu\n\n",
              static_cast<unsigned long long>(registry.version()));

  // ---- phase B: drift-era traffic; supervised retrain + hot swap ----
  traffic::TrafficConfig live_b_config;
  live_b_config.seed = 0x117E2025;
  live_b_config.start_date = util::Date::from_ymd(2023, 10, 20);
  live_b_config.end_date = util::Date::from_ymd(2023, 11, 3);
  traffic::SessionGenerator live_b(live_b_config);

  std::thread retrainer([&] {
    const serve::CycleResult result = supervisor.run_cycle();
    if (result != serve::CycleResult::kPublished) {
      const std::string_view name = serve::cycle_result_name(result);
      std::fprintf(stderr, "retrain cycle did not publish: %.*s\n",
                   static_cast<int>(name.size()), name.data());
    }
  });

  const bool phase_b1_done = stream_sessions(live_b, kPhaseB1);
  retrainer.join();
  if (!phase_b1_done) {
    std::printf("shutdown signal received mid-stream; draining\n");
    graceful_shutdown();
    return 0;
  }
  const std::uint64_t v2 = supervisor.status().last_published_version;
  std::printf("hot-swapped to v%llu mid-stream (engine never paused)\n\n",
              static_cast<unsigned long long>(v2));
  if (!stream_sessions(live_b, kPhaseB2)) {  // served by the fresh model
    std::printf("shutdown signal received mid-stream; draining\n");
    graceful_shutdown();
    return 0;
  }
  engine.drain();

  const serve::MetricsSnapshot snapshot = engine.metrics();
  std::printf("phase B (drift era):  %s\n", snapshot.summary().c_str());

  // ---- the risk team's view ----
  {
    std::lock_guard lock(dashboard.mutex);
    std::printf("\nserved %zu sessions, flagged %zu (%.2f%%), of which %zu "
                "became ATO within 72h\n",
                kStream, dashboard.flagged,
                100.0 * dashboard.flagged / kStream, dashboard.flagged_ato);
    for (const auto& [version, count] : dashboard.scored_by_version) {
      std::printf("  model v%llu scored %zu sessions\n",
                  static_cast<unsigned long long>(version), count);
    }
    if (dashboard.scored_by_version.size() < 2) {
      std::fprintf(stderr, "expected sessions under both model versions\n");
      return 1;
    }

    util::TextTable table({"risk_factor", "sessions"});
    for (const auto& [risk, count] : dashboard.risk_histogram) {
      table.add_row({std::to_string(risk), std::to_string(count)});
    }
    std::printf("\nrisk-factor histogram of flagged sessions:\n%s",
                table.render().c_str());
    std::printf(
        "\nA risk-based-authentication system consumes these factors as one\n"
        "signal among many: risk 0-1 near-misses are soft signals, vendor\n"
        "mismatches (risk %d) warrant step-up authentication.\n",
        trained.config().vendor_distance);
  }

  // ---- the SRE's view: one registry over the whole deployment ----
  std::printf("\ntraces: %llu request-path records in the ring "
              "(%llu displaced), 1%% deterministic sampling\n",
              static_cast<unsigned long long>(request_trace.recorded()),
              static_cast<unsigned long long>(request_trace.overwritten()));
  std::printf("audit: %llu verdicts recorded (%llu flagged), each "
              "replayable offline against its model version\n",
              static_cast<unsigned long long>(audit.recorded()),
              static_cast<unsigned long long>(audit.flagged_recorded()));
  std::printf("\ntraining stage spans (trace 1 = initial, 2 = retrain):\n%s",
              training_trace.render(/*include_timing=*/true).c_str());
  const obs::slo::HealthReport final_health = health.evaluate();
  std::printf("\nhealth rollup:\n%s", final_health.detail.c_str());
  std::printf("\ntelemetry (Prometheus exposition, dumped every second to "
              "/tmp/browser_polygraph_metrics.prom):\n%s",
              metrics.render_prometheus().c_str());

  if (!snapshot.within_budget()) {
    std::fprintf(stderr, "p99 latency exceeded the 100 ms budget\n");
    return 1;
  }

  // With --listen / --score-listen the pipeline's end is not the
  // service's end: keep the network planes up until a signal arrives.
  if (server || score_server) {
    if (server) {
      std::printf("\npipeline complete; introspection server still listening "
                  "on %s:%u — SIGINT/SIGTERM to exit\n",
                  listen.address.c_str(), server->port());
    }
    if (score_server) {
      std::printf("%sscore server still answering POST /score on %s:%u — "
                  "SIGINT/SIGTERM to exit\n",
                  server ? "" : "\npipeline complete; ",
                  score_listen.address.c_str(), score_server->port());
    }
    // --soak keeps the scoring kernel hot while listening: a background
    // stream of sessions, each with one feature perturbed so the
    // content-addressed verdict cache never absorbs it.  A /profilez
    // window opened against the live service then has real serve.*
    // work to attribute instead of an idle queue.
    std::thread soak_thread;
    if (soak) {
      soak_thread = std::thread([&] {
        traffic::TrafficConfig soak_config;
        soak_config.seed = 0x50AC;
        traffic::SessionGenerator soak_traffic(soak_config);
        std::uint64_t soak_id = kStream;
        std::int32_t spin = 0;
        while (!signalled()) {
          traffic::SessionRecord session = soak_traffic.next_session(indices);
          serve::ScoreRequest request;
          request.id = soak_id++;
          request.features = std::move(session.features);
          if (!request.features.empty()) request.features[0] ^= ++spin;
          request.claimed = session.claimed;
          // kBlock overflow self-paces against the workers; anything
          // short of admission just means the next iteration retries.
          (void)engine.submit(std::move(request));
        }
      });
      std::printf("soak traffic running: cache-busting sessions keep the "
                  "scoring kernel busy for live profiling\n");
    }
    std::fflush(stdout);
    while (!signalled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("shutdown signal received; stopping\n");
    if (soak_thread.joinable()) soak_thread.join();
  }
  graceful_shutdown();
  return 0;
}
