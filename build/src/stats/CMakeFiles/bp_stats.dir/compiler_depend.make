# Empty compiler generated dependencies file for bp_stats.
# This may be replaced when dependencies are built.
