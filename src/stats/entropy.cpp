#include "stats/entropy.h"

#include <algorithm>
#include <cmath>

namespace bp::stats {

std::map<std::string, std::size_t> histogram(
    const std::vector<std::string>& values) {
  std::map<std::string, std::size_t> counts;
  for (const auto& v : values) ++counts[v];
  return counts;
}

double shannon_entropy(const std::map<std::string, std::size_t>& counts) {
  std::size_t total = 0;
  for (const auto& [value, count] : counts) total += count;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double shannon_entropy(const std::vector<std::string>& values) {
  return shannon_entropy(histogram(values));
}

double normalized_entropy(const std::vector<std::string>& values) {
  if (values.size() < 2) return 0.0;
  const double h = shannon_entropy(values);
  return h / std::log2(static_cast<double>(values.size()));
}

AnonymitySetStats anonymity_sets(const std::vector<std::string>& values) {
  AnonymitySetStats stats;
  stats.observations = values.size();
  if (values.empty()) return stats;

  const auto counts = histogram(values);
  stats.distinct_values = counts.size();

  std::size_t unique = 0;
  std::size_t small = 0;
  std::size_t medium = 0;
  std::size_t large = 0;
  for (const auto& [value, count] : counts) {
    if (count == 1) {
      unique += count;
    } else if (count <= 10) {
      small += count;
    } else if (count <= 50) {
      medium += count;
    } else {
      large += count;
    }
  }
  const double n = static_cast<double>(values.size());
  stats.pct_unique = 100.0 * static_cast<double>(unique) / n;
  stats.pct_2_to_10 = 100.0 * static_cast<double>(small) / n;
  stats.pct_11_to_50 = 100.0 * static_cast<double>(medium) / n;
  stats.pct_over_50 = 100.0 * static_cast<double>(large) / n;
  return stats;
}

std::vector<std::pair<std::size_t, double>> anonymity_distribution(
    const std::vector<std::string>& values) {
  std::vector<std::pair<std::size_t, double>> out;
  if (values.empty()) return out;
  const auto counts = histogram(values);

  // set size -> number of observations in sets of that size
  std::map<std::size_t, std::size_t> by_size;
  for (const auto& [value, count] : counts) by_size[count] += count;

  const double n = static_cast<double>(values.size());
  out.reserve(by_size.size());
  for (const auto& [size, observations] : by_size) {
    out.emplace_back(size, 100.0 * static_cast<double>(observations) / n);
  }
  return out;
}

}  // namespace bp::stats
