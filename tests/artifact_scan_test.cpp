// Tests for the vendor-artifact scanner and the simulated window
// namespaces (§8's software-specific fingerprinting).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/artifact_scan.h"
#include "fraudsim/artifacts.h"
#include "ml/stratified.h"

namespace bp {
namespace {

TEST(Artifacts, AntBrowserLeaksItsNamespace) {
  const auto* model = fraudsim::find_model("AntBrowser");
  ASSERT_NE(model, nullptr);
  const auto names = fraudsim::window_artifacts(*model, 1);
  EXPECT_NE(std::find(names.begin(), names.end(), "ANTBROWSER"), names.end());
}

TEST(Artifacts, CommodityCategory2ToolsAreClean) {
  for (const char* name :
       {"Incogniton-3.2.7.7", "GoLogin-3.3.23", "VMLogin-1.3.8.5",
        "Octo Browser-1.10", "Sphere-1.3", "CheBrowser-0.3.38"}) {
    const auto* model = fraudsim::find_model(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_TRUE(fraudsim::window_artifacts(*model, 5).empty()) << name;
  }
}

TEST(Artifacts, StockGlobalsAreEngineSpecific) {
  const auto blink = fraudsim::stock_window_globals(browser::Engine::kBlink);
  const auto gecko = fraudsim::stock_window_globals(browser::Engine::kGecko);
  EXPECT_NE(std::find(blink.begin(), blink.end(), "chrome"), blink.end());
  EXPECT_EQ(std::find(gecko.begin(), gecko.end(), "chrome"), gecko.end());
}

TEST(Scanner, BuiltinSignaturesDetectAntBrowser) {
  const auto scanner = core::ArtifactScanner::with_builtin_signatures();
  const auto id = scanner.identify({"window", "ANTBROWSER", "document"});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, "AntBrowser");
}

TEST(Scanner, PrefixMatchIsCaseInsensitive) {
  const auto scanner = core::ArtifactScanner::with_builtin_signatures();
  EXPECT_TRUE(scanner.identify({"AntBrowserProfile"}).has_value());
  EXPECT_TRUE(scanner.identify({"antbrowserprofile"}).has_value());
}

TEST(Scanner, CleanNamespaceNoMatch) {
  const auto scanner = core::ArtifactScanner::with_builtin_signatures();
  for (const auto engine : {browser::Engine::kBlink, browser::Engine::kGecko,
                            browser::Engine::kEdgeHtml}) {
    EXPECT_FALSE(
        scanner.identify(fraudsim::stock_window_globals(engine)).has_value());
  }
}

TEST(Scanner, ScanReportsEveryHit) {
  const auto scanner = core::ArtifactScanner::with_builtin_signatures();
  const auto matches =
      scanner.scan({"ANTBROWSER", "antBrowserProfile", "document"});
  EXPECT_EQ(matches.size(), 2u);
}

TEST(Scanner, CustomSignature) {
  core::ArtifactScanner scanner;
  scanner.add_signature({"MyTool", "", "mytool_"});
  EXPECT_EQ(scanner.identify({"mytool_hook"}).value_or(""), "MyTool");
  EXPECT_FALSE(scanner.identify({"other"}).has_value());
}

TEST(Scanner, EndToEndOverRoster) {
  // Every tool that leaks artifacts is identified; the clean ones are
  // left to the clustering pipeline.
  const auto scanner = core::ArtifactScanner::with_builtin_signatures();
  for (const auto& model : fraudsim::table1_roster()) {
    auto globals = fraudsim::stock_window_globals(model.base_engine);
    const auto artifacts = fraudsim::window_artifacts(model, 0);
    globals.insert(globals.end(), artifacts.begin(), artifacts.end());
    const auto id = scanner.identify(globals);
    if (!artifacts.empty()) {
      ASSERT_TRUE(id.has_value()) << model.name;
      EXPECT_NE(model.name.find(id->substr(0, 4)), std::string::npos)
          << model.name << " identified as " << *id;
    } else {
      EXPECT_FALSE(id.has_value()) << model.name;
    }
  }
}

// ------------------------- stratified sampling -------------------------

TEST(Stratified, CapsLargeStrata) {
  std::vector<std::uint32_t> strata;
  for (int i = 0; i < 5'000; ++i) strata.push_back(1);
  for (int i = 0; i < 40; ++i) strata.push_back(2);
  ml::StratifiedConfig config;
  config.max_per_stratum = 1'000;
  config.min_per_stratum = 25;
  const auto kept = ml::stratified_sample(strata, config);

  std::size_t big = 0;
  std::size_t small = 0;
  for (std::size_t idx : kept) (strata[idx] == 1 ? big : small) += 1;
  EXPECT_EQ(big, 1'000u);
  EXPECT_EQ(small, 40u);  // below min: keep everything
}

TEST(Stratified, KeepFractionApplies) {
  std::vector<std::uint32_t> strata(10'000, 7);
  ml::StratifiedConfig config;
  config.max_per_stratum = 100'000;
  config.min_per_stratum = 1;
  config.keep_fraction = 0.1;
  const auto kept = ml::stratified_sample(strata, config);
  EXPECT_EQ(kept.size(), 1'000u);
}

TEST(Stratified, OutputSortedAndUnique) {
  std::vector<std::uint32_t> strata;
  for (int i = 0; i < 300; ++i) strata.push_back(i % 3);
  ml::StratifiedConfig config;
  config.max_per_stratum = 50;
  const auto kept = ml::stratified_sample(strata, config);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LT(kept[i - 1], kept[i]);
  }
}

TEST(Stratified, DeterministicGivenSeed) {
  std::vector<std::uint32_t> strata(500, 3);
  ml::StratifiedConfig config;
  config.max_per_stratum = 100;
  EXPECT_EQ(ml::stratified_sample(strata, config),
            ml::stratified_sample(strata, config));
}

TEST(Stratified, RareStrataFullyRepresented) {
  std::vector<std::uint32_t> strata;
  for (int s = 0; s < 50; ++s) {
    for (int i = 0; i < 4; ++i) strata.push_back(static_cast<std::uint32_t>(s));
  }
  ml::StratifiedConfig config;
  config.max_per_stratum = 10;
  config.min_per_stratum = 4;
  const auto kept = ml::stratified_sample(strata, config);
  EXPECT_EQ(kept.size(), strata.size());
}

}  // namespace
}  // namespace bp
