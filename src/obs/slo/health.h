// Health rollup: one place that folds SLO state and live subsystem
// signals into the two verdicts a load balancer and an orchestrator
// actually consume.
//
//   /healthz (liveness)       — "is this process worth keeping alive?"
//     Fails only when the process is wedged beyond self-repair: every
//     scoring worker stalled inside one batch.  A missing model, an
//     open retrain breaker or a paging SLO are NOT liveness failures —
//     restarting would not conjure a model.
//
//   /readyz (serving fitness) — "should traffic be routed here?"
//     Requires liveness, a published model (ModelRegistry::version()
//     != 0), degraded mode not active, and no readiness-gating SLO
//     rule held at kPage.  This is the check an operator runs before
//     and after a hot swap: readiness flips to false while nothing is
//     published and back the moment a publish lands.
//
// The model pulls signals through one injectable callable so bp_obs
// never depends on bp_serve (serve already depends on obs): the caller
// snapshots ScoringEngine / RetrainSupervisor / ModelRegistry
// accessors into a HealthSignals value.  fold() is a pure function of
// (signals, worst gating alert) — the unit-testable core — and
// evaluate() is fold() over a fresh pull.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/slo/slo_engine.h"

namespace bp::obs::slo {

// One snapshot of everything health cares about, pulled from the
// serving tier's accessors.  Fields default to the most conservative
// reading ("nothing published, nothing wrong").
struct HealthSignals {
  std::uint64_t model_version = 0;  // ModelRegistry::version(); 0 = none
  bool degraded_active = false;     // engine answering via the UA prior
  std::uint64_t workers = 0;        // scoring pool size
  std::uint64_t stalled_workers = 0;  // watchdog count
  bool breaker_open = false;          // RetrainSupervisor breaker
  std::uint64_t staleness_cycles = 0;  // cycles since last publish
  std::uint64_t quarantined = 0;       // ModelRegistry::quarantined()
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  double shed_per_second = 0.0;  // from the window; informational
  std::uint64_t armed_faults = 0;  // chaos posture, shown in /statusz
};

struct HealthReport {
  bool live = true;
  bool ready = false;
  AlertState worst_alert = AlertState::kOk;  // across ALL rules
  // Multi-line human-readable rollup (the /statusz core): one line per
  // contributing signal, verdict lines first.
  std::string detail;
};

class HealthModel {
 public:
  using SignalsFn = std::function<HealthSignals()>;

  // `slo` may be null (no SLO engine: alerts read kOk).  Both, when
  // set, must outlive the model.
  explicit HealthModel(SignalsFn signals, const SloEngine* slo = nullptr);

  // Pure verdict: no clocks, no pulls — the unit-test surface.
  // `worst_gating` is the worst held state across readiness-gating
  // rules; `worst_any` across all rules (reported, not gating).
  static HealthReport fold(const HealthSignals& signals,
                           AlertState worst_gating, AlertState worst_any);

  // Pull signals + SLO states and fold.
  HealthReport evaluate() const;

 private:
  SignalsFn signals_;
  const SloEngine* slo_;
};

}  // namespace bp::obs::slo
