// Fine-grained fingerprint collectors (baselines of Table 2 and
// Appendix-5).
//
// These are synthetic but *working* counterparts of FingerprintJS,
// ClientJS, and AmIUnique: each produces a nested JSON profile from a
// browser Environment and pays a realistic compute cost while doing so —
// the canvas probe renders into a pixel buffer and hashes it, the audio
// probe synthesizes an oscillator, the font probe measures a text string
// against a library of font metrics.  Table 2's service-time/storage
// comparison is measured against this real work, so the *ordering*
// (AmIUnique >> FingerprintJS > ClientJS > Polygraph; all fine-grained
// payloads >> 1KB) is a property of the code, not of hard-coded numbers.
#pragma once

#include <string>

#include "baseline/profile.h"
#include "browser/environment.h"

namespace bp::baseline {

enum class Collector {
  kFingerprintJs,
  kClientJs,
  kAmIUnique,
};

std::string_view collector_name(Collector c) noexcept;

// Collect a fine-grained profile for a visit from `env`.  Deterministic
// given (env, install_salt); install-level entropy (GPU raster noise,
// audio DSP rounding, font library differences) is derived from the
// salt, mirroring how fine-grained fingerprints differ across machines
// running the identical browser build.
ProfileValue collect(Collector collector, const browser::Environment& env);

// ----- individual probes (exposed for tests and microbenchmarks) -----

// Render a deterministic scene into a WxH RGBA buffer and hash it.
// The hash varies with engine raster behaviour and install salt.
std::uint64_t canvas_probe(const browser::Environment& env, int width,
                           int height);

// Synthesize `samples` of an oscillator through a simulated dynamics
// compressor and hash the output.
std::uint64_t audio_probe(const browser::Environment& env, int samples);

// Measure a reference string against the library of `n_fonts` candidate
// fonts; returns the list of fonts "installed" in this environment.
std::vector<std::string> font_probe(const browser::Environment& env,
                                    int n_fonts);

// WebGL parameter dump (vendor/renderer strings + numeric limits).
ProfileValue webgl_probe(const browser::Environment& env);

}  // namespace bp::baseline
