// The candidate-fingerprint catalog (paper §6.1, Appendix-1, Appendix-3).
//
// Browser Polygraph's raw data collection ships 513 *candidate* features:
//   * 200 deviation-based features — the value of
//     Object.getOwnPropertyNames(<Interface>.prototype).length — chosen
//     from MDN's interface list by standard deviation across candidate
//     browsers (the full name list of Appendix-3);
//   * 313 time-based features — presence bits in the style of
//     BrowserPrint (Akhavani et al.), i.e.
//     <Interface>.prototype.hasOwnProperty('<prop>').
// Pre-processing (§6.3) then narrows these to the production set of
// 28 features (22 deviation-based + 6 time-based, Table 8).
//
// The catalog is pure metadata: stable names, kinds, and the index
// mapping between the candidate set and the final set.  Value synthesis
// lives in engine_timelines.*.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bp::browser {

enum class FeatureKind : std::uint8_t {
  kDeviationBased,  // integer property count
  kTimeBased,       // 0/1 presence bit
};

struct FeatureSpec {
  std::string name;     // full JavaScript expression, as collected
  FeatureKind kind;
  bool in_final_set;    // member of the production 28 (Table 8)
};

class FeatureCatalog {
 public:
  // The canonical catalog: 513 candidates in collection order; the first
  // 200 are deviation-based, the remaining 313 time-based.  Table 8's 28
  // features appear among them with in_final_set = true.
  static const FeatureCatalog& instance();

  std::size_t candidate_count() const noexcept { return specs_.size(); }
  std::size_t final_count() const noexcept { return final_indices_.size(); }

  const FeatureSpec& spec(std::size_t candidate_index) const {
    return specs_[candidate_index];
  }

  // Candidate index of the i-th final feature (i in [0, 28)), in Table 8
  // order: 22 deviation-based then 6 time-based.
  const std::vector<std::size_t>& final_indices() const noexcept {
    return final_indices_;
  }

  // Candidate index by exact feature name; npos when unknown.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(std::string_view name) const;

  // Interface name embedded in a deviation-based feature (e.g. "Element"
  // from "Object.getOwnPropertyNames(Element.prototype).length");
  // empty for time-based features.
  static std::string interface_of(std::string_view feature_name);

  // Candidate features that manual analysis (§6.3) found to be strongly
  // influenced by user configuration (Firefox about:config, extensions)
  // and therefore excluded even when the automatic filters keep them.
  const std::vector<std::size_t>& config_sensitive_indices() const noexcept {
    return config_sensitive_;
  }

  // Appendix-4's sensitivity analysis grows the feature set from 28 to
  // 32/36/42 by adding specific named features; these return the
  // candidate indices added at each step (4, then 4, then 6 more).
  std::vector<std::size_t> appendix4_extension(std::size_t target_count) const;

 private:
  FeatureCatalog();

  std::vector<FeatureSpec> specs_;
  std::vector<std::size_t> final_indices_;
  std::vector<std::size_t> config_sensitive_;
};

}  // namespace bp::browser
