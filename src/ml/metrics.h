// Clustering quality metrics.
//
// The paper's central accuracy notion (Appendix-4, Formula 1) is the
// majority-cluster metric for semi-supervised evaluation: each distinct
// label (user-agent) is assigned the cluster that holds the majority of
// its rows, and a row is "correct" when it sits in its label's majority
// cluster.  Model accuracy is the fraction of correct rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace bp::ml {

// Majority cluster per label, given per-row (label, cluster) pairs.
// Labels are arbitrary integer keys (we use ua::UserAgent::key()).
std::map<std::uint32_t, std::size_t> majority_clusters(
    const std::vector<std::uint32_t>& labels,
    const std::vector<std::size_t>& clusters);

struct ClusterAccuracy {
  double row_accuracy = 0.0;    // fraction of rows in their majority cluster
  std::size_t total_rows = 0;
  std::size_t correct_rows = 0;
  std::map<std::uint32_t, std::size_t> majority;  // label -> cluster
};

ClusterAccuracy clustering_accuracy(const std::vector<std::uint32_t>& labels,
                                    const std::vector<std::size_t>& clusters);

// Per-label accuracy: the fraction of a single label's rows assigned to
// that label's majority cluster (used by the drift analysis, Table 6).
struct LabelAccuracy {
  std::size_t cluster = 0;   // the majority cluster
  double accuracy = 0.0;     // fraction of rows in it
  std::size_t count = 0;     // rows carrying the label
};

std::map<std::uint32_t, LabelAccuracy> per_label_accuracy(
    const std::vector<std::uint32_t>& labels,
    const std::vector<std::size_t>& clusters);

}  // namespace bp::ml
