// Deterministic pseudo-random number generation for Browser Polygraph.
//
// Every stochastic component in this repository (traffic synthesis, fraud
// browser profile creation, k-means++ seeding, isolation-forest splits)
// draws from one of these generators so that experiments are reproducible
// bit-for-bit from a single seed.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace bp::util {

// SplitMix64 — used for seeding and for cheap stateless hashing.
// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit mix of a single value (one SplitMix64 round).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

// FNV-1a hash of a byte string; used to derive per-entity sub-seeds from
// stable names (browser names, feature names) so adding entities does not
// perturb the random streams of existing ones.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// xoshiro256** 1.0 — the repository-wide PRNG.  Satisfies (a relaxed
// subset of) UniformRandomBitGenerator so it can be handed to <random>
// distributions if ever needed, though we provide the distributions we
// use directly to keep results identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  // Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  // Standard normal via Box-Muller (cached second value).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  // Exponential with rate lambda.
  double exponential(double lambda) noexcept;

  // Geometric-ish integer noise: 0 with prob 1-p, else +/-1, +/-2 ... with
  // geometrically decaying magnitude.  Models small integer perturbations
  // of property counts caused by user configuration.
  int integer_noise(double p, double decay = 0.5) noexcept;

  // Sample an index from a discrete distribution given non-negative
  // weights (need not be normalized).  Returns weights.size() only when
  // all weights are zero or the span is empty.
  std::size_t weighted(std::span<const double> weights) noexcept;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Sample k distinct indices from [0, n).  k is clamped to n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

  // Derive an independent child generator.  Streams of parent and child
  // do not overlap for any practical draw count.
  Rng fork(std::uint64_t salt) noexcept {
    return Rng{mix64(next() ^ mix64(salt))};
  }

  // Derive the `stream_id`-th independent child stream as a pure
  // function of the current state — unlike fork(), the parent does not
  // advance, so split(0..n-1) yields the same n streams no matter which
  // order (or on which thread) they are materialized.  This is what the
  // parallel training paths use: one pre-split stream per k-means
  // restart, per isolation-forest tree, and per traffic-synthesis
  // shard, making results independent of the thread count.
  Rng split(std::uint64_t stream_id) const noexcept {
    const std::uint64_t state_digest =
        state_[0] ^ rotl(state_[1], 17) ^ rotl(state_[2], 29) ^
        rotl(state_[3], 43);
    return Rng{mix64(mix64(state_digest) ^
                     mix64(stream_id + 0x9e3779b97f4a7c15ULL))};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bp::util
