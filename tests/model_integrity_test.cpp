// Integrity tests for model persistence and the registry's fail-closed
// publish path: table-driven corruption of every line of the serialized
// format (truncate / bit-flip / delete), typed LoadError reporting,
// atomic save semantics, quarantine and rollback.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "serve/model_registry.h"
#include "util/csv.h"
#include "util/fault.h"

namespace bp::core {
namespace {

ua::UserAgent chrome(int v) { return {ua::Vendor::kChrome, v, ua::Os::kWindows10}; }
ua::UserAgent firefox(int v) {
  return {ua::Vendor::kFirefox, v, ua::Os::kWindows10};
}

// Same minimal hand-assembled model the ModelIo tests use: identity
// scaler/PCA over 2 features, 2 centroids, 2 table entries.
Polygraph tiny_model(bool swapped_table = false) {
  PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  ClusterTable table;
  table.assign(chrome(100), swapped_table ? 1 : 0);
  table.assign(firefox(100), swapped_table ? 0 : 1);
  return Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// Strip the checksum footer so a mutation can be re-sealed with a valid
// checksum — that is how parser-level (post-checksum) errors are reached.
std::string payload_of(const std::string& text) {
  const std::size_t footer = text.rfind("\nchecksum ");
  return footer == std::string::npos ? text : text.substr(0, footer + 1);
}

TEST(ModelIntegrity, SerializedModelEndsWithChecksumFooter) {
  const std::string text = serialize_model(tiny_model());
  const auto lines = split_lines(text);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back().rfind("checksum ", 0), 0u);
  // Re-sealing the intact file is a no-op.
  EXPECT_EQ(with_model_checksum(text), text);
}

TEST(ModelIntegrity, ChecksumCoversPayloadExactly) {
  const std::string text = serialize_model(tiny_model());
  const std::string payload = payload_of(text);
  const std::string resealed = with_model_checksum(payload);
  EXPECT_EQ(resealed, text);
  EXPECT_TRUE(deserialize_model(resealed).has_value());
}

// The tentpole's table-driven sweep: every line of the file, three
// corruptions each.  None may crash, none may yield a model.
TEST(ModelIntegrity, EveryLineTruncationBitFlipAndDeletionIsRejected) {
  const std::string text = serialize_model(tiny_model());
  const auto lines = split_lines(text);
  ASSERT_GT(lines.size(), 15u);

  for (std::size_t i = 0; i < lines.size(); ++i) {
    // (a) Truncate: keep only the first i lines (i == size would be the
    // intact file).
    if (i < lines.size()) {
      std::vector<std::string> prefix(lines.begin(), lines.begin() + i);
      const auto r = deserialize_model(join_lines(prefix));
      EXPECT_FALSE(r.has_value()) << "truncated after " << i << " lines";
    }

    // (b) Bit-flip: mutate one character of line i.
    {
      auto mutated = lines;
      ASSERT_FALSE(mutated[i].empty()) << "line " << i;
      char& c = mutated[i][mutated[i].size() / 2];
      c = (c == '#') ? '*' : '#';
      const auto r = deserialize_model(join_lines(mutated));
      ASSERT_FALSE(r.has_value()) << "bit-flip on line " << i + 1;
      // A payload mutation is caught by the checksum before the parser
      // ever sees it; mutating the footer itself breaks the footer.
      EXPECT_TRUE(r.error().code == LoadErrorCode::kChecksumMismatch ||
                  r.error().code == LoadErrorCode::kChecksumMissing)
          << "line " << i + 1 << ": " << r.error().message();
    }

    // (c) Delete line i entirely.
    {
      auto mutated = lines;
      mutated.erase(mutated.begin() + i);
      const auto r = deserialize_model(join_lines(mutated));
      EXPECT_FALSE(r.has_value()) << "deleted line " << i + 1;
    }
  }
}

// Re-sealed mutations bypass the checksum and must be caught by the
// structural parser with the right typed error and line number.
TEST(ModelIntegrity, ResealedBadHeaderIsTyped) {
  auto lines = split_lines(payload_of(serialize_model(tiny_model())));
  lines[0] = "browser-polygraph-model v9";
  const auto r = deserialize_model(with_model_checksum(join_lines(lines)));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, LoadErrorCode::kBadHeader);
  EXPECT_EQ(r.error().line, 1u);
  EXPECT_EQ(r.error().message(), "bad_header at line 1 (header)");
}

TEST(ModelIntegrity, ResealedTruncationInsideMatrixIsTyped) {
  const std::string payload = payload_of(serialize_model(tiny_model()));
  auto lines = split_lines(payload);
  // Find the pca_matrix header and cut one row into its body.
  std::size_t header = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("pca_matrix ", 0) == 0) header = i;
  }
  ASSERT_GT(header, 0u);
  lines.resize(header + 2);  // header + first of two rows
  const auto r = deserialize_model(with_model_checksum(join_lines(lines)));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, LoadErrorCode::kTruncated);
  EXPECT_EQ(r.error().section, "pca_matrix");
  EXPECT_EQ(r.error().line, header + 3);  // just past the last line present
}

TEST(ModelIntegrity, ResealedGarbageInVectorSectionIsTyped) {
  auto lines = split_lines(payload_of(serialize_model(tiny_model())));
  for (auto& line : lines) {
    if (line.rfind("scaler_means", 0) == 0) line = "scaler_means 0 nan-sense";
  }
  const auto r = deserialize_model(with_model_checksum(join_lines(lines)));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, LoadErrorCode::kBadSection);
  EXPECT_EQ(r.error().section, "scaler_means");
  EXPECT_GT(r.error().line, 1u);
}

TEST(ModelIntegrity, ResealedOutOfRangeClusterIdIsTyped) {
  auto lines = split_lines(payload_of(serialize_model(tiny_model())));
  // Table rows are "<vendor> <version> <cluster>" after the "table N"
  // line; point one at a cluster with no centroid.
  std::size_t table_header = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("table ", 0) == 0) table_header = i;
  }
  ASSERT_GT(table_header, 0u);
  lines[table_header + 1].back() = '9';
  const auto r = deserialize_model(with_model_checksum(join_lines(lines)));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, LoadErrorCode::kBadSection);
  EXPECT_EQ(r.error().section, "table");
}

TEST(ModelIntegrity, ResealedDimensionMismatchIsTyped) {
  // Claim k=3 while shipping 2 centroids: the cross-section check must
  // refuse rather than serve a model whose config lies about its shape.
  auto lines = split_lines(payload_of(serialize_model(tiny_model())));
  for (auto& line : lines) {
    if (line == "k 2") line = "k 3";
  }
  const auto r = deserialize_model(with_model_checksum(join_lines(lines)));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, LoadErrorCode::kBadSection);
  EXPECT_EQ(r.error().section, "centroids");
}

TEST(ModelIntegrity, MissingFooterIsTyped) {
  const auto r = deserialize_model(payload_of(serialize_model(tiny_model())));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, LoadErrorCode::kChecksumMissing);
}

TEST(ModelIntegrity, MissingFileIsTyped) {
  const auto r = load_model("/tmp/bp_no_such_model_file.model");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, LoadErrorCode::kFileMissing);
}

TEST(ModelIntegrity, AtomicSaveLeavesNoTmpFile) {
  const std::string path = "/tmp/bp_model_integrity_atomic.model";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  ASSERT_TRUE(save_model(tiny_model(), path));
  EXPECT_TRUE(load_model(path).has_value());
  std::string tmp_contents;
  EXPECT_FALSE(bp::util::read_file(path + ".tmp", tmp_contents));
  std::remove(path.c_str());
}

TEST(ModelIntegrity, TornWriteFaultIsCaughtByChecksumOnLoad) {
  auto& faults = bp::util::FaultRegistry::instance();
  faults.disarm_all();
  const std::string path = "/tmp/bp_model_integrity_torn.model";
  std::remove(path.c_str());

  faults.arm("model_io.torn_write", 1.0, 1);
  EXPECT_TRUE(save_model(tiny_model(), path));  // write was acked...
  faults.disarm_all();

  const auto r = load_model(path);  // ...but only half landed on disk
  ASSERT_FALSE(r.has_value());
  EXPECT_TRUE(r.error().code == LoadErrorCode::kChecksumMissing ||
              r.error().code == LoadErrorCode::kChecksumMismatch)
      << r.error().message();
  std::remove(path.c_str());
}

TEST(ModelIntegrity, WriteFaultFailsSaveCleanly) {
  auto& faults = bp::util::FaultRegistry::instance();
  faults.disarm_all();
  faults.arm("model_io.write", 1.0, 1);
  const std::string path = "/tmp/bp_model_integrity_wfail.model";
  std::remove(path.c_str());
  EXPECT_FALSE(save_model(tiny_model(), path));
  faults.disarm_all();
  std::string contents;
  EXPECT_FALSE(bp::util::read_file(path, contents));
}

// ------------------- registry fail-closed publishing -------------------

TEST(ModelIntegrity, PublishFromFileInstallsValidModel) {
  const std::string path = "/tmp/bp_model_integrity_pub.model";
  ASSERT_TRUE(save_model(tiny_model(), path));
  serve::ModelRegistry registry;
  const auto report = registry.publish_from_file(path);
  EXPECT_TRUE(report);
  EXPECT_EQ(report.version, 1u);
  EXPECT_FALSE(report.error.has_value());
  EXPECT_EQ(registry.version(), 1u);
  ASSERT_TRUE(registry.current());
  EXPECT_EQ(registry.publish_failures(), 0u);
  std::remove(path.c_str());
}

TEST(ModelIntegrity, CorruptFileNeverEvictsServingModelAndIsQuarantined) {
  const std::string path = "/tmp/bp_model_integrity_corrupt.model";
  serve::ModelRegistry registry;
  ASSERT_TRUE(save_model(tiny_model(/*swapped_table=*/false), path));
  ASSERT_TRUE(registry.publish_from_file(path));

  // Drop a corrupt candidate and try to publish it.
  std::string text = serialize_model(tiny_model(/*swapped_table=*/true));
  text.resize(text.size() / 2);
  ASSERT_TRUE(bp::util::write_file(path, text));
  const auto report = registry.publish_from_file(path);
  EXPECT_FALSE(report);
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(report.quarantined_to, path + ".quarantined");

  // Serving snapshot untouched; the bad file was moved aside so a retry
  // loop cannot trip over it again.
  EXPECT_EQ(registry.version(), 1u);
  ASSERT_TRUE(registry.current());
  EXPECT_EQ(registry.publish_failures(), 1u);
  EXPECT_EQ(registry.quarantined(), 1u);
  std::string moved;
  EXPECT_TRUE(bp::util::read_file(path + ".quarantined", moved));
  std::string original;
  EXPECT_FALSE(bp::util::read_file(path, original));
  std::remove((path + ".quarantined").c_str());
}

TEST(ModelIntegrity, MissingFileIsNotQuarantined) {
  serve::ModelRegistry registry;
  const auto report =
      registry.publish_from_file("/tmp/bp_no_such_candidate.model");
  EXPECT_FALSE(report);
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(report.error->code, LoadErrorCode::kFileMissing);
  EXPECT_TRUE(report.quarantined_to.empty());
  EXPECT_EQ(registry.quarantined(), 0u);
}

TEST(ModelIntegrity, RollbackRestoresPreviousSnapshotAsNewVersion) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.rollback(), 0u);  // nothing to roll back to

  ASSERT_EQ(registry.publish(tiny_model(/*swapped_table=*/false)), 1u);
  ASSERT_EQ(registry.publish(tiny_model(/*swapped_table=*/true)), 2u);

  // v2 swaps the table: Chrome 100 at (0,0) is flagged.
  const std::vector<double> features{0.0, 0.0};
  EXPECT_TRUE(registry.current().model->score(features, chrome(100)).flagged);

  const std::uint64_t rolled = registry.rollback();
  EXPECT_EQ(rolled, 3u);  // monotonic: rollback is a new version
  EXPECT_EQ(registry.version(), 3u);
  EXPECT_FALSE(registry.current().model->score(features, chrome(100)).flagged);

  // Rolling back again returns to the v2 behaviour (previous of v3 = v2).
  EXPECT_EQ(registry.rollback(), 4u);
  EXPECT_TRUE(registry.current().model->score(features, chrome(100)).flagged);
}

TEST(ModelIntegrity, ValidationFaultRefusesPublish) {
  auto& faults = bp::util::FaultRegistry::instance();
  faults.disarm_all();
  const std::string path = "/tmp/bp_model_integrity_valfault.model";
  ASSERT_TRUE(save_model(tiny_model(), path));

  serve::ModelRegistry registry;
  faults.arm("registry.publish_validate", 1.0, 1);
  const auto report = registry.publish_from_file(path,
                                                 /*quarantine_on_failure=*/false);
  faults.disarm_all();
  EXPECT_FALSE(report);
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(report.error->code, LoadErrorCode::kInjectedFault);
  EXPECT_EQ(registry.version(), 0u);
  // quarantine_on_failure=false left the candidate in place for triage.
  EXPECT_TRUE(report.quarantined_to.empty());
  EXPECT_TRUE(load_model(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bp::core
