// Tests for the feature catalog and release database (§6.1 metadata).
#include <gtest/gtest.h>

#include <set>

#include "browser/feature_catalog.h"
#include "browser/release_db.h"

namespace bp::browser {
namespace {

TEST(Catalog, Has513Candidates) {
  EXPECT_EQ(FeatureCatalog::instance().candidate_count(), 513u);
}

TEST(Catalog, Has28FinalFeatures) {
  EXPECT_EQ(FeatureCatalog::instance().final_count(), 28u);
}

TEST(Catalog, First200AreDeviationBased) {
  const auto& catalog = FeatureCatalog::instance();
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(catalog.spec(i).kind, FeatureKind::kDeviationBased) << i;
  }
  for (std::size_t i = 200; i < 513; ++i) {
    EXPECT_EQ(catalog.spec(i).kind, FeatureKind::kTimeBased) << i;
  }
}

TEST(Catalog, FinalSetIs22Plus6) {
  const auto& catalog = FeatureCatalog::instance();
  std::size_t deviation = 0;
  std::size_t time_based = 0;
  for (std::size_t idx : catalog.final_indices()) {
    if (catalog.spec(idx).kind == FeatureKind::kDeviationBased) {
      ++deviation;
    } else {
      ++time_based;
    }
  }
  EXPECT_EQ(deviation, 22u);
  EXPECT_EQ(time_based, 6u);
}

TEST(Catalog, Table8OrderStartsWithElement) {
  const auto& catalog = FeatureCatalog::instance();
  EXPECT_EQ(catalog.spec(catalog.final_indices()[0]).name,
            "Object.getOwnPropertyNames(Element.prototype).length");
  EXPECT_EQ(catalog.spec(catalog.final_indices()[22]).name,
            "Navigator.prototype.hasOwnProperty('deviceMemory')");
}

TEST(Catalog, NamesAreUnique) {
  const auto& catalog = FeatureCatalog::instance();
  std::set<std::string> names;
  for (std::size_t i = 0; i < catalog.candidate_count(); ++i) {
    EXPECT_TRUE(names.insert(catalog.spec(i).name).second)
        << "duplicate: " << catalog.spec(i).name;
  }
}

TEST(Catalog, IndexOfFindsExactNames) {
  const auto& catalog = FeatureCatalog::instance();
  EXPECT_EQ(catalog.index_of(
                "Object.getOwnPropertyNames(Element.prototype).length"),
            0u);
  EXPECT_EQ(catalog.index_of("nope"), FeatureCatalog::npos);
}

TEST(Catalog, InterfaceOfParsesDeviationNames) {
  EXPECT_EQ(FeatureCatalog::interface_of(
                "Object.getOwnPropertyNames(ShadowRoot.prototype).length"),
            "ShadowRoot");
  EXPECT_EQ(FeatureCatalog::interface_of(
                "Navigator.prototype.hasOwnProperty('deviceMemory')"),
            "");
  EXPECT_EQ(FeatureCatalog::interface_of(""), "");
}

TEST(Catalog, ConfigSensitiveIncludesServiceWorkers) {
  const auto& catalog = FeatureCatalog::instance();
  bool found = false;
  for (std::size_t idx : catalog.config_sensitive_indices()) {
    if (catalog.spec(idx).name ==
        "Object.getOwnPropertyNames(ServiceWorkerContainer.prototype).length") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Catalog, ConfigSensitiveNeverOverlapsFinalSet) {
  const auto& catalog = FeatureCatalog::instance();
  std::set<std::size_t> finals(catalog.final_indices().begin(),
                               catalog.final_indices().end());
  for (std::size_t idx : catalog.config_sensitive_indices()) {
    EXPECT_EQ(finals.count(idx), 0u) << catalog.spec(idx).name;
  }
}

TEST(Catalog, Appendix4ExtensionSteps) {
  const auto& catalog = FeatureCatalog::instance();
  EXPECT_TRUE(catalog.appendix4_extension(28).empty());
  EXPECT_EQ(catalog.appendix4_extension(32).size(), 4u);
  EXPECT_EQ(catalog.appendix4_extension(36).size(), 8u);
  EXPECT_EQ(catalog.appendix4_extension(42).size(), 14u);
  // First addition is HTMLIFrameElement (Table 12).
  EXPECT_EQ(catalog.spec(catalog.appendix4_extension(32)[0]).name,
            "Object.getOwnPropertyNames(HTMLIFrameElement.prototype).length");
}

// ------------------------- release database -------------------------

TEST(ReleaseDb, CoversStudyWindow) {
  const auto& db = ReleaseDatabase::instance();
  EXPECT_NE(db.find(ua::Vendor::kChrome, 59), nullptr);
  EXPECT_NE(db.find(ua::Vendor::kChrome, 119), nullptr);
  EXPECT_NE(db.find(ua::Vendor::kFirefox, 46), nullptr);
  EXPECT_NE(db.find(ua::Vendor::kFirefox, 119), nullptr);
  EXPECT_NE(db.find(ua::Vendor::kEdgeLegacy, 17), nullptr);
  EXPECT_NE(db.find(ua::Vendor::kEdge, 79), nullptr);
  EXPECT_EQ(db.find(ua::Vendor::kChrome, 58), nullptr);
  EXPECT_EQ(db.find(ua::Vendor::kEdge, 78), nullptr);
}

TEST(ReleaseDb, EdgeLookupToleratesLegacyVersions) {
  const auto* edge17 = ReleaseDatabase::instance().find(ua::Vendor::kEdge, 17);
  ASSERT_NE(edge17, nullptr);
  EXPECT_EQ(edge17->engine, Engine::kEdgeHtml);
}

TEST(ReleaseDb, DatesIncreaseWithVersion) {
  const auto& db = ReleaseDatabase::instance();
  for (const ua::Vendor vendor :
       {ua::Vendor::kChrome, ua::Vendor::kFirefox, ua::Vendor::kEdge}) {
    const BrowserRelease* prev = nullptr;
    for (const auto& r : db.releases()) {
      if (r.vendor != vendor) continue;
      if (prev != nullptr) {
        EXPECT_LT(prev->release_date, r.release_date) << r.label();
      }
      prev = &r;
    }
  }
}

TEST(ReleaseDb, KnownAnchors) {
  const auto& db = ReleaseDatabase::instance();
  EXPECT_EQ(db.find(ua::Vendor::kChrome, 114)->release_date.to_string(),
            "2023-05-30");
  EXPECT_EQ(db.find(ua::Vendor::kFirefox, 115)->release_date.to_string(),
            "2023-07-04");
}

TEST(ReleaseDb, EdgeTracksChromeWithLag) {
  const auto& db = ReleaseDatabase::instance();
  for (int v : {100, 110, 114}) {
    const int lag = db.find(ua::Vendor::kEdge, v)->release_date -
                    db.find(ua::Vendor::kChrome, v)->release_date;
    EXPECT_EQ(lag, 7) << "Edge " << v;
  }
}

TEST(ReleaseDb, AvailableOnFiltersByDate) {
  const auto& db = ReleaseDatabase::instance();
  const auto available = db.available_on(bp::util::Date::from_ymd(2018, 1, 1));
  for (const auto* r : available) {
    EXPECT_LE(r->release_date, bp::util::Date::from_ymd(2018, 1, 1));
  }
  EXPECT_FALSE(available.empty());
}

TEST(ReleaseDb, LatestPicksNewestAvailable) {
  const auto& db = ReleaseDatabase::instance();
  const auto* latest =
      db.latest(ua::Vendor::kChrome, bp::util::Date::from_ymd(2023, 6, 15));
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->version, 114);
  EXPECT_EQ(db.latest(ua::Vendor::kChrome, bp::util::Date::from_ymd(2016, 1, 1)),
            nullptr);
}

TEST(ReleaseDb, EnginesMatchLineage) {
  const auto& db = ReleaseDatabase::instance();
  EXPECT_EQ(db.find(ua::Vendor::kChrome, 100)->engine, Engine::kBlink);
  EXPECT_EQ(db.find(ua::Vendor::kEdge, 100)->engine, Engine::kBlink);
  EXPECT_EQ(db.find(ua::Vendor::kFirefox, 100)->engine, Engine::kGecko);
  EXPECT_EQ(db.find(ua::Vendor::kEdgeLegacy, 18)->engine, Engine::kEdgeHtml);
}

}  // namespace
}  // namespace bp::browser
