// Minimal CSV reader/writer.
//
// The deployment at FinOrg exchanged periodic fingerprint datasets as flat
// files; this module gives the reproduction the same ability to persist and
// reload datasets (and makes bench output easy to post-process).  Quoting
// follows RFC 4180: fields containing the delimiter, quotes, or newlines
// are double-quoted and embedded quotes doubled.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bp::util {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  // Column index by header name, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t column(std::string_view name) const;
};

// Serialize a table (header + rows) to CSV text.
std::string to_csv(const CsvTable& table, char delim = ',');

// Parse CSV text.  `has_header` controls whether the first record is
// treated as the header row.  Handles quoted fields, embedded delimiters,
// doubled quotes, and both \n and \r\n terminators.
CsvTable parse_csv(std::string_view text, bool has_header = true,
                   char delim = ',');

// Quote a single field if needed.
std::string csv_escape(std::string_view field, char delim = ',');

// Write / read helpers against the filesystem.  Return false on IO error.
bool write_file(const std::string& path, std::string_view contents);
bool read_file(const std::string& path, std::string& out);

}  // namespace bp::util
