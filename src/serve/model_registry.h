// Hot-swappable model snapshots for zero-downtime retraining.
//
// The paper's drift module (§6.6) periodically decides that the frozen
// model must be retrained; at FinOrg scale the serving tier cannot stop
// while that happens.  The registry holds immutable snapshot entries
// behind a single atomic raw pointer:
//
//   * readers (`current()`) take a reference with one atomic load —
//     no mutex on the scoring path, so a publish never stalls scoring;
//   * writers (`publish()`) install a fresh snapshot; in-flight batches
//     finish on the version they already hold.
//
// Superseded entries are retained until the registry is destroyed
// rather than reference-counted on the read path.  Publishes are rare
// drift-triggered retrains (a handful over a deployment's lifetime),
// so the retention cost is a few model tables, and it is what makes
// the read path a single data-race-free atomic load: readers can
// dereference the entry without coordinating with the writer, because
// no entry is ever freed while the registry is alive.  (libstdc++'s
// std::atomic<shared_ptr> would reclaim eagerly, but its lock-free
// protocol is opaque to ThreadSanitizer — see GCC PR 101761 — and this
// subsystem's concurrency tests must run clean under TSan.)
//
// Every snapshot carries a monotonically increasing version so each
// detection can be attributed to exactly one published model — the
// audit requirement when a risk team reviews why a session was flagged.
// Publishing is fail-closed: a model file is fully loaded, integrity-
// checked and validated *before* the swap, a bad file is quarantined
// aside (so a crash-looping retrain job cannot re-publish the same
// corrupt artifact forever), and `rollback()` re-installs the snapshot
// that preceded the current one.  Publishing a corrupt model can never
// evict a serving one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "core/polygraph.h"

namespace bp::serve {

struct ModelSnapshot {
  std::shared_ptr<const core::Polygraph> model;
  std::uint64_t version = 0;  // 0 = nothing published yet

  explicit operator bool() const noexcept { return model != nullptr; }
};

// Outcome of a file-driven publish.  On failure the serving snapshot is
// untouched and `error` says why the candidate was refused.
struct PublishReport {
  std::uint64_t version = 0;  // 0 = refused; serving model unchanged
  std::optional<core::LoadError> error;
  std::string quarantined_to;  // non-empty when the bad file was moved aside

  explicit operator bool() const noexcept { return version != 0; }
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Install `model` as the serving snapshot and return its version
  // (1, 2, 3, ...).  Safe to call concurrently with readers and with
  // other publishers.  Rejects (returns 0) a null or untrained model —
  // a bad retrain must never take down serving.
  std::uint64_t publish(std::shared_ptr<const core::Polygraph> model);

  // Convenience: take ownership of a trained model by value (the usual
  // hand-off from `core::model_io::load_model` / a retraining job).
  std::uint64_t publish(core::Polygraph model);

  // Load `path`, validate it end to end (checksum, structure, trained
  // state) and publish only if everything holds.  On failure the
  // serving snapshot is untouched and — when `quarantine_on_failure` —
  // the bad file is renamed to `path + ".quarantined"` so the next
  // publish attempt cannot trip over the same artifact.
  PublishReport publish_from_file(const std::string& path,
                                  bool quarantine_on_failure = true);

  // Re-install the snapshot that preceded the current one, as a *new*
  // version (the version counter stays monotonic so audit attribution
  // never aliases).  Returns the new version, or 0 when there is no
  // earlier snapshot to roll back to.
  std::uint64_t rollback();

  // The snapshot to score with; `{nullptr, 0}` before the first
  // publish.  One atomic load — callers should take one snapshot per
  // batch so a whole batch is scored by a single version.
  ModelSnapshot current() const;

  // The snapshot published as `version`, or `{}` when that version
  // never existed.  Every published entry is retained for the
  // registry's lifetime, so the audit trail can replay a decision
  // against exactly the model that made it — including decisions taken
  // just before a hot swap.  Not a hot-path call (takes the publish
  // mutex and scans history).
  ModelSnapshot at_version(std::uint64_t version) const;

  // Version of the latest published snapshot (0 before first publish).
  std::uint64_t version() const noexcept {
    return published_.load(std::memory_order_acquire);
  }

  // Publishes refused (null/untrained model, failed file validation).
  std::uint64_t publish_failures() const noexcept {
    return publish_failures_.load(std::memory_order_relaxed);
  }

  // Files moved aside by publish_from_file.
  std::uint64_t quarantined() const noexcept {
    return quarantined_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const core::Polygraph> model;
    std::uint64_t version;
  };

  // Publishes are rare (drift-triggered retrains) and serialized by a
  // mutex; the read path never takes it.  `history_` owns every entry
  // ever published so `current_` can be a plain raw-pointer atomic.
  std::uint64_t publish_locked(std::shared_ptr<const core::Polygraph> model);

  mutable std::mutex publish_mutex_;
  std::vector<std::unique_ptr<const Entry>> history_;
  std::atomic<const Entry*> current_{nullptr};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> publish_failures_{0};
  std::atomic<std::uint64_t> quarantined_{0};
};

}  // namespace bp::serve
