file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_synthetic_macos.dir/bench_table14_synthetic_macos.cpp.o"
  "CMakeFiles/bench_table14_synthetic_macos.dir/bench_table14_synthetic_macos.cpp.o.d"
  "bench_table14_synthetic_macos"
  "bench_table14_synthetic_macos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_synthetic_macos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
