// Fraud ("anti-detect") browser simulation.
//
// Paper §2.3 dissects the behaviour of ten commercial anti-detect
// browsers and sorts them into four categories by how their fingerprint
// reacts to user-agent spoofing:
//
//   Category 1 — the fingerprint matches NO legitimate browser
//                (Linken Sphere, ClonBrowser): the vendor's custom engine
//                build leaks distorted prototype shapes.
//   Category 2 — the fingerprint is a frozen copy of one legitimate
//                browser and does not move when the UA is changed
//                (Incogniton, GoLogin, CheBrowser, VMLogin, Octo Browser,
//                Sphere, AntBrowser).
//   Category 3 — the engine (and hence the fingerprint) is swapped to
//                match each selected UA (AdsPower).
//   Category 4 — a genuine browser driven inside a spoofed environment.
//
// Browser Polygraph targets categories 1 and 2; categories 3 and 4
// produce internally-consistent fingerprints and are out of scope (§2.3,
// §8) — we implement them anyway so the evaluation can demonstrate that
// boundary honestly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "browser/extractor.h"
#include "browser/release_db.h"
#include "ua/user_agent.h"
#include "util/date.h"
#include "util/rng.h"

namespace bp::fraudsim {

enum class FraudCategory : std::uint8_t {
  kCategory1 = 1,  // matches no legitimate fingerprint
  kCategory2 = 2,  // frozen legitimate fingerprint, UA spoofed freely
  kCategory3 = 3,  // engine swapped with the UA
  kCategory4 = 4,  // genuine browser in a spoofed environment
};

// A commercial fraud browser (Table 1).
struct FraudBrowserModel {
  std::string name;          // e.g. "GoLogin-3.3.23"
  FraudCategory category = FraudCategory::kCategory2;
  bp::util::Date release_date;
  bool ships_new_releases = false;  // Table 1's "New Rel.?" column

  // The engine the build is based on.  For category 2 this is the frozen
  // fingerprint donor; for category 1 it is the base that gets distorted.
  browser::Engine base_engine = browser::Engine::kBlink;
  int base_engine_version = 0;

  // Category-1 distortion: how many features get vendor-custom offsets
  // and how large they run.  Derived deterministically per profile.
  int distortion_features = 0;
  int distortion_magnitude = 0;
};

// The Table 1 roster.
std::span<const FraudBrowserModel> table1_roster();

// Lookup by exact name; nullptr when unknown.
const FraudBrowserModel* find_model(std::string_view name);

// One configured browser profile: the victim user-agent the operator
// loaded plus the fingerprint the browser will actually present.
struct FraudProfile {
  std::string browser_name;
  FraudCategory category = FraudCategory::kCategory2;
  ua::UserAgent claimed_ua;                 // the victim's UA
  browser::CandidateValues candidate_values;  // what extraction will see
};

// Build a profile of `model` claiming `victim_ua`.  `rng` drives the
// category-1 distortions and minor profile-to-profile variation.
FraudProfile make_profile(const FraudBrowserModel& model,
                          const ua::UserAgent& victim_ua, bp::util::Rng& rng);

// The §7.2 evaluation protocol: for each cluster-representative UA in
// `candidate_uas`, create `per_ua` profiles (the paper used two per
// cluster where the browser allowed it).  Browsers whose free tier limits
// customization (Sphere 1.3) ignore the requested UA list and use their
// own built-in profile UAs; this function reproduces that behaviour.
std::vector<FraudProfile> make_evaluation_profiles(
    const FraudBrowserModel& model,
    std::span<const ua::UserAgent> candidate_uas, int per_ua,
    bp::util::Rng& rng);

}  // namespace bp::fraudsim
