#include "net/wire.h"

#include <charconv>
#include <limits>

namespace bp::net {

namespace {

// Strip the one tolerated trailing newline (and a preceding '\r', so
// curl with --data-binary $'...\r\n' still round-trips).
std::string_view strip_line_ending(std::string_view frame) noexcept {
  if (!frame.empty() && frame.back() == '\n') frame.remove_suffix(1);
  if (!frame.empty() && frame.back() == '\r') frame.remove_suffix(1);
  return frame;
}

bool parse_u64(std::string_view text, std::uint64_t* out) noexcept {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_i32(std::string_view text, std::int32_t* out) noexcept {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

// Split off the next '|'-terminated field.  Returns false when no '|'
// remains (the caller decides whether the tail is the last field).
bool next_field(std::string_view* rest, std::string_view* field) noexcept {
  const std::size_t bar = rest->find('|');
  if (bar == std::string_view::npos) return false;
  *field = rest->substr(0, bar);
  rest->remove_prefix(bar + 1);
  return true;
}

// "bp<digits>|" prefix check shared by both frame parsers.
WireError check_magic(std::string_view* frame) noexcept {
  if (frame->size() < 2 || (*frame)[0] != 'b' || (*frame)[1] != 'p') {
    return WireError::kBadMagic;
  }
  frame->remove_prefix(2);
  std::string_view version_field;
  if (!next_field(frame, &version_field)) return WireError::kTruncated;
  std::uint64_t version = 0;
  if (!parse_u64(version_field, &version)) return WireError::kBadMagic;
  if (version != static_cast<std::uint64_t>(kWireVersion)) {
    return WireError::kBadVersion;
  }
  return WireError::kOk;
}

void append_u64(std::string* out, std::uint64_t value) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, ptr);
}

void append_i64(std::string* out, std::int64_t value) {
  char buf[21];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, ptr);
}

// One t:<trace_id>:<parent_span>:<sampled> payload (the part after
// "t:").  Exactly three ':'-separated numerics; trace_id must be
// nonzero, sampled must be the literal '0' or '1'.
bool parse_trace_payload(std::string_view payload,
                         WireTraceContext* out) noexcept {
  const std::size_t first = payload.find(':');
  if (first == std::string_view::npos) return false;
  const std::size_t second = payload.find(':', first + 1);
  if (second == std::string_view::npos) return false;
  if (payload.find(':', second + 1) != std::string_view::npos) return false;
  std::uint64_t trace_id = 0;
  if (!parse_u64(payload.substr(0, first), &trace_id) || trace_id == 0) {
    return false;
  }
  std::uint64_t parent = 0;
  if (!parse_u64(payload.substr(first + 1, second - first - 1), &parent) ||
      parent > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  const std::string_view flag = payload.substr(second + 1);
  if (flag != "0" && flag != "1") return false;
  out->trace_id = trace_id;
  out->parent_span = static_cast<std::uint32_t>(parent);
  out->sampled = flag == "1";
  return true;
}

// Everything after the last grammar field: one or more '|'-separated
// `<tag>:<payload>` extension segments (the caller strips the leading
// '|', so an empty `rest` here means a dangling separator).  Well-
// formed unknown tags are skipped (version tolerance); the `t` tag is
// validated into *trace.
WireError parse_extensions(std::string_view rest,
                           WireTraceContext* trace) noexcept {
  while (true) {
    const std::size_t bar = rest.find('|');
    const std::string_view segment =
        bar == std::string_view::npos ? rest : rest.substr(0, bar);
    const std::size_t colon = segment.find(':');
    if (colon == 0 || colon == std::string_view::npos) {
      return WireError::kBadExtension;
    }
    const std::string_view tag = segment.substr(0, colon);
    for (char c : tag) {
      if (c < 'a' || c > 'z') return WireError::kBadExtension;
    }
    if (tag == "t") {
      if (trace->present()) return WireError::kBadTraceContext;
      if (!parse_trace_payload(segment.substr(colon + 1), trace)) {
        return WireError::kBadTraceContext;
      }
    }
    // else: unknown well-formed tag — a newer peer's segment; skip it.
    if (bar == std::string_view::npos) return WireError::kOk;
    rest.remove_prefix(bar + 1);
  }
}

}  // namespace

std::string_view wire_error_name(WireError error) noexcept {
  switch (error) {
    case WireError::kOk: return "ok";
    case WireError::kEmptyFrame: return "empty_frame";
    case WireError::kOversized: return "oversized";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadSessionId: return "bad_session_id";
    case WireError::kBadUserAgent: return "bad_user_agent";
    case WireError::kNoFeatures: return "no_features";
    case WireError::kBadFeature: return "bad_feature";
    case WireError::kTooManyFeatures: return "too_many_features";
    case WireError::kBadStatus: return "bad_status";
    case WireError::kBadExtension: return "bad_extension";
    case WireError::kBadTraceContext: return "bad_trace_context";
  }
  return "unknown";
}

WireError parse_score_request(std::string_view frame, WireScoreRequest* out) {
  if (frame.size() > kMaxFrameBytes) return WireError::kOversized;
  frame = strip_line_ending(frame);
  if (frame.empty()) return WireError::kEmptyFrame;

  const WireError magic = check_magic(&frame);
  if (magic != WireError::kOk) return magic;

  std::string_view id_field;
  if (!next_field(&frame, &id_field)) return WireError::kTruncated;
  if (!parse_u64(id_field, &out->session_id)) {
    return WireError::kBadSessionId;
  }

  std::string_view ua_field;
  if (!next_field(&frame, &ua_field)) return WireError::kTruncated;
  if (ua_field.empty()) return WireError::kBadUserAgent;
  // The short label form first ("Chrome 112"), then the full header.
  // An unknown vendor is not an error: scoring a claimed UA the table
  // has never seen is exactly the risk path's job.
  if (const auto label = ua::parse_label(ua_field)) {
    out->claimed = *label;
  } else {
    out->claimed = ua::parse_user_agent(ua_field);
  }

  // `frame` is now the feature field, running to the next '|' (the
  // start of the optional extension segments) or the end of the frame.
  out->trace = WireTraceContext{};
  const std::size_t ext_bar = frame.find('|');
  const std::string_view feature_field =
      ext_bar == std::string_view::npos ? frame : frame.substr(0, ext_bar);
  if (feature_field.empty()) return WireError::kNoFeatures;
  out->features.clear();
  std::size_t pos = 0;
  while (pos <= feature_field.size()) {
    std::size_t space = feature_field.find(' ', pos);
    if (space == std::string_view::npos) space = feature_field.size();
    const std::string_view token = feature_field.substr(pos, space - pos);
    std::int32_t value = 0;
    if (!parse_i32(token, &value)) return WireError::kBadFeature;
    if (out->features.size() >= kMaxWireFeatures) {
      return WireError::kTooManyFeatures;
    }
    out->features.push_back(value);
    pos = space + 1;
  }
  if (ext_bar != std::string_view::npos) {
    return parse_extensions(frame.substr(ext_bar + 1), &out->trace);
  }
  return WireError::kOk;
}

void render_score_request(std::uint64_t session_id,
                          std::string_view claimed_ua,
                          std::span<const std::int32_t> features,
                          std::string* out) {
  out->clear();
  out->append("bp");
  append_u64(out, static_cast<std::uint64_t>(kWireVersion));
  out->push_back('|');
  append_u64(out, session_id);
  out->push_back('|');
  out->append(claimed_ua);
  out->push_back('|');
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (i > 0) out->push_back(' ');
    append_i64(out, features[i]);
  }
  out->push_back('\n');
}

void append_trace_context(const WireTraceContext& trace, std::string* frame) {
  if (!trace.present()) return;
  const bool had_newline = !frame->empty() && frame->back() == '\n';
  if (had_newline) frame->pop_back();
  frame->append("|t:");
  append_u64(frame, trace.trace_id);
  frame->push_back(':');
  append_u64(frame, trace.parent_span);
  frame->push_back(':');
  frame->push_back(trace.sampled ? '1' : '0');
  if (had_newline) frame->push_back('\n');
}

std::string_view wire_status_token(serve::ResponseStatus status) noexcept {
  switch (status) {
    case serve::ResponseStatus::kScored: return "scored";
    case serve::ResponseStatus::kShed: return "shed";
    case serve::ResponseStatus::kDeadlineExceeded: return "deadline";
    case serve::ResponseStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

void render_score_response(const WireScoreResponse& response,
                           std::string* out) {
  out->clear();
  out->append("bp");
  append_u64(out, static_cast<std::uint64_t>(kWireVersion));
  out->push_back('|');
  append_u64(out, response.session_id);
  out->push_back('|');
  out->append(wire_status_token(response.status));
  out->push_back('|');
  out->push_back(response.flagged ? '1' : '0');
  out->push_back('|');
  append_i64(out, response.risk_factor);
  out->push_back('|');
  append_u64(out, response.predicted_cluster);
  out->push_back('|');
  append_u64(out, response.model_version);
  out->push_back('|');
  append_u64(out, response.latency_micros);
  out->push_back('\n');
}

WireError parse_score_response(std::string_view frame,
                               WireScoreResponse* out) {
  if (frame.size() > kMaxFrameBytes) return WireError::kOversized;
  frame = strip_line_ending(frame);
  if (frame.empty()) return WireError::kEmptyFrame;

  const WireError magic = check_magic(&frame);
  if (magic != WireError::kOk) return magic;

  std::string_view field;
  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (!parse_u64(field, &out->session_id)) return WireError::kBadSessionId;

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (field == "scored") {
    out->status = serve::ResponseStatus::kScored;
  } else if (field == "shed") {
    out->status = serve::ResponseStatus::kShed;
  } else if (field == "deadline") {
    out->status = serve::ResponseStatus::kDeadlineExceeded;
  } else if (field == "degraded") {
    out->status = serve::ResponseStatus::kDegraded;
  } else {
    return WireError::kBadStatus;
  }

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (field != "0" && field != "1") return WireError::kBadStatus;
  out->flagged = field == "1";

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  std::int32_t risk = 0;
  if (!parse_i32(field, &risk)) return WireError::kBadStatus;
  out->risk_factor = risk;

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  std::uint64_t cluster = 0;
  if (!parse_u64(field, &cluster) ||
      cluster > std::numeric_limits<std::uint32_t>::max()) {
    return WireError::kBadStatus;
  }
  out->predicted_cluster = static_cast<std::uint32_t>(cluster);

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (!parse_u64(field, &out->model_version)) return WireError::kBadStatus;

  // Latency runs to the next '|' (optional extension segments) or the
  // end of the frame.
  out->trace = WireTraceContext{};
  const std::size_t ext_bar = frame.find('|');
  const std::string_view latency_field =
      ext_bar == std::string_view::npos ? frame : frame.substr(0, ext_bar);
  if (!parse_u64(latency_field, &out->latency_micros)) {
    return WireError::kBadStatus;
  }
  if (ext_bar != std::string_view::npos) {
    return parse_extensions(frame.substr(ext_bar + 1), &out->trace);
  }
  return WireError::kOk;
}

}  // namespace bp::net
