// Minimal HTTP/1.1 vocabulary for the introspection server: request
// parsing, response serialization, and a tiny blocking GET client.
//
// This is deliberately not a web framework.  The introspection plane
// needs exactly one verb (GET), one connection model (close after
// response), bounded inputs, and zero dependencies — everything else
// is attack surface on a port that exists to be scraped by Prometheus,
// curl and the tier-1 smoke test.  Parsing accepts what those clients
// send and rejects the rest with a plain status code.
//
// The client half (http_get) exists so tests and benches exercise the
// server over a *real* TCP socket — the acceptance criterion — without
// shelling out to curl.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace bp::obs::introspect {

struct HttpRequest {
  std::string method;  // "GET"
  std::string target;  // raw request target, e.g. "/auditz?n=50"
  std::string path;    // target before '?', e.g. "/auditz"
  std::string query;   // target after '?', e.g. "n=50" (no '?')
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

std::string_view status_reason(int status) noexcept;

// Parse the request line of an HTTP/1.1 head ("GET /path HTTP/1.1\r\n"
// + headers).  Returns false on a malformed request line; headers are
// ignored (nothing in the introspection plane needs them).
bool parse_request_head(std::string_view head, HttpRequest* out);

// Serialize status line + minimal headers + body.  Connection: close
// is always set — one request per connection.
std::string serialize_response(const HttpResponse& response);

// Value of `key` in a query string ("n=50&x=1"), or `fallback` when
// absent/unparseable.  Only non-negative integers are supported.
std::uint64_t query_uint(std::string_view query, std::string_view key,
                         std::uint64_t fallback) noexcept;

// ---- test/bench client ----

struct HttpResult {
  int status = -1;     // -1 = transport error, see `error`
  std::string body;
  std::string error;
};

// Blocking GET against 127.0.0.1-style literal IPv4 hosts.  One
// request, one connection; `timeout` bounds connect+send+receive.
HttpResult http_get(const std::string& host, std::uint16_t port,
                    const std::string& target,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(2000));

}  // namespace bp::obs::introspect
