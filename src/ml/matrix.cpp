#include "ml/matrix.h"

#include <cmath>

#include "util/parallel.h"

namespace bp::ml {

namespace {

// Row-blocking grain for the column-moment reductions.  Fixed (never a
// function of the thread count) so the chunk-ordered merges produce the
// same floating-point sums at any parallelism; small matrices take the
// single-chunk path and match the historical serial results exactly.
constexpr std::size_t kMomentGrain = 4096;

}  // namespace

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& r : rows) m.push_row(r);
  return m;
}

void Matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  assert(values.size() == cols_);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::filter_rows(const std::vector<bool>& keep) const {
  assert(keep.size() == rows_);
  Matrix out;
  out.cols_ = cols_;
  std::size_t kept = 0;
  for (bool k : keep) kept += k ? 1 : 0;
  out.data_.reserve(kept * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!keep[r]) continue;
    const auto src = row(r);
    out.data_.insert(out.data_.end(), src.begin(), src.end());
    ++out.rows_;
  }
  return out;
}

Matrix Matrix::select_columns(const std::vector<std::size_t>& cols) const {
  Matrix out(rows_, cols.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      assert(cols[j] < cols_);
      out(r, j) = (*this)(r, cols[j]);
    }
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const auto brow = other.row(k);
      const auto orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

std::vector<double> Matrix::column_means() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  means = bp::util::parallel_reduce(
      std::size_t{0}, rows_, kMomentGrain, std::move(means),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> sums(cols_, 0.0);
        for (std::size_t r = begin; r < end; ++r) {
          const auto src = row(r);
          for (std::size_t c = 0; c < cols_; ++c) sums[c] += src[c];
        }
        return sums;
      },
      [](std::vector<double>& acc, std::vector<double>&& part) {
        for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += part[c];
      });
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

std::vector<double> Matrix::column_stddevs(
    const std::vector<double>& means) const {
  assert(means.size() == cols_);
  std::vector<double> var(cols_, 0.0);
  if (rows_ == 0) return var;
  var = bp::util::parallel_reduce(
      std::size_t{0}, rows_, kMomentGrain, std::move(var),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> sums(cols_, 0.0);
        for (std::size_t r = begin; r < end; ++r) {
          const auto src = row(r);
          for (std::size_t c = 0; c < cols_; ++c) {
            const double d = src[c] - means[c];
            sums[c] += d * d;
          }
        }
        return sums;
      },
      [](std::vector<double>& acc, std::vector<double>&& part) {
        for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += part[c];
      });
  for (double& v : var) v = std::sqrt(v / static_cast<double>(rows_));
  return var;
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double squared_distance_bounded(std::span<const double> a,
                                std::span<const double> b,
                                double bound) noexcept {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
    if (sum > bound) return sum;  // abandoned: caller only needs >= bound
  }
  return sum;
}

}  // namespace bp::ml
