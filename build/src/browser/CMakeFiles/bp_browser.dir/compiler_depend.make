# Empty compiler generated dependencies file for bp_browser.
# This may be replaced when dependencies are built.
