// fraud_detection_service: the deployment workload of §6.5 in miniature.
//
// Trains offline, persists the model to disk, reloads it (as a serving
// tier would), then scores a live stream of sessions one at a time,
// maintaining the risk-factor histogram and the flag rate a risk team
// monitors.  Demonstrates the offline/online split and model_io.
#include <cstdio>
#include <map>

#include "core/model_io.h"
#include "core/polygraph.h"
#include "traffic/session_generator.h"
#include "util/table.h"

int main() {
  using namespace bp;

  // ---- offline: train and persist ----
  traffic::TrafficConfig train_config;
  train_config.n_sessions = 40'000;
  traffic::SessionGenerator trainer(train_config);
  const traffic::Dataset history =
      trainer.generate(traffic::experiment_feature_indices());

  core::Polygraph trained;
  {
    const ml::Matrix features =
        history.feature_matrix(trained.config().feature_indices);
    std::vector<ua::UserAgent> uas;
    for (const auto& r : history.records()) uas.push_back(r.claimed);
    const auto summary = trained.train(features, uas);
    std::printf("offline training: %.2f%% accuracy on %zu sessions\n",
                100.0 * summary.clustering_accuracy, summary.rows_total);
  }

  const std::string model_path = "/tmp/browser_polygraph.model";
  if (!core::save_model(trained, model_path)) {
    std::fprintf(stderr, "failed to persist model\n");
    return 1;
  }
  std::printf("model persisted to %s\n", model_path.c_str());

  // ---- online: load and serve ----
  const auto model = core::load_model(model_path);
  if (!model.has_value()) {
    std::fprintf(stderr, "failed to load model\n");
    return 1;
  }

  traffic::TrafficConfig live_config;
  live_config.seed = 0x117E2024;
  traffic::SessionGenerator live(live_config);
  const auto& indices = model->config().feature_indices;

  std::map<int, std::size_t> risk_histogram;
  std::size_t flagged = 0;
  std::size_t flagged_ato = 0;
  constexpr std::size_t kStream = 50'000;
  for (std::size_t i = 0; i < kStream; ++i) {
    const traffic::SessionRecord session = live.next_session(indices);
    std::vector<double> features(session.features.begin(),
                                 session.features.end());
    const core::Detection detection =
        model->score(features, session.claimed);
    if (!detection.flagged) continue;
    ++flagged;
    flagged_ato += session.ato ? 1 : 0;
    ++risk_histogram[detection.risk_factor];
  }

  std::printf("\nserved %zu sessions, flagged %zu (%.2f%%), of which %zu "
              "became ATO within 72h\n",
              kStream, flagged, 100.0 * flagged / kStream, flagged_ato);

  util::TextTable table({"risk_factor", "sessions"});
  for (const auto& [risk, count] : risk_histogram) {
    table.add_row({std::to_string(risk), std::to_string(count)});
  }
  std::printf("\nrisk-factor histogram of flagged sessions:\n%s",
              table.render().c_str());
  std::printf(
      "\nA risk-based-authentication system consumes these factors as one\n"
      "signal among many: risk 0-1 near-misses are soft signals, vendor\n"
      "mismatches (risk %d) warrant step-up authentication.\n",
      model->config().vendor_distance);
  return 0;
}
