#include "serve/model_registry.h"

#include <utility>

namespace bp::serve {

std::uint64_t ModelRegistry::publish(
    std::shared_ptr<const core::Polygraph> model) {
  if (model == nullptr || !model->trained()) return 0;
  std::lock_guard lock(publish_mutex_);
  const std::uint64_t version = published_.load(std::memory_order_relaxed) + 1;
  history_.push_back(
      std::make_unique<const Entry>(Entry{std::move(model), version}));
  current_.store(history_.back().get(), std::memory_order_release);
  published_.store(version, std::memory_order_release);
  return version;
}

std::uint64_t ModelRegistry::publish(core::Polygraph model) {
  return publish(std::make_shared<const core::Polygraph>(std::move(model)));
}

ModelSnapshot ModelRegistry::current() const {
  const Entry* entry = current_.load(std::memory_order_acquire);
  if (entry == nullptr) return {};
  // Safe without a reference count: entries are immutable and outlive
  // every reader (retained in history_ until the registry dies).
  return {entry->model, entry->version};
}

}  // namespace bp::serve
