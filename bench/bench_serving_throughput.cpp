// bench_serving_throughput: load driver for the serving subsystem.
//
// Sweeps worker counts and batch sizes over a pre-generated session
// stream and reports sessions/second plus the latency distribution
// against the paper's ~100 ms per-request budget (§3).  The single
// worker / batch 1 configuration is the baseline; on a 4+ core machine
// the pool is expected to clear >= 3x its throughput.
//
// Output: a human-readable table on stdout plus machine-readable JSON
// ("serving_throughput.json" in the working directory, or argv[2]).
//
// Usage: bench_serving_throughput [n_sessions] [json_path]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/audit.h"
#include "obs/introspect/http.h"
#include "obs/introspect/server.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"
#include "traffic/session_generator.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

struct RunResult {
  std::size_t workers = 0;
  std::size_t max_batch = 0;
  double seconds = 0.0;
  double sessions_per_second = 0.0;
  double speedup = 1.0;  // vs the single worker / batch 1 baseline
  bp::serve::MetricsSnapshot metrics;
};

// The full observability plane, as a production deployment would run it.
struct ObsPlanes {
  bp::obs::MetricsRegistry* registry = nullptr;
  bp::obs::TraceSink* trace = nullptr;
  bp::obs::AuditTrail* audit = nullptr;
};

// `reps` replays the stream that many times inside one timed run — the
// overhead-gate arms use it so each measurement lasts long enough to
// mean something on a small stream / slow machine (a millisecond-scale
// run measures the scheduler, not the instrumentation).
RunResult run_configuration(const bp::serve::ModelRegistry& registry,
                            const std::vector<bp::serve::ScoreRequest>& stream,
                            std::size_t workers, std::size_t max_batch,
                            const ObsPlanes* planes = nullptr,
                            std::size_t reps = 1) {
  bp::serve::EngineConfig config;
  config.workers = workers;
  config.max_batch = max_batch;
  config.queue_capacity = 4096;
  config.overflow_policy = bp::serve::OverflowPolicy::kBlock;
  if (planes != nullptr) {
    config.registry = planes->registry;
    config.trace = planes->trace;
    config.audit = planes->audit;
  }
  bp::serve::ScoringEngine engine(registry, config, nullptr);

  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const bp::serve::ScoreRequest& request : stream) {
      engine.submit(request);  // copies; every run scores identical work
    }
  }
  engine.drain();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.workers = workers;
  result.max_batch = max_batch;
  result.seconds = std::chrono::duration<double>(end - begin).count();
  result.sessions_per_second =
      static_cast<double>(stream.size() * reps) / result.seconds;
  result.metrics = engine.metrics();
  engine.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;

  std::size_t n_sessions = 30'000;
  if (argc > 1) {
    char* end = nullptr;
    const long parsed = std::strtol(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || parsed <= 0) {
      std::fprintf(stderr,
                   "usage: %s [n_sessions > 0] [json_path]\n"
                   "  n_sessions: got '%s'\n",
                   argv[0], argv[1]);
      return 2;
    }
    n_sessions = static_cast<std::size_t>(parsed);
  }
  const std::string json_path = argc > 2 ? argv[2] : "serving_throughput.json";

  std::printf("training the production model...\n");
  const auto trained = benchmark_support::train_production(
      benchmark_support::make_training_dataset(40'000));

  serve::ModelRegistry registry;
  registry.publish(trained.model);

  // Pre-generate the stream so the sweep measures scoring, not synthesis.
  std::printf("generating %zu live sessions...\n", n_sessions);
  traffic::TrafficConfig live_config;
  live_config.seed = 0x5EF7E2024;
  traffic::SessionGenerator live(live_config);
  const auto& indices = trained.model.config().feature_indices;
  std::vector<serve::ScoreRequest> stream;
  stream.reserve(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    traffic::SessionRecord session = live.next_session(indices);
    serve::ScoreRequest request;
    request.id = i;
    request.features = std::move(session.features);
    request.claimed = session.claimed;
    stream.push_back(std::move(request));
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  std::vector<std::size_t> worker_counts{1, 2, 4};
  if (hardware > 4) worker_counts.push_back(hardware);
  const std::vector<std::size_t> batch_sizes{1, 16, 64};

  std::vector<RunResult> results;
  for (std::size_t workers : worker_counts) {
    for (std::size_t batch : batch_sizes) {
      RunResult result = run_configuration(registry, stream, workers, batch);
      if (!results.empty()) {
        result.speedup =
            result.sessions_per_second / results.front().sessions_per_second;
      }
      results.push_back(result);
      std::printf("  workers=%zu batch=%-3zu  %10.0f sessions/s  "
                  "p50=%.0fus p99=%.0fus\n",
                  result.workers, result.max_batch,
                  result.sessions_per_second, result.metrics.p50_micros(),
                  result.metrics.p99_micros());
    }
  }

  util::TextTable table(
      {"workers", "batch", "sessions/s", "speedup", "p50_us", "p95_us",
       "p99_us", "p99<100ms"});
  for (const RunResult& r : results) {
    char sps[32], speedup[16], p50[24], p95[24], p99[24];
    std::snprintf(sps, sizeof(sps), "%.0f", r.sessions_per_second);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", r.speedup);
    std::snprintf(p50, sizeof(p50), "%.0f", r.metrics.p50_micros());
    std::snprintf(p95, sizeof(p95), "%.0f", r.metrics.p95_micros());
    std::snprintf(p99, sizeof(p99), "%.0f", r.metrics.p99_micros());
    table.add_row({std::to_string(r.workers), std::to_string(r.max_batch),
                   sps, speedup, p50, p95, p99,
                   r.metrics.within_budget() ? "yes" : "NO"});
  }
  std::printf("\nserving throughput (%u hardware threads, %zu sessions "
              "per run):\n%s",
              hardware, n_sessions, table.render().c_str());

  // ---- observability overhead gate ----
  //
  // The same fixed configuration with the full observability plane off
  // vs on (shared registry, 1% trace sampling, 1% unflagged audit
  // sampling — production posture).  Best-of-3 per arm dampens
  // scheduler noise; instrumentation must cost < 3% throughput.
  constexpr double kObsOverheadGate = 0.03;
  const std::size_t gate_workers =
      std::min<std::size_t>(hardware == 0 ? 1 : hardware, 4);
  constexpr std::size_t kGateBatch = 16;
  // Replay the stream inside each timed run until it covers at least
  // ~200k sessions, so one measurement spans ~100 ms+ even on a slow
  // single-core box — an arm that finishes in single-digit
  // milliseconds measures scheduler luck, not instrumentation cost.
  const std::size_t gate_reps =
      std::max<std::size_t>(1, (200'000 + n_sessions - 1) / n_sessions);
  std::printf("\nmeasuring observability overhead (workers=%zu batch=%zu, "
              "stream x%zu per run, best of 3 per arm)...\n",
              gate_workers, kGateBatch, gate_reps);
  double baseline_sps = 0.0;
  double instrumented_sps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    baseline_sps = std::max(
        baseline_sps,
        run_configuration(registry, stream, gate_workers, kGateBatch, nullptr,
                          gate_reps)
            .sessions_per_second);
  }
  for (int rep = 0; rep < 3; ++rep) {
    obs::MetricsRegistry obs_registry;
    obs::TraceSinkConfig trace_config;
    trace_config.sample_rate = 0.01;
    obs::TraceSink trace(trace_config);
    obs::AuditTrail audit;  // default 1% unflagged sampling
    const ObsPlanes planes{&obs_registry, &trace, &audit};
    instrumented_sps = std::max(
        instrumented_sps,
        run_configuration(registry, stream, gate_workers, kGateBatch, &planes,
                          gate_reps)
            .sessions_per_second);
  }
  const double obs_overhead = 1.0 - instrumented_sps / baseline_sps;
  const bool obs_within_gate = obs_overhead < kObsOverheadGate;
  std::printf("  disabled:  %10.0f sessions/s\n"
              "  enabled:   %10.0f sessions/s\n"
              "  overhead:  %+.2f%% (gate < %.0f%%) -> %s\n",
              baseline_sps, instrumented_sps, 100.0 * obs_overhead,
              100.0 * kObsOverheadGate, obs_within_gate ? "ok" : "FAIL");

  // ---- scrape-under-load arm ----
  //
  // Same instrumented configuration, but with a live introspection
  // server attached and a scraper thread alternating GET /metrics and
  // GET /tracez over real TCP every ~100 ms for the whole run — 150x
  // hotter than a production Prometheus cadence.  Gated on the
  // *marginal* cost of being scraped (vs the instrumented arm, whose
  // own cost the gate above already bounds): rendering expositions
  // while workers hammer the counters must cost < 3% throughput.
  std::printf("measuring scrape-under-load overhead (same config, "
              "/metrics + /tracez scraped every ~100 ms)...\n");
  double scraped_sps = 0.0;
  std::uint64_t scrapes_completed = 0;
  for (int rep = 0; rep < 3; ++rep) {
    obs::MetricsRegistry obs_registry;
    obs::TraceSinkConfig trace_config;
    trace_config.sample_rate = 0.01;
    obs::TraceSink trace(trace_config);
    obs::AuditTrail audit;
    obs::introspect::Sources sources;
    sources.metrics = &obs_registry;
    sources.trace = &trace;
    sources.audit = &audit;
    obs::introspect::IntrospectionServer server(std::move(sources), {});
    if (!server.running()) {
      std::fprintf(stderr, "introspection server failed: %s\n",
                   server.error().c_str());
      return 1;
    }
    std::atomic<bool> stop_scraper{false};
    std::uint64_t scrapes = 0;
    std::thread scraper([&] {
      bool metrics_turn = true;
      while (!stop_scraper.load(std::memory_order_acquire)) {
        const obs::introspect::HttpResult got = obs::introspect::http_get(
            "127.0.0.1", server.port(), metrics_turn ? "/metrics" : "/tracez");
        if (got.status == 200) ++scrapes;
        metrics_turn = !metrics_turn;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    const ObsPlanes planes{&obs_registry, &trace, &audit};
    scraped_sps = std::max(
        scraped_sps,
        run_configuration(registry, stream, gate_workers, kGateBatch, &planes,
                          gate_reps)
            .sessions_per_second);
    stop_scraper.store(true, std::memory_order_release);
    scraper.join();
    server.stop();
    scrapes_completed += scrapes;
  }
  const double scrape_overhead = 1.0 - scraped_sps / instrumented_sps;
  const bool scrape_within_gate = scrape_overhead < kObsOverheadGate;
  std::printf("  scraped:   %10.0f sessions/s (%llu scrapes served)\n"
              "  overhead:  %+.2f%% vs instrumented (gate < %.0f%%) -> %s\n",
              scraped_sps, static_cast<unsigned long long>(scrapes_completed),
              100.0 * scrape_overhead, 100.0 * kObsOverheadGate,
              scrape_within_gate ? "ok" : "FAIL");

  std::string json = "{\n";
  json += "  \"hardware_threads\": " + std::to_string(hardware) + ",\n";
  json += "  \"sessions_per_run\": " + std::to_string(n_sessions) + ",\n";
  json += "  \"latency_budget_micros\": " +
          std::to_string(serve::kLatencyBudgetMicros) + ",\n";
  {
    char obs_entry[512];
    std::snprintf(
        obs_entry, sizeof(obs_entry),
        "  \"observability\": {\"baseline_sessions_per_second\": %.1f, "
        "\"instrumented_sessions_per_second\": %.1f, "
        "\"overhead_fraction\": %.4f, "
        "\"scraped_sessions_per_second\": %.1f, "
        "\"scrape_overhead_fraction\": %.4f, "
        "\"scrapes_completed\": %llu, "
        "\"gate_fraction\": %.2f, "
        "\"within_gate\": %s, \"scrape_within_gate\": %s, "
        "\"gates_enforced\": %s},\n",
        baseline_sps, instrumented_sps, obs_overhead, scraped_sps,
        scrape_overhead, static_cast<unsigned long long>(scrapes_completed),
        kObsOverheadGate, obs_within_gate ? "true" : "false",
        scrape_within_gate ? "true" : "false",
        hardware >= 4 ? "true" : "false");
    json += obs_entry;
  }
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    char entry[512];
    std::snprintf(
        entry, sizeof(entry),
        "    {\"workers\": %zu, \"max_batch\": %zu, \"seconds\": %.4f, "
        "\"sessions_per_second\": %.1f, \"speedup_vs_single\": %.3f, "
        "\"p50_micros\": %.1f, \"p95_micros\": %.1f, \"p99_micros\": %.1f, "
        "\"within_budget\": %s}%s\n",
        r.workers, r.max_batch, r.seconds, r.sessions_per_second, r.speedup,
        r.metrics.p50_micros(), r.metrics.p95_micros(),
        r.metrics.p99_micros(),
        r.metrics.within_budget() ? "true" : "false",
        i + 1 == results.size() ? "" : ",");
    json += entry;
  }
  json += "  ]\n}\n";
  if (!util::write_file(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nJSON written to %s\n", json_path.c_str());

  // The acceptance gate (meaningful on 4+ core machines): the pool must
  // beat 3x the single-thread baseline and hold p99 under the budget.
  double best_speedup = 1.0;
  bool all_within_budget = true;
  for (const RunResult& r : results) {
    best_speedup = std::max(best_speedup, r.speedup);
    all_within_budget = all_within_budget && r.metrics.within_budget();
  }
  std::printf("best speedup %.2fx; %s\n", best_speedup,
              all_within_budget ? "all runs inside the 100 ms p99 budget"
                                : "SOME RUNS OVER the 100 ms p99 budget");
  if (hardware >= 4 && best_speedup < 3.0) {
    std::fprintf(stderr, "expected >= 3x speedup on %u threads\n", hardware);
    return 1;
  }
  // Like the speedup gate, the overhead gates are enforced only with
  // real concurrency (4+ hardware threads): on one or two cores the
  // submitter, the workers and the scraper time-share, so every
  // instrumented instruction serializes with scoring and the measured
  // overhead reflects core starvation, not instrumentation cost.  The
  // values still print and land in the JSON either way.
  if (hardware >= 4 && !obs_within_gate) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the %.0f%% "
                 "gate\n",
                 100.0 * obs_overhead, 100.0 * kObsOverheadGate);
    return 1;
  }
  if (hardware >= 4 && !scrape_within_gate) {
    std::fprintf(stderr,
                 "FAIL: scrape-under-load overhead %.2f%% exceeds the %.0f%% "
                 "gate\n",
                 100.0 * scrape_overhead, 100.0 * kObsOverheadGate);
    return 1;
  }
  if (hardware < 4) {
    std::printf("(overhead gates measured but not enforced on %u hardware "
                "threads)\n", hardware);
  }
  return all_within_budget ? 0 : 1;
}
