file(REMOVE_RECURSE
  "CMakeFiles/bp_ua.dir/user_agent.cpp.o"
  "CMakeFiles/bp_ua.dir/user_agent.cpp.o.d"
  "libbp_ua.a"
  "libbp_ua.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_ua.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
