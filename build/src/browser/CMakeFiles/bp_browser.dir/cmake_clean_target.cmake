file(REMOVE_RECURSE
  "libbp_browser.a"
)
