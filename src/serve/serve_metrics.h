// Lock-cheap serving metrics.
//
// Every scored session updates counters; a metrics layer that takes a
// mutex per session would serialize the worker pool it is measuring.
// Instead each worker owns a cache-line-aligned block of relaxed
// atomics (no cross-worker sharing on the hot path); `snapshot()` folds
// the per-worker blocks into one consistent-enough view for reporting.
//
// Latency is recorded as a fixed-bucket histogram over microseconds so
// p50/p95/p99 can be reported against the paper's 100 ms per-request
// budget (§3) without storing samples.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bp::serve {

// §3's per-request budget: "around 100 milliseconds".
inline constexpr std::uint64_t kLatencyBudgetMicros = 100'000;

// Bucket upper bounds in microseconds: a coarse log ladder from 50 µs
// to 10 s.  The last bucket is open-ended.
inline constexpr std::array<std::uint64_t, 16> kLatencyBucketBoundsMicros = {
    50,      100,     250,     500,       1'000,     2'500,
    5'000,   10'000,  25'000,  50'000,    100'000,   250'000,
    500'000, 1'000'000, 5'000'000, 10'000'000};

std::size_t latency_bucket(std::uint64_t micros) noexcept;

// Folded view of the engine's counters at one instant.
struct MetricsSnapshot {
  std::uint64_t scored = 0;    // responses delivered with a detection
  std::uint64_t flagged = 0;   // scored responses with detection.flagged
  std::uint64_t shed = 0;      // responses delivered as shed (DropOldest)
  std::uint64_t rejected = 0;  // submissions refused at admission (Reject)
  std::uint64_t batches = 0;   // worker batch iterations
  std::uint64_t deadline_exceeded = 0;  // answered past their deadline
  std::uint64_t degraded = 0;  // answered by the UA-prior fallback scorer
  std::uint64_t stalled_workers = 0;  // watchdog gauge, at snapshot time
  std::uint64_t queue_depth = 0;  // instantaneous, at snapshot time
  std::uint64_t model_version = 0;  // latest published at snapshot time
  std::array<std::uint64_t, kLatencyBucketBoundsMicros.size() + 1>
      latency_histogram{};  // queue wait + scoring, per answered session
                            // (model-scored and degraded)

  double flag_rate() const noexcept {
    const std::uint64_t answered = scored + degraded;
    return answered == 0 ? 0.0 : static_cast<double>(flagged) / answered;
  }
  // Histogram quantile (linear interpolation inside a bucket);
  // q in [0, 1].  Returns 0 when nothing was scored.
  double latency_quantile_micros(double q) const noexcept;
  double p50_micros() const noexcept { return latency_quantile_micros(0.50); }
  double p95_micros() const noexcept { return latency_quantile_micros(0.95); }
  double p99_micros() const noexcept { return latency_quantile_micros(0.99); }
  bool within_budget() const noexcept {
    return p99_micros() < static_cast<double>(kLatencyBudgetMicros);
  }

  // One-line human-readable summary for logs and examples.
  std::string summary() const;
};

class ServeMetrics {
 public:
  explicit ServeMetrics(std::size_t n_workers);

  // Hot-path recording; `worker` < n_workers, callable concurrently
  // from distinct workers without contention.
  void record_scored(std::size_t worker, bool flagged,
                     std::uint64_t latency_micros) noexcept;
  void record_shed(std::size_t worker) noexcept;
  void record_batch(std::size_t worker) noexcept;
  void record_deadline_exceeded(std::size_t worker) noexcept;
  void record_degraded(std::size_t worker, bool flagged,
                       std::uint64_t latency_micros) noexcept;

  // Admission-side events (any thread).
  void record_rejected() noexcept;
  void record_shed_on_submit() noexcept;

  // Watchdog gauge (single writer: the watchdog thread).
  void set_stalled_workers(std::uint64_t n) noexcept {
    stalled_workers_.store(n, std::memory_order_relaxed);
  }

  std::size_t n_workers() const noexcept { return workers_.size(); }

  // Fold all per-worker blocks.  Caller fills queue_depth /
  // model_version (engine-owned context).
  MetricsSnapshot snapshot() const;

 private:
  struct alignas(64) WorkerBlock {
    std::atomic<std::uint64_t> scored{0};
    std::atomic<std::uint64_t> flagged{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> degraded{0};
    std::array<std::atomic<std::uint64_t>,
               kLatencyBucketBoundsMicros.size() + 1>
        latency{};
  };

  std::vector<WorkerBlock> workers_;
  alignas(64) std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_on_submit_{0};
  std::atomic<std::uint64_t> stalled_workers_{0};
};

}  // namespace bp::serve
