// StandardScaler — per-feature zero-mean / unit-variance scaling.
//
// Paper §6.4.1: "Some of our features had large values which could skew
// the results of our model towards them.  Therefore, we used Standard
// Scaler to scale some of our deviation-based attributes.  The time-based
// attributes were already in the binary format which was suitable."
//
// We support per-column opt-out so the binary time-based features can be
// passed through untouched, exactly as deployed.
#pragma once

#include <vector>

#include "ml/matrix.h"

namespace bp::ml {

class StandardScaler {
 public:
  // Fit on all columns.
  void fit(const Matrix& data);

  // Fit, but leave columns with `scale_column[c] == false` untouched
  // (identity transform).  `scale_column` must have data.cols() entries.
  void fit(const Matrix& data, const std::vector<bool>& scale_column);

  // Apply the fitted transform.  Columns whose training standard
  // deviation was zero are centered only (sklearn behaviour).
  Matrix transform(const Matrix& data) const;
  Matrix fit_transform(const Matrix& data);

  // Single-row transform into a caller-owned buffer (`out.size() ==
  // in.size() == cols`).  Allocation-free: the serving tier calls this
  // per session under its latency budget.  `in` and `out` may alias.
  void transform_row(std::span<const double> in, std::span<double> out) const;

  // Invert the transform (used by tests to verify round-tripping).
  Matrix inverse_transform(const Matrix& data) const;

  bool fitted() const noexcept { return !means_.empty(); }
  const std::vector<double>& means() const noexcept { return means_; }
  const std::vector<double>& stddevs() const noexcept { return stddevs_; }

  // Reconstruct a fitted scaler from persisted parameters (model_io).
  static StandardScaler from_params(std::vector<double> means,
                                    std::vector<double> stddevs);

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;  // 1.0 entries encode "pass through"
};

}  // namespace bp::ml
