// user-agent string model: parsing, formatting, and the vendor/version
// distance semantics used by Algorithm 1 of the paper.
//
// The threat model (paper §4) assumes the attacker always sets the
// victim's user-agent verbatim, so Browser Polygraph must be able to
// (a) synthesize realistic UA strings for every browser release in the
// study window, and (b) recover vendor + major version from an arbitrary
// claimed UA.  Note that privacy-focused Chromium/Gecko derivatives
// (Brave, Tor Browser) intentionally present the UA of their upstream —
// parsing alone cannot distinguish them; that discrepancy is exactly what
// the fingerprint-side detection exploits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bp::ua {

enum class Vendor : std::uint8_t {
  kChrome,
  kFirefox,
  kEdge,        // Chromium-based Edge (79+)
  kEdgeLegacy,  // EdgeHTML (Edge 17-19)
  kSafari,
  kUnknown,
};

std::string_view vendor_name(Vendor v) noexcept;

enum class Os : std::uint8_t {
  kWindows10,
  kWindows11,  // NB: Windows 11 reports "Windows NT 10.0" in UAs.
  kMacSonoma,
  kMacSequoia,
  kLinux,
};

std::string_view os_name(Os os) noexcept;

// A parsed (or synthesized) user-agent.
struct UserAgent {
  Vendor vendor = Vendor::kUnknown;
  int major_version = 0;
  Os os = Os::kWindows10;

  friend bool operator==(const UserAgent&, const UserAgent&) = default;

  // Short human-readable form, e.g. "Chrome 112".
  std::string label() const;

  // Canonical key used in cluster tables: vendor + major version.
  // OS is deliberately excluded — the paper clusters by browser release.
  std::uint32_t key() const noexcept {
    return (static_cast<std::uint32_t>(vendor) << 16) |
           static_cast<std::uint32_t>(major_version & 0xffff);
  }
};

// Render a full, realistic user-agent header value for the release.
// Examples of the shapes produced:
//   Chrome  : Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36
//             (KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36
//   Edge    : ... Chrome/112.0.0.0 Safari/537.36 Edg/112.0.1722.48
//   EdgeHTML: ... Chrome/64.0.3282.140 Safari/537.36 Edge/17.17134
//   Firefox : Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:102.0)
//             Gecko/20100101 Firefox/102.0
std::string format_user_agent(const UserAgent& ua);

// Parse a user-agent header value.  Only the tokens needed for fraud
// detection are recovered (vendor, major version, coarse OS).  Returns
// Vendor::kUnknown for strings that match no known desktop browser
// pattern; parse failures never throw.
UserAgent parse_user_agent(std::string_view header);

// Parse a short label of the form "Chrome 112" / "Firefox 101" /
// "Edge 17" as used throughout tables in the paper.
std::optional<UserAgent> parse_label(std::string_view label);

// Algorithm 1's vendor notion: EdgeHTML and Chromium Edge are the same
// vendor for distance purposes (both present as "Edge" to the analyst),
// every other vendor only matches itself.
bool same_vendor(Vendor a, Vendor b) noexcept;

}  // namespace bp::ua
