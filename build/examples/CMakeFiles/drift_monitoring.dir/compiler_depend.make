# Empty compiler generated dependencies file for drift_monitoring.
# This may be replaced when dependencies are built.
