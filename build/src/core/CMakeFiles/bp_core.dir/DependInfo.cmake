
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/artifact_scan.cpp" "src/core/CMakeFiles/bp_core.dir/artifact_scan.cpp.o" "gcc" "src/core/CMakeFiles/bp_core.dir/artifact_scan.cpp.o.d"
  "/root/repo/src/core/drift.cpp" "src/core/CMakeFiles/bp_core.dir/drift.cpp.o" "gcc" "src/core/CMakeFiles/bp_core.dir/drift.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/bp_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/bp_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/polygraph.cpp" "src/core/CMakeFiles/bp_core.dir/polygraph.cpp.o" "gcc" "src/core/CMakeFiles/bp_core.dir/polygraph.cpp.o.d"
  "/root/repo/src/core/preprocessing.cpp" "src/core/CMakeFiles/bp_core.dir/preprocessing.cpp.o" "gcc" "src/core/CMakeFiles/bp_core.dir/preprocessing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/bp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/bp_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/bp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fraudsim/CMakeFiles/bp_fraudsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ua/CMakeFiles/bp_ua.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
