# Empty dependencies file for bench_table13_synthetic_windows.
# This may be replaced when dependencies are built.
