#include "ml/metrics.h"

#include <cassert>
#include <cstdint>

namespace bp::ml {

namespace {

// label -> (cluster -> row count)
std::map<std::uint32_t, std::map<std::size_t, std::size_t>> tally(
    const std::vector<std::uint32_t>& labels,
    const std::vector<std::size_t>& clusters) {
  assert(labels.size() == clusters.size());
  std::map<std::uint32_t, std::map<std::size_t, std::size_t>> counts;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++counts[labels[i]][clusters[i]];
  }
  return counts;
}

}  // namespace

std::map<std::uint32_t, std::size_t> majority_clusters(
    const std::vector<std::uint32_t>& labels,
    const std::vector<std::size_t>& clusters) {
  std::map<std::uint32_t, std::size_t> majority;
  for (const auto& [label, per_cluster] : tally(labels, clusters)) {
    std::size_t best_cluster = 0;
    std::size_t best_count = 0;
    for (const auto& [cluster, count] : per_cluster) {
      if (count > best_count) {
        best_count = count;
        best_cluster = cluster;
      }
    }
    majority[label] = best_cluster;
  }
  return majority;
}

ClusterAccuracy clustering_accuracy(const std::vector<std::uint32_t>& labels,
                                    const std::vector<std::size_t>& clusters) {
  ClusterAccuracy out;
  out.majority = majority_clusters(labels, clusters);
  out.total_rows = labels.size();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (clusters[i] == out.majority.at(labels[i])) ++out.correct_rows;
  }
  out.row_accuracy = out.total_rows > 0
                         ? static_cast<double>(out.correct_rows) /
                               static_cast<double>(out.total_rows)
                         : 0.0;
  return out;
}

std::map<std::uint32_t, LabelAccuracy> per_label_accuracy(
    const std::vector<std::uint32_t>& labels,
    const std::vector<std::size_t>& clusters) {
  std::map<std::uint32_t, LabelAccuracy> out;
  for (const auto& [label, per_cluster] : tally(labels, clusters)) {
    LabelAccuracy acc;
    std::size_t best_count = 0;
    for (const auto& [cluster, count] : per_cluster) {
      acc.count += count;
      if (count > best_count) {
        best_count = count;
        acc.cluster = cluster;
      }
    }
    acc.accuracy = acc.count > 0 ? static_cast<double>(best_count) /
                                       static_cast<double>(acc.count)
                                 : 0.0;
    out[label] = acc;
  }
  return out;
}

}  // namespace bp::ml
