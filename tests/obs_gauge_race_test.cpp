// Callback-gauge unregistration racing a live scrape.
//
// The MetricsRegistry contract is "remove the callback before its
// referent dies".  That is only a usable contract if remove() actually
// excludes in-flight renders: once remove(name) returns, no render may
// invoke the callback again, and a render running concurrently with
// remove() must either see the gauge wholly (callback still valid) or
// not at all — never a torn/dangling call.  These tests hammer exactly
// that seam; the TSan tier is where a locking mistake shows up as a
// reported race, here it shows up as a read of a poisoned referent.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics_registry.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"

namespace {

TEST(ObsGaugeRace, RemoveExcludesInFlightScrapes) {
  bp::obs::MetricsRegistry registry;
  registry.counter("steady", "always present").increment();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string prom = registry.render_prometheus();
      const std::string json = registry.render_json();
      EXPECT_NE(prom.find("steady"), std::string::npos);
      EXPECT_NE(json.find("steady"), std::string::npos);
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Register/remove a callback gauge whose referent is heap state that
  // is poisoned immediately after remove() returns.  A render invoking
  // the callback after remove would read the poison.
  for (int i = 0; i < 400; ++i) {
    auto referent = std::make_unique<std::atomic<double>>(1.0);
    auto* raw = referent.get();
    registry.gauge_callback(
        "flicker", [raw] {
          const double v = raw->load(std::memory_order_relaxed);
          EXPECT_EQ(v, 1.0) << "callback ran against a dead referent";
          return v;
        },
        "transient");
    std::this_thread::yield();
    registry.remove("flicker");
    raw->store(-1.0, std::memory_order_relaxed);  // poison
    referent.reset();
  }

  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);
  // The transient gauge is gone for good.
  EXPECT_EQ(registry.render_prometheus().find("flicker"), std::string::npos);
}

// The production shape of the same race: a ScoringEngine registers
// <prefix>_queue_depth / <prefix>_model_version callback gauges that
// read engine internals, and its stop() removes them.  Tearing engines
// down while a scraper loops must never render through a dead engine.
TEST(ObsGaugeRace, EngineLifecycleUnderConcurrentScrape) {
  bp::obs::MetricsRegistry registry;
  bp::serve::ModelRegistry models;

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.render_prometheus();
      (void)registry.render_json();
    }
  });

  for (int i = 0; i < 12; ++i) {
    bp::serve::EngineConfig config;
    config.workers = 2;
    config.queue_capacity = 8;
    config.registry = &registry;
    bp::serve::ScoringEngine engine(models, config,
                                    [](const bp::serve::ScoreResponse&) {});
    std::this_thread::yield();
    engine.stop();
  }

  stop.store(true, std::memory_order_release);
  scraper.join();
  // After the last stop every engine gauge is unregistered: a final
  // render sees no engine callback gauges.
  EXPECT_EQ(registry.render_prometheus().find("queue_depth"),
            std::string::npos);
}

}  // namespace
