file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cluster_map.dir/bench_table3_cluster_map.cpp.o"
  "CMakeFiles/bench_table3_cluster_map.dir/bench_table3_cluster_map.cpp.o.d"
  "bench_table3_cluster_map"
  "bench_table3_cluster_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cluster_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
