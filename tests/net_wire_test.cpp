// Wire-format tests: round-trip both frame kinds, hit every typed
// parse error by name, and pin the allocation-free reuse contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"

namespace bp::net {
namespace {

// ------------------------------ round trips ------------------------------

TEST(NetWire, RequestRoundTrip) {
  const std::vector<std::int32_t> features = {0, -3, 17, 2147483647,
                                              -2147483648};
  std::string frame;
  render_score_request(987654321, "Chrome 112", features, &frame);
  EXPECT_EQ(frame, "bp1|987654321|Chrome 112|0 -3 17 2147483647 -2147483648\n");

  WireScoreRequest parsed;
  ASSERT_EQ(parse_score_request(frame, &parsed), WireError::kOk);
  EXPECT_EQ(parsed.session_id, 987654321u);
  EXPECT_EQ(parsed.claimed.vendor, ua::Vendor::kChrome);
  EXPECT_EQ(parsed.claimed.major_version, 112);
  EXPECT_EQ(parsed.features, features);
}

TEST(NetWire, RequestAcceptsFullUserAgentHeader) {
  std::string frame;
  render_score_request(
      7,
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36",
      std::vector<std::int32_t>{1, 2}, &frame);
  WireScoreRequest parsed;
  ASSERT_EQ(parse_score_request(frame, &parsed), WireError::kOk);
  EXPECT_EQ(parsed.claimed.vendor, ua::Vendor::kChrome);
  EXPECT_EQ(parsed.claimed.major_version, 112);
}

TEST(NetWire, RequestUnknownVendorIsNotAnError) {
  // Scoring a claimed UA the table has never seen is the risk path's
  // job, not a parse failure.
  WireScoreRequest parsed;
  ASSERT_EQ(parse_score_request("bp1|5|NetscapeNavigator/4.08|1 2", &parsed),
            WireError::kOk);
  EXPECT_EQ(parsed.claimed.vendor, ua::Vendor::kUnknown);
}

TEST(NetWire, RequestToleratesTrailingNewlineAndCrlf) {
  WireScoreRequest parsed;
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2", &parsed),
            WireError::kOk);
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2\n", &parsed),
            WireError::kOk);
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2\r\n", &parsed),
            WireError::kOk);
  EXPECT_EQ(parsed.features, (std::vector<std::int32_t>{1, 2}));
}

TEST(NetWire, ResponseRoundTrip) {
  WireScoreResponse response;
  response.session_id = 42;
  response.status = serve::ResponseStatus::kScored;
  response.flagged = true;
  response.risk_factor = -2;
  response.predicted_cluster = 7;
  response.model_version = 3;
  response.latency_micros = 1250;

  std::string frame;
  render_score_response(response, &frame);
  EXPECT_EQ(frame, "bp1|42|scored|1|-2|7|3|1250\n");

  WireScoreResponse parsed;
  ASSERT_EQ(parse_score_response(frame, &parsed), WireError::kOk);
  EXPECT_EQ(parsed.session_id, 42u);
  EXPECT_EQ(parsed.status, serve::ResponseStatus::kScored);
  EXPECT_TRUE(parsed.flagged);
  EXPECT_EQ(parsed.risk_factor, -2);
  EXPECT_EQ(parsed.predicted_cluster, 7u);
  EXPECT_EQ(parsed.model_version, 3u);
  EXPECT_EQ(parsed.latency_micros, 1250u);
}

TEST(NetWire, ResponseRoundTripsEveryStatus) {
  for (const serve::ResponseStatus status :
       {serve::ResponseStatus::kScored, serve::ResponseStatus::kShed,
        serve::ResponseStatus::kDeadlineExceeded,
        serve::ResponseStatus::kDegraded}) {
    WireScoreResponse response;
    response.session_id = 1;
    response.status = status;
    std::string frame;
    render_score_response(response, &frame);
    WireScoreResponse parsed;
    ASSERT_EQ(parse_score_response(frame, &parsed), WireError::kOk)
        << "status token: " << wire_status_token(status);
    EXPECT_EQ(parsed.status, status);
  }
}

// --------------------------- every typed error ---------------------------

TEST(NetWireErrors, EmptyFrame) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("", &request), WireError::kEmptyFrame);
  EXPECT_EQ(parse_score_request("\n", &request), WireError::kEmptyFrame);
  WireScoreResponse response;
  EXPECT_EQ(parse_score_response("", &response), WireError::kEmptyFrame);
}

TEST(NetWireErrors, Oversized) {
  const std::string frame =
      "bp1|1|Chrome 100|" + std::string(kMaxFrameBytes, '1');
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request(frame, &request), WireError::kOversized);
  WireScoreResponse response;
  EXPECT_EQ(parse_score_response(frame, &response), WireError::kOversized);
}

TEST(NetWireErrors, BadMagic) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("xq1|1|Chrome 100|1", &request),
            WireError::kBadMagic);
  EXPECT_EQ(parse_score_request("b", &request), WireError::kBadMagic);
  EXPECT_EQ(parse_score_request("bpX|1|Chrome 100|1", &request),
            WireError::kBadMagic);
  WireScoreResponse response;
  EXPECT_EQ(parse_score_response("GET / HTTP/1.1", &response),
            WireError::kBadMagic);
}

TEST(NetWireErrors, BadVersion) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("bp2|1|Chrome 100|1", &request),
            WireError::kBadVersion);
  EXPECT_EQ(parse_score_request("bp99|1|Chrome 100|1", &request),
            WireError::kBadVersion);
}

TEST(NetWireErrors, Truncated) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("bp1", &request), WireError::kTruncated);
  EXPECT_EQ(parse_score_request("bp1|1", &request), WireError::kTruncated);
  WireScoreResponse response;
  EXPECT_EQ(parse_score_response("bp1|1|scored|1|0|0", &response),
            WireError::kTruncated);
}

TEST(NetWireErrors, BadSessionId) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("bp1|abc|Chrome 100|1", &request),
            WireError::kBadSessionId);
  EXPECT_EQ(parse_score_request("bp1||Chrome 100|1", &request),
            WireError::kBadSessionId);
  EXPECT_EQ(parse_score_request("bp1|-1|Chrome 100|1", &request),
            WireError::kBadSessionId);
}

TEST(NetWireErrors, BadUserAgent) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("bp1|1||1 2", &request),
            WireError::kBadUserAgent);
}

TEST(NetWireErrors, NoFeatures) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|", &request),
            WireError::kNoFeatures);
}

TEST(NetWireErrors, BadFeature) {
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 x 3", &request),
            WireError::kBadFeature);
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1  3", &request),
            WireError::kBadFeature);  // double space = empty token
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|99999999999", &request),
            WireError::kBadFeature);  // int32 overflow
}

TEST(NetWireErrors, TooManyFeatures) {
  std::string frame = "bp1|1|Chrome 100|1";
  for (std::size_t i = 0; i < kMaxWireFeatures; ++i) frame += " 1";
  WireScoreRequest request;
  EXPECT_EQ(parse_score_request(frame, &request),
            WireError::kTooManyFeatures);
}

TEST(NetWireErrors, BadStatus) {
  WireScoreResponse response;
  EXPECT_EQ(parse_score_response("bp1|1|banana|0|0|0|1|10", &response),
            WireError::kBadStatus);
  EXPECT_EQ(parse_score_response("bp1|1|scored|2|0|0|1|10", &response),
            WireError::kBadStatus);  // flagged must be 0/1
  EXPECT_EQ(parse_score_response("bp1|1|scored|0|x|0|1|10", &response),
            WireError::kBadStatus);  // risk not an int
}

// --------------------- trace-context extension segment ---------------------

TEST(NetWireTrace, RequestRoundTrip) {
  std::string frame;
  render_score_request(42, "Chrome 100", std::vector<std::int32_t>{1, 2, 3},
                       &frame);
  append_trace_context({0xABCDEF, 7, true}, &frame);
  WireScoreRequest request;
  ASSERT_EQ(parse_score_request(frame, &request), WireError::kOk);
  EXPECT_EQ(request.session_id, 42u);
  EXPECT_EQ(request.features, (std::vector<std::int32_t>{1, 2, 3}));
  ASSERT_TRUE(request.trace.present());
  EXPECT_EQ(request.trace.trace_id, 0xABCDEFu);
  EXPECT_EQ(request.trace.parent_span, 7u);
  EXPECT_TRUE(request.trace.sampled);
}

TEST(NetWireTrace, ResponseCarriesContext) {
  WireScoreResponse out;
  out.session_id = 9;
  out.status = serve::ResponseStatus::kScored;
  out.model_version = 1;
  out.latency_micros = 10;
  std::string frame;
  render_score_response(out, &frame);
  append_trace_context({123, 3, false}, &frame);
  WireScoreResponse response;
  ASSERT_EQ(parse_score_response(frame, &response), WireError::kOk);
  ASSERT_TRUE(response.trace.present());
  EXPECT_EQ(response.trace.trace_id, 123u);
  EXPECT_EQ(response.trace.parent_span, 3u);
  EXPECT_FALSE(response.trace.sampled);
}

TEST(NetWireTrace, AbsentContextLeavesDefault) {
  WireScoreRequest request;
  request.trace = WireTraceContext{99, 1, true};  // stale from a prior parse
  ASSERT_EQ(parse_score_request("bp1|1|Chrome 100|1 2", &request),
            WireError::kOk);
  EXPECT_FALSE(request.trace.present());
}

TEST(NetWireTrace, UnknownExtensionTagsAreIgnored) {
  // Version tolerance: a newer peer may append segments we do not know;
  // well-formed unknown tags must parse cleanly, before or after t:.
  WireScoreRequest request;
  ASSERT_EQ(parse_score_request("bp1|1|Chrome 100|1 2|zz:whatever", &request),
            WireError::kOk);
  EXPECT_FALSE(request.trace.present());
  ASSERT_EQ(parse_score_request(
                "bp1|1|Chrome 100|1 2|zz:x|t:5:2:1|aa:y", &request),
            WireError::kOk);
  EXPECT_EQ(request.trace.trace_id, 5u);
}

TEST(NetWireTrace, MalformedExtensionShape) {
  WireScoreRequest request;
  // No colon, empty segment, dangling separator, uppercase tag: all the
  // shapes that are not <lowercase-tag>:<payload>.
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2|3", &request),
            WireError::kBadExtension);
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2|", &request),
            WireError::kBadExtension);
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2|t:1:2:1|", &request),
            WireError::kBadExtension);
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2|T:1:2:1", &request),
            WireError::kBadExtension);
  EXPECT_EQ(parse_score_request("bp1|1|Chrome 100|1 2|:payload", &request),
            WireError::kBadExtension);
}

TEST(NetWireTrace, MalformedTracePayload) {
  WireScoreRequest request;
  const char* bad[] = {
      "bp1|1|Chrome 100|1 2|t:1:2",        // too few parts
      "bp1|1|Chrome 100|1 2|t:1:2:1:9",    // too many parts
      "bp1|1|Chrome 100|1 2|t:0:2:1",      // zero trace id reserved
      "bp1|1|Chrome 100|1 2|t:x:2:1",      // id not a number
      "bp1|1|Chrome 100|1 2|t:1:99999999999:1",  // parent overflows u32
      "bp1|1|Chrome 100|1 2|t:1:2:2",      // sampled must be 0/1
      "bp1|1|Chrome 100|1 2|t:1:2:1|t:3:4:1",    // duplicate t segment
  };
  for (const char* frame : bad) {
    EXPECT_EQ(parse_score_request(frame, &request),
              WireError::kBadTraceContext)
        << frame;
  }
}

TEST(NetWireErrors, EveryErrorHasAName) {
  for (const WireError error :
       {WireError::kOk, WireError::kEmptyFrame, WireError::kOversized,
        WireError::kBadMagic, WireError::kBadVersion, WireError::kTruncated,
        WireError::kBadSessionId, WireError::kBadUserAgent,
        WireError::kNoFeatures, WireError::kBadFeature,
        WireError::kTooManyFeatures, WireError::kBadStatus,
        WireError::kBadExtension, WireError::kBadTraceContext}) {
    EXPECT_FALSE(wire_error_name(error).empty());
    EXPECT_NE(wire_error_name(error), "unknown");
  }
}

// ------------------------------ reuse contract ------------------------------

TEST(NetWire, ParseReusesFeatureCapacity) {
  WireScoreRequest request;
  ASSERT_EQ(parse_score_request("bp1|1|Chrome 100|1 2 3 4 5 6 7 8", &request),
            WireError::kOk);
  const std::size_t capacity = request.features.capacity();
  const std::int32_t* data = request.features.data();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(parse_score_request("bp1|2|Chrome 101|9 8 7", &request),
              WireError::kOk);
    EXPECT_EQ(request.features.capacity(), capacity);
    EXPECT_EQ(request.features.data(), data);  // same allocation throughout
  }
  EXPECT_EQ(request.features, (std::vector<std::int32_t>{9, 8, 7}));
}

TEST(NetWire, RenderReusesBufferCapacity) {
  std::string frame;
  render_score_request(1, "Chrome 100",
                       std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7, 8},
                       &frame);
  frame.reserve(256);
  const std::size_t capacity = frame.capacity();
  for (int i = 0; i < 100; ++i) {
    render_score_request(2, "Chrome 101", std::vector<std::int32_t>{1},
                         &frame);
    EXPECT_EQ(frame.capacity(), capacity);
  }
  EXPECT_EQ(frame, "bp1|2|Chrome 101|1\n");
}

}  // namespace
}  // namespace bp::net
