file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fraud_browsers.dir/bench_table5_fraud_browsers.cpp.o"
  "CMakeFiles/bench_table5_fraud_browsers.dir/bench_table5_fraud_browsers.cpp.o.d"
  "bench_table5_fraud_browsers"
  "bench_table5_fraud_browsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fraud_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
