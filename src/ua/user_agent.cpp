#include "ua/user_agent.h"

#include <cstdio>

#include "util/strings.h"

namespace bp::ua {

namespace {

using bp::util::contains;
using bp::util::parse_int;

// Extract the integer that follows `token` in `header` (major version up
// to the first '.' or non-digit).  Returns 0 when absent.
int version_after(std::string_view header, std::string_view token) {
  const std::size_t pos = header.find(token);
  if (pos == std::string_view::npos) return 0;
  std::size_t i = pos + token.size();
  int value = 0;
  bool any = false;
  while (i < header.size() && header[i] >= '0' && header[i] <= '9') {
    value = value * 10 + (header[i] - '0');
    any = true;
    ++i;
  }
  return any ? value : 0;
}

std::string os_fragment(Os os) {
  switch (os) {
    case Os::kWindows10:
    case Os::kWindows11:
      // Windows 11 froze the UA platform token at "Windows NT 10.0".
      return "Windows NT 10.0; Win64; x64";
    case Os::kMacSonoma:
      return "Macintosh; Intel Mac OS X 10_15_7";
    case Os::kMacSequoia:
      return "Macintosh; Intel Mac OS X 10_15_7";
    case Os::kLinux:
      return "X11; Linux x86_64";
  }
  return "Windows NT 10.0; Win64; x64";
}

}  // namespace

std::string_view vendor_name(Vendor v) noexcept {
  switch (v) {
    case Vendor::kChrome:
      return "Chrome";
    case Vendor::kFirefox:
      return "Firefox";
    case Vendor::kEdge:
      return "Edge";
    case Vendor::kEdgeLegacy:
      return "Edge";
    case Vendor::kSafari:
      return "Safari";
    case Vendor::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string_view os_name(Os os) noexcept {
  switch (os) {
    case Os::kWindows10:
      return "Windows 10";
    case Os::kWindows11:
      return "Windows 11";
    case Os::kMacSonoma:
      return "macOS Sonoma";
    case Os::kMacSequoia:
      return "macOS Sequoia";
    case Os::kLinux:
      return "Linux";
  }
  return "Windows 10";
}

std::string UserAgent::label() const {
  std::string out(vendor_name(vendor));
  out += ' ';
  out += std::to_string(major_version);
  return out;
}

std::string format_user_agent(const UserAgent& ua) {
  char buf[320];
  const std::string os = os_fragment(ua.os);
  switch (ua.vendor) {
    case Vendor::kChrome:
      std::snprintf(buf, sizeof(buf),
                    "Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) "
                    "Chrome/%d.0.0.0 Safari/537.36",
                    os.c_str(), ua.major_version);
      return buf;
    case Vendor::kEdge:
      std::snprintf(buf, sizeof(buf),
                    "Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) "
                    "Chrome/%d.0.0.0 Safari/537.36 Edg/%d.0.1722.48",
                    os.c_str(), ua.major_version, ua.major_version);
      return buf;
    case Vendor::kEdgeLegacy:
      std::snprintf(buf, sizeof(buf),
                    "Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) "
                    "Chrome/64.0.3282.140 Safari/537.36 Edge/%d.17134",
                    os.c_str(), ua.major_version);
      return buf;
    case Vendor::kFirefox:
      std::snprintf(buf, sizeof(buf),
                    "Mozilla/5.0 (%s; rv:%d.0) Gecko/20100101 Firefox/%d.0",
                    os.c_str(), ua.major_version, ua.major_version);
      return buf;
    case Vendor::kSafari:
      std::snprintf(buf, sizeof(buf),
                    "Mozilla/5.0 (%s) AppleWebKit/605.1.15 (KHTML, like Gecko) "
                    "Version/%d.0 Safari/605.1.15",
                    os.c_str(), ua.major_version);
      return buf;
    case Vendor::kUnknown:
      break;
  }
  return "Mozilla/5.0 (compatible)";
}

UserAgent parse_user_agent(std::string_view header) {
  UserAgent ua;

  if (contains(header, "Windows NT")) {
    ua.os = Os::kWindows10;
  } else if (contains(header, "Mac OS X")) {
    ua.os = Os::kMacSonoma;
  } else if (contains(header, "Linux")) {
    ua.os = Os::kLinux;
  }

  // Order matters: Chromium Edge UAs contain "Chrome/", EdgeHTML UAs
  // contain both "Chrome/" and "Edge/", Firefox UAs are disjoint.
  if (contains(header, "Edg/")) {
    ua.vendor = Vendor::kEdge;
    ua.major_version = version_after(header, "Edg/");
  } else if (contains(header, "Edge/")) {
    ua.vendor = Vendor::kEdgeLegacy;
    ua.major_version = version_after(header, "Edge/");
  } else if (contains(header, "Firefox/")) {
    ua.vendor = Vendor::kFirefox;
    ua.major_version = version_after(header, "Firefox/");
  } else if (contains(header, "Chrome/")) {
    ua.vendor = Vendor::kChrome;
    ua.major_version = version_after(header, "Chrome/");
  } else if (contains(header, "Safari/") && contains(header, "Version/")) {
    ua.vendor = Vendor::kSafari;
    ua.major_version = version_after(header, "Version/");
  } else {
    ua.vendor = Vendor::kUnknown;
    ua.major_version = 0;
  }
  return ua;
}

std::optional<UserAgent> parse_label(std::string_view label) {
  const auto parts = bp::util::split(bp::util::trim(label), ' ');
  if (parts.size() != 2) return std::nullopt;
  const auto version = parse_int(parts[1]);
  if (!version || *version <= 0) return std::nullopt;

  UserAgent ua;
  ua.major_version = static_cast<int>(*version);
  if (bp::util::iequals(parts[0], "Chrome")) {
    ua.vendor = Vendor::kChrome;
  } else if (bp::util::iequals(parts[0], "Firefox")) {
    ua.vendor = Vendor::kFirefox;
  } else if (bp::util::iequals(parts[0], "Edge")) {
    ua.vendor = ua.major_version < 20 ? Vendor::kEdgeLegacy : Vendor::kEdge;
  } else if (bp::util::iequals(parts[0], "Safari")) {
    ua.vendor = Vendor::kSafari;
  } else {
    return std::nullopt;
  }
  return ua;
}

bool same_vendor(Vendor a, Vendor b) noexcept {
  auto canon = [](Vendor v) {
    return v == Vendor::kEdgeLegacy ? Vendor::kEdge : v;
  };
  return canon(a) == canon(b);
}

}  // namespace bp::ua
