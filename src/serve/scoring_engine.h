// Concurrent scoring engine: the serving tier of §6.5.
//
// A sharded pool of worker threads drains a bounded MPMC queue in
// batches and scores each session with the registry's current model
// snapshot:
//
//   submit()  ->  BoundedQueue  ->  worker pool  ->  ResponseCallback
//                                     |  one ModelSnapshot per batch
//                                     |  one ScoringScratch per worker
//                                     v
//                                 ServeMetrics (per-worker counters)
//
// Invariants the tests pin down:
//   * every admitted request produces exactly one response — a score
//     (kScored), an explicit shed (kShed), a deadline miss
//     (kDeadlineExceeded) or a model-less fallback verdict (kDegraded);
//     a rejected submission produces none and is reported synchronously;
//   * a batch is scored by exactly one published model version (the
//     snapshot is taken once per batch), and every response names the
//     version that produced it (0 for sheds/deadline/degraded);
//   * the worker hot path performs no per-session allocation: requests
//     are moved through the queue and each drained batch is scored in
//     one fused pass through Polygraph::score_batch (a per-worker
//     BatchScratch holds the SoA panels) — bit-identical to per-session
//     Polygraph::score by the kernel's equivalence guarantee;
//   * with EngineConfig::cache_capacity > 0, a verdict cache
//     short-circuits repeat (fingerprint, UA) sessions at submit() and
//     again at batch pickup; cached responses are kScored with
//     ScoreResponse::cached set, always carry the version whose model
//     produced the verdict, and a hot swap atomically invalidates every
//     older entry (version-keyed lookups — see serve/verdict_cache.h).
//
// Failure posture (the robustness layer):
//   * `deadline` bounds how stale an answer may be: a request that
//     waited past its deadline is answered kDeadlineExceeded instead of
//     being scored late (§3's ~100 ms budget made explicit);
//   * `degrade_without_model` keeps the engine answering when nothing
//     is published: the UA-prior fallback (serve/degraded.h) scores the
//     claimed UA alone and the response is marked kDegraded, instead of
//     requests queueing unboundedly behind a model that may never come;
//   * a watchdog thread (armed via `watchdog_interval`) detects workers
//     stuck inside one batch longer than `stall_threshold` and surfaces
//     the count as MetricsSnapshot::stalled_workers.
//
// The callback runs on worker threads (and, for displaced-by-overflow
// sheds, on the submitting thread); it must be thread-safe and cheap.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "obs/audit.h"
#include "obs/trace.h"
#include "serve/bounded_queue.h"
#include "serve/model_registry.h"
#include "serve/serve_metrics.h"
#include "serve/verdict_cache.h"
#include "ua/user_agent.h"

namespace bp::serve {

struct ScoreRequest {
  std::uint64_t id = 0;                 // caller-chosen correlation id
  std::vector<std::int32_t> features;   // native session feature storage
  ua::UserAgent claimed;
  std::chrono::steady_clock::time_point admitted_at{};  // set by submit()
  // Content address of (features, claimed); computed once by submit()
  // when the verdict cache is enabled, so the worker-side lookup and
  // the post-score insert never rehash.
  VerdictCache::Key cache_key{};
  // Cross-hop trace context adopted from the wire (net/wire.h `t:`
  // segment).  trace_id == 0: no inbound context — local tracing rules
  // apply (trace id = request id, the sink's own sampling decision,
  // spans 1/2/3).  trace_id != 0: the request's spans join the client's
  // trace, parented under trace_parent in the adopted span-id block
  // (see adopted_span_base), and trace_sampled — the *client's*
  // head-sampling decision — overrides the local sink's in both
  // directions, so a sampled trace assembles completely or not at all.
  std::uint64_t trace_id = 0;
  std::uint32_t trace_parent = 0;
  bool trace_sampled = false;
};

// Span-id block for an adopted trace context: each distinct client
// parent span owns a disjoint 16-wide id range on the server side, so
// the two server visits of a hedged twin (distinct attempt parent
// spans, one shared trace id) can never collide.  Within a block:
// base+1 "server_request" (parented under the client span), base+2
// "queue_wait", base+3 terminal, base+4 "slot_admission", base+5
// "serialize" (the last two recorded by net::ScoreServer).
inline constexpr std::uint32_t adopted_span_base(
    std::uint32_t trace_parent) noexcept {
  return trace_parent * 16u;
}

enum class ResponseStatus : std::uint8_t {
  kScored,
  kShed,  // displaced under OverflowPolicy::kDropOldest; detection empty
  kDeadlineExceeded,  // answered past EngineConfig::deadline; not scored
  kDegraded,  // no model published; UA-prior fallback verdict in detection
};

struct ScoreResponse {
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kScored;
  core::Detection detection;        // valid iff kScored or kDegraded
  std::uint64_t model_version = 0;  // publishing version that scored it
  std::uint32_t worker = 0;         // scoring worker (0 for sheds)
  std::chrono::microseconds latency{0};  // admission -> response
  // kScored answered by the verdict cache — the detection was produced
  // by `model_version` for an identical (fingerprint, UA) earlier and
  // replayed without rescoring.  Audited with AuditRecord::kCached.
  bool cached = false;
};

enum class SubmitResult : std::uint8_t {
  kAdmitted,  // a response will follow
  kRejected,  // queue full under kReject; no response follows
  kStopped,   // engine stopped; no response follows
};

struct EngineConfig {
  std::size_t workers = 0;  // 0 = std::thread::hardware_concurrency()
  std::size_t queue_capacity = 4096;
  std::size_t max_batch = 32;  // requests scored per snapshot load
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;

  // Slot count of the content-addressed (fingerprint, UA) -> verdict
  // cache (rounded up to a power of two); 0 disables it.  With the
  // cache on, submit() answers repeat sessions synchronously on the
  // submitting thread (the response callback runs before submit
  // returns, as it already can for displaced sheds), and workers check
  // it again per request against the batch's snapshot version before
  // falling through to the SoA kernel.  Version-keyed entries make a
  // registry hot swap an atomic whole-cache invalidation.  Counters
  // appear under `<metrics_prefix>_cache_*`.
  std::size_t cache_capacity = 0;

  // Per-request deadline, measured from admission.  Zero disables: a
  // request is then scored no matter how long it queued.
  std::chrono::milliseconds deadline{0};

  // Answer with the UA-prior fallback (kDegraded) when no model is
  // published, instead of parking requests until one appears.
  bool degrade_without_model = false;

  // Watchdog cadence; zero disables the watchdog thread.
  std::chrono::milliseconds watchdog_interval{0};
  // A worker inside one batch for longer than this is counted stalled.
  std::chrono::milliseconds stall_threshold{250};

  // ---- observability (all optional; null = that plane disabled) ----
  //
  // Registry to export serving metrics into (alongside drift, retrain,
  // fault and training telemetry).  Null keeps the engine's metrics in
  // a private registry — isolated, but invisible to exporters.  Two
  // engines sharing a registry must use distinct metrics_prefix values.
  // The engine also registers two render-time callback gauges,
  // `<prefix>_queue_depth` and `<prefix>_model_version` (removed again
  // on stop()), so exported gauges are exactly as fresh as the render —
  // the uniform gauge semantics MetricsSnapshot documents.
  obs::MetricsRegistry* registry = nullptr;
  std::string metrics_prefix = "bp_serve";

  // Request-path tracing.  Per sampled request (trace id = request id,
  // decided deterministically by the sink) the engine records spans:
  //   1 "request"    admission -> response          (root)
  //   2 "queue_wait" admission -> batch pickup      (parent 1)
  //   3 terminal     "score" | "degrade" | "shed" | "deadline" (parent 1)
  // A request carrying an adopted cross-hop context (trace_id != 0)
  // instead records "server_request"/"queue_wait"/terminal at
  // adopted_span_base(trace_parent)+{1,2,3} under the client's trace
  // id, honoring the client's sampling decision over the local sink's.
  obs::TraceSink* trace = nullptr;

  // Decision audit trail: every flagged (and sampled unflagged) scored
  // or degraded response records its Algorithm-1 evidence.
  obs::AuditTrail* audit = nullptr;
};

class ScoringEngine {
 public:
  using ResponseCallback = std::function<void(const ScoreResponse&)>;

  // Starts the worker pool immediately.  `registry` must outlive the
  // engine; scoring waits (requests queue up) until the registry has a
  // published model, unless degrade_without_model answers them first.
  ScoringEngine(const ModelRegistry& registry, EngineConfig config,
                ResponseCallback on_response);
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  // Thread-safe admission.  On kAdmitted the engine owns the request
  // and will deliver exactly one response for it.  The const& overload
  // is the cache fast path's friend: a submit-side hit answers without
  // ever copying the request (the rvalue overload is identical for
  // hits; on a miss the const& form copies, exactly as a by-value
  // parameter would have).
  SubmitResult submit(ScoreRequest&& request);
  SubmitResult submit(const ScoreRequest& request);

  // Blocks until every admitted request has been responded to.
  // Producers should be quiescent (or the wait is racy by nature).
  void drain();

  // Closes the queue, scores what was already admitted, joins workers.
  // Idempotent; the destructor calls it.
  void stop();

  // Counter fold + engine context (queue depth, registry version).
  MetricsSnapshot metrics() const;

  // Verdict-cache counters; all-zero when the cache is disabled.
  CacheStats cache_stats() const {
    return cache_ != nullptr ? cache_->stats() : CacheStats{};
  }
  const VerdictCache* cache() const noexcept { return cache_.get(); }

  const EngineConfig& config() const noexcept { return config_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  // Per-worker liveness beacon for the watchdog.  Microseconds since
  // steady_clock epoch when the worker entered its current batch; 0
  // while idle (waiting in pop_batch).
  struct alignas(64) Heartbeat {
    std::atomic<std::int64_t> busy_since_us{0};
  };

  void worker_loop(std::uint32_t worker_index);
  void watchdog_loop();
  void record_request_trace(const ScoreRequest& request, const char* terminal,
                            std::int64_t picked_up_us,
                            std::int64_t done_us) const;
  // The trace id this request's spans land under when its trace is
  // sampled, 0 otherwise — the latency histogram's exemplar.
  std::uint64_t exemplar_trace_id(const ScoreRequest& request) const noexcept;
  void record_audit(const ScoreRequest& request, const ScoreResponse& response);
  void deliver_shed(ScoreRequest request, std::uint32_t worker_index,
                    bool from_submit);
  void deliver_deadline_exceeded(ScoreRequest request,
                                 std::uint32_t worker_index);
  // Replay a cached detection as a kScored/cached response (shared by
  // the submit-side fast path and the worker-side per-batch lookup).
  // Does not touch the completion accounting; callers do.
  void deliver_cached(const ScoreRequest& request,
                      const core::Detection& detection, std::uint64_t version,
                      std::uint32_t worker_index, std::size_t stripe,
                      std::chrono::steady_clock::time_point picked_up);
  // Submit-side cache fast path; true = answered, request not admitted.
  bool try_cached_submit(const ScoreRequest& request);
  // The queue path both public submit overloads fall through to after
  // a cache miss (or with the cache off).
  SubmitResult submit_miss(ScoreRequest&& request);
  void note_completed(std::uint64_t n);
  void retract_admission();
  bool past_deadline(
      const ScoreRequest& request,
      std::chrono::steady_clock::time_point now) const noexcept {
    return config_.deadline.count() > 0 &&
           now - request.admitted_at > config_.deadline;
  }

  const ModelRegistry& registry_;
  EngineConfig config_;
  ResponseCallback on_response_;
  BoundedQueue<ScoreRequest> queue_;
  ServeMetrics metrics_;
  // Declared after metrics_: the cache registers a callback gauge into
  // metrics_.registry() and must unhook (destruct) first.
  std::unique_ptr<VerdictCache> cache_;

  // On separate cache lines: every worker bumps completed_ while every
  // submitter bumps admitted_; sharing a line put the two hottest
  // atomics in the process into one ping-ponging cache line.
  alignas(64) std::atomic<std::uint64_t> admitted_{0};
  alignas(64) std::atomic<std::uint64_t> completed_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  std::vector<std::thread> workers_;
  // Render-time callback gauges registered into config_.registry; they
  // read live engine state, so stop() must remove them before the
  // engine can be destroyed under a longer-lived registry.
  bool callback_gauges_registered_ = false;

  std::vector<Heartbeat> heartbeats_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;
};

}  // namespace bp::serve
