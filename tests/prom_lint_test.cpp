// Prometheus text-exposition conformance lint over our own renderer.
//
// Scrapers are unforgiving parsers: a histogram whose cumulative
// buckets regress, a family whose samples precede its TYPE line, or a
// metric name with an illegal character silently corrupts dashboards
// long after the code change that caused it.  This test parses
// MetricsRegistry::render_prometheus() output line by line and enforces
// the exposition-format rules that matter:
//
//   * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
//   * per family: HELP (if present) precedes TYPE precedes samples,
//     and the block is contiguous
//   * histograms emit _bucket{le="..."} with ascending le ending in
//     +Inf, cumulative counts monotone non-decreasing, then _sum and
//     _count, with _count equal to the +Inf bucket
//   * every sample value parses as a number

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head_ok = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail_ok = [&](char c) {
    return head_ok(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head_ok(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!tail_ok(name[i])) return false;
  }
  return true;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

// Family name of a sample line: the metric name with histogram series
// suffixes stripped.
std::string family_of(const std::string& metric) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (metric.size() > s.size() &&
        metric.compare(metric.size() - s.size(), s.size(), s) == 0) {
      return metric.substr(0, metric.size() - s.size());
    }
  }
  return metric;
}

struct LintedFamily {
  bool saw_help = false;
  bool saw_type = false;
  bool saw_sample = false;
  bool closed = false;  // a different family started after this one
  std::string type;
  std::vector<std::pair<std::string, std::uint64_t>> buckets;  // le -> count
  std::optional<std::uint64_t> count_value;
};

void lint(const std::string& exposition,
          std::map<std::string, LintedFamily>* families) {
  std::string open_family;  // the family whose block we are inside
  for (const std::string& line : split_lines(exposition)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    std::string family;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      family = rest.substr(0, sp);
      EXPECT_TRUE(valid_metric_name(family)) << line;
      LintedFamily& f = (*families)[family];
      if (is_type) {
        EXPECT_FALSE(f.saw_type) << "duplicate TYPE for " << family;
        EXPECT_FALSE(f.saw_sample) << "TYPE after samples for " << family;
        f.saw_type = true;
        f.type = rest.substr(sp + 1);
        EXPECT_TRUE(f.type == "counter" || f.type == "gauge" ||
                    f.type == "histogram")
            << line;
      } else {
        EXPECT_FALSE(f.saw_help) << "duplicate HELP for " << family;
        EXPECT_FALSE(f.saw_type) << "HELP after TYPE for " << family;
        EXPECT_FALSE(f.saw_sample) << "HELP after samples for " << family;
        f.saw_help = true;
      }
    } else {
      // Sample line: name[{labels}] value
      std::size_t name_end = line.find_first_of("{ ");
      ASSERT_NE(name_end, std::string::npos) << line;
      const std::string metric = line.substr(0, name_end);
      EXPECT_TRUE(valid_metric_name(metric)) << line;
      family = family_of(metric);
      LintedFamily& f = (*families)[family];
      EXPECT_TRUE(f.saw_type) << "sample before TYPE: " << line;
      f.saw_sample = true;

      std::string labels;
      std::size_t value_begin = name_end;
      if (line[name_end] == '{') {
        const std::size_t close = line.find('}', name_end);
        ASSERT_NE(close, std::string::npos) << line;
        labels = line.substr(name_end + 1, close - name_end - 1);
        value_begin = close + 1;
      }
      ASSERT_LT(value_begin, line.size()) << line;
      ASSERT_EQ(line[value_begin], ' ') << line;
      const std::string value_text = line.substr(value_begin + 1);
      char* end = nullptr;
      const double value = std::strtod(value_text.c_str(), &end);
      EXPECT_EQ(*end, '\0') << "unparseable value: " << line;

      if (f.type == "histogram") {
        if (metric.size() >= 7 &&
            metric.compare(metric.size() - 7, 7, "_bucket") == 0) {
          ASSERT_EQ(labels.rfind("le=\"", 0), 0u) << line;
          ASSERT_EQ(labels.back(), '"') << line;
          f.buckets.emplace_back(labels.substr(4, labels.size() - 5),
                                 static_cast<std::uint64_t>(value));
        } else if (metric.compare(metric.size() - 6, 6, "_count") == 0) {
          f.count_value = static_cast<std::uint64_t>(value);
        }
      } else {
        EXPECT_TRUE(labels.empty()) << "unexpected labels: " << line;
      }
    }
    // Contiguity: once another family's block begins, the previous one
    // may never reappear.
    if (family != open_family) {
      if (!open_family.empty()) (*families)[open_family].closed = true;
      EXPECT_FALSE((*families)[family].closed)
          << "family " << family << " split into non-contiguous blocks";
      open_family = family;
    }
  }
}

TEST(ObsPromLint, RendererConformsToExpositionFormat) {
  bp::obs::MetricsRegistry registry;
  registry.counter("lint_requests_total", "requests").add(7);
  registry.gauge("lint_temperature", "a gauge").set(-3.25);
  registry.gauge_callback("lint_live_value", [] { return 42.0; }, "cb");
  const std::uint64_t bounds[] = {10, 100, 1000};
  bp::obs::Histogram& h =
      registry.histogram("lint_latency_micros", bounds, "latency");
  h.observe(5);
  h.observe(50);
  h.observe(50);
  h.observe(5000);  // lands in +Inf only
  // A histogram nobody observed still renders a complete series.
  registry.histogram("lint_empty_histogram", bounds, "empty");

  std::map<std::string, LintedFamily> families;
  lint(registry.render_prometheus(), &families);

  // Every instrument rendered, with the right type.
  ASSERT_TRUE(families.count("lint_requests_total"));
  EXPECT_EQ(families["lint_requests_total"].type, "counter");
  ASSERT_TRUE(families.count("lint_temperature"));
  EXPECT_EQ(families["lint_temperature"].type, "gauge");
  ASSERT_TRUE(families.count("lint_live_value"));
  EXPECT_EQ(families["lint_live_value"].type, "gauge");

  for (const char* name : {"lint_latency_micros", "lint_empty_histogram"}) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(families.count(name));
    const LintedFamily& f = families[name];
    EXPECT_EQ(f.type, "histogram");
    // Complete series: every bound plus +Inf, then _sum and _count.
    ASSERT_EQ(f.buckets.size(), 4u);
    EXPECT_EQ(f.buckets.back().first, "+Inf");
    // le ascending (numeric bounds before +Inf) and counts cumulative.
    double last_le = -1.0;
    std::uint64_t last_count = 0;
    for (std::size_t i = 0; i < f.buckets.size(); ++i) {
      if (f.buckets[i].first != "+Inf") {
        const double le = std::strtod(f.buckets[i].first.c_str(), nullptr);
        EXPECT_GT(le, last_le);
        last_le = le;
      } else {
        EXPECT_EQ(i, f.buckets.size() - 1) << "+Inf must be last";
      }
      EXPECT_GE(f.buckets[i].second, last_count)
          << "cumulative bucket counts regressed";
      last_count = f.buckets[i].second;
    }
    ASSERT_TRUE(f.count_value.has_value());
    EXPECT_EQ(*f.count_value, f.buckets.back().second)
        << "_count must equal the +Inf bucket";
  }

  // The populated histogram distributes as observed.
  const LintedFamily& lat = families["lint_latency_micros"];
  EXPECT_EQ(lat.buckets[0].second, 1u);  // le=10: the 5
  EXPECT_EQ(lat.buckets[1].second, 3u);  // le=100: +two 50s
  EXPECT_EQ(lat.buckets[2].second, 3u);  // le=1000
  EXPECT_EQ(lat.buckets[3].second, 4u);  // +Inf: the 5000
}

// The full production surface: everything the example service exports
// (serving, cache, training, fault metrics) must pass the same lint.
// Guards against a future exporter emitting an out-of-order or
// incomplete family.
TEST(ObsPromLint, ServingExportSurfaceConforms) {
  bp::obs::MetricsRegistry registry;
  registry.counter("bp_sessions_total", "sessions").increment();
  const std::uint64_t bounds[] = {100, 1000, 10000, 100000};
  registry.histogram("bp_serve_latency_micros", bounds, "serve latency")
      .observe(250);
  registry.gauge_callback("bp_queue_depth", [] { return 0.0; }, "depth");

  std::map<std::string, LintedFamily> families;
  lint(registry.render_prometheus(), &families);
  for (const auto& [name, family] : families) {
    EXPECT_TRUE(family.saw_type) << name;
    EXPECT_TRUE(family.saw_sample) << name;
  }
}

}  // namespace
