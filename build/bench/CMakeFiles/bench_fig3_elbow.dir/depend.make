# Empty dependencies file for bench_fig3_elbow.
# This may be replaced when dependencies are built.
