// Tests for the engine-timeline model: era boundaries, cross-engine
// coincidences that define Table 3's cluster structure, and the §6.3
// statistics the synthetic candidates must satisfy.
#include <gtest/gtest.h>

#include <cmath>

#include "browser/engine_timelines.h"
#include "browser/extractor.h"

namespace bp::browser {
namespace {

const FeatureCatalog& catalog() { return FeatureCatalog::instance(); }

std::size_t feature(const char* interface_name) {
  const std::size_t idx = catalog().index_of(
      std::string("Object.getOwnPropertyNames(") + interface_name +
      ".prototype).length");
  EXPECT_NE(idx, FeatureCatalog::npos);
  return idx;
}

TEST(Eras, BlinkBoundaries) {
  EXPECT_EQ(blink_era(59), 0);
  EXPECT_EQ(blink_era(68), 0);
  EXPECT_EQ(blink_era(69), 1);
  EXPECT_EQ(blink_era(89), 1);
  EXPECT_EQ(blink_era(90), 2);
  EXPECT_EQ(blink_era(101), 2);
  EXPECT_EQ(blink_era(102), 3);
  EXPECT_EQ(blink_era(109), 3);
  EXPECT_EQ(blink_era(110), 4);
  EXPECT_EQ(blink_era(113), 4);
  EXPECT_EQ(blink_era(114), 5);
  EXPECT_EQ(blink_era(118), 5);
  EXPECT_EQ(blink_era(119), 6);
}

TEST(Eras, GeckoBoundaries) {
  EXPECT_EQ(gecko_era(46), 0);
  EXPECT_EQ(gecko_era(50), 0);
  EXPECT_EQ(gecko_era(51), 1);
  EXPECT_EQ(gecko_era(91), 1);
  EXPECT_EQ(gecko_era(92), 2);
  EXPECT_EQ(gecko_era(100), 2);
  EXPECT_EQ(gecko_era(101), 3);
  EXPECT_EQ(gecko_era(118), 3);
  EXPECT_EQ(gecko_era(119), 4);
}

TEST(Timelines, ValuesConstantWithinEra) {
  const std::size_t element = feature("Element");
  EXPECT_EQ(baseline_value(Engine::kBlink, 110, element),
            baseline_value(Engine::kBlink, 113, element));
  EXPECT_EQ(baseline_value(Engine::kGecko, 101, element),
            baseline_value(Engine::kGecko, 114, element));
}

TEST(Timelines, ValuesStepAcrossEras) {
  const std::size_t element = feature("Element");
  EXPECT_LT(baseline_value(Engine::kBlink, 109, element),
            baseline_value(Engine::kBlink, 110, element));
  EXPECT_LT(baseline_value(Engine::kGecko, 91, element),
            baseline_value(Engine::kGecko, 92, element));
}

TEST(Timelines, BlinkDeviationValuesNonDecreasing) {
  // Prototype surfaces only grow within our window for Blink.
  for (std::size_t i = 0; i < 22; ++i) {
    const std::size_t idx = catalog().final_indices()[i];
    for (int v = 60; v <= 119; ++v) {
      EXPECT_GE(baseline_value(Engine::kBlink, v, idx),
                baseline_value(Engine::kBlink, v - 1, idx))
          << catalog().spec(idx).name << " at Blink " << v;
    }
  }
}

TEST(Timelines, Cluster2Coincidence) {
  // Chrome 59-68 and Firefox 51-91 must be close on every production
  // numeric (this is what merges them into the paper's cluster 2).
  double total = 0.0;
  for (std::size_t i = 0; i < 22; ++i) {
    const std::size_t idx = catalog().final_indices()[i];
    const double diff =
        std::abs(baseline_value(Engine::kBlink, 63, idx) -
                 baseline_value(Engine::kGecko, 70, idx));
    total += diff;
    EXPECT_LE(diff, 6.0) << catalog().spec(idx).name;
  }
  EXPECT_LE(total, 40.0);
}

TEST(Timelines, Cluster6Coincidence) {
  // EdgeHTML sits next to Firefox 46-50 (cluster 6).
  for (std::size_t i = 0; i < 22; ++i) {
    const std::size_t idx = catalog().final_indices()[i];
    EXPECT_LE(std::abs(baseline_value(Engine::kEdgeHtml, 18, idx) -
                       baseline_value(Engine::kGecko, 48, idx)),
              10.0)
        << catalog().spec(idx).name;
  }
}

TEST(Timelines, Firefox119ConvergesToBlinkEra2) {
  // §7.3: Firefox 119's Element rework pushes it into the Chrome 90-101
  // cluster; the numerics must match Blink era 2 exactly in our model.
  for (std::size_t i = 0; i < 22; ++i) {
    const std::size_t idx = catalog().final_indices()[i];
    EXPECT_NEAR(baseline_value(Engine::kGecko, 119, idx),
                baseline_value(Engine::kBlink, 95, idx), 6.0)
        << catalog().spec(idx).name;
  }
}

TEST(Timelines, TimeBasedBitsAreBinary) {
  for (std::size_t i = 22; i < 28; ++i) {
    const std::size_t idx = catalog().final_indices()[i];
    for (const auto& release : ReleaseDatabase::instance().releases()) {
      const int v = baseline_value(release.engine, release.engine_version, idx);
      EXPECT_TRUE(v == 0 || v == 1) << catalog().spec(idx).name;
    }
  }
}

TEST(Timelines, DeviceMemoryIsBlinkOnlyFrom63) {
  const std::size_t idx =
      catalog().index_of("Navigator.prototype.hasOwnProperty('deviceMemory')");
  EXPECT_EQ(baseline_value(Engine::kBlink, 62, idx), 0);
  EXPECT_EQ(baseline_value(Engine::kBlink, 63, idx), 1);
  EXPECT_EQ(baseline_value(Engine::kGecko, 119, idx), 0);
  EXPECT_EQ(baseline_value(Engine::kEdgeHtml, 18, idx), 0);
}

TEST(Timelines, WebkitFullscreenSeparatesVendors) {
  const std::size_t idx = catalog().index_of(
      "HTMLVideoElement.prototype.hasOwnProperty('webkitDisplayingFullscreen')");
  EXPECT_EQ(baseline_value(Engine::kBlink, 100, idx), 1);
  EXPECT_EQ(baseline_value(Engine::kGecko, 100, idx), 0);
}

TEST(Timelines, DeviationValuesNeverNegative) {
  for (std::size_t idx = 0; idx < catalog().candidate_count(); ++idx) {
    for (const auto& release : ReleaseDatabase::instance().releases()) {
      EXPECT_GE(baseline_value(release.engine, release.engine_version, idx), 0)
          << catalog().spec(idx).name;
    }
  }
}

TEST(Constants, RoughlyMatchPaperCount) {
  // §6.3: a one-day sample showed 186 of 513 features with a singular
  // value.  Our timeline model must land in that neighbourhood for the
  // modern population (global constancy is the lower bound).
  std::size_t constant = 0;
  for (std::size_t idx = 0; idx < catalog().candidate_count(); ++idx) {
    constant += is_globally_constant(idx) ? 1 : 0;
  }
  EXPECT_GE(constant, 120u);
  EXPECT_LE(constant, 240u);
}

TEST(Constants, FinalFeaturesNeverConstant) {
  for (std::size_t idx : catalog().final_indices()) {
    EXPECT_FALSE(is_globally_constant(idx)) << catalog().spec(idx).name;
  }
}

TEST(Rollout, OnlyVersion119Blends) {
  const auto& db = ReleaseDatabase::instance();
  for (const auto& release : db.releases()) {
    const double fraction = rollout_blend_fraction(release);
    if ((release.vendor == ua::Vendor::kChrome ||
         release.vendor == ua::Vendor::kFirefox) &&
        release.version == 119) {
      EXPECT_GT(fraction, 0.0) << release.label();
    } else {
      EXPECT_EQ(fraction, 0.0) << release.label();
    }
  }
}

TEST(Rollout, PreviousEraValueMatchesPredecessor) {
  const std::size_t element = feature("Element");
  // Blink 119's rollback cohort reports 110-113-era values.
  EXPECT_EQ(previous_era_value(Engine::kBlink, 119, element),
            baseline_value(Engine::kBlink, 113, element));
  // Gecko 119's laggards still report the 101-118 era.
  EXPECT_EQ(previous_era_value(Engine::kGecko, 119, element),
            baseline_value(Engine::kGecko, 118, element));
}

// Property: every release produces identical candidates on repeated
// extraction (the cache and the generator agree).
class BaselineDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineDeterminism, CachedEqualsRecomputed) {
  const auto releases = ReleaseDatabase::instance().releases();
  const auto& release = releases[GetParam() % releases.size()];
  const auto& cached =
      baseline_candidates(release.engine, release.engine_version);
  ASSERT_EQ(cached.size(), catalog().candidate_count());
  for (std::size_t idx = 0; idx < cached.size(); ++idx) {
    EXPECT_EQ(cached[idx],
              baseline_value(release.engine, release.engine_version, idx));
  }
}

INSTANTIATE_TEST_SUITE_P(SampleReleases, BaselineDeterminism,
                         ::testing::Values(0, 17, 35, 61, 88, 120, 135, 160,
                                           178));

}  // namespace
}  // namespace bp::browser
