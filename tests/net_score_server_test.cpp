// ScoreServer tests: POST /score over a real TCP socket — correct
// verdicts, keep-alive reuse, raw pipelining, the full malformed-frame
// suite at the HTTP layer, admission control, hot swap under concurrent
// client load (the TSan/ASan soak), and ordered shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "net/http_common.h"
#include "net/score_server.h"
#include "net/wire.h"
#include "obs/metrics_registry.h"
#include "serve/model_registry.h"

namespace bp::net {
namespace {

// Two PCA dims, two clusters: Chrome 100 expects cluster 0 at (0,0);
// features near (10,10) land in cluster 1 and flag.
core::Polygraph tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign({ua::Vendor::kChrome, 100, ua::Os::kWindows10}, 0);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

ScoreServerConfig small_config() {
  ScoreServerConfig config;
  config.router.shards = 2;
  config.router.engine.workers = 1;
  config.router.engine.queue_capacity = 1024;
  config.router.engine.overflow_policy = serve::OverflowPolicy::kReject;
  config.expected_features = 2;
  return config;
}

std::string request_frame(std::uint64_t session, std::string_view ua,
                          std::vector<std::int32_t> features) {
  std::string frame;
  render_score_request(session, ua, features, &frame);
  return frame;
}

// Raw socket helper for pipelining tests: connect, send `payload` in
// one burst, read until `expect_responses` response frames arrived (or
// the peer closes).
std::string raw_burst(std::uint16_t port, const std::string& payload,
                      std::size_t expect_responses) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string out;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::send(fd, payload.data(), payload.size(), 0) ==
          static_cast<ssize_t>(payload.size())) {
    char buf[4096];
    ssize_t n;
    std::size_t seen = 0;
    while (seen < expect_responses &&
           (n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      seen = 0;
      for (std::size_t pos = 0;
           (pos = out.find("HTTP/1.1 ", pos)) != std::string::npos;
           pos += 9) {
        ++seen;
      }
    }
  }
  ::close(fd);
  return out;
}

class NetScoreServerTest : public ::testing::Test {
 protected:
  void StartServer(ScoreServerConfig config = small_config(),
                   bool publish = true) {
    if (publish) ASSERT_TRUE(models_.publish(tiny_model()));
    server_ = std::make_unique<ScoreServer>(models_, std::move(config));
    ASSERT_TRUE(server_->running()) << server_->error();
  }

  serve::ModelRegistry models_;
  std::unique_ptr<ScoreServer> server_;
};

// ------------------------------ verdict paths ------------------------------

TEST_F(NetScoreServerTest, ScoresOverRealTcp) {
  StartServer();
  // Chrome 100 at (0,0): expected cluster, clean verdict.
  HttpResult clean = http_post("127.0.0.1", server_->port(), "/score",
                               request_frame(7, "Chrome 100", {0, 0}));
  ASSERT_EQ(clean.status, 200) << clean.error;
  WireScoreResponse verdict;
  ASSERT_EQ(parse_score_response(clean.body, &verdict), WireError::kOk)
      << clean.body;
  EXPECT_EQ(verdict.session_id, 7u);
  EXPECT_EQ(verdict.status, serve::ResponseStatus::kScored);
  EXPECT_FALSE(verdict.flagged);
  EXPECT_EQ(verdict.predicted_cluster, 0u);
  EXPECT_EQ(verdict.model_version, 1u);

  // Chrome 100 claiming but fingerprinting at (10,10): cluster
  // mismatch, flagged.
  HttpResult fraud = http_post("127.0.0.1", server_->port(), "/score",
                               request_frame(8, "Chrome 100", {10, 10}));
  ASSERT_EQ(fraud.status, 200);
  ASSERT_EQ(parse_score_response(fraud.body, &verdict), WireError::kOk);
  EXPECT_EQ(verdict.session_id, 8u);
  EXPECT_TRUE(verdict.flagged);
  EXPECT_EQ(verdict.predicted_cluster, 1u);
  EXPECT_EQ(server_->responses(), 2u);
}

TEST_F(NetScoreServerTest, DegradedVerdictBeforeFirstPublish) {
  ScoreServerConfig config = small_config();
  config.router.engine.degrade_without_model = true;
  StartServer(std::move(config), /*publish=*/false);
  HttpResult result = http_post("127.0.0.1", server_->port(), "/score",
                                request_frame(1, "Chrome 100", {0, 0}));
  ASSERT_EQ(result.status, 200) << result.error;
  WireScoreResponse verdict;
  ASSERT_EQ(parse_score_response(result.body, &verdict), WireError::kOk);
  EXPECT_EQ(verdict.status, serve::ResponseStatus::kDegraded);
  EXPECT_EQ(verdict.model_version, 0u);
}

// ----------------------------- HTTP-layer policy -----------------------------

TEST_F(NetScoreServerTest, RefusesWrongVerbAndPath) {
  StartServer();
  EXPECT_EQ(http_get("127.0.0.1", server_->port(), "/score").status, 405);
  EXPECT_EQ(http_post("127.0.0.1", server_->port(), "/metrics",
                      request_frame(1, "Chrome 100", {0, 0}))
                .status,
            404);
}

TEST_F(NetScoreServerTest, MalformedFramesGetTypedFourHundreds) {
  StartServer();
  const struct {
    std::string body;
    std::string expect_name;
  } cases[] = {
      {"", "empty_frame"},
      {"garbage", "bad_magic"},
      {"bp9|1|Chrome 100|0 0", "bad_version"},
      {"bp1|1", "truncated"},
      {"bp1|nope|Chrome 100|0 0", "bad_session_id"},
      {"bp1|1||0 0", "bad_user_agent"},
      {"bp1|1|Chrome 100|", "no_features"},
      {"bp1|1|Chrome 100|0 x", "bad_feature"},
  };
  for (const auto& test_case : cases) {
    HttpResult result = http_post("127.0.0.1", server_->port(), "/score",
                                  test_case.body);
    EXPECT_EQ(result.status, 400) << test_case.expect_name;
    EXPECT_NE(result.body.find(test_case.expect_name), std::string::npos)
        << result.body;
  }
  // Feature-count mismatch against the configured model width.
  HttpResult mismatch = http_post("127.0.0.1", server_->port(), "/score",
                                  request_frame(1, "Chrome 100", {1, 2, 3}));
  EXPECT_EQ(mismatch.status, 400);
  EXPECT_NE(mismatch.body.find("expected 2 features"), std::string::npos);
  EXPECT_EQ(server_->malformed(), 9u);
  EXPECT_EQ(server_->responses(), 0u);
}

TEST_F(NetScoreServerTest, OversizedBodyIsRefused) {
  ScoreServerConfig config = small_config();
  config.listener.max_body_bytes = 256;
  StartServer(std::move(config));
  const std::string big(1024, '1');
  EXPECT_EQ(
      http_post("127.0.0.1", server_->port(), "/score", big).status, 413);
}

// --------------------------- keep-alive + pipelining ---------------------------

TEST_F(NetScoreServerTest, KeepAliveReusesOneConnection) {
  StartServer();
  HttpClient client("127.0.0.1", server_->port());
  for (std::uint64_t session = 1; session <= 20; ++session) {
    HttpResult result =
        client.post("/score", request_frame(session, "Chrome 100", {0, 0}));
    ASSERT_EQ(result.status, 200) << client.error();
    WireScoreResponse verdict;
    ASSERT_EQ(parse_score_response(result.body, &verdict), WireError::kOk);
    EXPECT_EQ(verdict.session_id, session);
  }
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(server_->responses(), 20u);
}

TEST_F(NetScoreServerTest, PipelinedBurstAnswersInOrder) {
  StartServer();
  // Five requests written in one burst before any response is read.
  std::string payload;
  for (std::uint64_t session = 1; session <= 5; ++session) {
    const std::string frame = request_frame(session, "Chrome 100", {0, 0});
    payload += "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: " +
               std::to_string(frame.size()) + "\r\n\r\n" + frame;
  }
  const std::string raw = raw_burst(server_->port(), payload, 5);

  // All five answered, in request order (HTTP pipelining contract).
  std::vector<std::uint64_t> order;
  std::size_t pos = 0;
  while ((pos = raw.find("bp1|", pos)) != std::string::npos) {
    WireScoreResponse verdict;
    const std::size_t eol = raw.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    ASSERT_EQ(parse_score_response(raw.substr(pos, eol - pos + 1), &verdict),
              WireError::kOk);
    order.push_back(verdict.session_id);
    pos = eol;
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

// ------------------------------ admission control ------------------------------

TEST_F(NetScoreServerTest, StoppedShardsAnswerFiveOhThree) {
  StartServer();
  // A request that cannot be admitted downstream (here: shards stopped
  // out from under the ingress) releases its slot and answers 503 —
  // the client is told, never hung.
  server_->router().stop();
  HttpResult result = http_post("127.0.0.1", server_->port(), "/score",
                                request_frame(1, "Chrome 100", {0, 0}));
  EXPECT_EQ(result.status, 503);
  EXPECT_GE(server_->admission_rejected(), 1u);
  EXPECT_EQ(server_->inflight(), 0u);
}

TEST_F(NetScoreServerTest, ShardQueueRejectIsFiveOhThree) {
  ScoreServerConfig config = small_config();
  config.router.shards = 1;
  config.router.engine.workers = 1;
  config.router.engine.queue_capacity = 1;
  config.router.engine.overflow_policy = serve::OverflowPolicy::kReject;
  config.listener.handler_threads = 8;
  StartServer(std::move(config));
  // Flood 64 concurrent posts at a 1-deep queue: some score, and under
  // contention some are rejected; every client gets *an* answer.
  std::atomic<int> ok{0};
  std::atomic<int> unavailable{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < 8; ++i) {
        const std::uint64_t session = static_cast<std::uint64_t>(t) * 8 + i;
        HttpResult result = client.post(
            "/score", request_frame(session, "Chrome 100", {0, 0}));
        if (result.status == 200) {
          ok.fetch_add(1);
        } else if (result.status == 503) {
          unavailable.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(ok.load() + unavailable.load(), 64);
  EXPECT_GT(ok.load(), 0);
}

// ------------------------- hot swap under client load -------------------------

// The concurrent soak the sanitizers run: pipelined keep-alive clients
// hammer /score while the model is republished mid-stream.  Zero lost
// or corrupted responses; every verdict names version 1 or 2.
TEST_F(NetScoreServerTest, HotSwapUnderConcurrentLoad) {
  ScoreServerConfig config = small_config();
  config.listener.handler_threads = 4;
  StartServer(std::move(config));

  constexpr int kClients = 4;
  constexpr int kPerClient = 150;
  std::atomic<int> answered{0};
  std::atomic<int> corrupted{0};
  std::atomic<bool> saw_v2{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server_->port(),
                        std::chrono::milliseconds(10'000));
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t session =
            static_cast<std::uint64_t>(t) * kPerClient + i;
        HttpResult result = client.post(
            "/score", request_frame(session, "Chrome 100", {0, 0}));
        if (result.status != 200) continue;  // 503 under load is legal
        WireScoreResponse verdict;
        if (parse_score_response(result.body, &verdict) != WireError::kOk ||
            verdict.session_id != session ||
            (verdict.model_version != 1 && verdict.model_version != 2)) {
          corrupted.fetch_add(1);
          continue;
        }
        if (verdict.model_version == 2) saw_v2.store(true);
        answered.fetch_add(1);
      }
    });
  }
  // Republish mid-stream: wait until a third of the traffic has been
  // answered so the swap demonstrably lands between verdicts, not
  // before or after the burst.
  while (answered.load(std::memory_order_relaxed) <
         kClients * kPerClient / 3) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(models_.publish(tiny_model()));
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(corrupted.load(), 0);
  EXPECT_GT(answered.load(), 0);
  EXPECT_TRUE(saw_v2.load()) << "no verdict ever saw the new model";
  EXPECT_EQ(server_->router().model_version(), 2u);
}

// ------------------------------- teardown -------------------------------

TEST_F(NetScoreServerTest, StopIsOrderedAndIdempotent) {
  StartServer();
  ASSERT_EQ(http_post("127.0.0.1", server_->port(), "/score",
                      request_frame(1, "Chrome 100", {0, 0}))
                .status,
            200);
  server_->stop();
  EXPECT_EQ(server_->inflight(), 0u);
  // New connections are refused (or reset) once stopped.
  HttpResult after = http_post("127.0.0.1", server_->port(), "/score",
                               request_frame(2, "Chrome 100", {0, 0}));
  EXPECT_NE(after.status, 200);
  server_->stop();  // idempotent
}

TEST_F(NetScoreServerTest, StopUnderActiveClientsAnswersEveryAdmitted) {
  ScoreServerConfig config = small_config();
  config.listener.handler_threads = 4;
  StartServer(std::move(config));
  std::atomic<bool> go{true};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server_->port());
      std::uint64_t session = static_cast<std::uint64_t>(t) << 32;
      while (go.load(std::memory_order_acquire)) {
        client.post("/score", request_frame(++session, "Chrome 100", {0, 0}));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->stop();  // must not deadlock against blocked handlers
  go.store(false, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(server_->inflight(), 0u);
}

// ----------------------- shared client against introspect -----------------------

TEST(NetHttpClient, TransparentReconnectAfterServerSideClose) {
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  ScoreServerConfig config = small_config();
  ScoreServer server(models, std::move(config));
  ASSERT_TRUE(server.running());

  HttpClient client("127.0.0.1", server.port());
  std::string frame;
  render_score_request(1, "Chrome 100", std::vector<std::int32_t>{0, 0},
                       &frame);
  ASSERT_EQ(client.post("/score", frame).status, 200);
  // An error response closes the connection server-side; the next post
  // must transparently reconnect rather than fail.
  ASSERT_EQ(client.post("/score", "garbage").status, 400);
  render_score_request(2, "Chrome 100", std::vector<std::int32_t>{0, 0},
                       &frame);
  ASSERT_EQ(client.post("/score", frame).status, 200);
  EXPECT_GE(client.connects(), 2u);
}

// The listener's hardening counters ride the registry exposition while
// the server lives, and unregister cleanly when it dies (the gauges
// capture a reference to the listener).
TEST(NetScoreServerMetrics, ListenerGaugesRegisterAndUnregister) {
  obs::MetricsRegistry registry;
  serve::ModelRegistry models;
  ASSERT_TRUE(models.publish(tiny_model()));
  {
    ScoreServerConfig config = small_config();
    config.registry = &registry;
    ScoreServer server(models, std::move(config));
    ASSERT_TRUE(server.running()) << server.error();

    std::string frame;
    render_score_request(1, "Chrome 100", std::vector<std::int32_t>{0, 0},
                         &frame);
    ASSERT_EQ(http_post("127.0.0.1", server.port(), "/score", frame).status,
              200);
    EXPECT_EQ(registry.read_value("bp_net_http_requests_total"), 1.0);
    EXPECT_EQ(registry.read_value("bp_net_http_reaped_total"), 0.0);
    EXPECT_EQ(registry.read_value("bp_net_http_slowloris_total"), 0.0);
    EXPECT_EQ(registry.read_value("bp_net_http_overloaded_total"), 0.0);
  }
  // Server gone: every listener gauge (and the inflight gauge) is gone
  // from the exposition — rendering must not touch a dead listener.
  const std::string rendered = registry.render_prometheus();
  EXPECT_EQ(rendered.find("bp_net_http_"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("bp_net_inflight"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace bp::net
