// drift_monitoring: the §6.6 operations loop.
//
// A model trained on the spring corpus is frozen; the §6.6 schedule then
// walks the autumn data checkpoint by checkpoint (a few days after each
// Firefox release), scoring every brand-new browser release.  When the
// retraining signal fires, the model is retrained on the fresh window
// and the check re-run to confirm recovery.
#include <cstdio>

#include "core/drift.h"
#include "core/polygraph.h"
#include "traffic/session_generator.h"

namespace {

using namespace bp;

core::Polygraph train_on(const traffic::Dataset& data) {
  core::Polygraph model;
  const ml::Matrix features =
      data.feature_matrix(model.config().feature_indices);
  std::vector<ua::UserAgent> uas;
  for (const auto& r : data.records()) uas.push_back(r.claimed);
  const auto summary = model.train(features, uas);
  std::printf("  trained on %zu sessions: accuracy %.2f%%\n",
              summary.rows_total, 100.0 * summary.clustering_accuracy);
  return model;
}

}  // namespace

int main() {
  using namespace bp;

  std::printf("== spring training (March - early July 2023) ==\n");
  traffic::TrafficConfig spring;
  spring.n_sessions = 40'000;
  traffic::SessionGenerator spring_gen(spring);
  const core::Polygraph model =
      train_on(spring_gen.generate(traffic::experiment_feature_indices()));

  std::printf("\n== autumn monitoring (late July - early November) ==\n");
  traffic::TrafficConfig autumn;
  autumn.seed = 20230725;
  autumn.n_sessions = 80'000;
  autumn.start_date = bp::util::Date::from_ymd(2023, 7, 20);
  autumn.end_date = bp::util::Date::from_ymd(2023, 11, 3);
  traffic::SessionGenerator autumn_gen(autumn);
  const traffic::Dataset live =
      autumn_gen.generate(traffic::experiment_feature_indices());

  const core::DriftDetector detector(model, 0.98);
  const auto schedule = core::DriftDetector::schedule(
      autumn.start_date, autumn.end_date, /*days_after_release=*/3);

  bool retraining_needed = false;
  for (const auto& check : schedule) {
    std::printf("\ncheck on %s:\n", check.date.to_string().c_str());
    const core::DriftReport report = detector.check(
        live.slice(autumn.start_date, check.date), check.releases, check.date);
    for (const auto& entry : report.entries) {
      std::printf("  %-12s cluster %zu  accuracy %.2f%%  %s\n",
                  entry.release.label().c_str(), entry.predominant_cluster,
                  100.0 * entry.accuracy,
                  entry.triggers_retraining()
                      ? (entry.cluster_changed ? "<-- cluster change"
                                               : "<-- accuracy drop")
                      : "");
    }
    retraining_needed |= report.retraining_required;
    if (report.retraining_required) {
      std::printf("  retraining signal raised at this checkpoint\n");
    }
  }

  if (retraining_needed) {
    std::printf("\n== retraining on the fresh window ==\n");
    const core::Polygraph fresh = train_on(live);
    const core::DriftDetector fresh_detector(fresh, 0.98);
    const core::DriftReport confirm = fresh_detector.check(
        live,
        {{ua::Vendor::kChrome, 119, ua::Os::kWindows10},
         {ua::Vendor::kFirefox, 119, ua::Os::kWindows10},
         {ua::Vendor::kEdge, 119, ua::Os::kWindows10}},
        autumn.end_date);
    for (const auto& entry : confirm.entries) {
      std::printf("  %-12s now clusters at %.2f%% accuracy\n",
                  entry.release.label().c_str(), 100.0 * entry.accuracy);
    }
  } else {
    std::printf("\nno drift detected over the monitored window\n");
  }
  return 0;
}
