file(REMOVE_RECURSE
  "libbp_fraudsim.a"
)
