// Coarse-grained fingerprint extraction.
//
// In production this is a <1KB JavaScript snippet evaluating
// Object.getOwnPropertyNames(...).length over the candidate interfaces;
// here the "page visit" is simulated against the engine-timeline model.
// Two paths are provided:
//
//   * extract_candidates / extract_final — the values a visit produces,
//     including environment modifiers and staggered-rollout blending.
//     This is what the traffic generator and fraud simulators call.
//
//   * SimulatedDom — an object-model walk that actually materializes the
//     property-name lists and counts them, giving the extraction a
//     realistic, measurable cost profile for the Table 2 / §7.5
//     performance benchmarks (property enumeration dominated by string
//     handling, a few hundred names per prototype).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "browser/environment.h"
#include "browser/feature_catalog.h"

namespace bp::browser {

// One collected record, exactly the fields FinOrg's collection pipeline
// stored: candidate feature values, the navigator.userAgent string, and
// an opaque session identifier.
using CandidateValues = std::vector<int>;  // catalog.candidate_count() wide
using FinalValues = std::vector<double>;   // the production 28, Table 8 order

// Pristine-install candidate values for an engine release (memoized;
// `previous_era` selects the staggered-rollout cohort's values).
const CandidateValues& baseline_candidates(Engine engine, int engine_version,
                                           bool previous_era = false);

// All 513 candidate values for a visit from `env`.
CandidateValues extract_candidates(const Environment& env);

// Restrict candidate values to a feature subset (by candidate index).
FinalValues select_features(const CandidateValues& values,
                            const std::vector<std::size_t>& indices);

// The production 28 directly.
FinalValues extract_final(const Environment& env);

// Serialized collection payload: the integer outputs joined with commas
// plus the UA string and the opaque session id — the paper's "under one
// kilobyte" budget refers to this (production feature set).
std::string serialize_payload(const FinalValues& values,
                              const std::string& user_agent,
                              const std::string& session_id);
std::string serialize_payload(const CandidateValues& values,
                              const std::string& user_agent,
                              const std::string& session_id);

// ----------------------------------------------------------------------
// SimulatedDom: materializes per-interface property-name tables so that
// benchmarks measure work comparable to real prototype reflection.
// ----------------------------------------------------------------------
class SimulatedDom {
 public:
  explicit SimulatedDom(const Environment& env);

  // Enumerate the (synthetic) own-property names of an interface's
  // prototype; size equals the timeline value for the environment.
  const std::vector<std::string>& own_property_names(
      std::size_t candidate_index) const;

  // Run the full production extraction against the materialized model:
  // enumerate + count for the 22 deviation features, probe presence for
  // the 6 time-based ones.  Returns the same values as extract_final.
  FinalValues run_production_script() const;

 private:
  Environment env_;
  // Lazily built per candidate feature (only deviation-based entries are
  // ever populated).
  mutable std::vector<std::vector<std::string>> property_tables_;
  mutable std::vector<bool> built_;
};

}  // namespace bp::browser
