#include "net/wire.h"

#include <charconv>
#include <limits>

namespace bp::net {

namespace {

// Strip the one tolerated trailing newline (and a preceding '\r', so
// curl with --data-binary $'...\r\n' still round-trips).
std::string_view strip_line_ending(std::string_view frame) noexcept {
  if (!frame.empty() && frame.back() == '\n') frame.remove_suffix(1);
  if (!frame.empty() && frame.back() == '\r') frame.remove_suffix(1);
  return frame;
}

bool parse_u64(std::string_view text, std::uint64_t* out) noexcept {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_i32(std::string_view text, std::int32_t* out) noexcept {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

// Split off the next '|'-terminated field.  Returns false when no '|'
// remains (the caller decides whether the tail is the last field).
bool next_field(std::string_view* rest, std::string_view* field) noexcept {
  const std::size_t bar = rest->find('|');
  if (bar == std::string_view::npos) return false;
  *field = rest->substr(0, bar);
  rest->remove_prefix(bar + 1);
  return true;
}

// "bp<digits>|" prefix check shared by both frame parsers.
WireError check_magic(std::string_view* frame) noexcept {
  if (frame->size() < 2 || (*frame)[0] != 'b' || (*frame)[1] != 'p') {
    return WireError::kBadMagic;
  }
  frame->remove_prefix(2);
  std::string_view version_field;
  if (!next_field(frame, &version_field)) return WireError::kTruncated;
  std::uint64_t version = 0;
  if (!parse_u64(version_field, &version)) return WireError::kBadMagic;
  if (version != static_cast<std::uint64_t>(kWireVersion)) {
    return WireError::kBadVersion;
  }
  return WireError::kOk;
}

void append_u64(std::string* out, std::uint64_t value) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, ptr);
}

void append_i64(std::string* out, std::int64_t value) {
  char buf[21];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, ptr);
}

}  // namespace

std::string_view wire_error_name(WireError error) noexcept {
  switch (error) {
    case WireError::kOk: return "ok";
    case WireError::kEmptyFrame: return "empty_frame";
    case WireError::kOversized: return "oversized";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadSessionId: return "bad_session_id";
    case WireError::kBadUserAgent: return "bad_user_agent";
    case WireError::kNoFeatures: return "no_features";
    case WireError::kBadFeature: return "bad_feature";
    case WireError::kTooManyFeatures: return "too_many_features";
    case WireError::kBadStatus: return "bad_status";
  }
  return "unknown";
}

WireError parse_score_request(std::string_view frame, WireScoreRequest* out) {
  if (frame.size() > kMaxFrameBytes) return WireError::kOversized;
  frame = strip_line_ending(frame);
  if (frame.empty()) return WireError::kEmptyFrame;

  const WireError magic = check_magic(&frame);
  if (magic != WireError::kOk) return magic;

  std::string_view id_field;
  if (!next_field(&frame, &id_field)) return WireError::kTruncated;
  if (!parse_u64(id_field, &out->session_id)) {
    return WireError::kBadSessionId;
  }

  std::string_view ua_field;
  if (!next_field(&frame, &ua_field)) return WireError::kTruncated;
  if (ua_field.empty()) return WireError::kBadUserAgent;
  // The short label form first ("Chrome 112"), then the full header.
  // An unknown vendor is not an error: scoring a claimed UA the table
  // has never seen is exactly the risk path's job.
  if (const auto label = ua::parse_label(ua_field)) {
    out->claimed = *label;
  } else {
    out->claimed = ua::parse_user_agent(ua_field);
  }

  // `frame` is now the feature field — the last one, so a further '|'
  // is a malformed feature, not another field.
  if (frame.empty()) return WireError::kNoFeatures;
  out->features.clear();
  std::size_t pos = 0;
  while (pos <= frame.size()) {
    std::size_t space = frame.find(' ', pos);
    if (space == std::string_view::npos) space = frame.size();
    const std::string_view token = frame.substr(pos, space - pos);
    std::int32_t value = 0;
    if (!parse_i32(token, &value)) return WireError::kBadFeature;
    if (out->features.size() >= kMaxWireFeatures) {
      return WireError::kTooManyFeatures;
    }
    out->features.push_back(value);
    pos = space + 1;
  }
  return WireError::kOk;
}

void render_score_request(std::uint64_t session_id,
                          std::string_view claimed_ua,
                          std::span<const std::int32_t> features,
                          std::string* out) {
  out->clear();
  out->append("bp");
  append_u64(out, static_cast<std::uint64_t>(kWireVersion));
  out->push_back('|');
  append_u64(out, session_id);
  out->push_back('|');
  out->append(claimed_ua);
  out->push_back('|');
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (i > 0) out->push_back(' ');
    append_i64(out, features[i]);
  }
  out->push_back('\n');
}

std::string_view wire_status_token(serve::ResponseStatus status) noexcept {
  switch (status) {
    case serve::ResponseStatus::kScored: return "scored";
    case serve::ResponseStatus::kShed: return "shed";
    case serve::ResponseStatus::kDeadlineExceeded: return "deadline";
    case serve::ResponseStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

void render_score_response(const WireScoreResponse& response,
                           std::string* out) {
  out->clear();
  out->append("bp");
  append_u64(out, static_cast<std::uint64_t>(kWireVersion));
  out->push_back('|');
  append_u64(out, response.session_id);
  out->push_back('|');
  out->append(wire_status_token(response.status));
  out->push_back('|');
  out->push_back(response.flagged ? '1' : '0');
  out->push_back('|');
  append_i64(out, response.risk_factor);
  out->push_back('|');
  append_u64(out, response.predicted_cluster);
  out->push_back('|');
  append_u64(out, response.model_version);
  out->push_back('|');
  append_u64(out, response.latency_micros);
  out->push_back('\n');
}

WireError parse_score_response(std::string_view frame,
                               WireScoreResponse* out) {
  if (frame.size() > kMaxFrameBytes) return WireError::kOversized;
  frame = strip_line_ending(frame);
  if (frame.empty()) return WireError::kEmptyFrame;

  const WireError magic = check_magic(&frame);
  if (magic != WireError::kOk) return magic;

  std::string_view field;
  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (!parse_u64(field, &out->session_id)) return WireError::kBadSessionId;

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (field == "scored") {
    out->status = serve::ResponseStatus::kScored;
  } else if (field == "shed") {
    out->status = serve::ResponseStatus::kShed;
  } else if (field == "deadline") {
    out->status = serve::ResponseStatus::kDeadlineExceeded;
  } else if (field == "degraded") {
    out->status = serve::ResponseStatus::kDegraded;
  } else {
    return WireError::kBadStatus;
  }

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (field != "0" && field != "1") return WireError::kBadStatus;
  out->flagged = field == "1";

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  std::int32_t risk = 0;
  if (!parse_i32(field, &risk)) return WireError::kBadStatus;
  out->risk_factor = risk;

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  std::uint64_t cluster = 0;
  if (!parse_u64(field, &cluster) ||
      cluster > std::numeric_limits<std::uint32_t>::max()) {
    return WireError::kBadStatus;
  }
  out->predicted_cluster = static_cast<std::uint32_t>(cluster);

  if (!next_field(&frame, &field)) return WireError::kTruncated;
  if (!parse_u64(field, &out->model_version)) return WireError::kBadStatus;

  // Latency is the last field: the remaining tail, no further '|'.
  if (frame.find('|') != std::string_view::npos) {
    return WireError::kBadStatus;
  }
  if (!parse_u64(frame, &out->latency_micros)) return WireError::kBadStatus;
  return WireError::kOk;
}

}  // namespace bp::net
