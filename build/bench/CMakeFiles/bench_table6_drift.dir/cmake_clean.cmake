file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_drift.dir/bench_table6_drift.cpp.o"
  "CMakeFiles/bench_table6_drift.dir/bench_table6_drift.cpp.o.d"
  "bench_table6_drift"
  "bench_table6_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
