// Tests for candidate ranking (§6.1) and data pre-processing (§6.3).
#include <gtest/gtest.h>

#include <set>

#include "core/preprocessing.h"
#include "traffic/session_generator.h"

namespace bp::core {
namespace {

// A one-day collection sample carrying ALL 513 candidates, like the
// March-1 sample the paper analyzed.
const traffic::Dataset& march_sample() {
  static const traffic::Dataset* sample = [] {
    traffic::TrafficConfig config;
    config.n_sessions = 4'000;
    config.start_date = bp::util::Date::from_ymd(2023, 3, 1);
    config.end_date = bp::util::Date::from_ymd(2023, 3, 1);
    traffic::SessionGenerator gen(config);
    return new traffic::Dataset(gen.generate());
  }();
  return *sample;
}

TEST(Ranking, CoversAllDeviationCandidates) {
  const auto ranking = rank_candidates_by_deviation();
  EXPECT_EQ(ranking.size(), 200u);
}

TEST(Ranking, SortedDescendingByStddev) {
  const auto ranking = rank_candidates_by_deviation();
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].stddev, ranking[i].stddev);
  }
}

TEST(Ranking, ProductionFeaturesRankHighly) {
  // The 22 production deviation features were chosen for spread: they
  // should all sit in the upper half of the ranking.
  const auto ranking = rank_candidates_by_deviation();
  const auto& catalog = browser::FeatureCatalog::instance();
  std::set<std::size_t> finals(catalog.final_indices().begin(),
                               catalog.final_indices().end());
  std::size_t in_top_half = 0;
  std::size_t in_top_170 = 0;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (finals.count(ranking[i].candidate_index) == 0) continue;
    in_top_half += i < 100 ? 1 : 0;
    in_top_170 += i < 170 ? 1 : 0;
  }
  // The big prototype surfaces dominate the head of the ranking; the
  // small-count production features (StaticRange, TextMetrics, ...) sit
  // mid-table but never in the tail.
  EXPECT_GE(in_top_half, 10u);
  EXPECT_EQ(in_top_170, 22u);
}

TEST(Ranking, NormalizedStddevInPaperBand) {
  // Paper: selected features' normalized deviation spans 0.0012-1.3853.
  const auto ranking = rank_candidates_by_deviation();
  const auto& catalog = browser::FeatureCatalog::instance();
  std::set<std::size_t> finals(catalog.final_indices().begin(),
                               catalog.final_indices().end());
  for (const auto& entry : ranking) {
    if (finals.count(entry.candidate_index) == 0) continue;
    EXPECT_GT(entry.normalized_stddev, 0.001)
        << catalog.spec(entry.candidate_index).name;
    EXPECT_LT(entry.normalized_stddev, 2.0);
  }
}

TEST(Preprocess, FindsConstantFeaturesNearPaperCount) {
  // Paper: 186 of 513 features showed a singular value in the sample.
  const auto report = preprocess(march_sample());
  EXPECT_GE(report.constant_features.size(), 120u);
  EXPECT_LE(report.constant_features.size(), 260u);
}

TEST(Preprocess, TimeBasedDominateTheConstants) {
  // Paper: ~40% of time-based candidates showed unique values; most of
  // BrowserPrint's 2016-2020 bits stopped moving by 2023.
  const auto report = preprocess(march_sample());
  EXPECT_GT(report.constant_time_based, report.constant_deviation);
  EXPECT_GE(report.constant_time_based, 100u);
}

TEST(Preprocess, CuratedSetSurvives) {
  // The curated 28 must pass every automatic filter — otherwise the
  // curation is stale.
  const auto report = preprocess(march_sample());
  EXPECT_EQ(report.selected_features,
            browser::FeatureCatalog::instance().final_indices());
}

TEST(Preprocess, ConfigSensitiveExcluded) {
  const auto report = preprocess(march_sample());
  const auto& catalog = browser::FeatureCatalog::instance();
  std::set<std::size_t> selected(report.selected_features.begin(),
                                 report.selected_features.end());
  for (std::size_t idx : catalog.config_sensitive_indices()) {
    EXPECT_EQ(selected.count(idx), 0u) << catalog.spec(idx).name;
  }
}

TEST(Preprocess, DistinctValueCountsMatchManualCheck) {
  traffic::TrafficConfig config;
  config.n_sessions = 300;
  traffic::SessionGenerator gen(config);
  const traffic::Dataset data = gen.generate(
      browser::FeatureCatalog::instance().final_indices());
  const auto counts = distinct_value_counts(data);
  ASSERT_EQ(counts.size(), 28u);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    std::set<std::int32_t> seen;
    for (const auto& r : data.records()) seen.insert(r.features[c]);
    EXPECT_EQ(counts[c], seen.size());
  }
}

TEST(Preprocess, CustomCuratedSet) {
  PreprocessingOptions options;
  options.curated_final_set = {0, 1};  // Element, Document
  const auto report = preprocess(march_sample(), options);
  EXPECT_EQ(report.selected_features, (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace bp::core
