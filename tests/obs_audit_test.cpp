// Tests for the decision audit trail: deterministic unflagged sampling,
// ring bounds, JSONL rendering, and — the core guarantee — exact
// offline replay of every recorded verdict against the versioned model
// that produced it, including across a mid-stream hot swap.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/audit.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"

namespace bp::obs {
namespace {

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100,
                                ua::Os::kWindows10};

// Cluster 0 at (0, 0), cluster 1 at (10, 10).  Model A expects Chrome
// 100 in cluster 0; model B swaps the table, so the same session flips
// between clean and flagged across a hot swap.
core::Polygraph make_model(bool swapped_table) {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign(kChrome100, swapped_table ? 1 : 0);
  table.assign(kFirefox100, swapped_table ? 0 : 1);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

// ------------------------------ sampling -------------------------------

TEST(ObsAudit, UnflaggedSamplingIsPureInSeedAndSessionId) {
  AuditConfig config;
  config.unflagged_sample_rate = 0.25;
  config.seed = 7;
  const AuditTrail a(config);
  const AuditTrail b(config);
  std::size_t kept = 0;
  for (std::uint64_t id = 1; id <= 4'000; ++id) {
    EXPECT_EQ(a.sample_unflagged(id), b.sample_unflagged(id)) << "id " << id;
    if (a.sample_unflagged(id)) ++kept;
  }
  EXPECT_GT(kept, 700u);
  EXPECT_LT(kept, 1'300u);

  AuditConfig none = config;
  none.unflagged_sample_rate = 0.0;
  const AuditTrail never(none);
  AuditConfig full = config;
  full.unflagged_sample_rate = 1.0;
  const AuditTrail always(full);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    EXPECT_FALSE(never.sample_unflagged(id));
    EXPECT_TRUE(always.sample_unflagged(id));
  }
}

// -------------------------------- ring ---------------------------------

TEST(ObsAudit, RingKeepsYoungestRecordsOldestFirst) {
  AuditConfig config;
  config.capacity = 3;
  AuditTrail trail(config);
  for (std::uint64_t id = 1; id <= 8; ++id) {
    AuditRecord record;
    record.session_id = id;
    record.tags = AuditRecord::kFlagged;
    trail.record(record);
  }
  EXPECT_EQ(trail.recorded(), 8u);
  EXPECT_EQ(trail.flagged_recorded(), 8u);
  EXPECT_EQ(trail.overwritten(), 5u);
  const std::vector<AuditRecord> records = trail.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].session_id, 6u);
  EXPECT_EQ(records[2].session_id, 8u);
  trail.clear();
  EXPECT_TRUE(trail.records().empty());
}

TEST(ObsAudit, RenderJsonlIsDeterministicWithoutTiming) {
  AuditTrail trail;
  AuditRecord record;
  record.session_id = 42;
  record.model_version = 3;
  record.claimed = kChrome100;
  record.predicted_cluster = 1;
  record.expected_cluster = 0;
  record.risk_factor = 20;
  record.centroid_distance2 = 1.25;
  record.tags = AuditRecord::kFlagged;
  record.recorded_at_us = 999;  // must not appear without timing
  trail.record(record);

  const std::string a = trail.render_jsonl();
  EXPECT_EQ(a, trail.render_jsonl());
  EXPECT_NE(a.find("\"session_id\": 42"), std::string::npos);
  EXPECT_NE(a.find("\"model_version\": 3"), std::string::npos);
  EXPECT_NE(a.find("\"risk_factor\": 20"), std::string::npos);
  EXPECT_EQ(a.find("999"), std::string::npos);
  EXPECT_NE(trail.render_jsonl(/*include_timing=*/true).find("999"),
            std::string::npos);
}

// ------------------------------- replay --------------------------------

struct SessionInput {
  std::vector<std::int32_t> features;
  ua::UserAgent claimed;
};

// Every audit record must replay to the identical verdict when re-scored
// against the model version it names — the whole point of keeping
// superseded snapshots alive in the registry.
void expect_exact_replay(const serve::ModelRegistry& registry,
                         const AuditTrail& trail,
                         const std::map<std::uint64_t, SessionInput>& inputs) {
  core::ScoringScratch scratch;
  for (const AuditRecord& record : trail.records()) {
    const auto input = inputs.find(record.session_id);
    ASSERT_NE(input, inputs.end()) << "session " << record.session_id;
    const serve::ModelSnapshot snapshot =
        registry.at_version(record.model_version);
    ASSERT_TRUE(snapshot) << "version " << record.model_version
                          << " not retained";
    const core::Detection replayed = snapshot.model->score(
        std::span<const std::int32_t>(input->second.features),
        input->second.claimed, scratch);
    EXPECT_EQ(replayed.flagged, record.flagged())
        << "session " << record.session_id;
    EXPECT_EQ(static_cast<std::uint32_t>(replayed.predicted_cluster),
              record.predicted_cluster)
        << "session " << record.session_id;
    EXPECT_EQ(replayed.risk_factor, record.risk_factor)
        << "session " << record.session_id;
    EXPECT_DOUBLE_EQ(replayed.centroid_distance2, record.centroid_distance2)
        << "session " << record.session_id;
    const std::int32_t expected =
        replayed.expected_cluster.has_value()
            ? static_cast<std::int32_t>(*replayed.expected_cluster)
            : -1;
    EXPECT_EQ(expected, record.expected_cluster)
        << "session " << record.session_id;
  }
}

TEST(AuditReplay, FlaggedEvidenceReplaysExactlyAcrossHotSwap) {
  serve::ModelRegistry registry;
  registry.publish(make_model(false));  // v1: Chrome 100 -> cluster 0

  AuditTrail trail;
  serve::EngineConfig config;
  config.workers = 2;
  config.audit = &trail;
  serve::ScoringEngine engine(registry, config, {});

  std::map<std::uint64_t, SessionInput> inputs;
  const auto submit = [&](std::uint64_t id, std::vector<std::int32_t> features,
                          const ua::UserAgent& claimed) {
    inputs[id] = {features, claimed};
    serve::ScoreRequest request;
    request.id = id;
    request.features = std::move(features);
    request.claimed = claimed;
    EXPECT_EQ(engine.submit(std::move(request)),
              serve::SubmitResult::kAdmitted);
  };

  // Under v1: Firefox 100 at the origin is flagged (expects cluster 1),
  // Chrome 100 at (10, 10) is flagged (expects cluster 0).
  for (std::uint64_t id = 1; id <= 8; ++id) {
    submit(id, {0, 0}, id % 2 == 0 ? kFirefox100 : kChrome100);
    submit(100 + id, {10, 10}, id % 2 == 0 ? kChrome100 : kFirefox100);
  }
  engine.drain();
  const std::uint64_t flagged_v1 = trail.flagged_recorded();
  EXPECT_EQ(flagged_v1, 8u);

  // Hot swap: same sessions now flag the other way around.
  ASSERT_EQ(registry.publish(make_model(true)), 2u);
  for (std::uint64_t id = 201; id <= 208; ++id) {
    submit(id, {0, 0}, id % 2 == 0 ? kFirefox100 : kChrome100);
  }
  engine.drain();
  engine.stop();
  EXPECT_EQ(trail.flagged_recorded(), flagged_v1 + 4u);

  // Records from both versions are present, and each replays exactly
  // against the snapshot it names — even though v1 was superseded.
  bool saw_v1 = false, saw_v2 = false;
  for (const AuditRecord& record : trail.records()) {
    saw_v1 |= record.model_version == 1;
    saw_v2 |= record.model_version == 2;
    EXPECT_FALSE(record.degraded());
  }
  EXPECT_TRUE(saw_v1);
  EXPECT_TRUE(saw_v2);
  expect_exact_replay(registry, trail, inputs);
}

TEST(AuditReplay, SampledUnflaggedSessionsReplayToo) {
  serve::ModelRegistry registry;
  registry.publish(make_model(false));

  AuditConfig audit_config;
  audit_config.unflagged_sample_rate = 1.0;  // record every clean session
  AuditTrail trail(audit_config);
  serve::EngineConfig config;
  config.workers = 2;
  config.audit = &trail;
  serve::ScoringEngine engine(registry, config, {});

  std::map<std::uint64_t, SessionInput> inputs;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    inputs[id] = {{0, 0}, kChrome100};  // clean under model A
    serve::ScoreRequest request;
    request.id = id;
    request.features = {0, 0};
    request.claimed = kChrome100;
    ASSERT_EQ(engine.submit(std::move(request)),
              serve::SubmitResult::kAdmitted);
  }
  engine.drain();
  engine.stop();

  const std::vector<AuditRecord> records = trail.records();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(trail.flagged_recorded(), 0u);
  for (const AuditRecord& record : records) {
    EXPECT_FALSE(record.flagged());
    EXPECT_TRUE((record.tags & AuditRecord::kSampledUnflagged) != 0);
  }
  expect_exact_replay(registry, trail, inputs);
}

TEST(AuditReplay, DegradedVerdictsAreTaggedWithVersionZero) {
  serve::ModelRegistry registry;  // nothing ever published

  AuditConfig audit_config;
  audit_config.unflagged_sample_rate = 1.0;
  AuditTrail trail(audit_config);
  serve::EngineConfig config;
  config.workers = 1;
  config.degrade_without_model = true;
  config.audit = &trail;
  serve::ScoringEngine engine(registry, config, {});

  for (std::uint64_t id = 1; id <= 4; ++id) {
    serve::ScoreRequest request;
    request.id = id;
    request.features = {0, 0};
    request.claimed = kChrome100;
    ASSERT_EQ(engine.submit(std::move(request)),
              serve::SubmitResult::kAdmitted);
  }
  engine.drain();
  engine.stop();

  const std::vector<AuditRecord> records = trail.records();
  ASSERT_EQ(records.size(), 4u);
  for (const AuditRecord& record : records) {
    EXPECT_TRUE(record.degraded());
    EXPECT_EQ(record.model_version, 0u);  // no model involved
    EXPECT_FALSE(registry.at_version(record.model_version));
  }
}

TEST(ObsAudit, EngineWithoutTrailRecordsNothing) {
  serve::ModelRegistry registry;
  registry.publish(make_model(false));
  serve::EngineConfig config;
  config.workers = 1;
  serve::ScoringEngine engine(registry, config, {});
  serve::ScoreRequest request;
  request.id = 1;
  request.features = {0, 0};
  request.claimed = kFirefox100;  // flagged, but no trail configured
  ASSERT_EQ(engine.submit(std::move(request)), serve::SubmitResult::kAdmitted);
  engine.drain();
  engine.stop();
  SUCCEED();  // reaching here without a crash is the assertion
}

}  // namespace
}  // namespace bp::obs
