// Browser release database: every (vendor, major version) pair in the
// paper's study window, with engine lineage and release dates.
//
// Paper §6.1: fingerprints were gathered from Chrome 59-119,
// Firefox 46-119, Edge 17-19 (EdgeHTML) and Edge 79-119 (Chromium).
// Release dates drive both the traffic popularity model (newer releases
// dominate) and the drift-detection schedule (checks are run a few days
// after each Firefox release).  Dates are anchored at known milestones
// and linearly interpolated between anchors — day-level precision is all
// the pipeline needs.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ua/user_agent.h"
#include "util/date.h"

namespace bp::browser {

enum class Engine : std::uint8_t {
  kBlink,     // Chrome, Chromium Edge (79+), Brave
  kGecko,     // Firefox, Tor Browser
  kEdgeHtml,  // Edge 17-19
  kWebKit,    // Safari (outside the study; kept for robustness tests)
};

std::string_view engine_name(Engine e) noexcept;

struct BrowserRelease {
  ua::Vendor vendor = ua::Vendor::kChrome;
  int version = 0;
  Engine engine = Engine::kBlink;
  int engine_version = 0;  // == version for Blink/Gecko lineages
  bp::util::Date release_date;

  ua::UserAgent user_agent(ua::Os os = ua::Os::kWindows10) const {
    return ua::UserAgent{vendor, version, os};
  }
  std::string label() const { return user_agent().label(); }
};

class ReleaseDatabase {
 public:
  // The full study-window database.
  static const ReleaseDatabase& instance();

  std::span<const BrowserRelease> releases() const noexcept {
    return releases_;
  }

  // Releases published on or before `date` (the set a live user could be
  // running at that date).
  std::vector<const BrowserRelease*> available_on(bp::util::Date date) const;

  // Lookup by vendor + major version; nullptr when absent.
  const BrowserRelease* find(ua::Vendor vendor, int version) const;
  const BrowserRelease* find(const ua::UserAgent& ua) const {
    return find(ua.vendor, ua.major_version);
  }

  // The latest release of a vendor at a date (nullptr when the vendor has
  // no release yet).
  const BrowserRelease* latest(ua::Vendor vendor, bp::util::Date date) const;

 private:
  ReleaseDatabase();
  std::vector<BrowserRelease> releases_;
};

}  // namespace bp::browser
