// Tests for the deterministic fault-injection registry (util/fault.h):
// per-seed reproducibility (the property every chaos test leans on),
// spec parsing, and thread-safety of concurrent evaluations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "util/fault.h"

namespace bp::util {
namespace {

// The registry is process-global; every test starts and ends clean.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::instance().disarm_all(); }
  void TearDown() override { FaultRegistry::instance().disarm_all(); }
};

TEST_F(FaultTest, UnarmedPointNeverFires) {
  auto& registry = FaultRegistry::instance();
  EXPECT_FALSE(registry.any_armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FAULT_POINT("nothing.armed"));
  }
  EXPECT_EQ(registry.evaluations("nothing.armed"), 0u);
}

TEST_F(FaultTest, ProbabilityZeroAndOneAreExact) {
  auto& registry = FaultRegistry::instance();
  registry.arm("never", 0.0, 1);
  registry.arm("always", 1.0, 1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(registry.should_fire("never"));
    EXPECT_TRUE(registry.should_fire("always"));
  }
  EXPECT_EQ(registry.fires("never"), 0u);
  EXPECT_EQ(registry.fires("always"), 200u);
  EXPECT_EQ(registry.evaluations("never"), 200u);
}

TEST_F(FaultTest, SameSeedReplaysSameDecisionsAndTrace) {
  auto& registry = FaultRegistry::instance();
  registry.arm("replay", 0.5, 42);

  std::vector<bool> first;
  for (int i = 0; i < 256; ++i) first.push_back(registry.should_fire("replay"));
  const auto first_trace = registry.trace();

  registry.reset_counters();
  std::vector<bool> second;
  for (int i = 0; i < 256; ++i) {
    second.push_back(registry.should_fire("replay"));
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_trace, registry.trace());

  // Roughly half fire — sanity that the probability is actually applied.
  const auto fired = registry.fires("replay");
  EXPECT_GT(fired, 64u);
  EXPECT_LT(fired, 192u);
}

TEST_F(FaultTest, DifferentSeedsProduceDifferentPatterns) {
  auto& registry = FaultRegistry::instance();
  registry.arm("a", 0.5, 1);
  registry.arm("b", 0.5, 2);
  std::vector<bool> a, b;
  for (int i = 0; i < 256; ++i) {
    a.push_back(registry.should_fire("a"));
    b.push_back(registry.should_fire("b"));
  }
  EXPECT_NE(a, b);
}

TEST_F(FaultTest, ReArmResetsEvaluationIndex) {
  auto& registry = FaultRegistry::instance();
  registry.arm("rearm", 0.5, 7);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(registry.should_fire("rearm"));
  registry.arm("rearm", 0.5, 7);  // same seed, index back to 0
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(registry.should_fire("rearm"));
  EXPECT_EQ(first, second);
}

TEST_F(FaultTest, SpecParsing) {
  auto& registry = FaultRegistry::instance();
  EXPECT_TRUE(registry.arm_from_spec(
      "model_io.write:0.25:7, engine.stall:0.5:11 ,bare_point"));
  EXPECT_TRUE(registry.armed("model_io.write"));
  EXPECT_TRUE(registry.armed("engine.stall"));
  EXPECT_TRUE(registry.armed("bare_point"));
  // A bare name arms at probability 1.
  EXPECT_TRUE(registry.should_fire("bare_point"));

  EXPECT_FALSE(registry.arm_from_spec("bad:prob:notanumber"));
  EXPECT_FALSE(registry.arm_from_spec("bad:2.0"));  // probability > 1
  EXPECT_FALSE(registry.arm_from_spec(":0.5"));     // empty name
  EXPECT_FALSE(registry.arm_from_spec("a:1:2:3"));  // too many fields
}

TEST_F(FaultTest, ArmFromEnvironment) {
  ::setenv("BP_FAULTS", "env.point:1:3", 1);
  auto& registry = FaultRegistry::instance();
  EXPECT_TRUE(registry.arm_from_env());
  EXPECT_TRUE(registry.armed("env.point"));
  EXPECT_TRUE(FAULT_POINT("env.point"));
  ::unsetenv("BP_FAULTS");
  registry.disarm_all();
  EXPECT_FALSE(registry.arm_from_env());
}

TEST_F(FaultTest, DisarmRestoresZeroCostPath) {
  auto& registry = FaultRegistry::instance();
  registry.arm("x", 1.0, 0);
  EXPECT_TRUE(registry.any_armed());
  registry.disarm("x");
  EXPECT_FALSE(registry.any_armed());
  EXPECT_FALSE(FAULT_POINT("x"));
}

TEST_F(FaultTest, ConcurrentEvaluationFiresSameTotalAsSequential) {
  auto& registry = FaultRegistry::instance();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1'000;

  registry.arm("mt", 0.3, 99);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    registry.should_fire("mt");
  }
  const std::uint64_t sequential_fires = registry.fires("mt");

  registry.arm("mt", 0.3, 99);  // reset index
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) registry.should_fire("mt");
    });
  }
  for (auto& t : threads) t.join();

  // Decisions are a pure function of the evaluation index, so the fire
  // *count* over a fixed number of evaluations is interleaving-proof.
  EXPECT_EQ(registry.evaluations("mt"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(registry.fires("mt"), sequential_fires);
}

}  // namespace
}  // namespace bp::util
