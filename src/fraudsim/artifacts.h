// Software-specific artifacts of fraud browsers (§8 "Deployment scope").
//
// The paper observed that AntBrowser injects an `ANTBROWSER` object and
// `antBrowser`-prefixed attributes into the window namespace — spoofing
// tooling ironically *increasing* fingerprintability (echoing
// Nikiforakis et al.'s observation about spoofing extensions).  This
// module simulates the window-global namespace each tool leaks, feeding
// core::ArtifactScanner (the automated version of the paper's manual
// analysis).
#pragma once

#include <string>
#include <vector>

#include "fraudsim/fraud_browser.h"

namespace bp::fraudsim {

// The extra own-property names a tool injects into `window`, beyond the
// engine's stock globals.  Deterministic per (tool, profile salt); most
// tools leak something, the careful ones leak nothing.
std::vector<std::string> window_artifacts(const FraudBrowserModel& model,
                                          std::uint64_t profile_salt);

// Stock window globals of a legitimate engine (a small representative
// subset; enough for the scanner's negative path).
std::vector<std::string> stock_window_globals(browser::Engine engine);

}  // namespace bp::fraudsim
