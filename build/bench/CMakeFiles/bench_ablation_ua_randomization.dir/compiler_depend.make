# Empty compiler generated dependencies file for bench_ablation_ua_randomization.
# This may be replaced when dependencies are built.
