#include "core/preprocessing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "browser/extractor.h"
#include "browser/feature_catalog.h"
#include "browser/release_db.h"

namespace bp::core {

std::vector<CandidateRanking> rank_candidates_by_deviation() {
  const auto& catalog = browser::FeatureCatalog::instance();
  const auto& db = browser::ReleaseDatabase::instance();

  std::vector<CandidateRanking> out;
  for (std::size_t idx = 0; idx < catalog.candidate_count(); ++idx) {
    if (catalog.spec(idx).kind != browser::FeatureKind::kDeviationBased) {
      continue;
    }
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t n = 0;
    for (const auto& release : db.releases()) {
      const double v = static_cast<double>(
          browser::baseline_candidates(release.engine,
                                       release.engine_version)[idx]);
      sum += v;
      sum_sq += v * v;
      ++n;
    }
    const double mean = sum / static_cast<double>(n);
    const double variance =
        std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
    CandidateRanking ranking;
    ranking.candidate_index = idx;
    ranking.stddev = std::sqrt(variance);
    ranking.normalized_stddev = mean > 0.0 ? ranking.stddev / mean : 0.0;
    out.push_back(ranking);
  }
  std::sort(out.begin(), out.end(),
            [](const CandidateRanking& a, const CandidateRanking& b) {
              return a.stddev > b.stddev;
            });
  return out;
}

std::vector<std::size_t> distinct_value_counts(
    const traffic::Dataset& sample) {
  const auto& stored = sample.stored_indices();
  std::vector<std::set<std::int32_t>> seen(stored.size());
  for (const auto& record : sample.records()) {
    assert(record.features.size() == stored.size());
    for (std::size_t i = 0; i < stored.size(); ++i) {
      seen[i].insert(record.features[i]);
    }
  }
  std::vector<std::size_t> out(stored.size());
  for (std::size_t i = 0; i < stored.size(); ++i) out[i] = seen[i].size();
  return out;
}

PreprocessingReport preprocess(const traffic::Dataset& sample,
                               PreprocessingOptions options) {
  const auto& catalog = browser::FeatureCatalog::instance();
  if (options.curated_final_set.empty()) {
    options.curated_final_set = catalog.final_indices();
  }

  PreprocessingReport report;
  const auto& stored = sample.stored_indices();
  const std::vector<std::size_t> distinct = distinct_value_counts(sample);

  std::set<std::size_t> dropped;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    if (distinct[i] < options.min_distinct_values) {
      report.constant_features.push_back(stored[i]);
      dropped.insert(stored[i]);
      if (catalog.spec(stored[i]).kind == browser::FeatureKind::kTimeBased) {
        ++report.constant_time_based;
      } else {
        ++report.constant_deviation;
      }
    }
  }

  for (std::size_t idx : catalog.config_sensitive_indices()) {
    if (dropped.insert(idx).second) {
      report.config_sensitive_excluded.push_back(idx);
    }
  }

  // The automatic filters intersect with the curated production list —
  // and the curated features must all survive the automatic filters, or
  // the curation itself is stale (asserted by the test suite).
  for (std::size_t idx : options.curated_final_set) {
    if (dropped.count(idx) == 0 &&
        std::find(stored.begin(), stored.end(), idx) != stored.end()) {
      report.selected_features.push_back(idx);
    }
  }
  return report;
}

}  // namespace bp::core
