// The versioned wire format POST /score carries: one compact ASCII
// line per request and per response.
//
// A fraud check rides on every page load, so the frame must be cheap
// to produce in client-side JavaScript, cheap to eyeball in a packet
// capture, and cheap to parse — the parser allocates nothing per frame
// in steady state (fields are views into the input; the feature vector
// reuses its capacity across parses) and rejects malformed input with
// a *typed* error, so the ingress can answer 400 with a name the
// client can act on and tests can pin every rejection path.
//
// Version 1 grammar ('|' is the field delimiter and is reserved —
// it cannot appear inside a field):
//
//   request:   bp1|<session_id>|<claimed-ua>|<f0 f1 ... fN-1>[|<ext>...]
//   response:  bp1|<session_id>|<status>|<flagged>|<risk>|<cluster>|
//              <model_version>|<latency_us>[|<ext>...]    (one line)
//
//   session_id  decimal uint64, echoed verbatim in the response
//   claimed-ua  the browser's User-Agent header, or the short label
//               form the paper's tables use ("Chrome 112");
//               unparseable vendors are *not* an error — an unknown
//               claimed UA is a legitimate scoring scenario (the
//               engine's risk path handles it) — only an empty field is
//   f0..fN-1    space-separated int32 fingerprint features, in the
//               model's feature-index order (1..kMaxWireFeatures)
//   status      scored | shed | deadline | degraded
//   ext         optional extension segments, each `<tag>:<payload>`
//               where <tag> is 1+ lowercase letters.  A peer that does
//               not know a well-formed tag ignores it — that is how a
//               version-1 frame stays readable by older version-1
//               parsers as new segments appear.  A segment that is not
//               tag:payload shaped is kBadExtension, never ignored.
//
// The one extension tag defined today is trace context:
//
//   t:<trace_id>:<parent_span>:<sampled>
//
//   trace_id    decimal uint64, nonzero (0 would be indistinguishable
//               from "absent")
//   parent_span decimal uint32 — the client span the server's spans
//               parent under
//   sampled     '0' or '1' — the client's head-sampling decision,
//               honored verbatim by the receiving side
//
// A duplicated `t:` segment, a zero trace id, a malformed number, or a
// sampled flag outside {0,1} is kBadTraceContext — a bogus id is
// refused with a typed error, never silently adopted.
//
// A trailing '\n' is tolerated on both frames.  A version bump changes
// the digits after "bp"; an ingress refuses versions it does not speak
// with kBadVersion rather than guessing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/scoring_engine.h"
#include "ua/user_agent.h"

namespace bp::net {

inline constexpr int kWireVersion = 1;
// An over-size frame is refused before field parsing begins: the
// production feature vector is 28 ints, so legitimate frames are a few
// hundred bytes.
inline constexpr std::size_t kMaxFrameBytes = 8192;
inline constexpr std::size_t kMaxWireFeatures = 512;

// Every way a frame can be refused.  Names (wire_error_name) are what
// the ingress puts in its 400 body.
enum class WireError : std::uint8_t {
  kOk = 0,
  kEmptyFrame,       // zero bytes (or only the tolerated newline)
  kOversized,        // frame longer than kMaxFrameBytes
  kBadMagic,         // does not start with "bp" — garbage bytes
  kBadVersion,       // "bp" followed by a version this parser is not
  kTruncated,        // fewer fields than the grammar requires
  kBadSessionId,     // session id not a decimal uint64
  kBadUserAgent,     // empty claimed-ua field
  kNoFeatures,       // empty feature field
  kBadFeature,       // feature not a decimal int32 (or '|' inside)
  kTooManyFeatures,  // more than kMaxWireFeatures
  kBadStatus,        // response status token unknown (response parse)
  kBadExtension,     // extension segment not <tag>:<payload> shaped
  kBadTraceContext,  // t: segment malformed, duplicated, or zero id
};

std::string_view wire_error_name(WireError error) noexcept;

// Optional cross-hop trace context carried as a `t:` extension segment.
// trace_id == 0 means "no context on the frame".
struct WireTraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t parent_span = 0;
  bool sampled = false;
  bool present() const noexcept { return trace_id != 0; }
};

struct WireScoreRequest {
  std::uint64_t session_id = 0;
  ua::UserAgent claimed;
  // Reused across parses: parse_score_request clears it but never
  // shrinks, so steady-state parsing performs no allocation.
  std::vector<std::int32_t> features;
  // Reset on every parse; present() only when the frame carried a
  // well-formed t: segment.
  WireTraceContext trace;
};

// Parse one request frame.  On any error the out-params are
// unspecified.  `frame` may end in '\n'.
WireError parse_score_request(std::string_view frame, WireScoreRequest* out);

// Render one request frame into `out` (cleared first; capacity reused).
// `claimed_ua` is written verbatim — pass a full User-Agent header or a
// short label.
void render_score_request(std::uint64_t session_id,
                          std::string_view claimed_ua,
                          std::span<const std::int32_t> features,
                          std::string* out);

// Append a `t:` trace-context segment to an already-rendered frame
// (request or response) ending in '\n'.  Lets a client render the base
// frame once per call and stamp a per-attempt parent span cheaply.
// No-op when `trace.present()` is false.
void append_trace_context(const WireTraceContext& trace, std::string* frame);

struct WireScoreResponse {
  std::uint64_t session_id = 0;
  serve::ResponseStatus status = serve::ResponseStatus::kScored;
  bool flagged = false;
  int risk_factor = 0;
  std::uint32_t predicted_cluster = 0;
  std::uint64_t model_version = 0;
  std::uint64_t latency_micros = 0;
  // Reset on every parse, filled when the response carried a t: segment
  // (servers do not send one today; the parser tolerates it).
  WireTraceContext trace;
};

std::string_view wire_status_token(serve::ResponseStatus status) noexcept;

// Render one response frame into `out` (cleared first; capacity
// reused).
void render_score_response(const WireScoreResponse& response,
                           std::string* out);

// Parse one response frame (the client half: load generator, tests).
WireError parse_score_response(std::string_view frame,
                               WireScoreResponse* out);

}  // namespace bp::net
