// bench_training_throughput: retrain-latency driver for the parallel
// training pipeline.
//
// Sweeps thread counts over dataset sizes and reports per-stage wall
// clock (scale / filter / pca / kmeans / table), end-to-end speedup vs
// the single-thread baseline, and the drift -> hot-swap "model
// staleness window": the time between a drift-triggered retrain
// starting and the new model being live in the serving registry
// (generate + train + ModelRegistry::publish).
//
// Determinism is part of the contract: the serialized model bytes must
// be identical at every thread count, and the bench FAILS otherwise on
// any machine.  The >= 3x end-to-end speedup gate only fires on 8+ core
// hardware (mirroring bench_serving_throughput's policy).
//
// Output: a human-readable table on stdout plus machine-readable JSON
// ("BENCH_training.json" in the working directory, or the last
// positional argument).
//
// Usage: bench_training_throughput [--smoke] [json_path]
//   --smoke: small datasets + {1,2} threads; runs in seconds (tier1.sh)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/model_io.h"
#include "core/polygraph.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "traffic/session_generator.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

struct RunResult {
  std::size_t rows = 0;
  std::size_t threads = 0;
  double generate_seconds = 0.0;
  bp::core::TrainingTimings timings;  // per-stage training wall clock
  double publish_seconds = 0.0;
  double staleness_seconds = 0.0;  // generate + train + publish
  double speedup = 1.0;            // total train time vs 1 thread, same rows
  bool bytes_identical = true;     // serialized model vs 1-thread reference
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

RunResult run_configuration(std::size_t rows, std::size_t threads,
                            bp::serve::ModelRegistry& registry,
                            const std::string& reference_bytes,
                            std::string& bytes_out,
                            const bp::obs::ObsContext* obs) {
  using Clock = std::chrono::steady_clock;
  bp::util::set_parallel_threads(threads);

  RunResult result;
  result.rows = rows;
  result.threads = threads;

  const auto gen_start = Clock::now();
  const bp::traffic::Dataset data =
      bp::benchmark_support::make_training_dataset(rows);
  result.generate_seconds = seconds_since(gen_start);

  const auto trained = bp::benchmark_support::train_production(
      data, bp::core::PolygraphConfig::production(), obs);
  result.timings = trained.summary.timings;

  const auto publish_start = Clock::now();
  registry.publish(trained.model);
  result.publish_seconds = seconds_since(publish_start);
  result.staleness_seconds =
      result.generate_seconds + result.timings.total + result.publish_seconds;

  bytes_out = bp::core::serialize_model(trained.model);
  result.bytes_identical =
      reference_bytes.empty() || bytes_out == reference_bytes;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bp;

  bool smoke = false;
  std::string json_path = "BENCH_training.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "usage: %s [--smoke] [json_path]\n", argv[0]);
      return 2;
    } else {
      json_path = argv[i];
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  std::vector<std::size_t> sizes = smoke ? std::vector<std::size_t>{8'000}
                                         : std::vector<std::size_t>{50'000,
                                                                    200'000};
  std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 8};

  serve::ModelRegistry registry;
  std::vector<RunResult> results;
  bool all_identical = true;
  double best_speedup_200k = 1.0;

  // Every run exports into one registry / trace sink, so the bench also
  // exercises the training pipeline's observability wiring end to end.
  obs::MetricsRegistry training_metrics;
  obs::TraceSink training_trace;

  for (std::size_t rows : sizes) {
    std::string reference_bytes;
    double baseline_total = 0.0;
    for (std::size_t threads : thread_counts) {
      std::string bytes;
      const obs::ObsContext obs_context{&training_metrics, &training_trace,
                                        results.size() + 1};
      RunResult result = run_configuration(rows, threads, registry,
                                           reference_bytes, bytes,
                                           &obs_context);
      if (reference_bytes.empty()) {
        reference_bytes = std::move(bytes);
        baseline_total = result.timings.total;
      } else {
        result.speedup = baseline_total / result.timings.total;
      }
      all_identical = all_identical && result.bytes_identical;
      if (rows == 200'000) {
        best_speedup_200k = std::max(best_speedup_200k, result.speedup);
      }
      std::printf("  rows=%-7zu threads=%zu  train=%7.2fs  staleness=%7.2fs  "
                  "speedup=%.2fx  bytes=%s\n",
                  result.rows, result.threads, result.timings.total,
                  result.staleness_seconds, result.speedup,
                  result.bytes_identical ? "identical" : "DIFFER");
      results.push_back(std::move(result));
    }
  }

  util::TextTable table({"rows", "threads", "gen_s", "scale_s", "filter_s",
                         "pca_s", "kmeans_s", "table_s", "train_s",
                         "staleness_s", "speedup", "bytes"});
  for (const RunResult& r : results) {
    char gen[24], scale[24], filter[24], pca[24], kmeans[24], tab[24],
        total[24], stale[24], speedup[16];
    std::snprintf(gen, sizeof(gen), "%.3f", r.generate_seconds);
    std::snprintf(scale, sizeof(scale), "%.3f", r.timings.scale);
    std::snprintf(filter, sizeof(filter), "%.3f", r.timings.filter);
    std::snprintf(pca, sizeof(pca), "%.3f", r.timings.pca);
    std::snprintf(kmeans, sizeof(kmeans), "%.3f", r.timings.kmeans);
    std::snprintf(tab, sizeof(tab), "%.3f", r.timings.table);
    std::snprintf(total, sizeof(total), "%.3f", r.timings.total);
    std::snprintf(stale, sizeof(stale), "%.3f", r.staleness_seconds);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", r.speedup);
    table.add_row({std::to_string(r.rows), std::to_string(r.threads), gen,
                   scale, filter, pca, kmeans, tab, total, stale, speedup,
                   r.bytes_identical ? "identical" : "DIFFER"});
  }
  std::printf("\ntraining throughput (%u hardware threads%s):\n%s", hardware,
              smoke ? ", smoke mode" : "", table.render().c_str());
  std::printf("\ntraining telemetry (one render over all runs):\n%s",
              training_metrics.render_prometheus().c_str());
  std::printf("\nstage spans (trace id = run number):\n%s",
              training_trace.render(/*include_timing=*/true).c_str());

  std::string json = "{\n";
  json += "  \"hardware_threads\": " + std::to_string(hardware) + ",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += std::string("  \"model_bytes_identical\": ") +
          (all_identical ? "true" : "false") + ",\n";
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    char entry[640];
    std::snprintf(
        entry, sizeof(entry),
        "    {\"rows\": %zu, \"threads\": %zu, \"generate_seconds\": %.4f, "
        "\"scale_seconds\": %.4f, \"filter_seconds\": %.4f, "
        "\"pca_seconds\": %.4f, \"kmeans_seconds\": %.4f, "
        "\"table_seconds\": %.4f, \"train_seconds\": %.4f, "
        "\"publish_seconds\": %.6f, \"staleness_window_seconds\": %.4f, "
        "\"speedup_vs_single\": %.3f, \"model_bytes_identical\": %s}%s\n",
        r.rows, r.threads, r.generate_seconds, r.timings.scale,
        r.timings.filter, r.timings.pca, r.timings.kmeans, r.timings.table,
        r.timings.total, r.publish_seconds, r.staleness_seconds, r.speedup,
        r.bytes_identical ? "true" : "false",
        i + 1 == results.size() ? "" : ",");
    json += entry;
  }
  json += "  ]\n}\n";
  if (!util::write_file(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nJSON written to %s\n", json_path.c_str());

  // Gates.  Determinism is unconditional; the speedup bar only applies
  // where the hardware can express it.
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: serialized model bytes differ across thread counts\n");
    return 1;
  }
  if (!smoke && hardware >= 8 && best_speedup_200k < 3.0) {
    std::fprintf(stderr,
                 "FAIL: expected >= 3x end-to-end speedup at 8 threads on "
                 "200k rows (got %.2fx on %u hardware threads)\n",
                 best_speedup_200k, hardware);
    return 1;
  }
  std::printf("model bytes identical across all thread counts\n");
  return 0;
}
