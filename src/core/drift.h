// Drift detection (§6.6, evaluated in §7.3 / Table 6).
//
// On designated dates — a few days after each Firefox release, when the
// newest Chrome and Edge are one-to-two weeks old — the module scores
// every brand-new browser release against the frozen model:
//
//   * predominant cluster of the release's sessions, and
//   * the fraction assigned to that cluster ("accuracy").
//
// No retraining is needed while each new release (a) lands in the same
// cluster as its closest prior release from the training table and
// (b) clusters with accuracy >= 98%.  A cluster change (Firefox 119) or
// an accuracy drop (Chrome 119) raises the retraining signal.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/polygraph.h"
#include "obs/metrics_registry.h"
#include "traffic/dataset.h"
#include "util/date.h"

namespace bp::core {

struct DriftEntry {
  ua::UserAgent release;
  bp::util::Date check_date;
  std::size_t sessions = 0;
  std::size_t predominant_cluster = 0;
  double accuracy = 0.0;  // fraction of the release's rows in that cluster
  std::optional<std::size_t> reference_cluster;  // closest prior release's
  bool cluster_changed = false;
  bool accuracy_below_threshold = false;

  bool triggers_retraining() const {
    return cluster_changed || accuracy_below_threshold;
  }
};

struct DriftReport {
  std::vector<DriftEntry> entries;
  // Releases that could not be evaluated because the dataset held zero
  // sessions for them.  Kept separate so an operator can tell "checked,
  // no drift" from "no data to check" — a silently skipped release
  // looks exactly like a healthy one otherwise.
  std::vector<ua::UserAgent> skipped;
  bool retraining_required = false;

  std::size_t checked() const noexcept { return entries.size(); }
  std::size_t skipped_count() const noexcept { return skipped.size(); }
};

class DriftDetector {
 public:
  // When `registry` is supplied, every check() exports machine-readable
  // telemetry: counters bp_drift_checks_total,
  // bp_drift_releases_checked_total, bp_drift_releases_skipped_total
  // (the "no data to check" releases that previously had no export
  // path), bp_drift_retraining_signals_total, and gauges
  // bp_drift_last_min_accuracy / bp_drift_last_skipped /
  // bp_drift_last_retraining_required describing the latest check.
  explicit DriftDetector(const Polygraph& model,
                         double accuracy_threshold = 0.98,
                         obs::MetricsRegistry* registry = nullptr)
      : model_(&model), threshold_(accuracy_threshold), registry_(registry) {}

  // Score the sessions of `new_releases` found in `data` (feature columns
  // must match the model's feature set).  Releases with no sessions are
  // recorded in DriftReport::skipped rather than evaluated.
  DriftReport check(const traffic::Dataset& data,
                    const std::vector<ua::UserAgent>& new_releases,
                    bp::util::Date check_date) const;

  // The closest prior release of the same vendor present in the model's
  // cluster table (the Table 3 reference §6.6 compares against).
  std::optional<ua::UserAgent> closest_known_release(
      const ua::UserAgent& release) const;

  // The §6.6 schedule: evaluation dates a few days after each Firefox
  // release inside [from, to], with the new releases to check at each.
  struct ScheduledCheck {
    bp::util::Date date;
    std::vector<ua::UserAgent> releases;
  };
  static std::vector<ScheduledCheck> schedule(bp::util::Date from,
                                              bp::util::Date to,
                                              int days_after_release = 3);

 private:
  const Polygraph* model_;
  double threshold_;
  obs::MetricsRegistry* registry_;
};

}  // namespace bp::core
