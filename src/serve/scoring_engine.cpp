#include "serve/scoring_engine.h"

#include <span>
#include <utility>

namespace bp::serve {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ScoringEngine::ScoringEngine(const ModelRegistry& registry, EngineConfig config,
                             ResponseCallback on_response)
    : registry_(registry),
      config_([&] {
        config.workers = resolve_workers(config.workers);
        if (config.max_batch == 0) config.max_batch = 1;
        return config;
      }()),
      on_response_(std::move(on_response)),
      queue_(config_.queue_capacity, config_.overflow_policy),
      metrics_(config_.workers) {
  workers_.reserve(config_.workers);
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ScoringEngine::~ScoringEngine() { stop(); }

SubmitResult ScoringEngine::submit(ScoreRequest request) {
  if (stopping_.load(std::memory_order_acquire)) return SubmitResult::kStopped;
  request.admitted_at = std::chrono::steady_clock::now();
  // Count admission before the push: once the request is in the queue a
  // worker may complete it, and `completed_` must never overtake
  // `admitted_` or drain() would return early.
  admitted_.fetch_add(1, std::memory_order_acq_rel);
  std::optional<ScoreRequest> displaced;
  switch (queue_.push(std::move(request), displaced)) {
    case PushResult::kAccepted:
      return SubmitResult::kAdmitted;
    case PushResult::kDisplacedOldest:
      // The new request is admitted; the oldest queued one is completed
      // here and now as an explicit shed.
      deliver_shed(std::move(*displaced), 0, /*from_submit=*/true);
      return SubmitResult::kAdmitted;
    case PushResult::kRejected:
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
      metrics_.record_rejected();
      return SubmitResult::kRejected;
    case PushResult::kClosed:
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
      return SubmitResult::kStopped;
  }
  return SubmitResult::kStopped;  // unreachable
}

void ScoringEngine::worker_loop(std::uint32_t worker_index) {
  std::vector<ScoreRequest> batch;
  core::ScoringScratch scratch;
  while (queue_.pop_batch(batch, config_.max_batch)) {
    // One snapshot per batch: the whole batch is attributed to a single
    // published model version, and a concurrent publish() never tears a
    // batch across two models.
    ModelSnapshot snapshot = registry_.current();
    while (!snapshot) {
      if (stopping_.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      snapshot = registry_.current();
    }
    if (!snapshot) {
      // Stopped before any model was ever published: complete the batch
      // as shed so no admitted request is left without a response.
      for (ScoreRequest& request : batch) {
        deliver_shed(std::move(request), worker_index, /*from_submit=*/false);
      }
      continue;
    }
    metrics_.record_batch(worker_index);
    for (ScoreRequest& request : batch) {
      ScoreResponse response;
      response.id = request.id;
      response.status = ResponseStatus::kScored;
      response.detection = snapshot.model->score(
          std::span<const std::int32_t>(request.features), request.claimed,
          scratch);
      response.model_version = snapshot.version;
      response.worker = worker_index;
      response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - request.admitted_at);
      metrics_.record_scored(
          worker_index, response.detection.flagged,
          static_cast<std::uint64_t>(response.latency.count()));
      if (on_response_) on_response_(response);
    }
    note_completed(batch.size());
  }
}

void ScoringEngine::deliver_shed(ScoreRequest request,
                                 std::uint32_t worker_index, bool from_submit) {
  ScoreResponse response;
  response.id = request.id;
  response.status = ResponseStatus::kShed;
  response.worker = worker_index;
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - request.admitted_at);
  if (from_submit) {
    metrics_.record_shed_on_submit();
  } else {
    metrics_.record_shed(worker_index);
  }
  if (on_response_) on_response_(response);
  note_completed(1);
}

void ScoringEngine::note_completed(std::uint64_t n) {
  completed_.fetch_add(n, std::memory_order_acq_rel);
  std::lock_guard lock(drain_mutex_);
  drain_cv_.notify_all();
}

void ScoringEngine::drain() {
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) >=
           admitted_.load(std::memory_order_acquire);
  });
}

void ScoringEngine::stop() {
  std::lock_guard lock(stop_mutex_);
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

MetricsSnapshot ScoringEngine::metrics() const {
  MetricsSnapshot snapshot = metrics_.snapshot();
  snapshot.queue_depth = queue_.size();
  snapshot.model_version = registry_.version();
  return snapshot;
}

}  // namespace bp::serve
