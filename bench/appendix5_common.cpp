#include "appendix5_common.h"

#include <cstdio>

#include "baseline/collectors.h"
#include "baseline/encode.h"
#include "browser/extractor.h"
#include "browser/feature_catalog.h"
#include "browser/release_db.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "ml/pca.h"
#include "ml/scaler.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace bp::appendix5 {

namespace {

// One BrowserStack "launch": a release on an OS with an install identity.
struct Launch {
  browser::Environment env;
  ua::UserAgent ua;
};

std::vector<Launch> make_sweep(ua::Os os_a, ua::Os os_b, std::uint64_t seed,
                               int installs_per_combo) {
  const auto& db = browser::ReleaseDatabase::instance();
  bp::util::Rng rng(seed);

  std::vector<Launch> launches;
  for (const ua::Os os : {os_a, os_b}) {
    for (const auto& release : db.releases()) {
      // BrowserStack sweep: recent majors of the three desktop vendors.
      const bool wanted =
          (release.vendor == ua::Vendor::kChrome && release.version >= 100) ||
          (release.vendor == ua::Vendor::kEdge && release.version >= 100) ||
          (release.vendor == ua::Vendor::kFirefox && release.version >= 100);
      if (!wanted) continue;
      for (int i = 0; i < installs_per_combo; ++i) {
        Launch launch;
        launch.env.release = &release;
        launch.env.os = os;
        launch.env.session_salt = rng.next();
        launch.ua = release.user_agent(os);
        launches.push_back(launch);
      }
    }
  }
  return launches;
}

// The §6.4 clustering procedure applied to an arbitrary feature matrix:
// scale, PCA to >= 98.5% cumulative variance, elbow-derived k, k-means,
// majority-cluster accuracy.
ComparisonRow cluster_and_score(std::string technique, ml::Matrix features,
                                const std::vector<std::uint32_t>& labels,
                                const std::vector<bool>& scale_column,
                                std::uint64_t seed) {
  ComparisonRow row;
  row.technique = std::move(technique);
  row.dataset_size = features.rows();
  row.features = features.cols();

  ml::StandardScaler scaler;
  scaler.fit(features, scale_column);
  const ml::Matrix scaled = scaler.transform(features);

  ml::Pca probe;
  probe.fit(scaled, scaled.cols());
  const std::vector<double> cumulative = probe.cumulative_variance_ratio();
  std::size_t components = scaled.cols();
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (cumulative[i] >= 0.985) {
      components = i + 1;
      break;
    }
  }
  row.pca_components = components;

  ml::Pca pca;
  const ml::Matrix projected = pca.fit_transform(scaled, components);

  // Elbow over a modest sweep (small datasets have noisier curves, so
  // the late-stage window starts at k=5 here).
  const std::size_t k_max = std::min<std::size_t>(18, projected.rows() / 4);
  const std::vector<double> wcss = ml::wcss_curve(projected, 2, k_max, seed);
  const std::size_t best_k = ml::elbow_k(wcss, 2, /*min_k=*/5);
  row.k = best_k;

  ml::KMeansConfig config;
  config.k = best_k;
  config.seed = seed;
  ml::KMeans kmeans(config);
  kmeans.fit(projected);

  row.accuracy =
      ml::clustering_accuracy(labels, kmeans.labels()).row_accuracy;
  return row;
}

std::vector<bool> all_scaled(std::size_t n) { return std::vector<bool>(n, true); }

}  // namespace

std::vector<ComparisonRow> run_comparison(ua::Os os_a, ua::Os os_b,
                                          std::uint64_t seed) {
  std::vector<ComparisonRow> rows;

  // --- Browser Polygraph: coarse-grained 28 ---
  {
    const auto launches = make_sweep(os_a, os_b, seed ^ 0xB0, 4);
    const auto& catalog = browser::FeatureCatalog::instance();
    ml::Matrix features(0, 0);
    std::vector<std::uint32_t> labels;
    for (const auto& launch : launches) {
      features.push_row(browser::extract_final(launch.env));
      labels.push_back(launch.ua.key());
    }
    std::vector<bool> scale_column;
    for (std::size_t idx : catalog.final_indices()) {
      scale_column.push_back(catalog.spec(idx).kind ==
                             browser::FeatureKind::kDeviationBased);
    }
    rows.push_back(cluster_and_score("BROWSER POLYGRAPH", std::move(features),
                                     labels, scale_column, seed + 1));
  }

  // --- FingerprintJS ---
  {
    const auto launches = make_sweep(os_a, os_b, seed ^ 0xF1, 3);
    std::vector<baseline::ProfileValue> profiles;
    std::vector<std::uint32_t> labels;
    for (const auto& launch : launches) {
      profiles.push_back(
          baseline::collect(baseline::Collector::kFingerprintJs, launch.env));
      labels.push_back(launch.ua.key());
    }
    baseline::EncodedDataset encoded = baseline::encode_profiles(profiles);
    rows.push_back(cluster_and_score(
        "FingerprintJS", std::move(encoded.features), labels,
        all_scaled(encoded.column_names.size()), seed + 2));
  }

  // --- ClientJS (UA-derived features excluded per Appendix-5) ---
  {
    const auto launches = make_sweep(os_a, os_b, seed ^ 0xC2, 3);
    std::vector<baseline::ProfileValue> profiles;
    std::vector<std::uint32_t> labels;
    for (const auto& launch : launches) {
      profiles.push_back(
          baseline::collect(baseline::Collector::kClientJs, launch.env));
      labels.push_back(launch.ua.key());
    }
    baseline::EncodeOptions options;
    options.exclude_prefixes = {"uaDerived."};
    baseline::EncodedDataset encoded =
        baseline::encode_profiles(profiles, options);
    rows.push_back(cluster_and_score(
        "ClientJS", std::move(encoded.features), labels,
        all_scaled(encoded.column_names.size()), seed + 3));
  }
  return rows;
}

void print_comparison(const char* title,
                      const std::vector<ComparisonRow>& rows) {
  std::printf("%s\n", title);
  util::TextTable table({"Technique", "Size of dataset", "Features", "PCA",
                         "k", "Model accuracy"});
  for (const auto& row : rows) {
    table.add_row({row.technique, std::to_string(row.dataset_size),
                   std::to_string(row.features),
                   std::to_string(row.pca_components), std::to_string(row.k),
                   util::format_double(100.0 * row.accuracy, 2) + "%"});
  }
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace bp::appendix5
