file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_anonymity.dir/bench_fig5_anonymity.cpp.o"
  "CMakeFiles/bench_fig5_anonymity.dir/bench_fig5_anonymity.cpp.o.d"
  "bench_fig5_anonymity"
  "bench_fig5_anonymity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
