// Tests for the Isolation Forest and the clustering-accuracy metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/isolation_forest.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace bp::ml {
namespace {

Matrix cluster_with_outliers(std::size_t n_inliers, std::uint64_t seed) {
  bp::util::Rng rng(seed);
  Matrix data(n_inliers + 3, 2);
  for (std::size_t i = 0; i < n_inliers; ++i) {
    data(i, 0) = rng.normal(0.0, 1.0);
    data(i, 1) = rng.normal(0.0, 1.0);
  }
  // Three gross outliers.
  data(n_inliers + 0, 0) = 60.0;
  data(n_inliers + 1, 1) = -55.0;
  data(n_inliers + 2, 0) = 40.0;
  data(n_inliers + 2, 1) = 40.0;
  return data;
}

TEST(AveragePathLength, KnownValues) {
  EXPECT_DOUBLE_EQ(IsolationForest::average_path_length(0), 0.0);
  EXPECT_DOUBLE_EQ(IsolationForest::average_path_length(1), 0.0);
  EXPECT_DOUBLE_EQ(IsolationForest::average_path_length(2), 1.0);
  // c(n) grows like 2 ln(n); spot check against the published formula.
  const double c256 = IsolationForest::average_path_length(256);
  EXPECT_NEAR(c256, 2.0 * (std::log(255.0) + 0.5772156649) - 2.0 * 255.0 / 256.0,
              1e-10);
}

TEST(IsolationForest, OutliersScoreHigher) {
  const Matrix data = cluster_with_outliers(300, 1);
  IsolationForest forest;
  forest.fit(data);
  const auto scores = forest.score(data);
  double max_inlier = 0.0;
  for (std::size_t i = 0; i < 300; ++i) max_inlier = std::max(max_inlier, scores[i]);
  for (std::size_t i = 300; i < 303; ++i) {
    EXPECT_GT(scores[i], max_inlier);
  }
}

TEST(IsolationForest, ScoresInUnitInterval) {
  const Matrix data = cluster_with_outliers(200, 2);
  IsolationForest forest;
  forest.fit(data);
  for (double s : forest.score(data)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForest, InlierMaskDropsExactlyTheOutliers) {
  const Matrix data = cluster_with_outliers(300, 3);
  IsolationForest forest;
  forest.fit(data);
  const auto keep = forest.inlier_mask(data, 3.0 / 303.0);
  std::size_t dropped = 0;
  for (bool k : keep) dropped += k ? 0 : 1;
  EXPECT_EQ(dropped, 3u);
  EXPECT_FALSE(keep[300]);
  EXPECT_FALSE(keep[301]);
  EXPECT_FALSE(keep[302]);
}

TEST(IsolationForest, ZeroContaminationKeepsEverything) {
  const Matrix data = cluster_with_outliers(100, 4);
  IsolationForest forest;
  forest.fit(data);
  for (bool k : forest.inlier_mask(data, 0.0)) EXPECT_TRUE(k);
}

TEST(IsolationForest, ContaminationDropsCeil) {
  const Matrix data = cluster_with_outliers(100, 5);
  IsolationForest forest;
  forest.fit(data);
  const auto keep = forest.inlier_mask(data, 0.005);  // ceil(0.515) = 1
  std::size_t dropped = 0;
  for (bool k : keep) dropped += k ? 0 : 1;
  EXPECT_EQ(dropped, 1u);
}

TEST(IsolationForest, DeterministicGivenSeed) {
  const Matrix data = cluster_with_outliers(150, 6);
  IsolationForestConfig config;
  config.seed = 77;
  IsolationForest a(config);
  IsolationForest b(config);
  a.fit(data);
  b.fit(data);
  EXPECT_EQ(a.score(data), b.score(data));
}

TEST(IsolationForest, HandlesConstantData) {
  Matrix data(50, 2, 3.0);
  IsolationForest forest;
  forest.fit(data);
  const auto scores = forest.score(data);
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], scores[0]);
  }
}

// ------------------------- metrics -------------------------

TEST(Metrics, MajorityClusters) {
  const std::vector<std::uint32_t> labels = {1, 1, 1, 2, 2};
  const std::vector<std::size_t> clusters = {0, 0, 3, 3, 3};
  const auto majority = majority_clusters(labels, clusters);
  EXPECT_EQ(majority.at(1), 0u);
  EXPECT_EQ(majority.at(2), 3u);
}

TEST(Metrics, PerfectAccuracy) {
  const std::vector<std::uint32_t> labels = {1, 1, 2, 2};
  const std::vector<std::size_t> clusters = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(clustering_accuracy(labels, clusters).row_accuracy, 1.0);
}

TEST(Metrics, MiscluaterCounted) {
  const std::vector<std::uint32_t> labels = {1, 1, 1, 1};
  const std::vector<std::size_t> clusters = {0, 0, 0, 5};
  const auto acc = clustering_accuracy(labels, clusters);
  EXPECT_DOUBLE_EQ(acc.row_accuracy, 0.75);
  EXPECT_EQ(acc.correct_rows, 3u);
}

TEST(Metrics, SharedMajorityClusterIsAllowed) {
  // Two labels whose majority is the same cluster: both count as correct
  // (the paper's metric does not demand distinct clusters per label).
  const std::vector<std::uint32_t> labels = {1, 1, 2, 2};
  const std::vector<std::size_t> clusters = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(clustering_accuracy(labels, clusters).row_accuracy, 1.0);
}

TEST(Metrics, EmptyInput) {
  const auto acc = clustering_accuracy({}, {});
  EXPECT_DOUBLE_EQ(acc.row_accuracy, 0.0);
  EXPECT_EQ(acc.total_rows, 0u);
}

TEST(Metrics, PerLabelAccuracy) {
  const std::vector<std::uint32_t> labels = {7, 7, 7, 7, 9};
  const std::vector<std::size_t> clusters = {2, 2, 2, 4, 5};
  const auto per_label = per_label_accuracy(labels, clusters);
  EXPECT_EQ(per_label.at(7).cluster, 2u);
  EXPECT_DOUBLE_EQ(per_label.at(7).accuracy, 0.75);
  EXPECT_EQ(per_label.at(7).count, 4u);
  EXPECT_DOUBLE_EQ(per_label.at(9).accuracy, 1.0);
}

}  // namespace
}  // namespace bp::ml
