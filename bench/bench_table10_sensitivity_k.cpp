// Reproduces Table 10 (Appendix-4): sensitivity of model accuracy to the
// number of clusters, with the feature set fixed at 28 and PCA at 7.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  // Sensitivity sweeps retrain eight models; a 60k subsample keeps the
  // whole sweep under a minute while preserving the trend.
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 60'000;

  std::printf("=== Table 10: sensitivity to the number of clusters ===\n");
  const auto data = benchmark_support::make_training_dataset(n);

  util::TextTable table({"Number of clusters", "Model accuracy"});
  for (const std::size_t k : {5, 7, 9, 11, 13, 15, 17, 19}) {
    core::PolygraphConfig config = core::PolygraphConfig::production();
    config.k = k;
    const auto trained = benchmark_support::train_production(data, config);
    table.add_row(
        {std::to_string(k),
         util::format_double(100.0 * trained.summary.clustering_accuracy, 2) +
             "%"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper reference: accuracy decreases past the elbow (99.88%% at k=5 "
      "down to 99.26%% at k=19); too-few clusters give attackers room, so "
      "k=11 balances accuracy against evasion space.\n");
  return 0;
}
