file(REMOVE_RECURSE
  "libbp_ml.a"
)
