
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/engine_timelines.cpp" "src/browser/CMakeFiles/bp_browser.dir/engine_timelines.cpp.o" "gcc" "src/browser/CMakeFiles/bp_browser.dir/engine_timelines.cpp.o.d"
  "/root/repo/src/browser/extractor.cpp" "src/browser/CMakeFiles/bp_browser.dir/extractor.cpp.o" "gcc" "src/browser/CMakeFiles/bp_browser.dir/extractor.cpp.o.d"
  "/root/repo/src/browser/feature_catalog.cpp" "src/browser/CMakeFiles/bp_browser.dir/feature_catalog.cpp.o" "gcc" "src/browser/CMakeFiles/bp_browser.dir/feature_catalog.cpp.o.d"
  "/root/repo/src/browser/release_db.cpp" "src/browser/CMakeFiles/bp_browser.dir/release_db.cpp.o" "gcc" "src/browser/CMakeFiles/bp_browser.dir/release_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ua/CMakeFiles/bp_ua.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
