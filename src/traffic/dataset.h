// Session dataset: the in-memory analogue of the periodic datasets
// FinOrg shared during the eight-month collection (§6.2).
//
// Each row carries exactly what the paper's collection pipeline stored —
// integer feature outputs, the navigator.userAgent string, an opaque
// SessionID — plus the evaluation-only security tags (Untrusted_IP,
// Untrusted_Cookie, ATO) and, because this is a simulation, the
// ground-truth provenance that a real deployment would not have.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "browser/extractor.h"
#include "ml/matrix.h"
#include "ua/user_agent.h"
#include "util/csv.h"
#include "util/date.h"

namespace bp::traffic {

// Session provenance (ground truth; never visible to the detector).
enum class SessionKind : std::uint8_t {
  kBenign,          // genuine browser, honest UA
  kBenignModified,  // genuine browser with extensions/config tweaks
  kPrivacyBrowser,  // Brave / Tor presenting an upstream UA
  kFraudBrowser,    // anti-detect browser with a spoofed victim profile
};

struct SessionRecord {
  std::string session_id;    // opaque, randomized (Appendix A)
  bp::util::Date date;
  std::string user_agent;    // claimed navigator.userAgent header
  ua::UserAgent claimed;     // parsed form of the above

  // Feature values for the *stored* candidate subset (see Dataset).
  std::vector<std::int32_t> features;

  // FinOrg risk-system tags (evaluation only, §7.1).
  bool untrusted_ip = false;
  bool untrusted_cookie = false;
  bool ato = false;

  // Simulation ground truth.
  SessionKind kind = SessionKind::kBenign;
  std::string origin;  // actual browser / fraud tool label
};

class Dataset {
 public:
  Dataset() = default;
  // `stored_indices`: the candidate-catalog indices persisted per row.
  explicit Dataset(std::vector<std::size_t> stored_indices)
      : stored_indices_(std::move(stored_indices)) {}

  const std::vector<std::size_t>& stored_indices() const noexcept {
    return stored_indices_;
  }
  std::vector<SessionRecord>& records() noexcept { return records_; }
  const std::vector<SessionRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }

  void add(SessionRecord record) { records_.push_back(std::move(record)); }

  // Feature matrix over a subset of the stored candidates (`wanted` uses
  // candidate-catalog indices and must be a subset of stored_indices()).
  ml::Matrix feature_matrix(const std::vector<std::size_t>& wanted) const;
  // All stored features, in stored order.
  ml::Matrix feature_matrix() const;

  // Per-row claimed-UA keys / labels (for the accuracy metrics).
  std::vector<std::uint32_t> ua_keys() const;
  std::vector<std::string> ua_labels() const;

  // Concatenated feature-value string per row (anonymity-set analysis).
  std::vector<std::string> fingerprint_strings() const;

  // Rows restricted to a date range [from, to] (inclusive).
  Dataset slice(bp::util::Date from, bp::util::Date to) const;

  // CSV round-trip (feature columns named by catalog index).
  bp::util::CsvTable to_csv_table() const;
  static Dataset from_csv_table(const bp::util::CsvTable& table);

 private:
  std::vector<std::size_t> stored_indices_;
  std::vector<SessionRecord> records_;
};

}  // namespace bp::traffic
