// Reproduces Table 6: drift analysis of Browser Polygraph on data
// collected from late-July to October 2023 (§7.3).
//
// The model trained on the March - mid-July corpus is frozen; on each
// check date (a few days after a Firefox release) the brand-new Chrome,
// Firefox, and Edge versions are clustered and their predominant cluster
// and accuracy reported.  Expected outcome: releases 115-118 keep their
// predecessors' clusters at >= 99% accuracy; Firefox 119 changes cluster
// (the Element-prototype rework) and Chrome 119 drops below the 98%
// threshold — both raising the retraining signal.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/drift.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n_train =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;
  const std::size_t n_drift =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 120'000;

  std::printf("=== Table 6: drift analysis (late-July to October 2023) ===\n");
  const auto train_data = benchmark_support::make_training_dataset(n_train);
  const auto trained = benchmark_support::train_production(train_data);
  const auto numbering =
      benchmark_support::paper_cluster_numbering(trained.model);

  const auto drift_data = benchmark_support::make_drift_dataset(n_drift);
  const core::DriftDetector detector(trained.model, 0.98);

  // The paper's check dates: a few days after each Firefox release, with
  // the same-numbered Chrome/Edge released one-two weeks earlier.
  struct Check {
    const char* label;
    util::Date date;
    int version;
  };
  const Check checks[] = {
      {"07/25", util::Date::from_ymd(2023, 7, 25), 115},
      {"08/25", util::Date::from_ymd(2023, 8, 25), 116},
      {"09/25", util::Date::from_ymd(2023, 9, 25), 117},
      {"10/23", util::Date::from_ymd(2023, 10, 23), 118},
      {"11/02", util::Date::from_ymd(2023, 11, 2), 119},
  };

  util::TextTable table({"Browser", "Date", "Cluster", "Accuracy", "Signal"});
  bool retraining = false;
  for (const Check& check : checks) {
    const std::vector<ua::UserAgent> releases = {
        {ua::Vendor::kChrome, check.version, ua::Os::kWindows10},
        {ua::Vendor::kFirefox, check.version, ua::Os::kWindows10},
        {ua::Vendor::kEdge, check.version, ua::Os::kWindows10},
    };
    const auto window =
        drift_data.slice(util::Date::from_ymd(2023, 7, 20), check.date);
    const core::DriftReport report =
        detector.check(window, releases, check.date);
    retraining |= report.retraining_required;

    for (const auto& entry : report.entries) {
      table.add_row(
          {entry.release.label(), check.label,
           std::to_string(numbering[entry.predominant_cluster]),
           util::format_double(100.0 * entry.accuracy, 2),
           entry.triggers_retraining()
               ? (entry.cluster_changed ? "RETRAIN (cluster change)"
                                        : "RETRAIN (accuracy)")
               : ""});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nretraining signal raised: %s (paper: triggered in late October by "
      "Firefox 119's cluster change and Chrome 119's accuracy drop)\n",
      retraining ? "YES" : "no");
  return 0;
}
