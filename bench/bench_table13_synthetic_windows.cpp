// Reproduces Table 13 (Appendix-5): clustering performance of Browser
// Polygraph vs FingerprintJS vs ClientJS on a synthetic BrowserStack
// sweep across Windows 10 and Windows 11.
#include <cstdio>

#include "appendix5_common.h"

int main() {
  using namespace bp;
  const auto rows = appendix5::run_comparison(ua::Os::kWindows10,
                                              ua::Os::kWindows11, 0x13);
  appendix5::print_comparison(
      "=== Table 13: coarse vs fine-grained clustering (Windows 10/11) ===",
      rows);
  std::printf(
      "\npaper reference: BROWSER POLYGRAPH 100%% (28 feat), FingerprintJS "
      "99.21%% (268 feat), ClientJS 93.60%% (7 feat).\n");
  return 0;
}
