file(REMOVE_RECURSE
  "CMakeFiles/bp_baseline.dir/collectors.cpp.o"
  "CMakeFiles/bp_baseline.dir/collectors.cpp.o.d"
  "CMakeFiles/bp_baseline.dir/encode.cpp.o"
  "CMakeFiles/bp_baseline.dir/encode.cpp.o.d"
  "CMakeFiles/bp_baseline.dir/profile.cpp.o"
  "CMakeFiles/bp_baseline.dir/profile.cpp.o.d"
  "libbp_baseline.a"
  "libbp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
