// Candidate-fingerprint generation (§6.1) and data pre-processing (§6.3).
//
// §6.1 ranks the MDN-derived deviation-based candidates by their standard
// deviation across the legitimate-browser corpus and keeps the top 200;
// §6.3 then confronts the candidates with real-world data: features that
// are constant across a live sample are dropped, features that manual
// analysis showed to move with user configuration are excluded, and the
// survivors are intersected with the curated production set.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "traffic/dataset.h"

namespace bp::core {

// ------------------------- §6.1 -------------------------

struct CandidateRanking {
  std::size_t candidate_index = 0;
  double stddev = 0.0;             // across the legitimate corpus
  double normalized_stddev = 0.0;  // stddev / mean (0 when mean == 0)
};

// Rank every deviation-based candidate by standard deviation across all
// legitimate releases in the database (descending).  The paper reports
// the selected features' normalized deviation spanning 0.0012-1.3853.
std::vector<CandidateRanking> rank_candidates_by_deviation();

// ------------------------- §6.3 -------------------------

struct PreprocessingReport {
  // Candidates whose value was identical across every sampled row (the
  // paper found 186 such features in a one-day March sample).
  std::vector<std::size_t> constant_features;
  // Candidates excluded by the manual configuration-sensitivity analysis.
  std::vector<std::size_t> config_sensitive_excluded;
  // The surviving feature set, after intersecting the automatic filters
  // with the curated production list.
  std::vector<std::size_t> selected_features;

  std::size_t constant_time_based = 0;   // breakdown of constant_features
  std::size_t constant_deviation = 0;
};

struct PreprocessingOptions {
  // The curated keep-list; defaults to Table 8's 28.
  std::vector<std::size_t> curated_final_set;
  // Minimum distinct values a feature must show to survive.
  std::size_t min_distinct_values = 2;
};

// Run the §6.3 pipeline on a collected sample (a Dataset whose stored
// features include every candidate, e.g. one day of traffic).
PreprocessingReport preprocess(const traffic::Dataset& sample,
                               PreprocessingOptions options = {});

// Distinct-value count per stored feature of a dataset.
std::vector<std::size_t> distinct_value_counts(const traffic::Dataset& sample);

}  // namespace bp::core
