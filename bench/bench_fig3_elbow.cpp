// Reproduces Figure 3: the elbow method — WCSS (k-means inertia) vs the
// number of clusters on the PCA(7)-projected training data.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "browser/feature_catalog.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "ml/scaler.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  // The curve is computed on a subsample: the elbow's location is stable
  // under subsampling and the sweep refits k-means 20 times.
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 60'000;

  std::printf("=== Figure 3: elbow method (WCSS vs number of clusters) ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto& catalog = browser::FeatureCatalog::instance();
  const ml::Matrix raw = data.feature_matrix(catalog.final_indices());

  std::vector<bool> scale_column;
  for (std::size_t idx : catalog.final_indices()) {
    scale_column.push_back(catalog.spec(idx).kind ==
                           browser::FeatureKind::kDeviationBased);
  }
  ml::StandardScaler scaler;
  scaler.fit(raw, scale_column);
  const ml::Matrix scaled = scaler.transform(raw);

  ml::IsolationForest forest;
  forest.fit(scaled);
  const ml::Matrix filtered =
      scaled.filter_rows(forest.inlier_mask(scaled, 0.00084));

  ml::Pca pca;
  const ml::Matrix projected = pca.fit_transform(filtered, 7);

  const std::vector<double> wcss = ml::wcss_curve(projected, 1, 20);

  std::vector<std::pair<std::string, double>> series;
  for (std::size_t k = 1; k <= wcss.size(); ++k) {
    char label[16];
    std::snprintf(label, sizeof(label), "k=%2zu", k);
    series.emplace_back(label, wcss[k - 1]);
  }
  std::fputs(util::ascii_chart(series).c_str(), stdout);
  std::printf(
      "\nElbow candidates appear where the marginal drop collapses; the\n"
      "paper reads k = 3, 6, and 11 off this curve before settling on 11\n"
      "via the relative-WCSS view (Figure 4 bench).\n");
  return 0;
}
