// Compile-time build identity for /statusz.
//
// When "which binary is this?" comes up mid-incident, the answer must
// come from the process itself, not from deploy records.  The values
// here are baked in at compile time (git describe is captured at CMake
// configure time and injected as a definition on build_info.cpp only,
// so touching the git head recompiles one TU, not the tree) and
// rendered as a block in /statusz.
#pragma once

#include <string>

namespace bp::obs::introspect {

struct BuildInfo {
  const char* git_describe;     // `git describe --always --dirty` at configure
  const char* compiler;         // compiler id + version string
  const char* build_type;       // CMAKE_BUILD_TYPE
  const char* sanitizer;        // BP_SANITIZE value, "none" when unset
  unsigned hardware_threads;    // std::thread::hardware_concurrency()
};

// The identity of this binary; every field is always non-null.
BuildInfo build_info() noexcept;

// The /statusz "-- build --" block (trailing newline included).
std::string render_build_info();

}  // namespace bp::obs::introspect
