#include "obs/audit.h"

#include <cstdio>

#include "util/rng.h"

namespace bp::obs {

AuditTrail::AuditTrail(AuditConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.resize(config_.capacity);
}

bool AuditTrail::sample_unflagged(std::uint64_t session_id) const noexcept {
  if (config_.unflagged_sample_rate >= 1.0) return true;
  if (config_.unflagged_sample_rate <= 0.0) return false;
  return bp::util::Rng(config_.seed).split(session_id).uniform() <
         config_.unflagged_sample_rate;
}

void AuditTrail::record(const AuditRecord& record) {
  std::lock_guard lock(mutex_);
  if (size_ == ring_.size()) {
    overwritten_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++size_;
  }
  ring_[next_] = record;
  next_ = (next_ + 1) % ring_.size();
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (record.flagged()) flagged_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<AuditRecord> AuditTrail::records() const {
  std::lock_guard lock(mutex_);
  std::vector<AuditRecord> out;
  out.reserve(size_);
  const std::size_t begin = size_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(begin + i) % ring_.size()]);
  }
  return out;
}

std::string AuditTrail::render_jsonl(bool include_timing,
                                     std::size_t last_n) const {
  std::string out;
  std::vector<AuditRecord> all = records();
  if (last_n < all.size()) all.erase(all.begin(), all.end() - last_n);
  for (const AuditRecord& r : all) {
    char line[384];
    char timing[48] = "";
    if (include_timing) {
      std::snprintf(timing, sizeof(timing), ", \"recorded_at_us\": %lld",
                    static_cast<long long>(r.recorded_at_us));
    }
    std::snprintf(
        line, sizeof(line),
        "{\"session_id\": %llu, \"model_version\": %llu, "
        "\"claimed\": \"%s\", \"predicted_cluster\": %u, "
        "\"expected_cluster\": %d, \"risk_factor\": %d, "
        "\"centroid_distance2\": %.17g, \"flagged\": %s, "
        "\"degraded\": %s%s}\n",
        static_cast<unsigned long long>(r.session_id),
        static_cast<unsigned long long>(r.model_version),
        r.claimed.label().c_str(), r.predicted_cluster, r.expected_cluster,
        r.risk_factor, r.centroid_distance2, r.flagged() ? "true" : "false",
        r.degraded() ? "true" : "false", timing);
    out += line;
  }
  return out;
}

void AuditTrail::clear() {
  std::lock_guard lock(mutex_);
  next_ = 0;
  size_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  flagged_.store(0, std::memory_order_relaxed);
  overwritten_.store(0, std::memory_order_relaxed);
}

}  // namespace bp::obs
