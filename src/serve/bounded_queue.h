// Bounded MPMC queue with explicit overflow policies.
//
// The serving tier (§3's per-request budget at FinOrg scale) must keep
// latency bounded when offered load exceeds scoring capacity.  An
// unbounded queue converts overload into unbounded latency; a bounded
// queue forces an explicit decision at the admission edge:
//
//   kBlock      — producers wait for space (lossless; backpressure is
//                 pushed upstream to the caller's accept loop);
//   kDropOldest — admit the new request by shedding the oldest queued
//                 one (freshest-first under overload: a stale session
//                 score is worth less than a fresh one);
//   kReject     — refuse the new request immediately (caller falls back
//                 to its UA-only risk path and retries later).
//
// Shed/displaced items are *returned to the producer*, never silently
// discarded, so the engine can complete every admitted request with
// either a score or an explicit shed response.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/prof/contention.h"

namespace bp::serve {

enum class OverflowPolicy {
  kBlock,
  kDropOldest,
  kReject,
};

enum class PushResult {
  kAccepted,        // item enqueued
  kDisplacedOldest, // item enqueued; the previous head came back via `displaced`
  kRejected,        // queue full under kReject; item not enqueued
  kClosed,          // queue closed; item not enqueued
};

template <typename T>
class BoundedQueue {
 public:
  BoundedQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  // Push under the configured policy.  On kDisplacedOldest the shed
  // item is moved into `displaced` for the caller to dispose of.
  PushResult push(T item, std::optional<T>& displaced) {
    std::unique_lock lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverflowPolicy::kBlock: {
          ++waiting_producers_;
          const auto wait_begin = push_block_site_ != nullptr
                                      ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
          not_full_.wait(lock,
                         [&] { return closed_ || items_.size() < capacity_; });
          --waiting_producers_;
          if (push_block_site_ != nullptr) {
            push_block_site_->record_block(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - wait_begin)
                    .count()));
          }
          if (closed_) return PushResult::kClosed;
          break;
        }
        case OverflowPolicy::kDropOldest:
          displaced = std::move(items_.front());
          items_.pop_front();
          items_.push_back(std::move(item));
          if (waiting_consumers_ > 0) not_empty_.notify_one();
          return PushResult::kDisplacedOldest;
        case OverflowPolicy::kReject:
          return PushResult::kRejected;
      }
    }
    items_.push_back(std::move(item));
    // Waiter-counted wakeups: under load the consumers are almost never
    // parked (they drain in batches), yet every push used to issue a
    // futex syscall anyway — per-item kernel round-trips that dominated
    // the queue's cost once producers outnumbered cores.  The counters
    // are mutex-protected, so a consumer that is *about to* wait is
    // either counted (gets the notify) or hasn't released the lock yet
    // (will see the item before waiting).
    if (waiting_consumers_ > 0) not_empty_.notify_one();
    return PushResult::kAccepted;
  }

  PushResult push(T item) {
    std::optional<T> displaced;
    return push(std::move(item), displaced);
  }

  // Blocks until at least one item is available (or the queue closes),
  // then drains up to `max_batch` items into `out` (cleared first).
  // Returns false only when the queue is closed and fully drained.
  bool pop_batch(std::vector<T>& out, std::size_t max_batch) {
    out.clear();
    std::unique_lock lock(mutex_);
    if (closed_ || !items_.empty()) {
      // Fast path: skip the wait bookkeeping entirely when work is
      // already queued (the steady state under load).
    } else {
      ++waiting_consumers_;
      const auto wait_begin = pop_wait_site_ != nullptr
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      --waiting_consumers_;
      if (pop_wait_site_ != nullptr) {
        pop_wait_site_->record_block(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wait_begin)
                .count()));
      }
    }
    if (items_.empty()) return false;  // closed and drained
    const std::size_t n = std::min(max_batch, items_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (policy_ == OverflowPolicy::kBlock && waiting_producers_ > 0) {
      not_full_.notify_all();
    }
    return true;
  }

  bool pop(T& out) {
    std::vector<T> batch;
    if (!pop_batch(batch, 1)) return false;
    out = std::move(batch.front());
    return true;
  }

  // Wakes all waiters; subsequent pushes fail with kClosed.  Items
  // already queued remain poppable until drained.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }
  OverflowPolicy policy() const noexcept { return policy_; }

  // Attribute blocking waits to named contention sites (/contentionz).
  // Null (the default) skips the clock reads entirely.  Call before the
  // queue goes concurrent — typically right after construction.
  void set_contention_sites(obs::prof::ContentionSite* push_block,
                            obs::prof::ContentionSite* pop_wait) noexcept {
    push_block_site_ = push_block;
    pop_wait_site_ = pop_wait;
  }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  // Parked-thread counts (guarded by mutex_) so push/pop skip the
  // condition-variable syscall when nobody is waiting.
  std::size_t waiting_producers_ = 0;
  std::size_t waiting_consumers_ = 0;
  obs::prof::ContentionSite* push_block_site_ = nullptr;
  obs::prof::ContentionSite* pop_wait_site_ = nullptr;
};

}  // namespace bp::serve
